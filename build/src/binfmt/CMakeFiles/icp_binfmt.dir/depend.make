# Empty dependencies file for icp_binfmt.
# This may be replaced when dependencies are built.
