file(REMOVE_RECURSE
  "CMakeFiles/test_go_runtime.dir/test_go_runtime.cc.o"
  "CMakeFiles/test_go_runtime.dir/test_go_runtime.cc.o.d"
  "test_go_runtime"
  "test_go_runtime.pdb"
  "test_go_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_go_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
