/**
 * @file
 * Two-pass label-based assembler. Every instruction has a
 * deterministic encoded length on each ISA (there is no relaxation),
 * so the first pass assigns addresses and the second pass resolves
 * label targets and emits bytes.
 */

#ifndef ICP_ISA_ASSEMBLER_HH
#define ICP_ISA_ASSEMBLER_HH

#include <cstdint>
#include <vector>

#include "isa/arch.hh"
#include "isa/instruction.hh"

namespace icp
{

/**
 * Emits a code stream for one ISA starting at a fixed address.
 * Branch/address-formation instructions may reference labels; labels
 * are bound to the current position with bind(). finalize() resolves
 * everything and returns the bytes. Address-dependent encodings that
 * fail to reach their targets are a hard error (the caller controls
 * layout and must keep references in range).
 */
class Assembler
{
  public:
    using Label = int;

    Assembler(const ArchInfo &arch, Addr start);

    /** Allocate a fresh unbound label. */
    Label newLabel();

    /** Bind @p label to the current position. */
    void bind(Label label);

    /**
     * Bind @p label to an arbitrary absolute address — used for
     * cross-function targets whose final addresses the parallel
     * relocation pipeline only knows after layout.
     */
    void bindAt(Label label, Addr addr);

    /**
     * Move the whole stream to @p new_start before finalize().
     * Encoded lengths are address-independent, so only the start
     * address and every already-bound label shift; instructions with
     * absolute targets re-encode against the new addresses during
     * finalize(). Labels bound later via bindAt() are unaffected.
     */
    void rebase(Addr new_start);

    /** Append one instruction with operands fully resolved. */
    void emit(const Instruction &in);

    /**
     * Append a branch / Lea / AdrPage whose target is @p label,
     * resolved at finalize time.
     */
    void emitToLabel(Instruction in, Label label);

    /**
     * Materialize a 64-bit constant into @p rd. On x64 this is one
     * MovImm; on the fixed ISAs it is always a 4-instruction
     * movz/movk sequence so lengths stay value-independent.
     */
    void emitMovImm64(Reg rd, std::uint64_t value);

    /** Like emitMovImm64 but the value is a label address. */
    void emitMovLabel(Reg rd, Label label);

    /**
     * ppc64le TOC pair to a label: AddisToc rd, ha(off) followed by
     * AddImm rd, lo(off) where off = label - tocBase, resolved at
     * finalize.
     */
    void emitAddisTocPair(Reg rd, Label label, Addr toc_base);

    /**
     * aarch64 adrp pair to a label: AdrPage rd, label followed by
     * AddImm rd, low-part, resolved at finalize.
     */
    void emitAdrPagePair(Reg rd, Label label);

    /** Append raw data bytes (embedded jump tables), align-safe. */
    void emitData(const std::vector<std::uint8_t> &bytes);

    /** Reserve a data placeholder patched at finalize via callback. */
    void emitDataLabelDiff(Label target, Label base, unsigned size,
                           unsigned shift = 0);

    /** Pad with nops to the given alignment. */
    void alignTo(unsigned alignment);

    /** Address of the next emitted byte (valid during emission). */
    Addr here() const { return start_ + cursor_; }

    Addr startAddr() const { return start_; }

    /** Resolve labels and encode; callable once. */
    std::vector<std::uint8_t> finalize();

    /** Address a label was bound to (valid after binding). */
    Addr labelAddr(Label label) const;

    const ArchInfo &arch() const { return arch_; }

  private:
    struct Item
    {
        enum class Kind { instr, data, dataDiff };
        /** How a label reference patches the instruction. */
        enum class Fixup { none, target, movChunk, tocHi, tocLo, adrLo };
        Kind kind = Kind::instr;
        Fixup fixup = Fixup::none;
        Addr tocBase = 0;             // for tocHi/tocLo
        Instruction in;
        Label targetLabel = -1;       // instr with label target
        std::vector<std::uint8_t> data;
        // dataDiff: value = (labelAddr(a) - labelAddr(b)) >> shift
        Label diffA = -1;
        Label diffB = -1;
        unsigned diffSize = 0;
        unsigned diffShift = 0;
        Offset offset = 0;            // assigned in pass 1 (at emit)
        unsigned length = 0;
    };

    unsigned itemLength(const Item &item) const;

    const ArchInfo &arch_;
    Addr start_;
    Offset cursor_ = 0;
    std::vector<Item> items_;
    std::vector<Addr> labels_; // invalid_addr while unbound
    bool finalized_ = false;
};

} // namespace icp

#endif // ICP_ISA_ASSEMBLER_HH
