#include "baselines/boltlike.hh"

#include "analysis/builder.hh"
#include "baselines/regen_util.hh"
#include "rewrite/engine.hh"
#include "support/logging.hh"

namespace icp
{

BoltOutcome
boltRewrite(const BinaryImage &input, BoltOperation op)
{
    BoltOutcome outcome;

    if (op == BoltOperation::reorderFunctions &&
        input.linkRelocs.empty()) {
        // Emitted even for PIE/shared objects with runtime
        // relocations present (§8.3).
        outcome.error =
            "BOLT-ERROR: function reordering only works when "
            "relocations are enabled";
        return outcome;
    }

    const CfgModule cfg = buildCfg(input, AnalysisOptions{});
    std::set<Addr> all;
    for (const auto &[entry, func] : cfg.functions) {
        if (!func.instrumentable()) {
            outcome.error = "cannot analyze " + func.name;
            return outcome;
        }
        all.insert(entry);
    }

    const Section *text = input.findSection(SectionKind::text);
    icp_assert(text, "no .text");

    EngineConfig config;
    config.mode = RewriteMode::funcPtr;
    config.instrBase = input.highWaterMark(4096);
    config.newRodataBase =
        config.instrBase + text->memSize * 4 + 0x10000;
    config.functionAlign = 16;
    config.functionOrder = op == BoltOperation::reorderFunctions
        ? OrderPolicy::reversed
        : OrderPolicy::original;
    config.blockOrder = op == BoltOperation::reorderBlocks
        ? OrderPolicy::reversed
        : OrderPolicy::original;

    EngineResult engine = relocateFunctions(cfg, all, config);

    BinaryImage out = input;
    Section *old_text = out.findSection(SectionKind::text);
    old_text->addr = config.instrBase;
    old_text->bytes = engine.instrBytes;
    old_text->memSize = old_text->bytes.size();
    if (!engine.newRodataBytes.empty()) {
        Section ro;
        ro.name = ".newrodata";
        ro.kind = SectionKind::newRodata;
        ro.addr = config.newRodataBase;
        ro.bytes = engine.newRodataBytes;
        ro.memSize = ro.bytes.size();
        out.addSection(std::move(ro));
    }
    rewriteRegeneratedFuncPtrs(out, *old_text, cfg, engine);

    auto entry_it = engine.blockMap.find(input.entry);
    icp_assert(entry_it != engine.blockMap.end(), "entry missing");
    out.entry = entry_it->second;

    outcome.ok = true;
    outcome.image = std::move(out);

    // The modeled metadata corruption (bad .interp): block
    // reordering broke 10 of 19 SPEC binaries in the paper's run.
    if (op == BoltOperation::reorderBlocks &&
        (input.features.cppExceptions ||
         input.features.fortranComponent)) {
        outcome.corrupted = true;
        outcome.image.entry = 0; // unloadable analog
    }
    return outcome;
}

} // namespace icp
