#include "analysis/cache.hh"

namespace icp
{

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t hash)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

namespace
{

std::uint64_t
fnvValue(std::uint64_t v, std::uint64_t hash)
{
    std::uint8_t raw[8];
    for (unsigned i = 0; i < 8; ++i)
        raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return fnv1a(raw, sizeof(raw), hash);
}

std::uint64_t
fnvDouble(double v, std::uint64_t hash)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return fnvValue(bits, hash);
}

} // namespace

std::uint64_t
imageCacheSeed(const BinaryImage &image, const AnalysisOptions &opts)
{
    std::uint64_t h = fnvValue(
        static_cast<std::uint64_t>(image.arch), 0xcbf29ce484222325ULL);
    h = fnvValue(image.pie ? 1 : 0, h);
    h = fnvValue(image.tocBase, h);
    h = fnvValue(opts.resolveJumpTables ? 1 : 0, h);
    h = fnvValue(opts.tailCallHeuristic ? 1 : 0, h);
    h = fnvDouble(opts.inject.failProb, h);
    h = fnvDouble(opts.inject.overProb, h);
    h = fnvDouble(opts.inject.underProb, h);
    h = fnvValue(opts.inject.overExtra, h);
    h = fnvValue(opts.inject.underCut, h);
    h = fnvValue(opts.inject.seed, h);

    // Jump-table analysis dereferences table bytes that live outside
    // the function's own range (.rodata, .data). Their *contents* are
    // deliberately not folded here: each function records the exact
    // ranges it read (Function::dataDeps, hashed per range), and
    // buildCfg validates a hit against the current image, so a data
    // edit invalidates only the functions that actually read the
    // edited bytes instead of the whole image. Section addresses and
    // sizes stay in the key — analysis bounds tables by their
    // containing section's extent.
    for (const Section &sec : image.sections) {
        if (!sec.loadable || sec.executable)
            continue;
        h = fnvValue(sec.addr, h);
        h = fnvValue(sec.memSize, h);
    }
    return h;
}

std::uint64_t
functionCacheKey(const BinaryImage &image, const Symbol &sym,
                 const std::vector<TryRange> &tries,
                 std::uint64_t seed)
{
    std::uint64_t h = fnvValue(sym.addr, seed);
    h = fnvValue(sym.size, h);
    h = fnv1a(sym.name.data(), sym.name.size(), h);
    for (const TryRange &range : tries) {
        h = fnvValue(range.startOff, h);
        h = fnvValue(range.endOff, h);
        h = fnvValue(range.lpOff, h);
    }
    std::vector<std::uint8_t> bytes;
    if (image.readBytes(sym.addr, sym.size, bytes))
        h = fnv1a(bytes.data(), bytes.size(), h);
    return h;
}

AnalysisCache &
AnalysisCache::global()
{
    static AnalysisCache cache;
    return cache;
}

// findFunction/findLiveness live in cache_store.cc: a lookup that
// misses the decoded maps may have to deserialize a lazily-indexed
// entry from a mapped cache file, and the payload decoders are
// private to the store.

void
AnalysisCache::storeFunction(std::uint64_t key, Arch arch,
                             Function func)
{
    auto value =
        std::make_shared<const Function>(std::move(func));
    std::lock_guard<std::mutex> lock(mu_);
    pendingFunctions_.erase(key);
    functions_[key] = {arch, std::move(value)};
}

void
AnalysisCache::storeLiveness(std::uint64_t key, Arch arch,
                             LivenessResult live)
{
    auto value =
        std::make_shared<const LivenessResult>(std::move(live));
    std::lock_guard<std::mutex> lock(mu_);
    pendingLiveness_.erase(key);
    liveness_[key] = {arch, std::move(value)};
}

void
AnalysisCache::storeDataDeps(std::uint64_t key, Arch arch,
                             DataDeps deps)
{
    auto value = std::make_shared<const DataDeps>(std::move(deps));
    std::lock_guard<std::mutex> lock(mu_);
    pendingDataDeps_.erase(key);
    dataDeps_[key] = {arch, std::move(value)};
}

AnalysisCache::Stats
AnalysisCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
AnalysisCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return functions_.size() + liveness_.size() + dataDeps_.size() +
           pendingFunctions_.size() + pendingLiveness_.size() +
           pendingDataDeps_.size();
}

void
AnalysisCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    functions_.clear();
    liveness_.clear();
    dataDeps_.clear();
    pendingFunctions_.clear();
    pendingLiveness_.clear();
    pendingDataDeps_.clear();
    stats_ = Stats{};
}

} // namespace icp
