#include "rewrite/session.hh"

#include <utility>

#include "analysis/builder.hh"
#include "support/logging.hh"

namespace icp
{

namespace
{

/**
 * Analysis settings that change the shape of the built CFG. Thread
 * count and cache use are excluded: results are bit-identical for
 * every value, so a cached CFG stays valid across them.
 */
bool
sameCfgShape(const AnalysisOptions &a, const AnalysisOptions &b)
{
    return a.resolveJumpTables == b.resolveJumpTables &&
           a.tailCallHeuristic == b.tailCallHeuristic &&
           a.inject.failProb == b.inject.failProb &&
           a.inject.overProb == b.inject.overProb &&
           a.inject.underProb == b.inject.underProb &&
           a.inject.overExtra == b.inject.overExtra &&
           a.inject.underCut == b.inject.underCut &&
           a.inject.seed == b.inject.seed;
}

/**
 * Rules whose findings attach to a single function, plus the global
 * overlap rule (cheap, and a re-rewrite can move any patch). The
 * selective re-lint runs exactly these; addr-map round-trips are the
 * one omission — their findings are never function-attributable, so
 * any such error already forced the full-rewrite fallback.
 */
const std::set<std::string> &
selectiveLintRules()
{
    static const std::set<std::string> rules = {
        "tramp-target",  "tramp-range",      "tramp-chain",
        "tramp-trap",    "tramp-scratch-live", "toc-preserved",
        "jt-clone-bounds", "jt-clone-target", "patch-overlap",
        "eh-frame-cover", "func-ptr-target",
    };
    return rules;
}

} // namespace

void
RewriteSession::ensureCfg()
{
    AnalysisOptions aopts = opts_.analysis;
    aopts.threads = opts_.threads;
    aopts.useCache = opts_.useAnalysisCache;
    if (cfgBuilt_ && sameCfgShape(aopts, cfgOpts_)) {
        cfgOpts_ = aopts;
        return;
    }
    cfg_ = buildCfg(*input_, aopts);
    cfgBuilt_ = true;
    cfgOpts_ = aopts;
}

const CfgModule &
RewriteSession::analyze()
{
    ensureCfg();
    return cfg_;
}

RewriteResult &
RewriteSession::rewrite(const RewriteOptions &options)
{
    opts_ = options;
    ensureCfg();

    RewritePass pass;
    pass.cfg = &cfg_;
    RewriteResult next = rewriteBinary(*input_, opts_, pass);
    result_ = std::move(next);
    hasResult_ = true;

    // A fresh rewrite invalidates the previous report and resets the
    // repair history: the functions start with a clean slate.
    report_ = LintReport{};
    hasReport_ = false;
    failCounts_.clear();
    return result_;
}

LintReport &
RewriteSession::lint(const LintOptions &options)
{
    icp_assert(hasResult_, "RewriteSession::lint() before rewrite()");
    ensureCfg();
    lintOpts_ = options;

    LintOptions effective = options;
    effective.originalCfg = &cfg_;
    report_ = lintRewrite(*input_, result_, effective);
    hasReport_ = true;
    return report_;
}

RewriteSession::RepairOutcome
RewriteSession::repair(const LintReport &report,
                       const RepairPolicy &policy)
{
    icp_assert(hasResult_, "RewriteSession::repair() before rewrite()");
    icp_assert(hasReport_, "RewriteSession::repair() before lint()");

    RepairOutcome out;

    // Attribute every error finding to its owning function.
    std::set<std::string> names;
    bool unattributed = false;
    for (const Diagnostic &d : report.findings) {
        if (d.severity < Severity::error)
            continue;
        if (d.function.empty())
            unattributed = true;
        else
            names.insert(d.function);
    }
    if (names.empty() && !unattributed) {
        out.converged = !report_.failed(lintOpts_.failOn);
        return out;
    }

    out.iterations = 1;
    out.repairedFunctions = names;

    // Second failed targeted attempt -> demote to trap trampolines.
    for (const std::string &name : names) {
        const unsigned fails = ++failCounts_[name];
        if (policy.demoteToTrapOnSecondFailure && fails >= 2) {
            opts_.forceTrapFunctions.insert(name);
            out.demotedFunctions.insert(name);
        }
    }
    if (policy.clearInjectedDefect)
        opts_.injectDefect = InjectDefect::none;

    // Map names back to CFG entries; a name that resolves to no
    // entry (stripped or renamed) forces the full fallback.
    std::set<Addr> dirty;
    std::set<std::string> resolved;
    for (const auto &[entry, func] : cfg_.functions) {
        if (names.count(func.name)) {
            dirty.insert(entry);
            resolved.insert(func.name);
        }
    }
    const bool selective =
        !unattributed && resolved.size() == names.size();
    out.fullRewriteFallback = !selective;

    RewritePass pass;
    pass.cfg = &cfg_;
    if (selective) {
        pass.previous = &result_;
        pass.dirtyFunctions = dirty;
    }
    // result_ stays alive (and unmoved) for the whole call: the pass
    // borrows the previous image's .instr bytes and manifest.
    RewriteResult next = rewriteBinary(*input_, opts_, pass);
    result_ = std::move(next);

    LintOptions relint = lintOpts_;
    relint.originalCfg = &cfg_;
    if (selective) {
        // Incremental re-lint: only the re-emitted functions' sites
        // (every other function's bytes were spliced verbatim), plus
        // the global overlap rule. Findings for untouched functions
        // carry over from the previous report.
        relint.onlyFunctions = dirty;
        relint.onlyRules = selectiveLintRules();
        LintReport partial = lintRewrite(*input_, result_, relint);
        for (const Diagnostic &d : report_.findings) {
            if (names.count(d.function))
                continue; // re-checked above
            if (d.rule == "patch-overlap")
                continue; // re-checked globally above
            partial.findings.push_back(d);
        }
        report_ = std::move(partial);
    } else {
        report_ = lintRewrite(*input_, result_, relint);
    }
    hasReport_ = true;

    out.converged = !report_.failed(lintOpts_.failOn);
    return out;
}

RewriteSession::RepairOutcome
RewriteSession::repairToFixedPoint(unsigned max_iterations,
                                   const RepairPolicy &policy)
{
    icp_assert(hasResult_,
               "RewriteSession::repairToFixedPoint() before rewrite()");
    if (!hasReport_)
        lint(lintOpts_);

    RepairOutcome total;
    while (total.iterations < max_iterations) {
        if (!report_.failed(lintOpts_.failOn)) {
            total.converged = true;
            return total;
        }
        RepairOutcome step = repair(report_, policy);
        total.iterations += step.iterations;
        total.repairedFunctions.insert(step.repairedFunctions.begin(),
                                       step.repairedFunctions.end());
        total.demotedFunctions.insert(step.demotedFunctions.begin(),
                                      step.demotedFunctions.end());
        total.fullRewriteFallback |= step.fullRewriteFallback;
        if (step.iterations == 0)
            break; // nothing attributable left to repair
    }
    total.converged = !report_.failed(lintOpts_.failOn);
    return total;
}

} // namespace icp
