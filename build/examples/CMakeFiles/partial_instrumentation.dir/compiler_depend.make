# Empty compiler generated dependencies file for partial_instrumentation.
# This may be replaced when dependencies are built.
