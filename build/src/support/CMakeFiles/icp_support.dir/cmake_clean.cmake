file(REMOVE_RECURSE
  "CMakeFiles/icp_support.dir/logging.cc.o"
  "CMakeFiles/icp_support.dir/logging.cc.o.d"
  "CMakeFiles/icp_support.dir/random.cc.o"
  "CMakeFiles/icp_support.dir/random.cc.o.d"
  "CMakeFiles/icp_support.dir/stats.cc.o"
  "CMakeFiles/icp_support.dir/stats.cc.o.d"
  "CMakeFiles/icp_support.dir/table.cc.o"
  "CMakeFiles/icp_support.dir/table.cc.o.d"
  "libicp_support.a"
  "libicp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
