/**
 * @file
 * A work-stealing-lite thread pool for the per-function pipeline
 * stages. Fixed worker count, a shared task queue, and self-
 * scheduling parallelFor/parallelMap helpers: workers (and the
 * calling thread, which always participates) claim indices from an
 * atomic counter, so load balances like work stealing without
 * per-worker deques. Results land in index-addressed slots, making
 * output ordering deterministic regardless of which thread ran
 * which index; the first exception (by index) is rethrown on the
 * caller.
 */

#ifndef ICP_SUPPORT_THREAD_POOL_HH
#define ICP_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace icp
{

/**
 * Resolve a user-facing thread-count option: 0 means "one per
 * hardware thread", anything else is taken literally.
 */
unsigned effectiveThreads(unsigned requested);

class ThreadPool
{
  public:
    /** Spawn @p workers persistent worker threads (may be 0). */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-wide pool used by the rewriting pipeline. Sized to
     * the hardware; per-call parallelism is capped by the
     * @c max_parallel argument of parallelFor, so a stage requesting
     * fewer threads never fans out wider.
     */
    static ThreadPool &shared();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run fn(0) .. fn(n-1), at most @p max_parallel indices in
     * flight. The caller participates, so max_parallel = 1 (or an
     * empty pool) degenerates to a plain serial loop on the calling
     * thread — the exact pre-pool behavior. Blocks until every
     * index completed; rethrows the lowest-index exception.
     */
    void parallelFor(std::size_t n, unsigned max_parallel,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Enqueue one fire-and-forget task for a worker to run. With no
     * workers the task runs inline on the calling thread. The caller
     * owns completion tracking (the serve daemon counts in-flight
     * connections itself); exceptions must not escape @p task.
     */
    void submit(std::function<void()> task);

    /**
     * parallelFor producing one R per index, in index order. R must
     * be default-constructible and movable.
     */
    template <typename R>
    std::vector<R>
    parallelMap(std::size_t n, unsigned max_parallel,
                const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> out(n);
        parallelFor(n, max_parallel, [&](std::size_t i) {
            out[i] = fn(i);
        });
        return out;
    }

  private:
    struct Job;

    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace icp

#endif // ICP_SUPPORT_THREAD_POOL_HH
