/**
 * @file
 * Relocation-engine unit tests on hand-built functions: RA-map pair
 * recording, veneers for out-of-range returns to original space,
 * fall-through repair under block reordering, jump-table clone
 * contents, and aarch64 entry widening.
 */

#include <gtest/gtest.h>

#include "analysis/builder.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/engine.hh"

using namespace icp;

namespace
{

/** Decode the instruction stream of an engine result. */
std::vector<Instruction>
decodeAll(const ArchInfo &arch, const std::vector<std::uint8_t> &bytes,
          Addr base)
{
    std::vector<Instruction> out;
    Addr at = base;
    while (at < base + bytes.size()) {
        Instruction in;
        if (!arch.codec->decode(bytes.data() + (at - base),
                                bytes.size() - (at - base), at, in))
            break;
        out.push_back(in);
        at += in.length;
    }
    return out;
}

unsigned
countOp(const std::vector<Instruction> &insns, Opcode op)
{
    unsigned n = 0;
    for (const auto &in : insns)
        n += in.op == op;
    return n;
}

EngineConfig
baseConfig(const BinaryImage &img)
{
    EngineConfig config;
    config.mode = RewriteMode::jt;
    config.instrBase = img.highWaterMark(4096);
    config.newRodataBase = config.instrBase + 0x400000;
    return config;
}

std::set<Addr>
allFunctions(const CfgModule &cfg)
{
    std::set<Addr> all;
    for (const auto &[entry, func] : cfg.functions) {
        if (func.instrumentable())
            all.insert(entry);
    }
    return all;
}

} // namespace

TEST(Engine, RaPairsCoverCallsAndThrows)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const EngineResult result = relocateFunctions(
        cfg, allFunctions(cfg), baseConfig(img));

    // Count call sites + throw sites in the CFG; every one must
    // have an RA pair, keyed at a relocated address and mapping to
    // an original address inside the owning function.
    unsigned expected = 0;
    for (const auto &[entry, func] : cfg.functions) {
        for (const auto &[start, block] : func.blocks) {
            for (const auto &in : block.insns) {
                expected += isCall(in.op) || in.op == Opcode::Throw;
            }
        }
    }
    EXPECT_EQ(result.raPairs.size(), expected);
    for (const auto &[reloc, orig] : result.raPairs) {
        EXPECT_GE(reloc, baseConfig(img).instrBase);
        EXPECT_NE(img.functionContaining(orig), nullptr);
    }
}

TEST(Engine, CallEmulationEmitsNoRaPairs)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    EngineConfig config = baseConfig(img);
    config.callEmulation = true;
    const EngineResult result =
        relocateFunctions(cfg, allFunctions(cfg), config);
    EXPECT_TRUE(result.raPairs.empty());

    // Emulated calls materialize return addresses pc-relatively:
    // Lea + Push replace the Call on x64.
    const auto insns = decodeAll(ArchInfo::get(Arch::x64),
                                 result.instrBytes,
                                 config.instrBase);
    EXPECT_EQ(countOp(insns, Opcode::Call), 0u);
    EXPECT_GT(countOp(insns, Opcode::Push), 0u);
    EXPECT_GT(countOp(insns, Opcode::ThrowRa), 0u);
    EXPECT_EQ(countOp(insns, Opcode::Throw), 0u);
}

TEST(Engine, VeneersForFarReturnsToOriginalSpace)
{
    // ppc64le with a 40 MB rodata blob: calls from .instr back to
    // non-relocated functions exceed ±32 MB and need r13 veneers.
    const auto suite = specCpuSuite(Arch::ppc64le, false);
    const BinaryImage img = compileProgram(suite[1]); // big gcc
    AnalysisOptions aopts;
    const CfgModule cfg = buildCfg(img, aopts);

    // Relocate only half the functions so cross-space calls exist.
    std::set<Addr> half;
    for (const auto &[entry, func] : cfg.functions) {
        if (func.instrumentable() && half.size() < 30)
            half.insert(entry);
    }
    const EngineResult result =
        relocateFunctions(cfg, half, baseConfig(img));
    const auto insns = decodeAll(ArchInfo::get(Arch::ppc64le),
                                 result.instrBytes,
                                 baseConfig(img).instrBase);
    // Veneer signature: AddisToc r13 followed by CallInd/JmpInd r13.
    bool veneer = false;
    for (std::size_t i = 0; i + 2 < insns.size(); ++i) {
        if (insns[i].op == Opcode::AddisToc &&
            insns[i].rd == Reg::r13 &&
            insns[i + 1].op == Opcode::AddImm &&
            (insns[i + 2].op == Opcode::CallInd ||
             insns[i + 2].op == Opcode::JmpInd) &&
            insns[i + 2].rs1 == Reg::r13) {
            veneer = true;
            break;
        }
    }
    EXPECT_TRUE(veneer);
}

TEST(Engine, BlockReorderRepairsFallthrough)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    EngineConfig config = baseConfig(img);
    config.blockOrder = OrderPolicy::reversed;
    const EngineResult reversed =
        relocateFunctions(cfg, allFunctions(cfg), config);
    const EngineResult normal = relocateFunctions(
        cfg, allFunctions(cfg), baseConfig(img));

    // Reversal forces explicit jumps where layout fall-through died.
    const auto &arch = ArchInfo::get(Arch::x64);
    const unsigned jumps_reversed = countOp(
        decodeAll(arch, reversed.instrBytes, config.instrBase),
        Opcode::Jmp);
    const unsigned jumps_normal = countOp(
        decodeAll(arch, normal.instrBytes, config.instrBase),
        Opcode::Jmp);
    EXPECT_GT(jumps_reversed, jumps_normal);

    // Entry blocks stay first so callers land correctly.
    for (const auto &[entry, func] : cfg.functions) {
        auto it = reversed.blockMap.find(entry);
        ASSERT_NE(it, reversed.blockMap.end());
        for (const auto &[start, block] : func.blocks) {
            EXPECT_GE(reversed.blockMap.at(start), it->second);
        }
    }
}

TEST(Engine, CloneEntriesResolveToRelocatedBlocks)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    EngineConfig config = baseConfig(img);
    const EngineResult result =
        relocateFunctions(cfg, allFunctions(cfg), config);
    ASSERT_FALSE(result.clones.empty());

    for (const auto &clone : result.clones) {
        const JumpTable &jt = clone.table;
        for (unsigned i = 0; i < jt.entryCount; ++i) {
            const Offset off = clone.cloneAddr -
                               config.newRodataBase +
                               std::uint64_t{i} * clone.entrySize;
            std::int64_t value = 0;
            for (unsigned b = clone.entrySize; b-- > 0;) {
                value = (value << 8) |
                        result.newRodataBytes[off + b];
            }
            if (clone.entrySize == 4)
                value = static_cast<std::int32_t>(value);
            const Addr target = jt.base
                ? static_cast<Addr>(
                      static_cast<std::int64_t>(clone.cloneAddr) +
                      (value << jt.shift))
                : static_cast<Addr>(value);
            // Every real entry lands on a relocated block start.
            bool found = false;
            for (const auto &[orig, reloc] : result.blockMap)
                found |= reloc == target;
            EXPECT_TRUE(found) << "entry " << i;
        }
    }
}

TEST(Engine, A64SubWordTablesWidenAndStaySigned)
{
    auto spec = microProfile(Arch::aarch64, false);
    spec.funcs[1].switches[0].entrySize = 1;
    spec.funcs[1].switches[0].cases = 4;
    const BinaryImage img = compileProgram(spec);
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    EngineConfig config = baseConfig(img);
    const EngineResult result =
        relocateFunctions(cfg, allFunctions(cfg), config);
    ASSERT_EQ(result.clones.size(), 1u);
    EXPECT_TRUE(result.clones[0].widened);
    EXPECT_EQ(result.clones[0].entrySize, 4u);

    // The relocated table-entry load reads 4 signed bytes now.
    const auto insns = decodeAll(ArchInfo::get(Arch::aarch64),
                                 result.instrBytes,
                                 config.instrBase);
    bool widened_load = false;
    for (const auto &in : insns) {
        if (in.op == Opcode::LoadIdx && in.memSize == 4 &&
            in.signedLoad)
            widened_load = true;
    }
    EXPECT_TRUE(widened_load);
}

TEST(Engine, InsnMapCoversEveryRelocatedInstruction)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::ppc64le, false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const EngineResult result = relocateFunctions(
        cfg, allFunctions(cfg), baseConfig(img));
    for (const auto &[entry, func] : cfg.functions) {
        for (const auto &[start, block] : func.blocks) {
            for (const auto &in : block.insns) {
                ASSERT_TRUE(result.insnMap.count(in.addr))
                    << std::hex << in.addr;
            }
            ASSERT_TRUE(result.blockMap.count(start));
            // The block's first instruction relocates at or after
            // the block map entry (snippets come first).
            EXPECT_GE(result.insnMap.at(block.insns[0].addr),
                      result.blockMap.at(start));
        }
    }
}
