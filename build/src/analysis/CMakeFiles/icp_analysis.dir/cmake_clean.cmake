file(REMOVE_RECURSE
  "CMakeFiles/icp_analysis.dir/builder.cc.o"
  "CMakeFiles/icp_analysis.dir/builder.cc.o.d"
  "CMakeFiles/icp_analysis.dir/cfg.cc.o"
  "CMakeFiles/icp_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/icp_analysis.dir/funcptr.cc.o"
  "CMakeFiles/icp_analysis.dir/funcptr.cc.o.d"
  "CMakeFiles/icp_analysis.dir/jump_table.cc.o"
  "CMakeFiles/icp_analysis.dir/jump_table.cc.o.d"
  "CMakeFiles/icp_analysis.dir/liveness.cc.o"
  "CMakeFiles/icp_analysis.dir/liveness.cc.o.d"
  "libicp_analysis.a"
  "libicp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
