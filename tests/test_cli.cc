/**
 * @file
 * End-to-end tests of the `icp` command-line tool, driving the real
 * binary through compile → rewrite → run → inspect round trips.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/stat.h>
#include <sys/wait.h>

#include <gtest/gtest.h>

#ifndef ICP_CLI_PATH
#error "ICP_CLI_PATH must be defined by the build"
#endif

namespace
{

int
run(const std::string &args)
{
    const std::string cmd =
        std::string(ICP_CLI_PATH) + " " + args + " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

/** The tool's actual exit code (run() returns the wait status). */
int
exitCode(const std::string &args)
{
    const int status = run(args);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
capture(const std::string &args)
{
    const std::string cmd = std::string(ICP_CLI_PATH) + " " + args +
                            " 2>/dev/null";
    std::string out;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return out;
    char buf[512];
    while (fgets(buf, sizeof(buf), pipe))
        out += buf;
    pclose(pipe);
    return out;
}

} // namespace

TEST(Cli, CompileRewriteRunRoundTrip)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_a.sbf"), 0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_a.sbf /tmp/icp_cli_b.sbf "
                  "--mode jt --count-blocks --clobber"),
              0);
    // Both images run; the original halts, the rewritten halts with
    // counters.
    EXPECT_EQ(run("run /tmp/icp_cli_a.sbf"), 0);
    const std::string out = capture("run /tmp/icp_cli_b.sbf");
    EXPECT_NE(out.find("halted"), std::string::npos);
    EXPECT_NE(out.find("instrumentation counters"),
              std::string::npos);
}

TEST(Cli, ChecksumsMatchAcrossRewrite)
{
    ASSERT_EQ(run("compile spec3 /tmp/icp_cli_c.sbf"), 0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_c.sbf /tmp/icp_cli_d.sbf "
                  "--mode func-ptr --clobber"),
              0);
    const std::string a = capture("run /tmp/icp_cli_c.sbf");
    const std::string b = capture("run /tmp/icp_cli_d.sbf");
    const auto checksum = [](const std::string &s) {
        const auto pos = s.find("checksum");
        return pos == std::string::npos ? std::string()
                                        : s.substr(pos, 28);
    };
    ASSERT_FALSE(checksum(a).empty());
    EXPECT_EQ(checksum(a), checksum(b));
}

TEST(Cli, PartialRewriteViaOnly)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_e.sbf"), 0);
    const std::string out =
        capture("rewrite /tmp/icp_cli_e.sbf /tmp/icp_cli_f.sbf "
                "--mode jt --only switcher,worker");
    EXPECT_NE(out.find("2/6 functions"), std::string::npos) << out;
    EXPECT_EQ(run("run /tmp/icp_cli_f.sbf"), 0);
}

TEST(Cli, InspectShowsSectionsAndDisassembly)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_g.sbf"), 0);
    const std::string out =
        capture("inspect /tmp/icp_cli_g.sbf switcher");
    EXPECT_NE(out.find(".text"), std::string::npos);
    EXPECT_NE(out.find("<switcher>"), std::string::npos);
    EXPECT_NE(out.find("jmpind"), std::string::npos);
}

TEST(Cli, GoProfileRunsWithGc)
{
    ASSERT_EQ(run("compile docker /tmp/icp_cli_h.sbf"), 0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_h.sbf /tmp/icp_cli_i.sbf "
                  "--mode jt --clobber"),
              0);
    const std::string out =
        capture("run /tmp/icp_cli_i.sbf --gc 64");
    EXPECT_NE(out.find("halted"), std::string::npos);
    EXPECT_NE(out.find("gc walks"), std::string::npos);
}

TEST(Cli, BadUsageFailsCleanly)
{
    EXPECT_NE(run(""), 0);
    EXPECT_NE(run("frobnicate"), 0);
    EXPECT_NE(run("compile nosuchprofile /tmp/x.sbf"), 0);
    EXPECT_NE(run("run /tmp/definitely_missing.sbf"), 0);
}

TEST(Cli, LintCleanImageExitsZero)
{
    // Each lint test compiles to its own path: ctest runs these in
    // parallel, and sharing a file races lint against recompilation.
    ASSERT_EQ(run("compile micro /tmp/icp_cli_lint_a.sbf --pie"), 0);
    EXPECT_EQ(exitCode("lint /tmp/icp_cli_lint_a.sbf --mode func-ptr "
                       "--count-blocks"),
              0);
    const std::string out =
        capture("lint /tmp/icp_cli_lint_a.sbf --mode func-ptr");
    EXPECT_NE(out.find("lint: clean"), std::string::npos) << out;
    EXPECT_NE(out.find("checked:"), std::string::npos);
}

TEST(Cli, LintInjectedDefectExitsTwo)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_lint_b.sbf --pie"), 0);
    EXPECT_EQ(exitCode("lint /tmp/icp_cli_lint_b.sbf --mode func-ptr "
                       "--inject tramp-target"),
              2);
    const std::string out =
        capture("lint /tmp/icp_cli_lint_b.sbf --mode func-ptr "
                "--inject tramp-target");
    EXPECT_NE(out.find("tramp-target"), std::string::npos) << out;
    EXPECT_NE(out.find("lint: FAIL"), std::string::npos);
}

TEST(Cli, LintJsonIsMachineReadable)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_lint_c.sbf --pie"), 0);
    const std::string clean =
        capture("lint /tmp/icp_cli_lint_c.sbf --mode jt --json");
    EXPECT_NE(clean.find("\"clean\": true"), std::string::npos)
        << clean;
    EXPECT_NE(clean.find("\"findings\": ["), std::string::npos);

    const std::string dirty =
        capture("lint /tmp/icp_cli_lint_c.sbf --mode jt --json "
                "--inject double-patch");
    EXPECT_NE(dirty.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(dirty.find("\"rule\": \"patch-overlap\""),
              std::string::npos);
}

TEST(Cli, LintFailOnThreshold)
{
    // Trap-producing config: warnings only, so the default error
    // threshold passes and --fail-on warning fails.
    ASSERT_EQ(run("compile micro /tmp/icp_cli_trap.sbf "
                  "--arch x64 --pie"),
              0);
    const std::string args = "lint /tmp/icp_cli_trap.sbf --mode jt "
                             "--no-placement --no-multihop";
    EXPECT_EQ(exitCode(args), 0);
    EXPECT_EQ(exitCode(args + " --fail-on warning"), 2);
}

TEST(Cli, LintMalformedContainerReportsRule)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_m.sbf"), 0);
    ASSERT_EQ(std::system("head -c 50 /tmp/icp_cli_m.sbf > "
                          "/tmp/icp_cli_trunc.sbf"),
              0);
    EXPECT_EQ(exitCode("lint /tmp/icp_cli_trunc.sbf"), 2);
    const std::string out = capture("lint /tmp/icp_cli_trunc.sbf");
    EXPECT_NE(out.find("sbf-truncated"), std::string::npos) << out;

    // Non-lint commands fail with the same structured rule id.
    EXPECT_EQ(exitCode("inspect /tmp/icp_cli_trunc.sbf"), 1);
}

TEST(Cli, RewriteWithLintGate)
{
    ASSERT_EQ(run("compile spec1 /tmp/icp_cli_rl.sbf"), 0);
    EXPECT_EQ(exitCode("rewrite /tmp/icp_cli_rl.sbf "
                       "/tmp/icp_cli_rl_out.sbf --mode jt --lint"),
              0);
    const std::string out =
        capture("rewrite /tmp/icp_cli_rl.sbf /tmp/icp_cli_rl_out.sbf "
                "--mode jt --lint");
    EXPECT_NE(out.find("lint: clean"), std::string::npos) << out;
}

TEST(Cli, LintRulesListsRegistry)
{
    const std::string out = capture("lint --rules");
    EXPECT_NE(out.find("tramp-target"), std::string::npos);
    EXPECT_NE(out.find("jt-clone-bounds"), std::string::npos);
    EXPECT_NE(out.find("addr-map-round-trip"), std::string::npos);
}

TEST(Cli, RewriteRepairFixesInjectedDefect)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_rep.sbf --pie"), 0);
    // Without repair, the injected defect gates the rewrite.
    EXPECT_EQ(exitCode("rewrite /tmp/icp_cli_rep.sbf "
                       "/tmp/icp_cli_rep_out.sbf --mode func-ptr "
                       "--count-blocks --inject tramp-chain --lint"),
              2);
    // --repair loops rewrite -> lint -> repair to a clean image.
    const std::string args =
        "rewrite /tmp/icp_cli_rep.sbf /tmp/icp_cli_rep_out.sbf "
        "--mode func-ptr --count-blocks --inject tramp-chain "
        "--lint --repair";
    EXPECT_EQ(exitCode(args), 0);
    const std::string out = capture(args);
    EXPECT_NE(out.find("repair:"), std::string::npos) << out;
    EXPECT_NE(out.find("converged"), std::string::npos) << out;
    EXPECT_NE(out.find("lint: clean"), std::string::npos) << out;
    // The repaired output lints clean through the session path too.
    EXPECT_EQ(exitCode("rewrite /tmp/icp_cli_rep.sbf "
                       "/tmp/icp_cli_rep2_out.sbf --mode func-ptr "
                       "--count-blocks --repair=3"),
              0);
}

TEST(Cli, LintDiffReportsRegressions)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_diff_a.sbf --pie"), 0);
    ASSERT_EQ(run("compile micro /tmp/icp_cli_diff_b.sbf --pie"), 0);
    // Identical inputs diff clean, text and JSON.
    const std::string args = "lint --diff /tmp/icp_cli_diff_a.sbf "
                             "/tmp/icp_cli_diff_b.sbf --mode jt";
    EXPECT_EQ(exitCode(args), 0);
    const std::string out = capture(args);
    EXPECT_NE(out.find("lint-diff: 0 new"), std::string::npos)
        << out;
    const std::string json = capture(args + " --json");
    EXPECT_NE(json.find("\"new_errors\": 0"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"functions\": ["), std::string::npos);

    // Unreadable inputs are operational errors, not findings.
    EXPECT_EQ(exitCode("lint --diff /tmp/icp_cli_diff_a.sbf "
                       "/tmp/icp_cli_nonexistent.sbf"),
              1);
}

TEST(Cli, LintTimingShowsStageSplit)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_lt.sbf --pie"), 0);
    const std::string out = capture(
        "lint /tmp/icp_cli_lt.sbf --mode func-ptr --count-blocks "
        "--threads 2 --timing");
    EXPECT_NE(out.find("lint.chains"), std::string::npos) << out;
    EXPECT_NE(out.find("lint.ptrs"), std::string::npos) << out;
}

TEST(CliCacheFile, WarmRunReportsReuseAndMatchesColdOutput)
{
    std::remove("/tmp/icp_cli_cache.icpc");
    ASSERT_EQ(run("compile micro /tmp/icp_cli_cf.sbf"), 0);
    const std::string cold = capture(
        "rewrite /tmp/icp_cli_cf.sbf /tmp/icp_cli_cf_out1.sbf "
        "--cache-file /tmp/icp_cli_cache.icpc");
    EXPECT_NE(cold.find("analysis cache:"), std::string::npos)
        << cold;

    // Second invocation = fresh process: everything reused from disk.
    const std::string warm = capture(
        "rewrite /tmp/icp_cli_cf.sbf /tmp/icp_cli_cf_out2.sbf "
        "--cache-file=/tmp/icp_cli_cache.icpc");
    EXPECT_NE(warm.find(" reused (100.0%)"), std::string::npos)
        << warm;

    EXPECT_EQ(exitCode("run /tmp/icp_cli_cf_out1.sbf"), 0);
    const int cmp = std::system(
        "cmp -s /tmp/icp_cli_cf_out1.sbf /tmp/icp_cli_cf_out2.sbf");
    EXPECT_EQ(WEXITSTATUS(cmp), 0)
        << "warm-cache rewrite output differs from cold";
}

TEST(CliCacheFile, CorruptCacheFileDegradesToColdRun)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_cc.sbf"), 0);
    ASSERT_EQ(std::system("head -c 200 /dev/urandom > "
                          "/tmp/icp_cli_corrupt.icpc"),
              0);
    EXPECT_EQ(exitCode("rewrite /tmp/icp_cli_cc.sbf "
                       "/tmp/icp_cli_cc_out.sbf "
                       "--cache-file /tmp/icp_cli_corrupt.icpc"),
              0);
    ASSERT_EQ(run("compile micro /tmp/icp_cli_cc2.sbf"), 0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_cc2.sbf "
                  "/tmp/icp_cli_cc_ref.sbf"),
              0);
    const int cmp = std::system(
        "cmp -s /tmp/icp_cli_cc_out.sbf /tmp/icp_cli_cc_ref.sbf");
    EXPECT_EQ(WEXITSTATUS(cmp), 0)
        << "corrupt cache changed the rewrite output";
}

TEST(CliCacheFile, ConcurrentWritersWithDisjointSetsMerge)
{
    // Two processes race their saves into one cache file; the
    // advisory lock + merge-on-save must leave both entry sets
    // loadable and the file verifiably intact.
    std::remove("/tmp/icp_cli_ccw.icpc");
    ASSERT_EQ(run("compile micro /tmp/icp_cli_ccw_a.sbf"), 0);
    ASSERT_EQ(run("compile spec1 /tmp/icp_cli_ccw_b.sbf"), 0);
    const std::string both =
        std::string("( ") + ICP_CLI_PATH +
        " rewrite /tmp/icp_cli_ccw_a.sbf /tmp/icp_cli_ccw_a1.sbf "
        "--cache-file /tmp/icp_cli_ccw.icpc & " +
        ICP_CLI_PATH +
        " rewrite /tmp/icp_cli_ccw_b.sbf /tmp/icp_cli_ccw_b1.sbf "
        "--cache-file /tmp/icp_cli_ccw.icpc & wait ) "
        "> /dev/null 2>&1";
    ASSERT_EQ(std::system(both.c_str()), 0);

    EXPECT_EQ(exitCode("cache verify /tmp/icp_cli_ccw.icpc"), 0);

    // Both shards' entries are loadable: each warm rerun reuses
    // everything and reproduces its cold output.
    const std::string warm_a = capture(
        "rewrite /tmp/icp_cli_ccw_a.sbf /tmp/icp_cli_ccw_a2.sbf "
        "--cache-file /tmp/icp_cli_ccw.icpc");
    EXPECT_NE(warm_a.find(" reused (100.0%)"), std::string::npos)
        << warm_a;
    const std::string warm_b = capture(
        "rewrite /tmp/icp_cli_ccw_b.sbf /tmp/icp_cli_ccw_b2.sbf "
        "--cache-file /tmp/icp_cli_ccw.icpc");
    EXPECT_NE(warm_b.find(" reused (100.0%)"), std::string::npos)
        << warm_b;
    EXPECT_EQ(WEXITSTATUS(std::system(
                  "cmp -s /tmp/icp_cli_ccw_a1.sbf "
                  "/tmp/icp_cli_ccw_a2.sbf")),
              0);
    EXPECT_EQ(WEXITSTATUS(std::system(
                  "cmp -s /tmp/icp_cli_ccw_b1.sbf "
                  "/tmp/icp_cli_ccw_b2.sbf")),
              0);
}

TEST(CliCacheFile, ConcurrentWritersWithOverlappingSetsMerge)
{
    // Same workload from two processes at once: identical keys race,
    // the winner's entries land, and nothing corrupts.
    std::remove("/tmp/icp_cli_cow.icpc");
    ASSERT_EQ(run("compile micro /tmp/icp_cli_cow.sbf"), 0);
    const std::string both =
        std::string("( ") + ICP_CLI_PATH +
        " rewrite /tmp/icp_cli_cow.sbf /tmp/icp_cli_cow_1.sbf "
        "--cache-file /tmp/icp_cli_cow.icpc & " +
        ICP_CLI_PATH +
        " rewrite /tmp/icp_cli_cow.sbf /tmp/icp_cli_cow_2.sbf "
        "--cache-file /tmp/icp_cli_cow.icpc & wait ) "
        "> /dev/null 2>&1";
    ASSERT_EQ(std::system(both.c_str()), 0);

    EXPECT_EQ(exitCode("cache verify /tmp/icp_cli_cow.icpc"), 0);
    const std::string warm = capture(
        "rewrite /tmp/icp_cli_cow.sbf /tmp/icp_cli_cow_3.sbf "
        "--cache-file /tmp/icp_cli_cow.icpc");
    EXPECT_NE(warm.find(" reused (100.0%)"), std::string::npos)
        << warm;
    EXPECT_EQ(WEXITSTATUS(std::system(
                  "cmp -s /tmp/icp_cli_cow_1.sbf "
                  "/tmp/icp_cli_cow_3.sbf")),
              0);
}

TEST(CliCache, InfoVerifyCompactRoundTrip)
{
    std::remove("/tmp/icp_cli_cmd.icpc");
    ASSERT_EQ(run("compile micro /tmp/icp_cli_cmd_a.sbf"), 0);
    ASSERT_EQ(run("compile spec1 /tmp/icp_cli_cmd_b.sbf"), 0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_cmd_a.sbf "
                  "/tmp/icp_cli_cmd_a1.sbf "
                  "--cache-file /tmp/icp_cli_cmd.icpc"),
              0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_cmd_b.sbf "
                  "/tmp/icp_cli_cmd_b1.sbf "
                  "--cache-file /tmp/icp_cli_cmd.icpc"),
              0);

    const std::string info = capture("cache info /tmp/icp_cli_cmd.icpc");
    EXPECT_NE(info.find("v4"), std::string::npos) << info;
    EXPECT_NE(info.find("2 segments"), std::string::npos) << info;
    // Per-kind breakdown and the sharing stats are part of the
    // output contract.
    EXPECT_NE(info.find("function:"), std::string::npos) << info;
    EXPECT_NE(info.find("data read-set:"), std::string::npos) << info;
    EXPECT_NE(info.find("distinct keys"), std::string::npos) << info;
    EXPECT_EQ(exitCode("cache verify /tmp/icp_cli_cmd.icpc"), 0);

    const std::string compacted = capture(
        "cache compact /tmp/icp_cli_cmd.icpc --max-bytes 8192");
    EXPECT_NE(compacted.find("evicted"), std::string::npos)
        << compacted;
    const std::string after =
        capture("cache info /tmp/icp_cli_cmd.icpc");
    EXPECT_NE(after.find("1 segment"), std::string::npos) << after;
    EXPECT_EQ(exitCode("cache verify /tmp/icp_cli_cmd.icpc"), 0);

    // Operational errors: missing file and bad actions are both
    // exit 1 (usage goes to stderr; exit 2 is reserved for lint's
    // findings-reached-fail-on contract).
    EXPECT_EQ(exitCode("cache info /tmp/definitely_missing.icpc"), 1);
    EXPECT_EQ(exitCode("cache frobnicate /tmp/icp_cli_cmd.icpc"), 1);
}

TEST(CliCache, RewriteHonorsCacheMaxBytes)
{
    std::remove("/tmp/icp_cli_cap.icpc");
    ASSERT_EQ(run("compile micro /tmp/icp_cli_cap_a.sbf"), 0);
    ASSERT_EQ(run("compile spec1 /tmp/icp_cli_cap_b.sbf"), 0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_cap_a.sbf "
                  "/tmp/icp_cli_cap_a1.sbf "
                  "--cache-file /tmp/icp_cli_cap.icpc"),
              0);
    ASSERT_EQ(run("rewrite /tmp/icp_cli_cap_b.sbf "
                  "/tmp/icp_cli_cap_b1.sbf "
                  "--cache-file /tmp/icp_cli_cap.icpc "
                  "--cache-max-bytes 8192"),
              0);
    const std::string info =
        capture("cache info /tmp/icp_cli_cap.icpc");
    EXPECT_NE(info.find("v4"), std::string::npos) << info;
    // The capped save compacted the file back under the limit.
    struct stat st;
    ASSERT_EQ(stat("/tmp/icp_cli_cap.icpc", &st), 0);
    EXPECT_LE(st.st_size, 8192);
    EXPECT_EQ(exitCode("cache verify /tmp/icp_cli_cap.icpc"), 0);
}

TEST(CliLintBaseline, DiffAgainstSavedJsonReport)
{
    ASSERT_EQ(run("compile micro /tmp/icp_cli_lb.sbf"), 0);
    const std::string report =
        capture("lint /tmp/icp_cli_lb.sbf --json");
    ASSERT_FALSE(report.empty());
    {
        FILE *f = fopen("/tmp/icp_cli_lb_baseline.json", "w");
        ASSERT_NE(f, nullptr);
        fputs(report.c_str(), f);
        fclose(f);
    }

    // Same input vs its own saved report: no regressions, exit 0.
    EXPECT_EQ(exitCode("lint --diff /tmp/icp_cli_lb_baseline.json "
                       "/tmp/icp_cli_lb.sbf"),
              0);

    // A planted defect must regress against the baseline: exit 2.
    EXPECT_EQ(exitCode("lint --diff /tmp/icp_cli_lb_baseline.json "
                       "/tmp/icp_cli_lb.sbf --inject tramp-target"),
              2);

    // Garbage baseline is an operational error: exit 1.
    ASSERT_EQ(std::system("echo '{\"nope\": 1}' > "
                          "/tmp/icp_cli_lb_bad.json"),
              0);
    EXPECT_EQ(exitCode("lint --diff /tmp/icp_cli_lb_bad.json "
                       "/tmp/icp_cli_lb.sbf"),
              1);
}
