file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_trampolines.dir/bench_table2_trampolines.cc.o"
  "CMakeFiles/bench_table2_trampolines.dir/bench_table2_trampolines.cc.o.d"
  "bench_table2_trampolines"
  "bench_table2_trampolines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_trampolines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
