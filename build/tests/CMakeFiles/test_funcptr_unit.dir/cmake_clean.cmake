file(REMOVE_RECURSE
  "CMakeFiles/test_funcptr_unit.dir/test_funcptr_unit.cc.o"
  "CMakeFiles/test_funcptr_unit.dir/test_funcptr_unit.cc.o.d"
  "test_funcptr_unit"
  "test_funcptr_unit.pdb"
  "test_funcptr_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_funcptr_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
