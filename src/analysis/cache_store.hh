/**
 * @file
 * On-disk persistence of the AnalysisCache: a versioned, per-entry
 * checksummed binary serialization of memoized per-function analysis
 * results (CFG blocks/edges with decoded instructions, jump-table
 * solutions, liveness summaries), keyed by Function::cacheKey and
 * tagged with the ISA they were built for. This turns the warm-cache
 * speedup of repeat rewrites into a cross-invocation property — the
 * same shape as Dyninst's serialized parse data — and gives CI a
 * stable artifact to cache between runs.
 *
 * Robustness contract: loading never crashes. A missing file, a
 * foreign magic, a version mismatch, a flipped payload byte, a
 * truncated or torn-off tail, or a wrong-ISA entry each degrade to
 * an empty or partial load, with one structured cache-* issue per
 * problem (the same shape as the SBF container's sbf-* diagnostics).
 * Cache keys are content hashes, so a surviving entry is usable by
 * construction and a dropped entry only costs re-analysis.
 *
 * File layout v4 (all integers little-endian):
 *
 *   u32 magic       "ICPC"
 *   u32 version     cache_file_version
 *   u64 generation  bumped by compaction (segments carry their own)
 *
 * followed by a chain of append-only segments, each one `save()`:
 *
 *   u32 segMagic    "ICPS"
 *   u32 entryCount
 *   u64 bodyBytes   total entry bytes following this header
 *   u64 generation  monotonically increasing across appends
 *   u64 headerHash  FNV-1a over the previous 24 header bytes
 *   entryCount x {
 *     u8  kind      4 = function CFG, 5 = liveness summary,
 *                   6 = data read-set (all position-independent;
 *                   1-3 are the absolute-form v1-v3 equivalents,
 *                   recognized but never indexed)
 *     u8  arch      Arch enum value
 *     u64 key       Function::cacheKey the entry memoizes
 *     u32 payloadLen
 *     u64 payloadHash   FNV-1a over the payload bytes
 *     u8  payload[payloadLen]
 *   }
 *
 * Version 4 makes entries position-independent: keys are content
 * addresses (no entry address, no symbol name — see cache.hh) and
 * every absolute address in a payload is stored relative to the
 * entry the function was analyzed at, with that original entry (and
 * for functions the analysis-time `tocBase - entry` offset) kept as
 * payload metadata, so a lookup from a *different* binary sharing
 * the code bytes rebases the entry to its own addresses. The v4
 * payload kinds are new numbers (4/5/6): the absolute-form v1-v3
 * kinds (1/2/3) remain self-describing in old files and degrade to
 * misses at load — decoding them under the v4 contract would rebase
 * absolute addresses and corrupt them, and their keys were computed
 * under the old address-folding scheme anyway, so they can never
 * match a v4 lookup. v1-v3 files therefore still *load* (per-entry
 * degradation with one summarizing `cache-legacy` info issue, never
 * a crash) and are rewritten as v4 by the next save. Forward
 * compatibility is structural: an *unknown* entry kind is skipped
 * with a `cache-skip` info diagnostic — a reader built before a
 * kind was introduced tolerates files that contain it.
 *
 * load() maps the file (zero-copy) and only walks entry headers; a
 * payload's checksum is verified and its bytes deserialized lazily
 * on first cache lookup, so a warm rewrite touching k functions pays
 * O(k) payload work, not O(file). save() appends one segment holding only the entries the
 * file does not already contain (a pure-warm run appends nothing and
 * leaves the file untouched); concurrent writers serialize on an
 * advisory `<path>.lock` flock and re-scan the file's key set under
 * the lock before appending, so parallel CI shards merge instead of
 * clobbering. A torn final segment (a writer died mid-append) is
 * salvaged entry-by-entry at load and repaired by the next save,
 * which falls back to a full atomic rewrite (tmp + rename, keeping
 * live mmaps valid on the old inode). Version-1 files (one unsegmented
 * whole-file snapshot) load transparently read-only with a
 * `cache-migrated` info diagnostic; the next save writes v2.
 *
 * Invalidation: a key covers the function bytes, the analysis
 * options, and the data-section layout (see imageCacheSeed) — but
 * not data contents. A code edit changes the key, so the stale entry
 * is never looked up again; a data edit keeps the key, and the
 * consumer (buildCfg) rejects the hit when the entry's recorded data
 * read-set no longer hashes clean against the image. save() appends
 * replacement function+deps entries when the in-memory read-set
 * disagrees with the file's (load() lets the newest occurrence of a
 * key win), so a warm file converges after data edits too.
 */

#ifndef ICP_ANALYSIS_CACHE_STORE_HH
#define ICP_ANALYSIS_CACHE_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace icp
{

constexpr std::uint32_t cache_file_magic = 0x43504349;    // "ICPC"
constexpr std::uint32_t cache_segment_magic = 0x53504349; // "ICPS"
constexpr std::uint32_t cache_file_version = 4;

/** Oldest file version load() still reads (v1: whole-file snapshot). */
constexpr std::uint32_t cache_file_min_version = 1;

/** Byte sizes of the fixed-layout records above. */
constexpr std::size_t cache_file_header_bytes = 16;
constexpr std::size_t cache_segment_header_bytes = 32;
constexpr std::size_t cache_entry_header_bytes = 22;
/** The v1 header (magic, version, entryCount) load() still reads. */
constexpr std::size_t cache_v1_header_bytes = 12;

/** One structured problem found while loading a cache file. */
struct CacheFileIssue
{
    std::string rule;       ///< "cache-magic", "cache-torn", ...
    std::size_t offset = 0; ///< byte offset into the file
    std::string message;
};

/** Outcome of AnalysisCache::load(): what survived, what did not. */
struct CacheLoadReport
{
    /** File existed and was readable (false is not an error). */
    bool fileRead = false;

    /** Format version of the file that was read (0 = unreadable). */
    std::uint32_t fileVersion = 0;

    /** Complete segments in the file (0 for v1 files). */
    unsigned segments = 0;

    /** File bytes mapped for lazy deserialization. */
    std::uint64_t bytesMapped = 0;

    /**
     * Entries indexed for lazy deserialization (headers verified;
     * checksum check and payload decode deferred to first lookup).
     */
    unsigned loadedFunctions = 0;
    unsigned loadedLiveness = 0;
    unsigned loadedDataDeps = 0;

    /** Entries present in the file but rejected (one issue each). */
    unsigned droppedEntries = 0;

    /** Unknown-kind entries tolerated (forward compat, info issue). */
    unsigned skippedUnknown = 0;

    /**
     * Absolute-form v1-v3 entries recognized but not indexed: their
     * addresses cannot be rebased and their keys predate the
     * content-addressed scheme, so they degrade to misses.
     */
    unsigned skippedLegacy = 0;

    /** Keys already in memory; the in-memory entry won. */
    unsigned skippedExisting = 0;

    std::vector<CacheFileIssue> issues;

    bool clean() const { return issues.empty(); }

    unsigned
    loadedEntries() const
    {
        return loadedFunctions + loadedLiveness + loadedDataDeps;
    }
};

/** Header-walk summary of a cache file (`icp cache info`). */
struct CacheFileInfo
{
    bool fileRead = false;
    std::uint32_t version = 0;
    std::uint64_t generation = 0; ///< newest segment generation
    std::uint64_t fileBytes = 0;
    unsigned segments = 0;
    unsigned functionEntries = 0;
    unsigned livenessEntries = 0;
    unsigned dataDepsEntries = 0;
    unsigned legacyEntries = 0; ///< absolute-form v1-v3 kinds
    unsigned otherEntries = 0;  ///< unknown kinds (forward compat)
    std::uint64_t payloadBytes = 0;

    /** Per-kind payload bytes (`icp cache info` breakdown). */
    std::uint64_t functionPayloadBytes = 0;
    std::uint64_t livenessPayloadBytes = 0;
    std::uint64_t dataDepsPayloadBytes = 0;

    /**
     * Sharing stats: with content-addressed keys, every binary whose
     * functions share code collapses onto the same (kind, key)
     * pairs. distinctKeys < total entries means append-path
     * duplicates (replacement appends); distinctPayloads <
     * distinctKeys means byte-identical payloads stored under
     * several keys (near-miss dedup headroom).
     */
    unsigned distinctKeys = 0;     ///< unique (kind, key) pairs
    unsigned distinctPayloads = 0; ///< unique payload hashes

    std::vector<CacheFileIssue> issues;
};

/**
 * Walk a cache file's headers without decoding payloads: version,
 * segment chain, per-kind entry counts, structural issues. Cheap —
 * suitable for `icp cache info` and the save-time merge scan.
 */
CacheFileInfo inspectCacheFile(const std::string &path);

/**
 * Eagerly verify a cache file end to end: header chain, per-entry
 * checksums, and a full decode of every payload, without touching
 * the process-wide cache. Every problem is a structured issue on the
 * report (`icp cache verify`).
 */
CacheLoadReport verifyCacheFile(const std::string &path);

/** Outcome of compactCacheFile(). */
struct CacheCompactionResult
{
    bool performed = false; ///< file rewritten (false: no file)
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
    unsigned entriesBefore = 0;
    unsigned entriesKept = 0;
    unsigned entriesEvicted = 0;
};

/**
 * Rewrite @p path as a single-segment v4 file, deduplicating keys
 * and dropping torn tails. When @p max_bytes is non-zero, entries
 * are kept newest-generation-first until the cap: the LRU-ish
 * watermark policy that bounds CI cache growth (`icp cache compact`,
 * RewriteOptions::cacheMaxBytes). Runs under the advisory file lock;
 * the rewrite is atomic (tmp + rename).
 */
bool compactCacheFile(const std::string &path,
                      std::uint64_t max_bytes,
                      CacheCompactionResult &out);

} // namespace icp

#endif // ICP_ANALYSIS_CACHE_STORE_HH
