file(REMOVE_RECURSE
  "CMakeFiles/block_counter.dir/block_counter.cpp.o"
  "CMakeFiles/block_counter.dir/block_counter.cpp.o.d"
  "block_counter"
  "block_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
