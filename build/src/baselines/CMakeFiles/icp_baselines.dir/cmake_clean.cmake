file(REMOVE_RECURSE
  "CMakeFiles/icp_baselines.dir/boltlike.cc.o"
  "CMakeFiles/icp_baselines.dir/boltlike.cc.o.d"
  "CMakeFiles/icp_baselines.dir/instpatch.cc.o"
  "CMakeFiles/icp_baselines.dir/instpatch.cc.o.d"
  "CMakeFiles/icp_baselines.dir/irlower.cc.o"
  "CMakeFiles/icp_baselines.dir/irlower.cc.o.d"
  "CMakeFiles/icp_baselines.dir/regen_util.cc.o"
  "CMakeFiles/icp_baselines.dir/regen_util.cc.o.d"
  "CMakeFiles/icp_baselines.dir/srbi.cc.o"
  "CMakeFiles/icp_baselines.dir/srbi.cc.o.d"
  "libicp_baselines.a"
  "libicp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
