# Empty compiler generated dependencies file for bench_firefox.
# This may be replaced when dependencies are built.
