#include "harness/experiment.hh"

#include "rewrite/session.hh"
#include "sim/loader.hh"
#include "verify/lint.hh"

namespace icp
{

ToolRun
runBlockLevelExperiment(const BinaryImage &original,
                        RewriteOptions tool_options,
                        Machine::Config machine_cfg)
{
    ToolRun run;

    // One session covers both passes: the CFG is analyzed once and
    // shared (instrumentation/clobber options do not change it).
    RewriteSession session(original);

    // Verification pass: strong test + entry counting.
    RewriteOptions verify_opts = tool_options;
    verify_opts.clobberOriginal = true;
    verify_opts.instrumentation.countFunctionEntries = true;
    verify_opts.instrumentation.countBlocks = true;
    const RewriteResult &verify_rw = session.rewrite(verify_opts);
    const VerifyOutcome verified =
        verifyRewrite(original, verify_rw, machine_cfg);
    if (!verified.pass) {
        run.failReason = verified.reason;
        run.stats = verify_rw.stats;
        run.coverage = verify_rw.stats.coverage();
        if (verify_rw.ok) {
            // Lint the failing artifact anyway: the "lint err"
            // column should show why a buggy tool failed.
            LintOptions lint_opts;
            lint_opts.threads = tool_options.threads;
            const LintReport &lint = session.lint(lint_opts);
            run.lintErrors = lint.countAtLeast(Severity::error);
            run.lintWarnings =
                lint.countAtLeast(Severity::warning) -
                run.lintErrors;
        }
        return run;
    }
    run.goldenRun = verified.golden;

    // Timing pass: empty instrumentation (the paper's overhead
    // methodology), still under the strong test. Invalidates
    // verify_rw, which is no longer referenced.
    RewriteOptions timing_opts = tool_options;
    timing_opts.clobberOriginal = true;
    timing_opts.instrumentation = InstrumentationSpec{};
    const RewriteResult &timing_rw = session.rewrite(timing_opts);
    if (!timing_rw.ok) {
        run.failReason = "timing rewrite failed: " +
                         timing_rw.failReason;
        return run;
    }

    // Static soundness check of the shipped artifact (Table 3's
    // "lint err" column).
    LintOptions lint_opts;
    lint_opts.threads = tool_options.threads;
    const LintReport &lint = session.lint(lint_opts);
    run.lintErrors = lint.countAtLeast(Severity::error);
    run.lintWarnings =
        lint.countAtLeast(Severity::warning) - run.lintErrors;

    auto proc = loadImage(timing_rw.image);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, machine_cfg);
    machine.attachRuntimeLib(&rt);
    run.rewrittenRun = machine.run();
    if (!run.rewrittenRun.halted) {
        run.failReason = "timing run faulted: " +
                         run.rewrittenRun.describe();
        return run;
    }
    if (run.rewrittenRun.checksum != run.goldenRun.checksum) {
        run.failReason = "timing run checksum mismatch";
        return run;
    }

    run.pass = true;
    run.stats = timing_rw.stats;
    run.coverage = timing_rw.stats.coverage();
    run.sizeIncrease = timing_rw.stats.sizeIncrease();
    run.overhead =
        static_cast<double>(run.rewrittenRun.cycles) /
            static_cast<double>(run.goldenRun.cycles) - 1.0;
    return run;
}

} // namespace icp
