/**
 * @file
 * Tests for the stateful RewriteSession API: the rewrite -> lint ->
 * repair loop must fix (or trap-demote) every function-local injected
 * defect within two repair iterations on all three ISAs, re-rewriting
 * only the defective function, re-linting without rebuilding the
 * original CFG, and producing a final image that is byte-identical
 * across thread counts — and identical to a defect-free rewrite.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cache.hh"
#include "analysis/datadeps.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/session.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

BinaryImage
compileMicro(Arch arch, bool pie = true)
{
    return compileProgram(microProfile(arch, pie));
}

unsigned
errorCount(const LintReport &rep)
{
    return rep.countAtLeast(Severity::error);
}

RewriteOptions
baseOptions(InjectDefect defect = InjectDefect::none)
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countBlocks = true;
    opts.injectDefect = defect;
    return opts;
}

std::string
sanitize(std::string s)
{
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

} // namespace

// --- basic lifecycle ------------------------------------------------------

TEST(RewriteSession, AnalyzeRewriteLintLifecycle)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteSession session(img);

    const CfgModule &cfg = session.analyze();
    EXPECT_FALSE(cfg.functions.empty());
    EXPECT_FALSE(session.hasResult());

    const RewriteResult &rw = session.rewrite(baseOptions());
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(session.hasResult());
    // A from-scratch rewrite emits everything and reuses nothing.
    EXPECT_EQ(rw.stats.relocReusedFunctions, 0u);
    EXPECT_EQ(rw.stats.relocEmittedFunctions,
              rw.stats.instrumentedFunctions);
    EXPECT_FALSE(rw.manifest.funcSpans.empty());

    const LintReport &rep = session.lint();
    EXPECT_EQ(errorCount(rep), 0u) << rep.renderText();
    // The session supplied its cached CFG; the verifier never
    // rebuilt the original analysis.
    EXPECT_FALSE(rep.rebuiltOriginalCfg);
}

TEST(RewriteSession, ThinWrapperMatchesSession)
{
    const BinaryImage img = compileMicro(Arch::aarch64);
    const RewriteResult via_free = rewriteBinary(img, baseOptions());
    RewriteSession session(img);
    const RewriteResult &via_session = session.rewrite(baseOptions());
    ASSERT_TRUE(via_free.ok);
    ASSERT_TRUE(via_session.ok);
    EXPECT_EQ(via_free.image.serialize(),
              via_session.image.serialize());
}

// --- repair convergence matrix: arch x function-local defect --------------

struct RepairParam
{
    Arch arch;
    InjectDefect defect;
};

class SessionRepair : public ::testing::TestWithParam<RepairParam>
{
};

std::string
repairName(const ::testing::TestParamInfo<RepairParam> &info)
{
    return sanitize(std::string(archName(info.param.arch)) + "_" +
                    injectDefectName(info.param.defect));
}

TEST_P(SessionRepair, ConvergesWithinTwoIterations)
{
    const auto [arch, defect] = GetParam();
    const BinaryImage img = compileMicro(arch);

    RewriteSession session(img);
    const RewriteResult &rw = session.rewrite(baseOptions(defect));
    ASSERT_TRUE(rw.ok) << rw.failReason;
    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect " << injectDefectName(defect)
                     << " not applicable on " << archName(arch);

    const LintReport &before = session.lint();
    ASSERT_GE(errorCount(before), 1u)
        << "planted defect went undetected";

    const auto outcome = session.repairToFixedPoint(2);
    EXPECT_TRUE(outcome.converged)
        << session.lastReport().renderText();
    EXPECT_EQ(errorCount(session.lastReport()), 0u)
        << session.lastReport().renderText();
    EXPECT_GE(outcome.iterations, 1u);
    EXPECT_LE(outcome.iterations, 2u);
    // One pass clears a transient defect; nothing gets demoted.
    EXPECT_TRUE(outcome.demotedFunctions.empty());

    const RewriteStats &stats = session.lastResult().stats;
    if (!outcome.fullRewriteFallback) {
        // Selective re-rewrite: only the defective functions were
        // re-emitted; everything else was spliced from the previous
        // pass's bytes.
        EXPECT_FALSE(outcome.repairedFunctions.empty());
        EXPECT_EQ(stats.relocEmittedFunctions,
                  outcome.repairedFunctions.size());
        EXPECT_GT(stats.relocReusedFunctions, 0u);
        // The incremental re-lint ran against the session's cached
        // CFG, never the verifier's lazy rebuild.
        EXPECT_FALSE(session.lastReport().rebuiltOriginalCfg);
    }

    // The repaired image is exactly what a defect-free rewrite
    // produces: splicing reused bytes loses nothing.
    RewriteSession clean(img);
    const RewriteResult &clean_rw = clean.rewrite(baseOptions());
    ASSERT_TRUE(clean_rw.ok);
    EXPECT_EQ(session.lastResult().image.serialize(),
              clean_rw.image.serialize())
        << "repaired image diverges from a clean rewrite";
}

std::vector<RepairParam>
functionLocalDefects()
{
    // raMapEntry and cloneBounds corrupt whole sections rather than a
    // function-local site; raMapEntry is covered by the fallback test
    // below.
    static const InjectDefect defects[] = {
        InjectDefect::trampTarget,    InjectDefect::trampRange,
        InjectDefect::trampChain,     InjectDefect::liveScratch,
        InjectDefect::tocScratch,     InjectDefect::staleCloneEntry,
        InjectDefect::doublePatch,    InjectDefect::dropFde,
        InjectDefect::funcPtrStale,
    };
    std::vector<RepairParam> params;
    for (Arch arch : all_arches)
        for (InjectDefect d : defects)
            params.push_back({arch, d});
    return params;
}

INSTANTIATE_TEST_SUITE_P(FunctionLocalDefects, SessionRepair,
                         ::testing::ValuesIn(functionLocalDefects()),
                         repairName);

// --- unattributable findings fall back to a full re-rewrite ---------------

TEST(SessionRepairFallback, RaMapDefectTriggersFullRewrite)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteSession session(img);
    const RewriteResult &rw =
        session.rewrite(baseOptions(InjectDefect::raMapEntry));
    ASSERT_TRUE(rw.ok);
    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "raMapEntry not applicable";
    ASSERT_GE(errorCount(session.lint()), 1u);

    const auto outcome = session.repairToFixedPoint(2);
    EXPECT_TRUE(outcome.converged)
        << session.lastReport().renderText();
    EXPECT_TRUE(outcome.fullRewriteFallback);
    // The fallback pass re-emits everything.
    EXPECT_EQ(session.lastResult().stats.relocReusedFunctions, 0u);
}

// --- persistent defects: trap demotion contains the function --------------

class SessionDemotion : public ::testing::TestWithParam<RepairParam>
{
};

TEST_P(SessionDemotion, PersistentDefectIsTrapDemoted)
{
    const auto [arch, defect] = GetParam();
    const BinaryImage img = compileMicro(arch);

    // First find a victim function the defect applies to.
    RewriteSession session(img);
    const RewriteResult &probe = session.rewrite(baseOptions(defect));
    ASSERT_TRUE(probe.ok);
    if (probe.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect " << injectDefectName(defect)
                     << " not applicable on " << archName(arch);
    std::string victim;
    for (const Diagnostic &d : session.lint().findings) {
        if (d.severity >= Severity::error && !d.function.empty()) {
            victim = d.function;
            break;
        }
    }
    ASSERT_FALSE(victim.empty());

    // Re-plant the defect restricted to the victim and keep it
    // planted across repairs: only trap demotion can converge.
    RewriteOptions opts = baseOptions(defect);
    opts.injectOnlyFunction = victim;
    const RewriteResult &rw = session.rewrite(opts);
    ASSERT_TRUE(rw.ok);
    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect not plantable when restricted to "
                     << victim;
    ASSERT_GE(errorCount(session.lint()), 1u);

    RewriteSession::RepairPolicy policy;
    policy.clearInjectedDefect = false;
    const auto outcome = session.repairToFixedPoint(2, policy);
    EXPECT_TRUE(outcome.converged)
        << session.lastReport().renderText();
    EXPECT_EQ(errorCount(session.lastReport()), 0u);
    EXPECT_EQ(outcome.iterations, 2u);
    ASSERT_EQ(outcome.demotedFunctions.size(), 1u);
    EXPECT_EQ(*outcome.demotedFunctions.begin(), victim);
    // The demoted function runs on always-sound trap trampolines.
    EXPECT_GT(session.lastResult().stats.trapTramps, 0u);
    EXPECT_EQ(session.options().forceTrapFunctions.count(victim), 1u);
}

std::vector<RepairParam>
persistentDefects()
{
    // Byte defects on direct trampolines: plantable on every ISA and
    // neutralized by trap demotion (traps are not direct branches).
    std::vector<RepairParam> params;
    for (Arch arch : all_arches) {
        params.push_back({arch, InjectDefect::trampTarget});
        params.push_back({arch, InjectDefect::trampChain});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(PersistentDefects, SessionDemotion,
                         ::testing::ValuesIn(persistentDefects()),
                         repairName);

// --- determinism across thread counts -------------------------------------

TEST(SessionDeterminism, RepairedImageIdenticalAcrossThreads)
{
    for (Arch arch : all_arches) {
        const BinaryImage img = compileMicro(arch);
        std::vector<std::uint8_t> first;
        std::string first_report;
        for (const unsigned threads : {1u, 4u}) {
            RewriteOptions opts =
                baseOptions(InjectDefect::trampTarget);
            opts.threads = threads;
            RewriteSession session(img);
            const RewriteResult &rw = session.rewrite(opts);
            ASSERT_TRUE(rw.ok);
            if (rw.manifest.injectedRule.empty())
                break; // defect not applicable on this arch
            LintOptions lopts;
            lopts.threads = threads;
            session.lint(lopts);
            const auto outcome = session.repairToFixedPoint(2);
            ASSERT_TRUE(outcome.converged);
            const auto bytes = session.lastResult().image.serialize();
            const std::string report =
                session.lastReport().renderText();
            if (threads == 1) {
                first = bytes;
                first_report = report;
            } else {
                EXPECT_EQ(first, bytes)
                    << archName(arch)
                    << ": repaired image differs across threads";
                EXPECT_EQ(first_report, report) << archName(arch);
            }
        }
    }
}

// --- lint report diffing ---------------------------------------------------

namespace
{

Diagnostic
mkDiag(const char *rule, Severity sev, const std::string &func)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.function = func;
    d.message = "synthetic";
    return d;
}

} // namespace

TEST(LintDiffTest, RegressionsAndResolutionsPerFunction)
{
    LintReport before;
    before.findings.push_back(
        mkDiag("tramp-target", Severity::error, "f1"));
    before.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f2"));

    LintReport after;
    after.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f2"));
    after.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f2"));
    after.findings.push_back(
        mkDiag("jt-clone-target", Severity::error, "f3"));

    const LintDiff diff = diffReports(before, after);
    EXPECT_EQ(diff.newErrors, 1u);   // f3's clone error
    EXPECT_EQ(diff.newWarnings, 1u); // f2's second trap warning
    EXPECT_EQ(diff.resolvedErrors, 1u); // f1's target error
    EXPECT_EQ(diff.resolvedWarnings, 0u);
    EXPECT_TRUE(diff.hasRegressions(Severity::error));

    // Per-function grouping covers every touched function.
    std::set<std::string> funcs;
    for (const auto &fd : diff.functions)
        funcs.insert(fd.function);
    EXPECT_EQ(funcs, (std::set<std::string>{"f1", "f2", "f3"}));

    const std::string text = diff.renderText();
    EXPECT_NE(text.find("lint-diff: 2 new"), std::string::npos)
        << text;
    const std::string json = diff.renderJson();
    EXPECT_NE(json.find("\"new_errors\": 1"), std::string::npos)
        << json;
}

TEST(LintDiffTest, IdenticalReportsDiffEmpty)
{
    LintReport rep;
    rep.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f1"));
    const LintDiff diff = diffReports(rep, rep);
    EXPECT_TRUE(diff.functions.empty());
    EXPECT_FALSE(diff.hasRegressions(Severity::info));
    EXPECT_EQ(diff.newWarnings + diff.resolvedWarnings, 0u);
}

// --- loadInput: input-diff dirty seeding ----------------------------------

namespace
{

/**
 * Deterministically mutate one instruction immediate in place (same
 * encoded length) inside some function of @p img, returning the
 * victim's name. The micro profile is deterministic, so calling this
 * on two separately compiled copies yields identical images.
 */
std::string
mutateOneImmediate(BinaryImage &img)
{
    const Codec &codec = *img.archInfo().codec;
    for (const Symbol *sym : img.functionSymbols()) {
        std::vector<std::uint8_t> body;
        if (!img.readBytes(sym->addr, sym->size, body))
            continue;
        Addr addr = sym->addr;
        std::size_t off = 0;
        while (off < body.size()) {
            Instruction in;
            if (!codec.decode(body.data() + off, body.size() - off,
                              addr, in) ||
                in.length == 0)
                break;
            if (in.op == Opcode::AddImm && in.imm > 1) {
                Instruction edit = in;
                edit.imm = in.imm ^ 1;
                std::vector<std::uint8_t> enc;
                if (codec.encode(edit, addr, enc) &&
                    enc.size() == in.length) {
                    EXPECT_TRUE(img.writeBytes(addr, enc));
                    return sym->name;
                }
            }
            off += in.length;
            addr += in.length;
        }
    }
    return "";
}

} // namespace

class SessionLoadInput : public ::testing::TestWithParam<Arch>
{
};

TEST_P(SessionLoadInput, UnchangedInputKeepsPreviousResult)
{
    const Arch arch = GetParam();
    AnalysisCache::global().clear();
    RewriteSession session(compileMicro(arch));
    const RewriteResult &first = session.rewrite(baseOptions());
    ASSERT_TRUE(first.ok) << first.failReason;
    const std::vector<std::uint8_t> bytes = first.image.serialize();

    // A byte-identical new build: nothing is dirty, the previous
    // result stands untouched.
    const auto out = session.loadInput(compileMicro(arch));
    EXPECT_TRUE(out.incremental);
    EXPECT_TRUE(out.dirtyFunctions.empty());
    EXPECT_GT(out.unchangedFunctions, 0u);
    ASSERT_TRUE(session.hasResult());
    EXPECT_EQ(session.lastResult().image.serialize(), bytes);
}

TEST_P(SessionLoadInput, OneFunctionEditReanalyzesOnlyThatFunction)
{
    const Arch arch = GetParam();
    AnalysisCache::global().clear();

    RewriteSession session(compileMicro(arch));
    const RewriteResult &first = session.rewrite(baseOptions());
    ASSERT_TRUE(first.ok) << first.failReason;
    const unsigned instrumented = first.stats.instrumentedFunctions;
    const std::size_t total =
        session.input().functionSymbols().size();

    BinaryImage edited = compileMicro(arch);
    const std::string victim = mutateOneImmediate(edited);
    ASSERT_FALSE(victim.empty())
        << "no in-place-mutable immediate found";

    const auto pre = AnalysisCache::global().stats();
    const auto out = session.loadInput(std::move(edited));
    const auto post = AnalysisCache::global().stats();

    EXPECT_TRUE(out.incremental);
    ASSERT_EQ(out.dirtyNames.size(), 1u);
    EXPECT_EQ(*out.dirtyNames.begin(), victim);
    EXPECT_EQ(out.unchangedFunctions,
              static_cast<unsigned>(total - 1));

    // Analysis-reuse: exactly the edited function's CFG was rebuilt;
    // every other function hit the AnalysisCache by content key.
    EXPECT_EQ(post.functionMisses - pre.functionMisses, 1u);
    EXPECT_GE(post.functionHits - pre.functionHits, total - 1);

    // Selective re-rewrite: one function re-emitted, the rest
    // spliced verbatim from the previous pass.
    const RewriteStats &stats = session.lastResult().stats;
    EXPECT_EQ(stats.relocEmittedFunctions, 1u);
    EXPECT_EQ(stats.relocReusedFunctions, instrumented - 1);

    // The incremental result is byte-identical to a cold rewrite of
    // the edited input.
    BinaryImage edited_again = compileMicro(arch);
    ASSERT_EQ(mutateOneImmediate(edited_again), victim);
    RewriteSession cold(std::move(edited_again));
    const RewriteResult &cold_rw = cold.rewrite(baseOptions());
    ASSERT_TRUE(cold_rw.ok);
    EXPECT_EQ(session.lastResult().image.serialize(),
              cold_rw.image.serialize());

    // And it still lints clean against the rebuilt CFG.
    EXPECT_EQ(errorCount(session.lint()), 0u)
        << session.lastReport().renderText();
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, SessionLoadInput,
    ::testing::Values(Arch::x64, Arch::ppc64le, Arch::aarch64),
    [](const ::testing::TestParamInfo<Arch> &info) {
        return sanitize(archName(info.param));
    });

TEST(SessionLoadInputFallback, DifferentArchResetsSession)
{
    RewriteSession session(compileMicro(Arch::x64));
    ASSERT_TRUE(session.rewrite(baseOptions()).ok);

    const auto out = session.loadInput(compileMicro(Arch::aarch64));
    EXPECT_FALSE(out.incremental);
    EXPECT_FALSE(session.hasResult());

    // The session stays usable as if freshly constructed.
    const RewriteResult &rw = session.rewrite(baseOptions());
    EXPECT_TRUE(rw.ok) << rw.failReason;
    EXPECT_EQ(rw.stats.relocReusedFunctions, 0u);
}

TEST(SessionLoadInputFallback, DataSectionEditForcesFullRewrite)
{
    RewriteSession session(compileMicro(Arch::x64));
    ASSERT_TRUE(session.rewrite(baseOptions()).ok);

    // Flip one byte of a non-executable section: jump-table data
    // feeds analysis and cloning, so splicing would be unsound.
    BinaryImage edited = compileMicro(Arch::x64);
    bool flipped = false;
    for (Section &sec : edited.sections) {
        if (!sec.executable && !sec.bytes.empty()) {
            sec.bytes[0] ^= 0x01;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped);

    const auto out = session.loadInput(std::move(edited));
    EXPECT_FALSE(out.incremental);
    EXPECT_FALSE(session.hasResult());
}

// --- loadInput: overlap-keyed data-edit invalidation -----------------------

namespace
{

/**
 * Pick a data byte nothing depends on: not in any function's recorded
 * read-set, not under a donated scratch range, a relocation site, or
 * a rewritten function-pointer cell. Scans .rodata backwards (the
 * rodataPadding tail lives there). Returns 0 when none exists.
 */
Addr
findUnreadDataByte(RewriteSession &session)
{
    DepIndex index;
    for (const auto &[entry, func] : session.analyze().functions)
        index.add(entry, func.dataDeps);
    index.build();

    const RewriteManifest &manifest =
        session.lastResult().manifest;
    auto claimed = [&](Addr a) {
        std::set<Addr> owners;
        index.overlapping(a, a + 1, owners);
        if (!owners.empty())
            return true;
        for (const auto &[addr, len] : manifest.scratchRanges)
            if (a >= addr && a < addr + len)
                return true;
        for (const Relocation &rel : session.input().relocs)
            if (a >= rel.site && a < rel.site + 8)
                return true;
        for (const FuncPtrPatch &p : manifest.funcPtrs)
            if (p.kind == FuncPtrPatch::Kind::dataCell &&
                a >= p.site && a < p.site + 8)
                return true;
        return false;
    };

    for (const Section &sec : session.input().sections) {
        if (sec.executable || sec.bytes.empty() ||
            sec.name != ".rodata")
            continue;
        for (std::size_t i = sec.bytes.size(); i-- > 0;) {
            const Addr a = sec.addr + static_cast<Addr>(i);
            if (!claimed(a))
                return a;
        }
    }
    return 0;
}

void
flipImageByte(BinaryImage &img, Addr victim)
{
    for (Section &sec : img.sections) {
        if (!sec.contains(victim) || sec.bytes.empty())
            continue;
        const std::size_t off =
            static_cast<std::size_t>(victim - sec.addr);
        if (off < sec.bytes.size()) {
            sec.bytes[off] ^= 0x5a;
            return;
        }
    }
    FAIL() << "victim byte not backed by file bytes";
}

} // namespace

class SessionDataDeps : public ::testing::TestWithParam<Arch>
{
};

TEST_P(SessionDataDeps, UnreadDataEditSplicesWithZeroDirty)
{
    const Arch arch = GetParam();
    AnalysisCache::global().clear();

    // rodataPadding is a blob no analysis reads — the string-table
    // shape of the paper's data-edit workload.
    ProgramSpec spec = microProfile(arch, /*pie=*/true);
    spec.rodataPadding = 512;

    RewriteSession session(compileProgram(spec));
    ASSERT_TRUE(session.rewrite(baseOptions()).ok);

    const Addr victim = findUnreadDataByte(session);
    ASSERT_NE(victim, 0u) << "no unread data byte in the corpus";

    BinaryImage edited = compileProgram(spec);
    flipImageByte(edited, victim);

    const auto pre = AnalysisCache::global().stats();
    const auto out = session.loadInput(std::move(edited));
    const auto post = AnalysisCache::global().stats();

    // Overlap-keyed invalidation: zero readers, zero re-analysis,
    // zero re-emission — the new data bytes splice into the previous
    // result wholesale.
    EXPECT_TRUE(out.incremental);
    EXPECT_TRUE(out.dirtyFunctions.empty());
    EXPECT_EQ(post.functionMisses - pre.functionMisses, 0u);

    // The splice reproduces a cold rewrite of the edited input byte
    // for byte.
    BinaryImage edited_again = compileProgram(spec);
    flipImageByte(edited_again, victim);
    RewriteSession cold(std::move(edited_again));
    const RewriteResult &cold_rw = cold.rewrite(baseOptions());
    ASSERT_TRUE(cold_rw.ok);
    EXPECT_EQ(session.lastResult().image.serialize(),
              cold_rw.image.serialize());

    EXPECT_EQ(errorCount(session.lint()), 0u)
        << session.lastReport().renderText();
}

TEST_P(SessionDataDeps, JumpTableEditDirtiesExactlyItsReaders)
{
    const Arch arch = GetParam();
    AnalysisCache::global().clear();

    RewriteSession session(compileMicro(arch));
    ASSERT_TRUE(session.rewrite(baseOptions()).ok);

    // Find an out-of-code jump table and redirect one entry onto
    // another (valid table bytes, different target) — the edit only
    // the table's reader may notice.
    const JumpTable *jt = nullptr;
    for (const auto &[entry, func] : session.analyze().functions) {
        (void)entry;
        for (const JumpTable &t : func.jumpTables) {
            if (!t.embeddedInCode && t.targets.size() >= 2 &&
                t.targets[0] != t.targets[1]) {
                jt = &t;
                break;
            }
        }
        if (jt != nullptr)
            break;
    }
    if (jt == nullptr)
        GTEST_SKIP() << "no out-of-code jump table on "
                     << archName(arch);
    const Addr site = jt->tableAddr;
    const unsigned width = jt->entrySize;

    // The expected dirty set: every function whose read-set overlaps
    // the poked entry (computed before the edit invalidates the CFG).
    DepIndex index;
    for (const auto &[entry, func] : session.analyze().functions)
        index.add(entry, func.dataDeps);
    index.build();
    std::set<Addr> expected;
    index.overlapping(site, site + width, expected);
    ASSERT_FALSE(expected.empty())
        << "table bytes missing from every read-set";

    BinaryImage edited = compileMicro(arch);
    std::vector<std::uint8_t> donor;
    ASSERT_TRUE(edited.readBytes(site + width, width, donor));
    ASSERT_TRUE(edited.writeBytes(site, donor));

    const auto out = session.loadInput(std::move(edited));
    EXPECT_TRUE(out.incremental);
    EXPECT_EQ(out.dirtyFunctions, expected);

    // Byte-identity with a cold rewrite of the same edited input.
    BinaryImage edited_again = compileMicro(arch);
    ASSERT_TRUE(edited_again.writeBytes(site, donor));
    RewriteSession cold(std::move(edited_again));
    const RewriteResult &cold_rw = cold.rewrite(baseOptions());
    ASSERT_TRUE(cold_rw.ok);
    EXPECT_EQ(session.lastResult().image.serialize(),
              cold_rw.image.serialize());

    EXPECT_EQ(errorCount(session.lint()), 0u)
        << session.lastReport().renderText();
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, SessionDataDeps,
    ::testing::Values(Arch::x64, Arch::ppc64le, Arch::aarch64),
    [](const ::testing::TestParamInfo<Arch> &info) {
        return sanitize(archName(info.param));
    });

// --- lint report JSON round trip ------------------------------------------

TEST(LintReportJson, RenderParseRoundTripsForDiffing)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteSession session(img);
    ASSERT_TRUE(session.rewrite(baseOptions()).ok);
    const LintReport &report = session.lint();

    const auto parsed = parseLintReportJson(report.renderJson());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->findings.size(), report.findings.size());
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        EXPECT_EQ(parsed->findings[i].rule, report.findings[i].rule);
        EXPECT_EQ(parsed->findings[i].severity,
                  report.findings[i].severity);
        EXPECT_EQ(parsed->findings[i].function,
                  report.findings[i].function);
    }

    // The parsed report is diff-equivalent to the original.
    const LintDiff diff = diffReports(*parsed, report);
    EXPECT_FALSE(diff.hasRegressions(Severity::info));
    EXPECT_TRUE(diff.functions.empty());
}

TEST(LintReportJson, SyntheticFindingsSurviveRoundTrip)
{
    LintReport report;
    Diagnostic d;
    d.rule = "tramp-target";
    d.severity = Severity::error;
    d.function = "needs \"escaping\"\n";
    d.origAddr = 0x401000;
    d.message = "path\\with\\backslashes\tand tabs";
    report.findings.push_back(d);

    const auto parsed = parseLintReportJson(report.renderJson());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->findings.size(), 1u);
    EXPECT_EQ(parsed->findings[0].rule, "tramp-target");
    EXPECT_EQ(parsed->findings[0].function, d.function);
    EXPECT_EQ(parsed->findings[0].origAddr, 0x401000u);
    EXPECT_EQ(parsed->findings[0].message, d.message);
}

TEST(LintReportJson, RejectsNonReportText)
{
    EXPECT_FALSE(parseLintReportJson("").has_value());
    EXPECT_FALSE(parseLintReportJson("not json").has_value());
    EXPECT_FALSE(parseLintReportJson("[1, 2, 3]").has_value());
    EXPECT_FALSE(parseLintReportJson("{\"clean\": true}").has_value());
    EXPECT_FALSE(
        parseLintReportJson("{\"findings\": [{\"rule\": ")
            .has_value());
}
