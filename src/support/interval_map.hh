/**
 * @file
 * An interval map keyed by half-open address ranges [start, end).
 * Used for block lookup by address, jump-table extents, scratch-space
 * bookkeeping, and the runtime return-address map.
 */

#ifndef ICP_SUPPORT_INTERVAL_MAP_HH
#define ICP_SUPPORT_INTERVAL_MAP_HH

#include <map>
#include <optional>
#include <utility>

#include "logging.hh"
#include "types.hh"

namespace icp
{

/**
 * Maps disjoint half-open intervals [start, end) to values of type T.
 * Insertion of an overlapping interval is an error; the container is
 * intended for structures (basic blocks, sections, tables) that are
 * disjoint by construction.
 */
template <typename T>
class IntervalMap
{
  public:
    struct Entry
    {
        Addr start;
        Addr end;
        T value;
    };

    /** Insert [start, end) -> value. Returns false on overlap. */
    bool
    insert(Addr start, Addr end, T value)
    {
        icp_assert(start < end, "IntervalMap: empty interval");
        auto it = map_.upper_bound(start);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > start)
                return false;
        }
        if (it != map_.end() && it->first < end)
            return false;
        map_.emplace(start, Node{end, std::move(value)});
        return true;
    }

    /** Find the entry containing addr, if any. */
    const T *
    find(Addr addr) const
    {
        auto it = map_.upper_bound(addr);
        if (it == map_.begin())
            return nullptr;
        --it;
        if (addr < it->second.end)
            return &it->second.value;
        return nullptr;
    }

    T *
    find(Addr addr)
    {
        return const_cast<T *>(std::as_const(*this).find(addr));
    }

    /** Interval bounds of the entry containing addr. */
    std::optional<std::pair<Addr, Addr>>
    bounds(Addr addr) const
    {
        auto it = map_.upper_bound(addr);
        if (it == map_.begin())
            return std::nullopt;
        --it;
        if (addr < it->second.end)
            return std::make_pair(it->first, it->second.end);
        return std::nullopt;
    }

    /** First interval starting at or after addr, if any. */
    std::optional<Entry>
    nextAtOrAfter(Addr addr) const
    {
        auto it = map_.lower_bound(addr);
        if (it == map_.end())
            return std::nullopt;
        return Entry{it->first, it->second.end, it->second.value};
    }

    /** Remove the interval that starts exactly at start. */
    bool
    eraseAt(Addr start)
    {
        return map_.erase(start) > 0;
    }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }

    /** Iterate entries in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[start, node] : map_)
            fn(start, node.end, node.value);
    }

  private:
    struct Node
    {
        Addr end;
        T value;
    };

    std::map<Addr, Node> map_;
};

} // namespace icp

#endif // ICP_SUPPORT_INTERVAL_MAP_HH
