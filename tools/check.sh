#!/bin/sh
# Full pre-merge check: a ThreadSanitizer build running the parallel
# determinism tests (the pipeline's concurrency is only exercised
# with >= 2 requested threads, which TSan then observes), an
# Address+UBSanitizer build running the memory-heavy suites (the
# rewriter, the verifier, and the binary-format validator do the
# bulk of the byte-level pointer work), followed by a plain release
# build running the complete test suite.
#
# Usage: tools/check.sh [jobs]    (default: nproc)

set -eu

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "== ThreadSanitizer build (build-tsan/) =="
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$jobs" --target test_parallel

echo "== TSan: parallel pipeline tests =="
./build-tsan/tests/test_parallel

echo "== Address+UBSanitizer build (build-asan/) =="
cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "$jobs" \
    --target test_lint test_rewrite test_binfmt test_engine \
             test_session icp_cli

echo "== ASan+UBSan: rewriter / verifier / binfmt / session tests =="
./build-asan/tests/test_lint
./build-asan/tests/test_rewrite
./build-asan/tests/test_binfmt
./build-asan/tests/test_engine
./build-asan/tests/test_session

echo "== ASan+UBSan: repair-loop smoke (inject -> repair -> lint) =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build-asan/tools/icp compile micro "$smoke_dir/in.sbf" --pie
./build-asan/tools/icp rewrite "$smoke_dir/in.sbf" \
    "$smoke_dir/out.sbf" --mode func-ptr --count-blocks \
    --inject tramp-chain --lint --repair

echo "== Release build (build/) =="
cmake -B build -S .
cmake --build build -j "$jobs"

echo "== Release: full test suite =="
cd build
ctest --output-on-failure -j "$jobs"

echo "== check.sh: all green =="
