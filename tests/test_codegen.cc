/**
 * @file
 * End-to-end tests of the synthetic compiler: every workload profile
 * compiles on every architecture, loads, runs to a clean halt, and
 * produces deterministic checksums. This is the golden-run substrate
 * every rewriting experiment builds on.
 */

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

RunResult
runImage(const BinaryImage &img, std::uint64_t go_gc = 0)
{
    auto proc = loadImage(img);
    Machine::Config cfg;
    cfg.goGcEveryCalls = go_gc;
    Machine machine(*proc, cfg);
    return machine.run();
}

class MicroPerArch : public ::testing::TestWithParam<
                         std::tuple<Arch, bool>>
{
};

std::string
archToken(Arch arch)
{
    switch (arch) {
      case Arch::x64: return "x64";
      case Arch::ppc64le: return "ppc64le";
      case Arch::aarch64: return "aarch64";
    }
    return "unknown";
}

std::string
microName(const ::testing::TestParamInfo<std::tuple<Arch, bool>> &info)
{
    return archToken(std::get<0>(info.param)) +
           (std::get<1>(info.param) ? "_pie" : "_nopie");
}

std::string
archOnlyName(const ::testing::TestParamInfo<Arch> &info)
{
    return archToken(info.param);
}

} // namespace

TEST_P(MicroPerArch, CompilesLoadsRuns)
{
    const auto [arch, pie] = GetParam();
    const BinaryImage img = compileProgram(microProfile(arch, pie));
    EXPECT_EQ(img.arch, arch);
    EXPECT_EQ(img.pie, pie);
    ASSERT_NE(img.findSection(SectionKind::text), nullptr);
    ASSERT_NE(img.findSection(SectionKind::ehFrame), nullptr);
    EXPECT_FALSE(img.fdeRecords().empty());

    const RunResult result = runImage(img);
    EXPECT_TRUE(result.halted) << result.describe();
    EXPECT_EQ(result.fault, FaultKind::none) << result.describe();
    EXPECT_GT(result.instructions, 100u);
    EXPECT_GT(result.exceptionsThrown, 0u);
}

TEST_P(MicroPerArch, DeterministicChecksum)
{
    const auto [arch, pie] = GetParam();
    const BinaryImage img = compileProgram(microProfile(arch, pie));
    const RunResult a = runImage(img);
    const RunResult b = runImage(img);
    ASSERT_TRUE(a.halted && b.halted);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllArches, MicroPerArch,
    ::testing::Combine(::testing::Values(Arch::x64, Arch::ppc64le,
                                         Arch::aarch64),
                       ::testing::Bool()),
    microName);

class SpecSuitePerArch : public ::testing::TestWithParam<Arch>
{
};

TEST_P(SpecSuitePerArch, AllBenchmarksRunClean)
{
    const Arch arch = GetParam();
    const auto suite = specCpuSuite(arch, false);
    ASSERT_EQ(suite.size(), 19u);
    for (const auto &spec : suite) {
        const BinaryImage img = compileProgram(spec);
        const RunResult result = runImage(img);
        EXPECT_TRUE(result.halted)
            << spec.name << " on " << archName(arch) << ": "
            << result.describe();
    }
}

INSTANTIATE_TEST_SUITE_P(AllArches, SpecSuitePerArch,
                         ::testing::Values(Arch::x64, Arch::ppc64le,
                                           Arch::aarch64),
                         archOnlyName);

TEST(Workloads, DockerRunsWithGoGc)
{
    const BinaryImage img = compileProgram(dockerProfile());
    EXPECT_TRUE(img.features.isGo);
    const RunResult result = runImage(img, /*go_gc=*/64);
    EXPECT_TRUE(result.halted) << result.describe();
    EXPECT_GT(result.gcWalks, 0u);
}

TEST(Workloads, LibxulRuns)
{
    const BinaryImage img = compileProgram(libxulProfile());
    EXPECT_TRUE(img.features.rustMetadata);
    EXPECT_FALSE(img.soname.empty());
    const RunResult result = runImage(img);
    EXPECT_TRUE(result.halted) << result.describe();
}

TEST(Workloads, LibcudaRuns)
{
    const BinaryImage img = compileProgram(libcudaProfile());
    const RunResult result = runImage(img);
    EXPECT_TRUE(result.halted) << result.describe();
}

TEST(Workloads, LibcommonCorpusSharesByteIdenticalCoreAtShiftedAddresses)
{
    // The contract the cross-binary cache depends on: every core_*
    // function's code bytes are identical across the corpus while
    // its absolute address differs per binary (so a content-keyed
    // lookup hits and rebases). App tails and main stay distinct.
    for (const Arch arch :
         {Arch::x64, Arch::aarch64, Arch::ppc64le}) {
        const auto corpus = libcommonCorpus(arch, 3);
        ASSERT_EQ(corpus.size(), 3u);
        std::vector<BinaryImage> imgs;
        for (const auto &spec : corpus) {
            imgs.push_back(compileProgram(spec));
            const RunResult result = runImage(imgs.back());
            EXPECT_TRUE(result.halted) << result.describe();
        }
        unsigned core_funcs = 0, total = 0;
        for (const Symbol *sym : imgs[0].functionSymbols()) {
            ++total;
            if (sym->name.rfind("core_", 0) != 0)
                continue;
            ++core_funcs;
            std::vector<std::uint8_t> want;
            ASSERT_TRUE(
                imgs[0].readBytes(sym->addr, sym->size, want));
            for (unsigned b = 1; b < imgs.size(); ++b) {
                const Symbol *other = nullptr;
                for (const Symbol *cand :
                     imgs[b].functionSymbols()) {
                    if (cand->name == sym->name) {
                        other = cand;
                        break;
                    }
                }
                ASSERT_NE(other, nullptr) << sym->name;
                EXPECT_NE(other->addr, sym->addr) << sym->name;
                ASSERT_EQ(other->size, sym->size) << sym->name;
                std::vector<std::uint8_t> got;
                ASSERT_TRUE(imgs[b].readBytes(other->addr,
                                              other->size, got));
                EXPECT_EQ(got, want)
                    << sym->name << " diverges on binary " << b;
            }
        }
        // The shared core is the majority of each binary.
        EXPECT_GE(core_funcs * 2, total);
    }
}

TEST(Workloads, SuiteChecksumsAreStableAcrossCompiles)
{
    // Compiling twice must produce identical images (determinism).
    const auto a = compileProgram(specCpuSuite(Arch::x64, false)[0]);
    const auto b = compileProgram(specCpuSuite(Arch::x64, false)[0]);
    EXPECT_EQ(a.serialize(), b.serialize());
}
