
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binfmt/addr_map.cc" "src/binfmt/CMakeFiles/icp_binfmt.dir/addr_map.cc.o" "gcc" "src/binfmt/CMakeFiles/icp_binfmt.dir/addr_map.cc.o.d"
  "/root/repo/src/binfmt/ehframe.cc" "src/binfmt/CMakeFiles/icp_binfmt.dir/ehframe.cc.o" "gcc" "src/binfmt/CMakeFiles/icp_binfmt.dir/ehframe.cc.o.d"
  "/root/repo/src/binfmt/image.cc" "src/binfmt/CMakeFiles/icp_binfmt.dir/image.cc.o" "gcc" "src/binfmt/CMakeFiles/icp_binfmt.dir/image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/icp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
