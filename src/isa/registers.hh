/**
 * @file
 * Register and condition-code definitions shared by all three
 * synthetic ISAs.
 */

#ifndef ICP_ISA_REGISTERS_HH
#define ICP_ISA_REGISTERS_HH

#include <cstdint>

namespace icp
{

/**
 * Architectural registers. r0..r13 are general purpose. sp is the
 * stack pointer. lr is the link register (ppc64le/aarch64 only; on
 * the x64-like ISA return addresses live on the stack). toc models
 * ppc64le's r2 table-of-contents base. tar models ppc64le's branch
 * target special register used by the long trampoline sequence.
 */
enum class Reg : std::uint8_t
{
    r0 = 0, r1, r2, r3, r4, r5, r6, r7,
    r8, r9, r10, r11, r12, r13,
    sp = 14,
    lr = 15,
    toc = 16,
    tar = 17,
    none = 0xff,
};

/** Number of addressable register slots in the machine state. */
inline constexpr unsigned num_regs = 18;

/** Number of general-purpose registers (r0..r13). */
inline constexpr unsigned num_gp_regs = 14;

/** Condition codes for conditional branches, set by Cmp/CmpImm. */
enum class Cond : std::uint8_t
{
    eq = 0,
    ne,
    lt,
    le,
    gt,
    ge,
    none = 0xff,
};

/** Printable register name. */
const char *regName(Reg r);

/** Printable condition name. */
const char *condName(Cond c);

/** The condition that is true exactly when c is false. */
Cond invertCond(Cond c);

} // namespace icp

#endif // ICP_ISA_REGISTERS_HH
