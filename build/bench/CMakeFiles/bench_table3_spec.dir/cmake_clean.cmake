file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_spec.dir/bench_table3_spec.cc.o"
  "CMakeFiles/bench_table3_spec.dir/bench_table3_spec.cc.o.d"
  "bench_table3_spec"
  "bench_table3_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
