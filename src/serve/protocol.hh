/**
 * @file
 * Wire protocol of the `icp serve` daemon: length-prefixed frames on
 * a Unix-domain socket. Each frame is a 4-byte little-endian payload
 * length followed by that many bytes of text payload:
 *
 *   verb\n
 *   key=value\n
 *   ...
 *
 * Requests carry a verb (open, rewrite, lint, repair, deps, stats,
 * ping, shutdown) plus string fields; replies use the verbs "ok" and
 * "error". Values may not contain newlines (the encoder replaces
 * them with spaces); binary data never crosses the socket — requests
 * name input/output files by path, which keeps frames tiny and the
 * daemon restartable. Payloads above kMaxFramePayload, truncated
 * frames, and unparsable payloads are protocol errors the server
 * answers with a structured "error" reply before closing the
 * connection — never a crash (tested in tests/test_serve.cc).
 */

#ifndef ICP_SERVE_PROTOCOL_HH
#define ICP_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace icp
{

/** Upper bound on a frame's payload bytes (requests are tiny). */
constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/** One request or reply: a verb plus ordered key=value fields. */
struct ServeMessage
{
    std::string verb;
    std::vector<std::pair<std::string, std::string>> fields;

    void
    set(const std::string &key, const std::string &value)
    {
        fields.emplace_back(key, value);
    }

    void set(const std::string &key, std::uint64_t value);

    /** Last value for @p key, or @p fallback when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback = 0) const;

    bool has(const std::string &key) const;
};

/** Serialize the payload text (no length prefix). */
std::vector<std::uint8_t> encodeServePayload(const ServeMessage &msg);

/**
 * Parse a payload back into a message. Returns false (with a
 * diagnostic in @p error) on an empty payload, a verb that is not a
 * lowercase [a-z0-9_-] token, an embedded NUL, or a field line
 * without '='.
 */
bool parseServePayload(const std::uint8_t *data, std::size_t size,
                       ServeMessage &out, std::string &error);

/** Full frame: 4-byte LE payload length + payload. */
std::vector<std::uint8_t> encodeServeFrame(const ServeMessage &msg);

/** Outcome of reading one frame from a socket. */
enum class FrameStatus
{
    ok,        ///< a complete, well-formed frame was read
    closed,    ///< orderly EOF before any frame byte
    timeout,   ///< the peer stalled past the timeout
    oversized, ///< declared payload length above kMaxFramePayload
    malformed, ///< truncated frame or unparsable payload
    ioError,   ///< read(2)/poll(2) failure
};

const char *frameStatusName(FrameStatus status);

/**
 * Read one frame from @p fd, waiting at most @p timeout_ms for each
 * chunk (<= 0 waits forever). On anything but FrameStatus::ok,
 * @p error describes the failure.
 */
FrameStatus readServeFrame(int fd, ServeMessage &out, int timeout_ms,
                           std::string &error);

/**
 * Write @p msg as one frame to @p fd (MSG_NOSIGNAL; a dead peer is
 * a false return, not a SIGPIPE). @p timeout_ms bounds each send.
 */
bool writeServeFrame(int fd, const ServeMessage &msg, int timeout_ms);

/**
 * One client round trip: connect to the Unix socket at @p socket_path,
 * send @p request, read the reply. Returns false with @p error set on
 * connect/frame failures (including a reply that fails to parse).
 */
bool serveCall(const std::string &socket_path,
               const ServeMessage &request, ServeMessage &reply,
               std::string &error, int timeout_ms = 30000);

} // namespace icp

#endif // ICP_SERVE_PROTOCOL_HH
