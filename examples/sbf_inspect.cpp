/**
 * @file
 * An objdump-like inspector for SBF images, exercising the on-disk
 * format: compiles a workload, serializes it to a file, reloads it,
 * and prints section headers, symbols, relocations, and a CFG-aware
 * disassembly of one function (blocks, edges, resolved jump
 * tables).
 *
 * Usage: ./build/examples/sbf_inspect [function-name]
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/builder.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"

using namespace icp;

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "switcher";

    // Round-trip through the serialized format like a real tool
    // reading a file from disk would.
    const BinaryImage built =
        compileProgram(microProfile(Arch::x64, false));
    const auto raw = built.serialize();
    {
        std::ofstream out("/tmp/icp_inspect.sbf",
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(raw.data()),
                  static_cast<std::streamsize>(raw.size()));
    }
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in("/tmp/icp_inspect.sbf", std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    const BinaryImage img = BinaryImage::deserialize(bytes);

    std::printf("SBF image: arch=%s %s entry=0x%llx loaded=%llu "
                "bytes\n\n",
                archName(img.arch), img.pie ? "PIE" : "no-PIE",
                static_cast<unsigned long long>(img.entry),
                static_cast<unsigned long long>(img.loadedSize()));

    std::printf("sections:\n");
    for (const auto &sec : img.sections) {
        std::printf("  %-12s 0x%08llx size %-8llu %s%s%s\n",
                    sec.name.c_str(),
                    static_cast<unsigned long long>(sec.addr),
                    static_cast<unsigned long long>(sec.memSize),
                    sec.loadable ? "L" : "-",
                    sec.executable ? "X" : "-",
                    sec.writable ? "W" : "-");
    }

    std::printf("\nfunction symbols:\n");
    for (const Symbol *sym : img.functionSymbols()) {
        std::printf("  0x%08llx %-6llu %s\n",
                    static_cast<unsigned long long>(sym->addr),
                    static_cast<unsigned long long>(sym->size),
                    sym->name.c_str());
    }

    std::printf("\nrelocations: %zu runtime, %zu link-time\n",
                img.relocs.size(), img.linkRelocs.size());

    // CFG-aware disassembly of the requested function.
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    for (const auto &[entry, func] : cfg.functions) {
        if (func.name != wanted)
            continue;
        std::printf("\n<%s> [0x%llx, 0x%llx) — %zu blocks, %zu jump "
                    "tables%s\n",
                    func.name.c_str(),
                    static_cast<unsigned long long>(func.entry),
                    static_cast<unsigned long long>(func.end),
                    func.blocks.size(), func.jumpTables.size(),
                    func.instrumentable() ? ""
                                          : " [analysis FAILED]");
        for (const auto &[start, block] : func.blocks) {
            std::printf(" block 0x%llx:\n",
                        static_cast<unsigned long long>(start));
            for (const auto &in : block.insns) {
                std::printf("   %08llx  %s\n",
                            static_cast<unsigned long long>(in.addr),
                            in.toString().c_str());
            }
            for (const auto &edge : block.succs) {
                std::printf("   -> 0x%llx%s\n",
                            static_cast<unsigned long long>(
                                edge.target),
                            edge.kind == EdgeKind::jumpTable
                                ? " (jump table)"
                                : "");
            }
        }
        for (const auto &jt : func.jumpTables) {
            std::printf(" jump table @0x%llx: %u entries x %uB%s\n",
                        static_cast<unsigned long long>(
                            jt.tableAddr),
                        jt.entryCount, jt.entrySize,
                        jt.embeddedInCode ? " (embedded in code)"
                                          : "");
        }
        return 0;
    }
    std::fprintf(stderr, "no function named %s\n", wanted.c_str());
    return 1;
}
