#include "rewrite/rewriter.hh"

#include <algorithm>
#include <functional>

#include "analysis/cache.hh"
#include "analysis/funcptr.hh"
#include "analysis/liveness.hh"
#include "isa/bytes.hh"
#include "binfmt/addr_map.hh"
#include "rewrite/engine.hh"
#include "rewrite/trampoline.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace icp
{

const char *
rewriteModeName(RewriteMode mode)
{
    switch (mode) {
      case RewriteMode::dir: return "dir";
      case RewriteMode::jt: return "jt";
      case RewriteMode::funcPtr: return "func-ptr";
    }
    return "?";
}

const char *
injectDefectName(InjectDefect defect)
{
    switch (defect) {
      case InjectDefect::none: return "none";
      case InjectDefect::trampTarget: return "tramp-target";
      case InjectDefect::trampRange: return "tramp-range";
      case InjectDefect::trampChain: return "tramp-chain";
      case InjectDefect::liveScratch: return "live-scratch";
      case InjectDefect::tocScratch: return "toc-scratch";
      case InjectDefect::staleCloneEntry: return "stale-clone-entry";
      case InjectDefect::cloneBounds: return "clone-bounds";
      case InjectDefect::doublePatch: return "double-patch";
      case InjectDefect::raMapEntry: return "ra-map-entry";
      case InjectDefect::dropFde: return "drop-fde";
      case InjectDefect::funcPtrStale: return "func-ptr-stale";
    }
    return "?";
}

std::optional<InjectDefect>
parseInjectDefect(const std::string &name)
{
    for (unsigned v = 0;
         v <= static_cast<unsigned>(InjectDefect::funcPtrStale); ++v) {
        const auto defect = static_cast<InjectDefect>(v);
        if (name == injectDefectName(defect))
            return defect;
    }
    return std::nullopt;
}

namespace
{

Addr
alignUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Mutable working copy of the output image under construction. */
class Rewriter
{
  public:
    Rewriter(const BinaryImage &input, const RewriteOptions &opts,
             const RewritePass &pass)
        : input_(input), opts_(opts), pass_(pass),
          arch_(input.archInfo())
    {
    }

    RewriteResult run();

  private:
    std::set<Addr> chooseInstrumented();
    std::set<Addr> cflBlocks(const Function &func) const;
    std::set<Addr> blocksReachingInstrumentation(
        const Function &func) const;
    void donateScratch(ScratchPool &pool);
    void recordDonation(Addr addr, std::uint64_t len);
    Addr funcEntryOf(Addr a) const;
    bool injectSiteAllowed(Addr func_entry) const;
    void fillManifest(const EngineResult &engine);
    void injectByteDefect();
    void installTrampolines(const EngineResult &engine);
    void rewriteFuncPtrs(const EngineResult &engine);
    void patchCodeDef(const FuncPtrDef &def, Addr new_target,
                      const EngineResult &engine);
    bool patchInstructionAt(std::vector<std::uint8_t> &bytes,
                            Addr section_base, Addr at,
                            const std::function<void(Instruction &)>
                                &mutate);
    void clobberOriginal();
    void addCodeSections(const EngineResult &engine);
    void buildSections(const EngineResult &engine);

    const BinaryImage &input_;
    const RewriteOptions &opts_;
    const RewritePass &pass_;
    const ArchInfo &arch_;

    /** Built here, or borrowed from pass_.cfg (session reuse). */
    CfgModule ownCfg_;
    const CfgModule *cfg_ = nullptr;
    FuncPtrAnalysisResult funcPtrs_;
    std::set<Addr> instrumented_;

    RewriteResult result_;
    BinaryImage out_;

    Addr instrBase_ = 0;
    Addr newRodataBase_ = 0;

    std::vector<std::pair<Addr, Addr>> trapEntries_;

    /** Bytes a trampoline occupies (kept during clobbering). */
    std::vector<std::pair<Addr, Addr>> keepRanges_;
};

std::set<Addr>
Rewriter::chooseInstrumented()
{
    std::set<Addr> chosen;
    for (const auto &[entry, func] : cfg_->functions) {
        if (!func.instrumentable())
            continue;
        if (!opts_.onlyFunctions.empty() &&
            !opts_.onlyFunctions.count(func.name))
            continue;
        chosen.insert(entry);
    }
    return chosen;
}

std::set<Addr>
Rewriter::cflBlocks(const Function &func) const
{
    std::set<Addr> cfl;
    if (!opts_.trampolinePlacement) {
        // SRBI-style: every basic block gets a trampoline.
        for (const auto &[start, block] : func.blocks)
            cfl.insert(start);
        return cfl;
    }

    // Function entry blocks: always CFL — entries of instrumented
    // functions keep a trampoline so calls from uninstrumented code
    // (and unrewritten pointers) stay correct (§4.3).
    cfl.insert(func.entry);

    // Landing pads: the unwinder resumes at original addresses.
    for (Addr lp : func.landingPads) {
        if (func.blocks.count(lp))
            cfl.insert(lp);
    }

    // Jump-table targets: CFL only when tables are not cloned.
    if (opts_.mode == RewriteMode::dir) {
        for (Addr t : func.jumpTableTargets())
            cfl.insert(t);
    }

    // Call fall-through blocks: CFL under call emulation only;
    // runtime RA translation removes them (§6).
    if (!opts_.raTranslation) {
        for (const auto &[start, block] : func.blocks) {
            for (const auto &edge : block.succs) {
                if (edge.kind == EdgeKind::callFallthrough &&
                    func.blocks.count(edge.target)) {
                    cfl.insert(edge.target);
                }
            }
        }
    }

    // The §4.2 extension: drop trampolines at CFL blocks that
    // cannot reach any instrumented block — control flow landing
    // there may keep running original code (which is why this is
    // incompatible with clobbering).
    if (opts_.reachabilityPruning) {
        const std::set<Addr> keep =
            blocksReachingInstrumentation(func);
        for (auto it = cfl.begin(); it != cfl.end();) {
            if (keep.count(*it))
                ++it;
            else
                it = cfl.erase(it);
        }
    }
    return cfl;
}

std::set<Addr>
Rewriter::blocksReachingInstrumentation(const Function &func) const
{
    // Instrumentation sites in this function. Calls to other
    // instrumented functions are covered by the callees' own entry
    // trampolines, so local reachability suffices.
    std::set<Addr> inst;
    if (opts_.instrumentation.countFunctionEntries)
        inst.insert(func.entry);
    if (opts_.raTranslation && input_.features.isGo &&
        (func.name == "runtime.findfunc" ||
         func.name == "runtime.pcvalue")) {
        inst.insert(func.entry);
    }
    for (const auto &[start, block] : func.blocks) {
        if (opts_.instrumentation.instrumentsBlock(start))
            inst.insert(start);
    }

    // Backward reachability over intra-procedural edges.
    std::map<Addr, std::vector<Addr>> preds;
    for (const auto &[start, block] : func.blocks) {
        for (const auto &edge : block.succs)
            preds[edge.target].push_back(start);
    }
    std::set<Addr> keep = inst;
    std::vector<Addr> work(inst.begin(), inst.end());
    while (!work.empty()) {
        const Addr cur = work.back();
        work.pop_back();
        auto it = preds.find(cur);
        if (it == preds.end())
            continue;
        for (Addr p : it->second) {
            if (keep.insert(p).second)
                work.push_back(p);
        }
    }
    return keep;
}

void
Rewriter::recordDonation(Addr addr, std::uint64_t len)
{
    result_.manifest.scratchRanges.emplace_back(addr, len);
}

void
Rewriter::donateScratch(ScratchPool &pool)
{
    auto donate = [&](Addr addr, std::uint64_t len) {
        pool.donate(addr, len, arch_.instrAlign);
        recordDonation(addr, len);
    };

    // Source 1: inter-function nop padding in .text.
    const auto funcs = input_.functionSymbols();
    const Section *text = input_.findSection(SectionKind::text);
    if (text) {
        Addr cursor = text->addr;
        for (const Symbol *sym : funcs) {
            if (sym->addr > cursor)
                donate(cursor, sym->addr - cursor);
            cursor = std::max(cursor, sym->addr + sym->size);
        }
        if (text->end() > cursor)
            donate(cursor, text->end() - cursor);
    }

    // Source 3: the retired dynamic-linking sections (§3). (Source
    // 2, unused scratch-block bytes, is consumed in place through
    // trampoline superblock extension.)
    for (const auto kind : {SectionKind::dynsym, SectionKind::dynstr,
                            SectionKind::relaDyn}) {
        if (const Section *s = input_.findSection(kind))
            donate(s->addr, s->memSize);
    }
}

void
Rewriter::installTrampolines(const EngineResult &engine)
{
    ScratchPool pool;
    donateScratch(pool);
    TrampolineWriter writer(arch_, input_.tocBase, pool,
                            opts_.multiHop);

    struct Pending
    {
        TrampolineRequest req;
        Addr superEnd;
        Addr funcEntry;
    };
    std::vector<Pending> pending;

    auto account = [&](const TrampolineRequest &req, Addr func_entry,
                       const TrampolineOut &installed) {
        result_.stats.trampolines++;
        switch (installed.kind) {
          case TrampolineKind::direct:
            result_.stats.directTramps++;
            break;
          case TrampolineKind::longForm:
          case TrampolineKind::longFormSpill:
            result_.stats.longTramps++;
            break;
          case TrampolineKind::multiHop:
            result_.stats.multiHopTramps++;
            break;
          case TrampolineKind::trap:
            result_.stats.trapTramps++;
            break;
        }
        TrampolinePatch patch;
        patch.site = req.at;
        patch.funcEntry = func_entry;
        patch.target = req.target;
        patch.kind = installed.kind;
        patch.scratchReg = req.scratchReg;
        patch.space = req.space;
        for (const auto &write : installed.writes) {
            const bool ok = out_.writeBytes(write.at, write.bytes);
            icp_assert(ok, "trampoline write failed at 0x%llx",
                       static_cast<unsigned long long>(write.at));
            keepRanges_.emplace_back(
                write.at, write.at + write.bytes.size());
            patch.writes.emplace_back(write.at, write.bytes.size());
        }
        result_.manifest.trampolines.push_back(std::move(patch));
        for (const auto &entry2 : installed.trapEntries)
            trapEntries_.push_back(entry2);
    };

    // Per-function trampoline inputs — CFL block sets and (on the
    // fixed ISAs) liveness — are independent across functions:
    // precompute them in parallel, with liveness memoized in the
    // analysis cache under the function's CFG key. The serial
    // install below then only does the order-sensitive pool work.
    struct FuncPre
    {
        const Function *func = nullptr;
        std::set<Addr> cfl;
        std::shared_ptr<const LivenessResult> live;
    };
    std::vector<const Function *> funcs;
    for (const auto &[entry, func] : cfg_->functions) {
        if (instrumented_.count(entry))
            funcs.push_back(&func);
    }
    std::vector<FuncPre> pre(funcs.size());
    {
        StageTimer timer(Stage::liveness);
        ThreadPool::shared().parallelFor(
            funcs.size(), effectiveThreads(opts_.threads),
            [&](std::size_t i) {
                const Function &func = *funcs[i];
                pre[i].func = &func;
                pre[i].cfl = cflBlocks(func);
                if (!arch_.fixedLength)
                    return;
                const bool cached =
                    opts_.useAnalysisCache && func.cacheKey != 0;
                if (cached) {
                    if (auto hit = AnalysisCache::global()
                                       .findLiveness(func.cacheKey)) {
                        pre[i].live = hit;
                        return;
                    }
                }
                pre[i].live = std::make_shared<LivenessResult>(
                    computeLiveness(func, arch_));
                if (cached) {
                    AnalysisCache::global().storeLiveness(
                        func.cacheKey, input_.arch, *pre[i].live);
                }
            });
    }

    StageTimer timer(Stage::trampoline);

    // Phase 1: in-place installs; unused superblock bytes (source 2
    // of §7's scratch space) are donated to the pool for phase 2.
    for (const FuncPre &p : pre) {
        const Function &func = *p.func;
        const std::set<Addr> &cfl = p.cfl;
        result_.stats.cflBlocks += cfl.size();
        result_.stats.totalBlocks += func.blocks.size();

        // Repair demotion: every trampoline in this function becomes
        // a trap — the always-sound §4.3 fallback.
        const bool force_trap =
            opts_.forceTrapFunctions.count(func.name) > 0;

        // Embedded jump-table data must never be overwritten.
        std::vector<std::pair<Addr, Addr>> protect;
        for (const auto &jt : func.jumpTables) {
            if (jt.embeddedInCode) {
                protect.emplace_back(
                    jt.tableAddr,
                    jt.tableAddr +
                        std::uint64_t{jt.entryCount} * jt.entrySize);
                keepRanges_.emplace_back(protect.back());
                result_.manifest.protectedRanges.push_back(
                    protect.back());
            }
        }

        for (Addr start : cfl) {
            auto bit = func.blocks.find(start);
            if (bit == func.blocks.end())
                continue;
            // Trampoline superblock: extend across address-adjacent
            // scratch (non-CFL) blocks (§4.1).
            Addr se = bit->second.end;
            if (opts_.trampolinePlacement) {
                auto next = std::next(bit);
                while (next != func.blocks.end() &&
                       next->first == se && !cfl.count(next->first)) {
                    se = next->second.end;
                    ++next;
                }
            }
            // Never extend over embedded table data.
            for (const auto &[lo, hi] : protect) {
                if (lo >= start && lo < se)
                    se = lo;
            }

            TrampolineRequest req;
            req.at = start;
            req.space = se - start;
            auto target = engine.blockMap.find(start);
            icp_assert(target != engine.blockMap.end(),
                       "CFL block 0x%llx not relocated",
                       static_cast<unsigned long long>(start));
            req.target = target->second;
            req.scratchReg = arch_.fixedLength
                ? p.live->deadRegAt(start)
                : Reg::none;

            if (force_trap) {
                const TrampolineOut trapped = writer.installTrap(req);
                const std::uint64_t used =
                    trapped.writes.empty()
                        ? 0
                        : trapped.writes[0].bytes.size();
                account(req, func.entry, trapped);
                if (opts_.trampolinePlacement && start + used < se) {
                    pool.donate(start + used, se - (start + used),
                                arch_.instrAlign);
                    recordDonation(start + used, se - (start + used));
                }
                continue;
            }

            // Fault injection (register defects): force a long form
            // whose scratch register the verifier must reject. Only
            // the first applicable site is corrupted.
            std::optional<TrampolineOut> in_place;
            const bool want_reg_defect = opts_.lint &&
                (opts_.injectDefect == InjectDefect::liveScratch ||
                 opts_.injectDefect == InjectDefect::tocScratch) &&
                result_.manifest.injectedRule.empty() &&
                (opts_.injectOnlyFunction.empty() ||
                 func.name == opts_.injectOnlyFunction);
            if (want_reg_defect && arch_.fixedLength &&
                req.space >= writer.longFormLen()) {
                Reg bad = Reg::none;
                if (opts_.injectDefect == InjectDefect::tocScratch) {
                    if (arch_.hasToc)
                        bad = Reg::toc;
                } else {
                    const RegSet live = p.live->liveAtBlockStart(start);
                    for (unsigned r = 0; r < num_gp_regs; ++r) {
                        if (live.contains(static_cast<Reg>(r))) {
                            bad = static_cast<Reg>(r);
                            break;
                        }
                    }
                }
                if (bad != Reg::none) {
                    req.scratchReg = bad;
                    in_place = writer.installForcedLongForm(req);
                    result_.manifest.injectedRule =
                        opts_.injectDefect == InjectDefect::tocScratch
                            ? "toc-preserved"
                            : "tramp-scratch-live";
                }
            }
            if (!in_place)
                in_place = writer.installInPlace(req);

            if (in_place) {
                account(req, func.entry, *in_place);
                std::uint64_t used = 0;
                for (const auto &write : in_place->writes) {
                    if (write.at == start)
                        used = write.bytes.size();
                }
                if (opts_.trampolinePlacement && start + used < se) {
                    pool.donate(start + used, se - (start + used),
                                arch_.instrAlign);
                    recordDonation(start + used, se - (start + used));
                }
            } else {
                pending.push_back({req, se, func.entry});
            }
        }
    }

    // Donate the tails of still-pending superblocks (the first-hop
    // branch needs only the head), then resolve them.
    const std::uint64_t head = arch_.fixedLength
        ? arch_.directJmpLen
        : arch_.shortJmpLen;
    if (opts_.trampolinePlacement) {
        for (const auto &p : pending) {
            if (p.req.at + head < p.superEnd) {
                pool.donate(p.req.at + head,
                            p.superEnd - (p.req.at + head),
                            arch_.instrAlign);
                recordDonation(p.req.at + head,
                               p.superEnd - (p.req.at + head));
            }
        }
    }
    for (const auto &p : pending)
        account(p.req, p.funcEntry, writer.installWithFallback(p.req));
}

bool
Rewriter::patchInstructionAt(std::vector<std::uint8_t> &bytes,
                             Addr section_base, Addr at,
                             const std::function<void(Instruction &)>
                                 &mutate)
{
    const Offset off = at - section_base;
    if (off >= bytes.size())
        return false;
    Instruction in;
    if (!arch_.codec->decode(bytes.data() + off, bytes.size() - off,
                             at, in)) {
        return false;
    }
    const unsigned old_len = in.length;
    mutate(in);
    std::vector<std::uint8_t> enc;
    if (!arch_.codec->encode(in, at, enc) || enc.size() != old_len)
        return false;
    std::copy(enc.begin(), enc.end(),
              bytes.begin() + static_cast<std::ptrdiff_t>(off));
    return true;
}

void
Rewriter::patchCodeDef(const FuncPtrDef &def, Addr new_target,
                       const EngineResult &engine)
{
    // Decide where the defining instructions live now: inside
    // relocated code (.instr) for instrumented functions, in the
    // original .text otherwise.
    Section *instr = out_.findSection(SectionKind::instr);
    Section *text = out_.findSection(SectionKind::text);
    icp_assert(instr && text, "sections missing");

    for (std::size_t i = 0; i < def.defAddrs.size(); ++i) {
        const Addr orig = def.defAddrs[i];
        Addr at = orig;
        Section *sec = text;
        auto relocated = engine.insnMap.find(orig);
        if (relocated != engine.insnMap.end()) {
            at = relocated->second;
            sec = instr;
        }
        const bool first = i == 0;
        const bool ok = patchInstructionAt(
            sec->bytes, sec->addr, at, [&](Instruction &in) {
                switch (in.op) {
                  case Opcode::MovImm:
                    if (arch_.fixedLength) {
                        in.imm = static_cast<std::int64_t>(
                            (new_target >> in.movShift) & 0xffff);
                    } else {
                        in.imm =
                            static_cast<std::int64_t>(new_target);
                    }
                    break;
                  case Opcode::Lea:
                  case Opcode::AdrPage:
                    in.target = new_target;
                    break;
                  case Opcode::AddisToc: {
                    const std::int64_t off =
                        static_cast<std::int64_t>(new_target) -
                        static_cast<std::int64_t>(input_.tocBase);
                    in.imm = (off + 0x8000) >> 16;
                    break;
                  }
                  case Opcode::AddImm: {
                    std::int64_t lo;
                    if (arch_.hasToc) {
                        const std::int64_t off =
                            static_cast<std::int64_t>(new_target) -
                            static_cast<std::int64_t>(input_.tocBase);
                        lo = signExtend(
                            static_cast<std::uint64_t>(off), 16);
                    } else {
                        const Addr page =
                            ((new_target + 0x8000) >> 16) << 16;
                        lo = static_cast<std::int64_t>(new_target) -
                             static_cast<std::int64_t>(page);
                    }
                    in.imm = lo;
                    break;
                  }
                  default:
                    break;
                }
                (void)first;
            });
        icp_assert(ok, "func-ptr code patch failed at 0x%llx",
                   static_cast<unsigned long long>(at));
    }
}

void
Rewriter::rewriteFuncPtrs(const EngineResult &engine)
{
    for (const auto &def : funcPtrs_.defs) {
        // Displaced pointers (Listing 1's entry+1) land inside the
        // entry trampoline and are therefore rewritten in every
        // mode; exact entry pointers only in func-ptr mode.
        if (opts_.mode != RewriteMode::funcPtr && def.delta == 0)
            continue;
        Addr new_value;
        if (def.delta == 0) {
            // Point at the relocated block start so entry
            // instrumentation still runs.
            auto relocated = engine.blockMap.find(def.funcEntry);
            if (relocated == engine.blockMap.end())
                continue; // not relocated; pointer stays valid
            new_value = relocated->second;
        } else {
            const Addr use_point = def.funcEntry +
                                   static_cast<Addr>(def.delta);
            auto relocated = engine.insnMap.find(use_point);
            if (relocated == engine.insnMap.end())
                continue;
            new_value = relocated->second -
                        static_cast<Addr>(def.delta);
        }

        FuncPtrPatch patch;
        patch.site = def.site;
        patch.funcEntry = def.funcEntry;
        patch.delta = def.delta;
        patch.newValue = new_value;

        if (def.kind == FuncPtrDef::Kind::dataCell) {
            // Update the relocation addend and the initialized
            // bytes.
            for (auto &rel : out_.relocs) {
                if (rel.site == def.site) {
                    rel.addend = static_cast<std::int64_t>(new_value);
                }
            }
            std::vector<std::uint8_t> raw;
            for (unsigned b = 0; b < 8; ++b)
                raw.push_back(
                    static_cast<std::uint8_t>(new_value >> (8 * b)));
            out_.writeBytes(def.site, raw);
            result_.stats.rewrittenFuncPtrs++;
            patch.kind = FuncPtrPatch::Kind::dataCell;
        } else {
            patchCodeDef(def, new_value, engine);
            result_.stats.rewrittenFuncPtrs++;
            patch.kind = FuncPtrPatch::Kind::codeDef;
        }
        result_.manifest.funcPtrs.push_back(patch);
    }
}

void
Rewriter::clobberOriginal()
{
    Section *text = out_.findSection(SectionKind::text);
    icp_assert(text, "no .text");
    std::sort(keepRanges_.begin(), keepRanges_.end());

    auto isKept = [&](Addr a) {
        auto it = std::upper_bound(
            keepRanges_.begin(), keepRanges_.end(),
            std::make_pair(a, ~Addr{0}));
        if (it == keepRanges_.begin())
            return false;
        --it;
        return a >= it->first && a < it->second;
    };

    // Illegal filler: 0x00 never decodes.
    for (const auto &[entry, func] : cfg_->functions) {
        if (!instrumented_.count(entry))
            continue;
        for (Addr a = func.entry; a < func.end; ++a) {
            if (isKept(a))
                continue;
            const Offset off = a - text->addr;
            if (off < text->bytes.size())
                text->bytes[off] = 0x00;
        }
    }
}

void
Rewriter::addCodeSections(const EngineResult &engine)
{
    Section instr;
    instr.name = ".instr";
    instr.kind = SectionKind::instr;
    instr.addr = instrBase_;
    instr.bytes = engine.instrBytes;
    instr.memSize = instr.bytes.size();
    instr.executable = true;
    out_.addSection(std::move(instr));

    if (!engine.newRodataBytes.empty()) {
        Section ro;
        ro.name = ".newrodata";
        ro.kind = SectionKind::newRodata;
        ro.addr = newRodataBase_;
        ro.bytes = engine.newRodataBytes;
        ro.memSize = ro.bytes.size();
        out_.addSection(std::move(ro));
    }
}

void
Rewriter::buildSections(const EngineResult &engine)
{
    Addr cursor = alignUp(
        std::max(newRodataBase_ + engine.newRodataBytes.size(),
                 instrBase_ + engine.instrBytes.size()),
        4096);

    // .ra_map
    if (opts_.raTranslation) {
        AddrPairMap ra_map(engine.raPairs);
        Section s;
        s.name = ".ra_map";
        s.kind = SectionKind::raMap;
        s.addr = cursor;
        s.bytes = ra_map.serialize();
        s.memSize = s.bytes.size();
        cursor = alignUp(cursor + s.memSize, 4096);
        out_.addSection(std::move(s));
        result_.stats.raMapEntries = ra_map.size();
    }

    // .trap_map
    {
        AddrPairMap trap_map(trapEntries_);
        Section s;
        s.name = ".trap_map";
        s.kind = SectionKind::trapMap;
        s.addr = cursor;
        s.bytes = trap_map.serialize();
        s.memSize = s.bytes.size();
        cursor = alignUp(cursor + s.memSize, 4096);
        out_.addSection(std::move(s));
    }

    // Move the dynamic-linking sections; retire the old copies as
    // executable scratch (they already hold multi-hop trampolines).
    for (const auto kind : {SectionKind::dynsym, SectionKind::dynstr,
                            SectionKind::relaDyn}) {
        Section *old_sec = out_.findSection(kind);
        if (!old_sec)
            continue;
        Section moved = *old_sec;
        moved.addr = cursor;
        // Extra room for new dynamic symbols/strings/relocations —
        // what makes calls into external instrumentation libraries
        // linkable (§3).
        moved.memSize += 256;
        cursor = alignUp(cursor + moved.memSize, 16);
        old_sec->name += ".old";
        old_sec->kind = SectionKind::other;
        old_sec->executable = true;
        out_.addSection(std::move(moved));
    }
}

Addr
Rewriter::funcEntryOf(Addr a) const
{
    auto it = cfg_->functions.upper_bound(a);
    if (it == cfg_->functions.begin())
        return 0;
    --it;
    return (a >= it->second.entry && a < it->second.end) ? it->first
                                                         : 0;
}

bool
Rewriter::injectSiteAllowed(Addr func_entry) const
{
    if (opts_.injectOnlyFunction.empty())
        return true;
    auto it = cfg_->functions.find(func_entry);
    return it != cfg_->functions.end() &&
           it->second.name == opts_.injectOnlyFunction;
}

void
Rewriter::fillManifest(const EngineResult &engine)
{
    RewriteManifest &m = result_.manifest;
    m.populated = true;
    m.blockMap = engine.blockMap;
    m.insnMap = engine.insnMap;
    m.raPairs = engine.raPairs;
    m.funcSpans = engine.funcSpans;
    m.instrumented = instrumented_;
    for (const auto &clone : engine.clones) {
        const JumpTable &jt = *clone.source;
        JumpTableClonePatch p;
        p.jumpAddr = jt.jumpAddr;
        p.funcEntry = funcEntryOf(jt.jumpAddr);
        p.cloneAddr = clone.cloneAddr;
        p.entrySize = clone.entrySize;
        p.entryCount = jt.entryCount;
        p.shift = jt.shift;
        p.widened = clone.widened;
        p.origBase = jt.base;
        p.origTableAddr = jt.tableAddr;
        p.origTargets = jt.targets;
        m.clones.push_back(std::move(p));
    }
}

/**
 * Plant the post-emission defects of InjectDefect: each corrupts
 * exactly one emitted artifact after the rewrite completed, leaving
 * the manifest describing the *intended* output, so exactly one
 * verifier rule must fire. Register defects (liveScratch /
 * tocScratch) are planted during trampoline installation instead.
 */
void
Rewriter::injectByteDefect()
{
    RewriteManifest &m = result_.manifest;
    if (!m.injectedRule.empty())
        return; // a register defect was already planted

    switch (opts_.injectDefect) {
      case InjectDefect::trampTarget: {
        // Retarget a direct trampoline at an unmapped address that
        // the branch can still encode.
        const Addr bogus = out_.highWaterMark(4096) + 0x10000;
        for (const auto &p : m.trampolines) {
            if (p.kind != TrampolineKind::direct ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            std::vector<std::uint8_t> enc;
            if (!arch_.codec->encode(makeJmp(bogus), p.site, enc))
                continue;
            if (p.writes.empty() || enc.size() != p.writes[0].second)
                continue;
            icp_assert(out_.writeBytes(p.site, enc),
                       "defect write failed");
            m.injectedRule = "tramp-target";
            return;
        }
        return;
      }

      case InjectDefect::trampRange: {
        // Encode a branch past the ISA's enforced reach. Only the
        // ppc-like ISA has headroom between the enforced ±32 MB and
        // the 26-bit displacement field (±128 MB in 4-byte words).
        if (!arch_.fixedLength)
            return;
        for (const auto &p : m.trampolines) {
            if (p.kind != TrampolineKind::direct ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            const Addr far = p.site + 2 *
                static_cast<Addr>(arch_.directJmpRange);
            std::vector<std::uint8_t> enc;
            if (!arch_.codec->encodeUnchecked(makeJmp(far), p.site,
                                              enc)) {
                continue;
            }
            icp_assert(out_.writeBytes(p.site, enc),
                       "defect write failed");
            m.injectedRule = "tramp-range";
            return;
        }
        return;
      }

      case InjectDefect::trampChain: {
        // A trampoline branching to its own site: the chain walker
        // must detect the cycle.
        for (const auto &p : m.trampolines) {
            if (p.kind != TrampolineKind::direct ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            std::vector<std::uint8_t> enc;
            if (!arch_.codec->encode(makeJmp(p.site), p.site, enc))
                continue;
            if (p.writes.empty() || enc.size() != p.writes[0].second)
                continue;
            icp_assert(out_.writeBytes(p.site, enc),
                       "defect write failed");
            m.injectedRule = "tramp-chain";
            return;
        }
        return;
      }

      case InjectDefect::staleCloneEntry: {
        // Zero one clone entry whose correct value is nonzero —
        // the "skipped fixup" of §5.1.
        for (const auto &c : m.clones) {
            if (!injectSiteAllowed(c.funcEntry))
                continue;
            for (unsigned i = 0; i < c.entryCount; ++i) {
                const Addr orig =
                    i < c.origTargets.size() ? c.origTargets[i] : 0;
                if (!m.blockMap.count(orig))
                    continue;
                const Addr at =
                    c.cloneAddr + std::uint64_t{i} * c.entrySize;
                const auto cur = out_.readValue(at, c.entrySize);
                if (!cur || *cur == 0)
                    continue;
                out_.writeBytes(
                    at, std::vector<std::uint8_t>(c.entrySize, 0));
                m.injectedRule = "jt-clone-target";
                return;
            }
        }
        return;
      }

      case InjectDefect::cloneBounds: {
        // Shrink .newrodata so a clone's last entry sticks out.
        Section *ro = out_.findSection(SectionKind::newRodata);
        if (!ro || m.clones.empty())
            return;
        const JumpTableClonePatch *last = nullptr;
        for (const auto &c : m.clones) {
            if (!last || c.cloneAddr > last->cloneAddr)
                last = &c;
        }
        const Addr end = last->cloneAddr +
            std::uint64_t{last->entryCount} * last->entrySize;
        if (end <= ro->addr + 1)
            return;
        ro->memSize = end - 1 - ro->addr;
        if (ro->bytes.size() > ro->memSize)
            ro->bytes.resize(ro->memSize);
        m.injectedRule = "jt-clone-bounds";
        return;
      }

      case InjectDefect::doublePatch: {
        // Duplicate one patch record: two installs claiming the
        // same byte extent.
        for (const auto &p : m.trampolines) {
            if (!injectSiteAllowed(p.funcEntry))
                continue;
            m.trampolines.push_back(p);
            m.injectedRule = "patch-overlap";
            return;
        }
        return;
      }

      case InjectDefect::raMapEntry: {
        Section *s = out_.findSection(SectionKind::raMap);
        if (!s || s->bytes.empty())
            return;
        AddrPairMap parsed = AddrPairMap::parse(s->bytes);
        if (parsed.empty())
            return;
        auto pairs = parsed.pairs();
        pairs[0].second += 4;
        s->bytes = AddrPairMap(pairs).serialize();
        s->memSize = s->bytes.size();
        m.injectedRule = "addr-map-round-trip";
        return;
      }

      case InjectDefect::dropFde: {
        auto fdes = out_.fdeRecords();
        for (auto it = fdes.begin(); it != fdes.end(); ++it) {
            if (!m.instrumented.count(it->start) ||
                !injectSiteAllowed(it->start))
                continue;
            fdes.erase(it);
            out_.setFdeRecords(fdes);
            m.injectedRule = "eh-frame-cover";
            return;
        }
        return;
      }

      case InjectDefect::funcPtrStale: {
        // Restore a rewritten pointer cell (bytes and relocation)
        // to its original value.
        for (const auto &p : m.funcPtrs) {
            if (p.kind != FuncPtrPatch::Kind::dataCell ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            const auto orig = input_.readValue(p.site, 8);
            if (!orig)
                continue;
            std::vector<std::uint8_t> raw;
            for (unsigned b = 0; b < 8; ++b)
                raw.push_back(
                    static_cast<std::uint8_t>(*orig >> (8 * b)));
            out_.writeBytes(p.site, raw);
            for (const auto &in_rel : input_.relocs) {
                if (in_rel.site != p.site)
                    continue;
                for (auto &rel : out_.relocs) {
                    if (rel.site == p.site)
                        rel.addend = in_rel.addend;
                }
            }
            m.injectedRule = "func-ptr-target";
            return;
        }
        return;
      }

      case InjectDefect::none:
      case InjectDefect::liveScratch:
      case InjectDefect::tocScratch:
        return;
    }
}

RewriteResult
Rewriter::run()
{
    if (opts_.reachabilityPruning && opts_.clobberOriginal) {
        result_.failReason = "reachability pruning lets original "
                             "code execute; it cannot be combined "
                             "with clobbering";
        return result_;
    }
    if (pass_.cfg) {
        // Session reuse: the caller's analysis artifacts are
        // authoritative; skip CFG construction entirely.
        cfg_ = pass_.cfg;
    } else {
        AnalysisOptions analysis = opts_.analysis;
        analysis.threads = opts_.threads;
        analysis.useCache = opts_.useAnalysisCache;
        ownCfg_ = buildCfg(input_, analysis);
        cfg_ = &ownCfg_;
    }
    // Function-pointer analysis runs in every mode: even dir/jt
    // need the forward-sliced displaced pointers (§5.2).
    {
        StageTimer timer(Stage::funcPtr);
        funcPtrs_ = analyzeFuncPtrs(*cfg_);
    }

    instrumented_ = chooseInstrumented();
    result_.stats.totalFunctions = cfg_->totalFunctions();
    result_.stats.instrumentableFunctions =
        cfg_->instrumentableFunctions();
    result_.stats.instrumentedFunctions =
        static_cast<unsigned>(instrumented_.size());
    result_.stats.originalLoadedSize = input_.loadedSize();

    out_ = input_;

    instrBase_ = input_.highWaterMark(4096);
    // Reserve a generous window for .instr; clones follow.
    EngineConfig config;
    config.mode = opts_.mode;
    config.callEmulation = !opts_.raTranslation;
    config.instrumentation = opts_.instrumentation;
    config.functionOrder = opts_.functionOrder;
    config.blockOrder = opts_.blockOrder;
    config.instrBase = instrBase_;
    config.goRaTranslation =
        opts_.raTranslation && input_.features.isGo;
    config.threads = opts_.threads;

    // Selective re-rewrite: hand the engine the previous pass's
    // layout and bytes so only pass_.dirtyFunctions re-emit.
    if (pass_.previous && pass_.previous->ok &&
        pass_.previous->manifest.populated) {
        const Section *prev_instr =
            pass_.previous->image.findSection(SectionKind::instr);
        if (prev_instr) {
            config.reuse.manifest = &pass_.previous->manifest;
            config.reuse.instrBytes = &prev_instr->bytes;
            config.reuse.dirty = &pass_.dirtyFunctions;
        }
    }

    // Estimate .instr extent to place .newrodata after it: snippets
    // and veneers expand code; 4x the original text is a safe bound.
    const Section *text = input_.findSection(SectionKind::text);
    icp_assert(text, "input has no .text");
    newRodataBase_ =
        alignUp(instrBase_ + text->memSize * 4 + 0x10000, 4096);
    config.newRodataBase = newRodataBase_;

    EngineResult engine =
        relocateFunctions(*cfg_, instrumented_, config);
    result_.stats.relocEmittedFunctions = engine.emittedFunctions;
    result_.stats.relocReusedFunctions = engine.reusedFunctions;
    icp_assert(instrBase_ + engine.instrBytes.size() <= newRodataBase_,
               ".instr overflowed its window");

    addCodeSections(engine);
    installTrampolines(engine);
    rewriteFuncPtrs(engine);
    if (opts_.clobberOriginal)
        clobberOriginal();

    {
        StageTimer timer(Stage::output);
        buildSections(engine);
    }
    if (opts_.lint) {
        fillManifest(engine);
        if (opts_.injectDefect != InjectDefect::none)
            injectByteDefect();
    } else {
        result_.manifest = RewriteManifest{};
    }
    result_.stats.clonedTables = engine.clones.size();
    result_.stats.rewrittenLoadedSize = out_.loadedSize();
    result_.blockCounters = engine.blockCounters;
    result_.entryCounters = engine.entryCounters;
    result_.image = std::move(out_);
    result_.ok = true;
    return result_;
}

} // namespace

RewriteResult
rewriteBinary(const BinaryImage &input, const RewriteOptions &options)
{
    const RewritePass pass;
    return rewriteBinary(input, options, pass);
}

RewriteResult
rewriteBinary(const BinaryImage &input, const RewriteOptions &options,
              const RewritePass &pass)
{
    // Cross-invocation persistence: merge the on-disk cache before
    // analysis runs, write it back after a successful rewrite. Both
    // directions are best-effort — a corrupt or unwritable file can
    // only cost analysis reuse, never correctness.
    const bool persist =
        !options.cachePath.empty() && options.useAnalysisCache;
    CacheLoadReport cache_load;
    if (persist) {
        StageTimer timer(Stage::cacheLoad);
        cache_load = AnalysisCache::global().load(options.cachePath,
                                                  input.arch);
    }

    Rewriter rewriter(input, options, pass);
    RewriteResult result = rewriter.run();
    result.cacheLoad = std::move(cache_load);

    if (persist && result.ok) {
        StageTimer timer(Stage::cacheSave);
        AnalysisCache::global().save(options.cachePath,
                                     options.cacheMaxBytes);
    }
    return result;
}

} // namespace icp
