# Empty dependencies file for test_funcptr_unit.
# This may be replaced when dependencies are built.
