
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/icache.cc" "src/sim/CMakeFiles/icp_sim.dir/icache.cc.o" "gcc" "src/sim/CMakeFiles/icp_sim.dir/icache.cc.o.d"
  "/root/repo/src/sim/loader.cc" "src/sim/CMakeFiles/icp_sim.dir/loader.cc.o" "gcc" "src/sim/CMakeFiles/icp_sim.dir/loader.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/icp_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/icp_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/icp_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/icp_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/runtime_lib.cc" "src/sim/CMakeFiles/icp_sim.dir/runtime_lib.cc.o" "gcc" "src/sim/CMakeFiles/icp_sim.dir/runtime_lib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binfmt/CMakeFiles/icp_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/icp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
