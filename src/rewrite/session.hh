/**
 * @file
 * RewriteSession: the stateful rewrite -> lint -> repair API. The
 * paper's pitch is *incremental* patching (§3, §9): reuse analysis
 * and touch only what changed. A session owns the input image, the
 * per-function analysis artifacts (CFGs, jump tables, liveness —
 * seeded from and into the process-wide AnalysisCache), the last
 * RewriteResult, and the last LintReport, so lint findings can feed
 * back into a targeted re-rewrite instead of a full redo:
 *
 *   analyze() ──> rewrite(opts) ──> lint(rules) ──> repair(report)
 *                      ^                                  │
 *                      └──── selective re-rewrite ────────┘
 *
 * repair() maps each error-severity finding to its owning function,
 * re-emits only those functions (splicing every other function's
 * bytes from the previous pass), demotes a function to trap
 * trampolines when a second targeted attempt still fails, and
 * re-lints only the touched rules/sites against the session's
 * cached CFG. rewriteBinary() remains as a thin one-shot wrapper.
 */

#ifndef ICP_REWRITE_SESSION_HH
#define ICP_REWRITE_SESSION_HH

#include <map>
#include <set>
#include <string>

#include "analysis/cfg.hh"
#include "rewrite/rewriter.hh"
#include "verify/lint.hh"

namespace icp
{

class RewriteSession
{
  public:
    /** Borrow @p input; it must outlive the session. */
    explicit RewriteSession(const BinaryImage &input)
        : input_(&input)
    {
    }

    /** Take ownership of @p input. */
    explicit RewriteSession(BinaryImage &&input)
        : owned_(std::move(input)), input_(&owned_)
    {
    }

    RewriteSession(const RewriteSession &) = delete;
    RewriteSession &operator=(const RewriteSession &) = delete;

    /** How repair() treats functions whose findings persist. */
    struct RepairPolicy
    {
        /**
         * After a function's second failed targeted re-rewrite,
         * demote every trampoline in it to a trap — the
         * always-sound §4.3 fallback, at runtime cost.
         */
        bool demoteToTrapOnSecondFailure = true;

        /**
         * Clear RewriteOptions::injectDefect before re-rewriting,
         * modeling a transient defect that one repair pass fixes.
         * Tests set this false (with injectOnlyFunction) to model a
         * persistent per-function defect that only trap demotion
         * can contain.
         */
        bool clearInjectedDefect = true;
    };

    struct RepairOutcome
    {
        unsigned iterations = 0;
        bool converged = false; ///< final report passes failOn

        /** Functions targeted for re-rewrite (by name). */
        std::set<std::string> repairedFunctions;

        /** Functions demoted to trap trampolines (by name). */
        std::set<std::string> demotedFunctions;

        /**
         * True when a finding could not be attributed to a function
         * (image-global rules) and the pass fell back to a full
         * re-rewrite and full re-lint.
         */
        bool fullRewriteFallback = false;
    };

    /**
     * Outcome of loadInput(): how much of the previous session state
     * survived the input swap.
     */
    struct LoadOutcome
    {
        /**
         * True when the new input was diffable against the old one
         * (same arch, same layout, same function symbols) and the
         * previous rewrite was reused selectively: only changed
         * functions were re-analyzed and re-emitted, everything else
         * was spliced from the previous pass's bytes.
         */
        bool incremental = false;

        /** Entries of functions whose bodies changed. */
        std::set<Addr> dirtyFunctions;

        /** Names of those functions. */
        std::set<std::string> dirtyNames;

        /** Function symbols whose bodies were byte-identical. */
        unsigned unchangedFunctions = 0;
    };

    /**
     * Replace the session's input with @p newImage (a new build of
     * the same binary). Diffs the new image's function bodies against
     * the current input: functions whose bytes changed are marked
     * dirty, the CFG is rebuilt (unchanged functions hit the
     * AnalysisCache by content key), and — when a previous rewrite
     * exists under compatible layout — only the dirty functions are
     * re-rewritten via the selective re-rewrite path; every other
     * function's bytes are spliced from the previous result.
     *
     * When the images are not diffable (different arch, section
     * layout, symbol set, or data-section bytes changed — cloned
     * jump tables copy data, so a data edit invalidates splicing),
     * the session resets to a fresh state on the new input.
     */
    LoadOutcome loadInput(BinaryImage newImage);

    /**
     * Build (or return the cached) original-image CFG under the
     * current options' analysis settings.
     */
    const CfgModule &analyze();

    /**
     * Rewrite the input under @p options, reusing the session's CFG
     * (rebuilt only when analysis-relevant options changed). The
     * returned reference lives until the next rewrite()/repair().
     */
    RewriteResult &rewrite(const RewriteOptions &options);

    /**
     * Lint the last rewrite against the session's cached CFG (the
     * verifier never rebuilds the original CFG through this path).
     * @p options' originalCfg field is overridden by the session.
     */
    LintReport &lint(const LintOptions &options = LintOptions{});

    /**
     * One repair pass driven by @p report: re-rewrite the functions
     * owning its error findings (selectively when every finding is
     * attributable), then incrementally re-lint. Requires rewrite()
     * and lint() to have run. Updates lastResult()/lastReport().
     */
    RepairOutcome repair(const LintReport &report,
                         const RepairPolicy &policy);

    RepairOutcome
    repair(const LintReport &report)
    {
        return repair(report, RepairPolicy{});
    }

    /**
     * Loop lint -> repair until the report passes the configured
     * fail-on severity or @p max_iterations repair passes ran.
     */
    RepairOutcome repairToFixedPoint(unsigned max_iterations,
                                     const RepairPolicy &policy);

    RepairOutcome
    repairToFixedPoint(unsigned max_iterations = 2)
    {
        return repairToFixedPoint(max_iterations, RepairPolicy{});
    }

    const BinaryImage &input() const { return *input_; }
    bool hasResult() const { return hasResult_; }
    bool hasReport() const { return hasReport_; }
    const RewriteResult &lastResult() const { return result_; }
    const LintReport &lastReport() const { return report_; }

    /** Options as amended by repair (defect cleared, demotions). */
    const RewriteOptions &options() const { return opts_; }

  private:
    void ensureCfg();

    /** Merge opts_.cachePath into the AnalysisCache (no-op when
     *  unset); must run before ensureCfg() to seed the CFG build. */
    CacheLoadReport mergeDiskCache();

    /** Save the AnalysisCache to opts_.cachePath after a successful
     *  rewrite (no-op when unset or @p result failed). */
    void saveDiskCache(const RewriteResult &result);

    BinaryImage owned_;
    const BinaryImage *input_;

    RewriteOptions opts_;
    LintOptions lintOpts_;

    CfgModule cfg_;
    bool cfgBuilt_ = false;
    AnalysisOptions cfgOpts_; ///< options cfg_ was built under

    RewriteResult result_;
    LintReport report_;
    bool hasResult_ = false;
    bool hasReport_ = false;

    /** Failed targeted re-rewrites per function name. */
    std::map<std::string, unsigned> failCounts_;
};

} // namespace icp

#endif // ICP_REWRITE_SESSION_HH
