# Empty dependencies file for dynamic_attach.
# This may be replaced when dependencies are built.
