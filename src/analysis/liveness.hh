/**
 * @file
 * Backward register liveness over a function CFG (§7): the long
 * trampoline sequences on ppc64le and aarch64 need a scratch
 * register to hold the branch target, found by this analysis.
 */

#ifndef ICP_ANALYSIS_LIVENESS_HH
#define ICP_ANALYSIS_LIVENESS_HH

#include <map>

#include "analysis/cfg.hh"
#include "isa/reg_usage.hh"

namespace icp
{

/** Live-register sets at block boundaries of one function. */
class LivenessResult
{
  public:
    /** Registers live at the start of the block at @p block_start. */
    RegSet liveAtBlockStart(Addr block_start) const;

    /**
     * A dead general-purpose register at the start of the block, or
     * Reg::none when everything may be live.
     */
    Reg deadRegAt(Addr block_start) const;

    std::map<Addr, RegSet> liveIn; ///< keyed by block start
};

/**
 * Compute liveness for @p func. Indirect control flow leaving the
 * function conservatively treats every register as live.
 */
LivenessResult computeLiveness(const Function &func,
                               const ArchInfo &arch);

} // namespace icp

#endif // ICP_ANALYSIS_LIVENESS_HH
