file(REMOVE_RECURSE
  "CMakeFiles/sbf_inspect.dir/sbf_inspect.cpp.o"
  "CMakeFiles/sbf_inspect.dir/sbf_inspect.cpp.o.d"
  "sbf_inspect"
  "sbf_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
