/**
 * @file
 * The cycle cost model. Absolute values are a model, not a claim
 * about real hardware; what matters for reproducing the paper is the
 * *relative* expense of the mechanisms: a trap is thousands of times
 * a plain instruction (signal delivery), an unwind step is tens of
 * instructions (DWARF recipe lookup), an icache miss is tens of
 * cycles, and everything else is small.
 */

#ifndef ICP_SIM_COST_MODEL_HH
#define ICP_SIM_COST_MODEL_HH

#include "support/types.hh"

namespace icp
{

struct CostModel
{
    Cycles base = 1;          ///< every instruction
    Cycles takenBranch = 1;   ///< extra for a taken branch
    Cycles callExtra = 2;
    Cycles retExtra = 2;
    Cycles memExtra = 2;      ///< extra for a memory access
    Cycles mulExtra = 3;
    Cycles icacheMiss = 30;
    Cycles trap = 5000;       ///< signal delivery + handler + return
    Cycles rtService = 12;    ///< call into the runtime library
    Cycles unwindStep = 80;   ///< one frame step (FDE lookup + recipe)
    /**
     * frdwarf-style compiled unwinding (§2.3): unwind recipes
     * pre-compiled to straight code, ~10x cheaper per frame. RA
     * translation composes with it unchanged, unlike
     * DWARF-rewriting approaches.
     */
    Cycles unwindStepCompiled = 8;
    Cycles raTranslate = 8;   ///< one .ra_map binary search
};

} // namespace icp

#endif // ICP_SIM_COST_MODEL_HH
