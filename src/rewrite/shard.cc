#include "rewrite/shard.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "analysis/liveness.hh"
#include "support/logging.hh"

namespace icp
{

std::vector<ShardRange>
planShards(const BinaryImage &image, unsigned shards)
{
    const auto syms = image.functionSymbols();
    const unsigned n = std::max(
        1u, std::min<unsigned>(
                shards, static_cast<unsigned>(syms.size())));

    // Boundaries at equal function-count splits; ranges tile the
    // whole address space so membership is a pure range test.
    std::vector<ShardRange> ranges;
    Addr lo = 0;
    for (unsigned k = 0; k < n; ++k) {
        ShardRange r;
        r.lo = lo;
        if (k + 1 == n) {
            r.hi = ~static_cast<Addr>(0);
        } else {
            const std::size_t split = syms.size() * (k + 1) / n;
            r.hi = syms[split]->addr;
        }
        lo = r.hi;
        ranges.push_back(r);
    }
    return ranges;
}

namespace
{

/**
 * The worker body: warm the cache shard for one range. Runs in a
 * forked child; must not touch the coordinator's state and exits
 * via _exit (no atexit/stdio teardown of the parent's handles).
 */
int
shardWorkerBody(const BinaryImage &image, const RewriteOptions &opts,
                const ShardRange &range,
                const std::string &cache_path)
{
    // The child inherits the parent's in-memory cache; drop it so
    // this worker's memory is bounded by its own shard.
    AnalysisCache::global().clear();
    AnalysisCache::global().load(cache_path, image.arch);

    AnalysisOptions analysis = opts.analysis;
    analysis.threads = 1;
    analysis.useCache = true;
    analysis.rangeLo = range.lo;
    analysis.rangeHi = range.hi;
    const CfgModule cfg = buildCfg(image, analysis);

    // Liveness for the functions the coordinator will instrument
    // (trampoline scratch-register selection on the fixed ISAs).
    const ArchInfo &arch = image.archInfo();
    if (arch.fixedLength) {
        for (const auto &[entry, func] : cfg.functions) {
            (void)entry;
            if (!func.instrumentable() || func.cacheKey == 0)
                continue;
            if (!opts.onlyFunctions.empty() &&
                !opts.onlyFunctions.count(func.name))
                continue;
            if (AnalysisCache::global().findLiveness(func.cacheKey,
                                                     func.entry))
                continue;
            AnalysisCache::global().storeLiveness(
                func.cacheKey, image.arch, func.entry,
                computeLiveness(func, arch));
        }
    }
    return AnalysisCache::global().save(cache_path) ? 0 : 1;
}

/**
 * Concurrency-test hook: when ICP_TEST_SHARD_BARRIER=<dir>:<count>
 * is set, the worker drops a start file into <dir> and waits (up to
 * ~10 s) until all <count> start files exist before doing any work.
 * Only a coordinator that launches every worker before reaping any
 * can pass the barrier; a serialized launch-reap loop would park its
 * single live worker in the timeout. Returns false on timeout.
 */
bool
maybeBarrierForTest(unsigned shard)
{
    const char *spec = std::getenv("ICP_TEST_SHARD_BARRIER");
    if (!spec)
        return true;
    const std::string s(spec);
    const std::size_t colon = s.rfind(':');
    if (colon == std::string::npos)
        return true;
    const std::string dir = s.substr(0, colon);
    const unsigned count =
        static_cast<unsigned>(std::atoi(s.c_str() + colon + 1));
    char path[512];
    std::snprintf(path, sizeof(path), "%s/shard-%u.started",
                  dir.c_str(), shard);
    if (std::FILE *f = std::fopen(path, "wb"))
        std::fclose(f);
    for (int spin = 0; spin < 10000; ++spin) {
        unsigned present = 0;
        for (unsigned k = 0; k < count; ++k) {
            std::snprintf(path, sizeof(path), "%s/shard-%u.started",
                          dir.c_str(), k);
            if (::access(path, F_OK) == 0)
                ++present;
        }
        if (present == count)
            return true;
        ::usleep(1000);
    }
    return false;
}

/**
 * Crash-test hook: simulate a worker killed mid-save by appending a
 * torn partial segment to the cache file (what an interrupted
 * appender leaves behind) and SIGKILLing ourselves.
 */
void
maybeKillForTest(unsigned shard, unsigned attempt,
                 const std::string &cache_path)
{
    const char *once = std::getenv("ICP_TEST_KILL_SHARD");
    const char *always = std::getenv("ICP_TEST_KILL_SHARD_ALWAYS");
    const char *sel = always ? always : once;
    if (!sel || static_cast<unsigned>(std::atoi(sel)) != shard)
        return;
    if (!always && attempt != 0)
        return;
    if (std::FILE *f = std::fopen(cache_path.c_str(), "ab")) {
        // A plausible-looking segment header cut off mid-payload.
        const std::uint8_t torn[] = {'I', 'C', 'P', 'S', 0xff, 0x13,
                                     0x37, 0x00, 0xde, 0xad};
        std::fwrite(torn, 1, sizeof(torn), f);
        std::fclose(f);
    }
    ::raise(SIGKILL);
}

} // namespace

void
runShardWorkers(const BinaryImage &image, const RewriteOptions &opts,
                const std::vector<ShardRange> &ranges,
                const std::string &cache_path,
                std::vector<ShardCounters> &counters)
{
    icp_assert(counters.size() == ranges.size(),
               "counters not sized to shard plan");

    // Fork one worker per shard (and, on failure, one sequential
    // retry). The attempt spawns the child and returns its pid (or
    // -1 under fork pressure); the reap waits for it and harvests
    // peak RSS. Shards write disjoint key sets and the cache save
    // serializes on the file's flock, so concurrent workers merge
    // segments instead of clobbering.
    auto launch = [&](std::size_t k, unsigned attempt) -> pid_t {
        ++counters[k].workerAttempts;
        const pid_t pid = ::fork();
        if (pid == 0) {
            maybeKillForTest(static_cast<unsigned>(k), attempt,
                             cache_path);
            if (!maybeBarrierForTest(static_cast<unsigned>(k)))
                ::_exit(3);
            ::_exit(shardWorkerBody(image, opts, ranges[k],
                                    cache_path));
        }
        return pid; // < 0: fork pressure — degrade, never fail
    };
    auto reap = [&](std::size_t k, pid_t pid) -> bool {
        if (pid < 0)
            return false;
        int status = 0;
        struct rusage ru;
        std::memset(&ru, 0, sizeof(ru));
        if (::wait4(pid, &status, 0, &ru) != pid)
            return false;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            return false;
#if defined(__APPLE__)
        counters[k].workerPeakRssBytes =
            static_cast<std::uint64_t>(ru.ru_maxrss);
#else
        counters[k].workerPeakRssBytes =
            static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
        return true;
    };

    // Phase 1: launch every shard's worker, then reap them all in
    // launch order — the analysis overlaps across cores instead of
    // serializing on each child's exit.
    std::vector<pid_t> pids(ranges.size(), -1);
    for (std::size_t k = 0; k < ranges.size(); ++k) {
        counters[k].lo = ranges[k].lo;
        counters[k].hi = ranges[k].hi;
        pids[k] = launch(k, 0);
    }
    std::vector<bool> ok(ranges.size(), false);
    for (std::size_t k = 0; k < ranges.size(); ++k)
        ok[k] = reap(k, pids[k]);

    // Phase 2: one sequential retry per failed shard (a crashed
    // worker may have left a torn cache tail; retrying serially
    // keeps the repair-then-append window simple to reason about).
    for (std::size_t k = 0; k < ranges.size(); ++k) {
        if (!ok[k])
            ok[k] = reap(k, launch(k, 1));
        // Degraded: the coordinator re-analyzes this range itself
        // when it gets there; the torn tail the crash may have left
        // is dropped by the store's load-time validation.
        counters[k].degraded = !ok[k];
    }
}

} // namespace icp
