#include "analysis/jump_table.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace icp
{

namespace
{

/** Abstract value tracked per register during the forward walk. */
struct AbsVal
{
    enum class Kind { unknown, constant, tableEntry };
    Kind kind = Kind::unknown;

    // constant
    std::uint64_t c = 0;
    std::vector<Addr> defAddrs;

    // tableEntry
    Addr table = 0;
    unsigned entrySize = 0;
    bool signedEntries = false;
    unsigned shift = 0;
    std::optional<Addr> base;
    std::vector<Addr> baseDefAddrs; ///< defs of the table constant
    Addr loadAddr = 0;
    Reg indexReg = Reg::none;
};

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
unitDraw(std::uint64_t seed, Addr addr, unsigned salt)
{
    return static_cast<double>(
               mix64(seed ^ addr ^ (std::uint64_t{salt} << 48)) >> 11) *
           0x1.0p-53;
}

} // namespace

JumpTableAnalyzer::JumpTableAnalyzer(const BinaryImage &image,
                                     const JumpTableFailurePlan &plan)
    : image_(image), plan_(plan)
{
}

std::optional<JumpTable>
JumpTableAnalyzer::analyze(const Block &block,
                           const Block *layout_pred) const
{
    icp_assert(!block.insns.empty(), "empty block");
    const Instruction &jump = block.last();
    if (jump.op != Opcode::JmpInd && jump.op != Opcode::JmpTar)
        return std::nullopt;

    // Injected "analysis reporting failure" (Figure 2, left path).
    if (plan_.failProb > 0 &&
        unitDraw(plan_.seed, jump.addr, 1) < plan_.failProb) {
        return std::nullopt;
    }

    // Forward abstract interpretation over the block.
    std::unordered_map<unsigned, AbsVal> regs;
    auto get = [&](Reg r) -> AbsVal {
        auto it = regs.find(static_cast<unsigned>(r));
        return it == regs.end() ? AbsVal{} : it->second;
    };
    auto set = [&](Reg r, AbsVal v) {
        regs[static_cast<unsigned>(r)] = std::move(v);
    };
    auto setUnknown = [&](Reg r) {
        if (r != Reg::none)
            regs.erase(static_cast<unsigned>(r));
    };

    const bool fixed = image_.archInfo().fixedLength;
    for (std::size_t i = 0; i + 1 < block.insns.size(); ++i) {
        const Instruction &in = block.insns[i];
        switch (in.op) {
          case Opcode::MovImm: {
            if (!fixed) {
                AbsVal v;
                v.kind = AbsVal::Kind::constant;
                v.c = static_cast<std::uint64_t>(in.imm);
                v.defAddrs = {in.addr};
                set(in.rd, v);
            } else if (!in.movKeep) {
                AbsVal v;
                v.kind = AbsVal::Kind::constant;
                v.c = static_cast<std::uint64_t>(in.imm & 0xffff)
                      << in.movShift;
                v.defAddrs = {in.addr};
                set(in.rd, v);
            } else {
                AbsVal v = get(in.rd);
                if (v.kind == AbsVal::Kind::constant) {
                    v.c = (v.c & ~(0xffffULL << in.movShift)) |
                          (static_cast<std::uint64_t>(in.imm & 0xffff)
                           << in.movShift);
                    v.defAddrs.push_back(in.addr);
                    set(in.rd, v);
                } else {
                    setUnknown(in.rd);
                }
            }
            break;
          }
          case Opcode::Lea:
          case Opcode::AdrPage: {
            AbsVal v;
            v.kind = AbsVal::Kind::constant;
            v.c = in.target;
            v.defAddrs = {in.addr};
            set(in.rd, v);
            break;
          }
          case Opcode::AddisToc: {
            AbsVal v;
            v.kind = AbsVal::Kind::constant;
            v.c = image_.tocBase +
                  (static_cast<std::uint64_t>(in.imm) << 16);
            v.defAddrs = {in.addr};
            set(in.rd, v);
            break;
          }
          case Opcode::AddImm: {
            AbsVal v = get(in.rd);
            if (v.kind == AbsVal::Kind::constant) {
                v.c += static_cast<std::uint64_t>(in.imm);
                v.defAddrs.push_back(in.addr);
                set(in.rd, v);
            } else {
                setUnknown(in.rd);
            }
            break;
          }
          case Opcode::MovReg:
            set(in.rd, get(in.rs1));
            break;
          case Opcode::LoadIdx: {
            const AbsVal baseVal = get(in.rs1);
            if (baseVal.kind == AbsVal::Kind::constant &&
                in.imm == 0) {
                AbsVal v;
                v.kind = AbsVal::Kind::tableEntry;
                v.table = baseVal.c;
                v.entrySize = in.memSize;
                v.signedEntries = in.signedLoad;
                v.baseDefAddrs = baseVal.defAddrs;
                v.loadAddr = in.addr;
                v.indexReg = in.rs2;
                set(in.rd, v);
            } else {
                setUnknown(in.rd);
            }
            break;
          }
          case Opcode::ShlImm: {
            AbsVal v = get(in.rd);
            if (v.kind == AbsVal::Kind::tableEntry) {
                v.shift += static_cast<unsigned>(in.imm);
                set(in.rd, v);
            } else if (v.kind == AbsVal::Kind::constant) {
                v.c <<= in.imm;
                set(in.rd, v);
            } else {
                setUnknown(in.rd);
            }
            break;
          }
          case Opcode::Add: {
            AbsVal a = get(in.rd);
            AbsVal b = get(in.rs1);
            if (a.kind == AbsVal::Kind::tableEntry &&
                b.kind == AbsVal::Kind::constant && !a.base) {
                a.base = b.c;
                set(in.rd, a);
            } else if (a.kind == AbsVal::Kind::constant &&
                       b.kind == AbsVal::Kind::tableEntry &&
                       !b.base) {
                b.base = a.c;
                set(in.rd, b);
            } else if (a.kind == AbsVal::Kind::constant &&
                       b.kind == AbsVal::Kind::constant) {
                a.c += b.c;
                a.defAddrs.push_back(in.addr);
                set(in.rd, a);
            } else {
                setUnknown(in.rd);
            }
            break;
          }
          case Opcode::Xor:
            if (in.rd == in.rs1) {
                AbsVal v;
                v.kind = AbsVal::Kind::constant;
                v.c = 0;
                v.defAddrs = {in.addr};
                set(in.rd, v);
            } else {
                setUnknown(in.rd);
            }
            break;
          case Opcode::MoveToTar:
            set(Reg::tar, get(in.rs1));
            break;
          // Loads from memory defeat the slice (value tracking
          // through memory is out of scope, as the paper notes for
          // "values spilled to and reloaded from memory").
          case Opcode::Load:
          case Opcode::LoadSz:
          case Opcode::Pop:
            setUnknown(in.rd);
            break;
          default:
            // Any other writer invalidates its destination.
            if (in.rd != Reg::none)
                setUnknown(in.rd);
            break;
        }
    }

    const Reg jreg = jump.op == Opcode::JmpTar ? Reg::tar : jump.rs1;
    const AbsVal v = get(jreg);
    if (v.kind != AbsVal::Kind::tableEntry)
        return std::nullopt;

    // Table bound from the guard in the layout predecessor:
    // CmpImm indexReg, N ; JmpCond ge, default.
    std::optional<unsigned> bound;
    if (layout_pred) {
        for (auto it = layout_pred->insns.rbegin();
             it != layout_pred->insns.rend(); ++it) {
            if (it->op == Opcode::CmpImm && it->rs1 == v.indexReg) {
                if (it->imm > 0)
                    bound = static_cast<unsigned>(it->imm);
                break;
            }
            // A write to the index register before the compare kills
            // the association.
            if (it->rd == v.indexReg)
                break;
        }
    }
    if (!bound)
        return std::nullopt;

    unsigned entries = *bound;

    // Assumption 2: never run past the containing section.
    const Section *sec = image_.sectionAt(v.table);
    if (!sec)
        return std::nullopt;
    const std::uint64_t room = (sec->end() - v.table) / v.entrySize;
    entries = static_cast<unsigned>(
        std::min<std::uint64_t>(entries, room));

    // Injected extent failures (Figure 2 middle/right paths).
    if (plan_.overProb > 0 &&
        unitDraw(plan_.seed, jump.addr, 2) < plan_.overProb) {
        entries = static_cast<unsigned>(std::min<std::uint64_t>(
            entries + plan_.overExtra, room));
    }
    if (plan_.underProb > 0 &&
        unitDraw(plan_.seed, jump.addr, 3) < plan_.underProb) {
        entries = std::max(1u, entries - std::min(entries - 1,
                                                  plan_.underCut));
    }

    JumpTable jt;
    jt.jumpAddr = jump.addr;
    jt.tableAddr = v.table;
    jt.entrySize = v.entrySize;
    jt.signedEntries = v.signedEntries;
    jt.shift = v.shift;
    jt.base = v.base;
    jt.baseDefAddrs = v.baseDefAddrs;
    jt.loadAddr = v.loadAddr;
    jt.entryCount = entries;
    jt.embeddedInCode =
        sec->kind == SectionKind::text || sec->executable;

    for (unsigned i = 0; i < entries; ++i) {
        auto raw = image_.readValue(v.table + std::uint64_t{i} *
                                        v.entrySize, v.entrySize);
        if (!raw)
            return std::nullopt;
        std::int64_t value = static_cast<std::int64_t>(*raw);
        if (v.signedEntries && v.entrySize < 8) {
            const std::uint64_t m = 1ULL << (v.entrySize * 8 - 1);
            value = static_cast<std::int64_t>((*raw ^ m) - m);
        }
        const Addr target = v.base
            ? static_cast<Addr>(static_cast<std::int64_t>(*v.base) +
                                (value << v.shift))
            : static_cast<Addr>(value << v.shift);
        jt.targets.push_back(target);
    }
    return jt;
}

} // namespace icp
