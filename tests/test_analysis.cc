/**
 * @file
 * Tests of the binary-analysis layer: CFG construction, jump-table
 * resolution on all three per-arch idioms, the gap-decoding tail
 * call heuristic, failure injection, liveness, and function-pointer
 * identification (including the Listing-1 +1 pattern).
 */

#include <gtest/gtest.h>

#include "analysis/builder.hh"
#include "analysis/funcptr.hh"
#include "analysis/liveness.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"

using namespace icp;

namespace
{

const Function &
funcByName(const CfgModule &cfg, const std::string &name)
{
    for (const auto &[entry, func] : cfg.functions) {
        if (func.name == name)
            return func;
    }
    ADD_FAILURE() << "no function " << name;
    static Function dummy;
    return dummy;
}

class CfgPerArch : public ::testing::TestWithParam<Arch>
{
};

std::string
archOnly(const ::testing::TestParamInfo<Arch> &info)
{
    switch (info.param) {
      case Arch::x64: return "x64";
      case Arch::ppc64le: return "ppc64le";
      case Arch::aarch64: return "aarch64";
    }
    return "unknown";
}

} // namespace

TEST_P(CfgPerArch, MicroCfgResolvesJumpTables)
{
    const BinaryImage img =
        compileProgram(microProfile(GetParam(), false));
    const CfgModule cfg = buildCfg(img);
    ASSERT_EQ(cfg.totalFunctions(), 6u);
    EXPECT_EQ(cfg.instrumentableFunctions(), 6u);

    const Function &sw = funcByName(cfg, "switcher");
    ASSERT_EQ(sw.jumpTables.size(), 1u);
    const JumpTable &jt = sw.jumpTables.front();
    EXPECT_EQ(jt.entryCount, 8u);
    EXPECT_EQ(jt.targets.size(), 8u);
    // Every target is a block inside the function.
    for (Addr t : jt.targets) {
        EXPECT_GE(t, sw.entry);
        EXPECT_LT(t, sw.end);
        EXPECT_TRUE(sw.blocks.count(t)) << std::hex << t;
    }
    if (GetParam() == Arch::ppc64le)
        EXPECT_TRUE(jt.embeddedInCode);
    else
        EXPECT_FALSE(jt.embeddedInCode);
    EXPECT_FALSE(jt.baseDefAddrs.empty());
}

TEST_P(CfgPerArch, IndirectTailCallHeuristic)
{
    const BinaryImage img =
        compileProgram(microProfile(GetParam(), false));

    // With the heuristic, the tail-calling worker is instrumentable.
    const CfgModule ours = buildCfg(img);
    const Function &worker = funcByName(ours, "worker");
    EXPECT_TRUE(worker.instrumentable());
    EXPECT_EQ(worker.indirectTailCalls.size(), 1u);

    // SRBI (no heuristic) marks it uninstrumentable.
    AnalysisOptions srbi;
    srbi.tailCallHeuristic = false;
    const CfgModule theirs = buildCfg(img, srbi);
    EXPECT_FALSE(funcByName(theirs, "worker").instrumentable());
}

TEST_P(CfgPerArch, LandingPadsAreBlocks)
{
    const BinaryImage img =
        compileProgram(microProfile(GetParam(), false));
    const CfgModule cfg = buildCfg(img);
    const Function &catcher = funcByName(cfg, "catcher");
    ASSERT_EQ(catcher.landingPads.size(), 1u);
    for (Addr lp : catcher.landingPads)
        EXPECT_TRUE(catcher.blocks.count(lp));
}

TEST_P(CfgPerArch, LivenessFindsScratchSomewhere)
{
    const BinaryImage img =
        compileProgram(microProfile(GetParam(), false));
    const CfgModule cfg = buildCfg(img);
    const auto &arch = ArchInfo::get(GetParam());
    unsigned with_dead = 0, total = 0;
    for (const auto &[entry, func] : cfg.functions) {
        const LivenessResult live = computeLiveness(func, arch);
        for (const auto &[start, block] : func.blocks) {
            ++total;
            if (live.deadRegAt(start) != Reg::none)
                ++with_dead;
        }
    }
    EXPECT_GT(total, 10u);
    EXPECT_GT(with_dead, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllArches, CfgPerArch,
                         ::testing::Values(Arch::x64, Arch::ppc64le,
                                           Arch::aarch64),
                         archOnly);

TEST(JumpTableFailures, HardSwitchFailsAnalysis)
{
    auto spec = microProfile(Arch::x64, false);
    spec.funcs[1].switches[0].hard = true;
    const BinaryImage img = compileProgram(spec);
    const CfgModule cfg = buildCfg(img);
    const Function &sw = funcByName(cfg, "switcher");
    EXPECT_FALSE(sw.instrumentable());
    EXPECT_EQ(sw.failure, AnalysisFailure::gapsWithRealCode);
    EXPECT_TRUE(sw.jumpTables.empty());
}

TEST(JumpTableFailures, InjectedFailureReducesCoverage)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    AnalysisOptions opts;
    opts.inject.failProb = 1.0;
    const CfgModule cfg = buildCfg(img, opts);
    EXPECT_LT(cfg.instrumentableFunctions(), cfg.totalFunctions());
}

TEST(JumpTableFailures, OverApproxClampedAtSectionEnd)
{
    // With no slack after the table, Assumption-2 trimming absorbs
    // the injected over-approximation entirely.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    AnalysisOptions opts;
    opts.inject.overProb = 1.0;
    opts.inject.overExtra = 64;
    const CfgModule over = buildCfg(img, opts);
    const auto &jt = funcByName(over, "switcher").jumpTables.front();
    EXPECT_EQ(jt.entryCount, 8u);
}

TEST(JumpTableFailures, InjectedOverApproxAddsTargets)
{
    auto spec = microProfile(Arch::x64, false);
    spec.rodataPadding = 4096; // slack the trimming cannot use
    const BinaryImage img = compileProgram(spec);
    AnalysisOptions opts;
    opts.inject.overProb = 1.0;
    opts.inject.overExtra = 4;
    const CfgModule over = buildCfg(img, opts);
    const CfgModule base = buildCfg(img);
    const auto &jt_over =
        funcByName(over, "switcher").jumpTables.front();
    const auto &jt_base =
        funcByName(base, "switcher").jumpTables.front();
    EXPECT_GT(jt_over.entryCount, jt_base.entryCount);
    // Still instrumentable: over-approximation is tolerated.
    EXPECT_TRUE(funcByName(over, "switcher").instrumentable());
}

TEST(JumpTableFailures, InjectedUnderApproxDropsTargets)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    AnalysisOptions opts;
    opts.inject.underProb = 1.0;
    opts.inject.underCut = 3;
    const CfgModule under = buildCfg(img, opts);
    const auto &jt = funcByName(under, "switcher").jumpTables.front();
    EXPECT_EQ(jt.entryCount, 5u);
}

TEST(FuncPtrAnalysis, FindsTableCellsAndCompares)
{
    // Non-PIE: absolute data cells + code immediates.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const CfgModule cfg = buildCfg(img);
    const auto fp = analyzeFuncPtrs(cfg);
    unsigned cells = 0, imms = 0;
    for (const auto &def : fp.defs) {
        if (def.kind == FuncPtrDef::Kind::dataCell)
            ++cells;
        else
            ++imms;
    }
    EXPECT_GT(cells, 0u);
    EXPECT_GT(imms, 0u); // the x == &f comparison's immediate
}

TEST(FuncPtrAnalysis, PieUsesRelocsAndPcRel)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    const CfgModule cfg = buildCfg(img);
    const auto fp = analyzeFuncPtrs(cfg);
    bool any_reloc = false, any_pcrel = false;
    for (const auto &def : fp.defs) {
        if (def.hasReloc)
            any_reloc = true;
        if (def.kind == FuncPtrDef::Kind::codePcRel)
            any_pcrel = true;
    }
    EXPECT_TRUE(any_reloc);
    EXPECT_TRUE(any_pcrel);
}

TEST(FuncPtrAnalysis, ListingOnePlusOneDelta)
{
    const BinaryImage img = compileProgram(dockerProfile());
    const CfgModule cfg = buildCfg(img);
    const auto fp = analyzeFuncPtrs(cfg);
    bool found_plus_one = false;
    for (const auto &def : fp.defs) {
        if (def.delta == 1)
            found_plus_one = true;
    }
    EXPECT_TRUE(found_plus_one);
    // Go vtab cells stay unclassified (the func-ptr-mode hazard).
    EXPECT_GT(fp.unclassifiedRelocs, 0u);
}

TEST(CfgSuite, SpecSuiteCoverageShape)
{
    // x64: everything instrumentable with our heuristic; SRBI loses
    // tail-call functions. ppc64le: hard switches stay failed.
    for (Arch arch : {Arch::x64, Arch::ppc64le}) {
        unsigned ours_fail = 0, srbi_fail = 0, total = 0;
        for (const auto &spec : specCpuSuite(arch, false)) {
            const BinaryImage img = compileProgram(spec);
            const CfgModule ours = buildCfg(img);
            AnalysisOptions srbi_opts;
            srbi_opts.tailCallHeuristic = false;
            const CfgModule srbi = buildCfg(img, srbi_opts);
            total += ours.totalFunctions();
            ours_fail +=
                ours.totalFunctions() - ours.instrumentableFunctions();
            srbi_fail +=
                srbi.totalFunctions() - srbi.instrumentableFunctions();
        }
        EXPECT_GE(srbi_fail, ours_fail) << archName(arch);
        if (arch == Arch::x64) {
            EXPECT_EQ(ours_fail, 0u);
            EXPECT_GT(srbi_fail, 0u);
        } else {
            EXPECT_GT(ours_fail, 0u);
        }
        EXPECT_GT(total, 500u);
    }
}
