file(REMOVE_RECURSE
  "CMakeFiles/test_binfmt.dir/test_binfmt.cc.o"
  "CMakeFiles/test_binfmt.dir/test_binfmt.cc.o.d"
  "test_binfmt"
  "test_binfmt.pdb"
  "test_binfmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
