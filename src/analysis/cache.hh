/**
 * @file
 * The incremental analysis cache: the "incremental" in incremental
 * CFG patching applied to analysis time. Per-function analysis
 * results (CFG with jump tables, liveness summaries) are memoized
 * under an FNV-1a key of the function's byte range, entry address,
 * architecture, and analysis options, so re-rewriting an unchanged
 * (or slightly changed) binary skips almost all analysis work: only
 * functions whose bytes actually changed are re-analyzed.
 *
 * Keying caveat: the key covers the function's own bytes plus every
 * non-executable loadable section (jump-table data may live in
 * .rodata), hashed once per image. Changing any data section
 * therefore invalidates the whole image's entries — conservative,
 * but never stale for the supported scenario.
 */

#ifndef ICP_ANALYSIS_CACHE_HH
#define ICP_ANALYSIS_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "analysis/builder.hh"
#include "analysis/liveness.hh"

namespace icp
{

/** Incremental FNV-1a (64-bit). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t hash = 0xcbf29ce484222325ULL);

/**
 * Image-wide key component: architecture, PIE-ness, analysis
 * options, and all non-executable loadable bytes. Computed once per
 * buildCfg call and folded into every function key.
 */
std::uint64_t imageCacheSeed(const BinaryImage &image,
                             const AnalysisOptions &opts);

/**
 * Key of one function's analysis results under @p seed: its entry,
 * size, name, landing-pad layout, and code bytes.
 */
std::uint64_t functionCacheKey(const BinaryImage &image,
                               const Symbol &sym,
                               const std::vector<TryRange> &tries,
                               std::uint64_t seed);

/**
 * Process-wide memo of per-function analysis results. Thread-safe;
 * entries are shared immutable snapshots. Consulted by buildCfg
 * (function CFGs) and the rewriter (liveness), so the second
 * rewrite of the same image reuses >= 95% of analysis work.
 */
class AnalysisCache
{
  public:
    struct Stats
    {
        std::uint64_t functionHits = 0;
        std::uint64_t functionMisses = 0;
        std::uint64_t livenessHits = 0;
        std::uint64_t livenessMisses = 0;

        std::uint64_t
        hits() const
        {
            return functionHits + livenessHits;
        }

        std::uint64_t
        misses() const
        {
            return functionMisses + livenessMisses;
        }
    };

    static AnalysisCache &global();

    /** nullptr on miss. Counts a hit/miss either way. */
    std::shared_ptr<const Function> findFunction(std::uint64_t key);
    void storeFunction(std::uint64_t key, Function func);

    std::shared_ptr<const LivenessResult>
    findLiveness(std::uint64_t key);
    void storeLiveness(std::uint64_t key, LivenessResult live);

    Stats stats() const;
    std::size_t entryCount() const;
    void clear();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const Function>>
        functions_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const LivenessResult>>
        liveness_;
    Stats stats_;
};

} // namespace icp

#endif // ICP_ANALYSIS_CACHE_HH
