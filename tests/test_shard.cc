/**
 * @file
 * Sharded-rewrite tests: shard planning properties, byte identity of
 * the multi-process streaming path against the classic materializing
 * rewrite across ISAs and modes, worker-crash retry/degradation with
 * a loadable cache, and rejection of incompatible option combos.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "binfmt/stream_writer.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "rewrite/shard.hh"

using namespace icp;

namespace
{

/**
 * Baseline options for sharded-vs-classic comparisons. threads=1 so
 * the in-process coordinator never forks after spawning a thread
 * pool; no cache file unless a test opts in.
 */
RewriteOptions
shardOptions(RewriteMode mode, unsigned shards)
{
    RewriteOptions opts;
    opts.mode = mode;
    opts.threads = 1;
    opts.shards = shards;
    return opts;
}

/** Run the classic path and return its serialized output bytes. */
std::vector<std::uint8_t>
classicBytes(const BinaryImage &img, RewriteOptions opts)
{
    opts.shards = 0;
    opts.cachePath.clear(); // never warm the sharded run's file
    AnalysisCache::global().clear();
    const RewriteResult rw = rewriteBinary(img, opts);
    EXPECT_TRUE(rw.ok) << rw.failReason;
    return rw.image.serialize();
}

/** Run the sharded path into a VectorSink; also exposes the result. */
std::vector<std::uint8_t>
shardedBytes(const BinaryImage &img, const RewriteOptions &opts,
             RewriteResult *result_out = nullptr)
{
    AnalysisCache::global().clear();
    std::vector<std::uint8_t> bytes;
    VectorSink sink(bytes);
    RewriteResult rw = rewriteBinarySharded(img, opts, sink);
    EXPECT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(rw.image.sections.empty()); // streamed, not held
    if (result_out)
        *result_out = std::move(rw);
    return bytes;
}

std::string
tempCachePath(const char *tag)
{
    return "/tmp/icp-test-shard-" + std::string(tag) + "." +
           std::to_string(getpid()) + ".sbfc";
}

void
removeCache(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

} // namespace

TEST(ShardPlan, RangesTileAddressSpace)
{
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, true));
    for (unsigned n : {1u, 2u, 3u, 7u}) {
        const auto ranges = planShards(img, n);
        ASSERT_FALSE(ranges.empty());
        EXPECT_LE(ranges.size(), n);
        EXPECT_EQ(ranges.front().lo, 0u);
        EXPECT_EQ(ranges.back().hi, ~static_cast<Addr>(0));
        for (std::size_t i = 0; i < ranges.size(); ++i) {
            EXPECT_LT(ranges[i].lo, ranges[i].hi);
            if (i) {
                EXPECT_EQ(ranges[i].lo, ranges[i - 1].hi);
            }
        }
    }
}

TEST(ShardPlan, BalancesFunctionCounts)
{
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, true));
    const auto syms = img.functionSymbols();
    const auto ranges = planShards(img, 4);
    ASSERT_EQ(ranges.size(), 4u);
    for (const ShardRange &r : ranges) {
        unsigned count = 0;
        for (const Symbol *sym : syms)
            if (sym->addr >= r.lo && sym->addr < r.hi)
                ++count;
        // Near-equal split: within one of size/4 either way.
        EXPECT_NEAR(count, syms.size() / 4.0, syms.size() / 8.0);
    }
}

TEST(ShardPlan, ClampsToFunctionCount)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const auto ranges =
        planShards(img, 1000); // far more shards than functions
    EXPECT_LE(ranges.size(), img.functionSymbols().size());
    EXPECT_GE(ranges.size(), 1u);
}

TEST(ShardRewrite, ByteIdenticalAcrossArchesAndModes)
{
    for (Arch arch : {Arch::x64, Arch::aarch64, Arch::ppc64le}) {
        const BinaryImage img =
            compileProgram(chromiumSmallProfile(arch, true));
        for (RewriteMode mode : {RewriteMode::dir, RewriteMode::jt,
                                 RewriteMode::funcPtr}) {
            const RewriteOptions opts = shardOptions(mode, 3);
            const auto classic = classicBytes(img, opts);
            RewriteResult rw;
            const auto sharded = shardedBytes(img, opts, &rw);
            EXPECT_EQ(sharded, classic)
                << archName(arch) << " mode "
                << rewriteModeName(mode);
            ASSERT_EQ(rw.stats.shards.size(), 3u);
            unsigned funcs = 0, inst = 0;
            for (const ShardCounters &sc : rw.stats.shards) {
                funcs += sc.functions;
                inst += sc.instrumented;
                EXPECT_GT(sc.blocks, 0u);
                EXPECT_GE(sc.insns, sc.blocks);
            }
            EXPECT_EQ(funcs, rw.stats.totalFunctions);
            EXPECT_EQ(inst, rw.stats.instrumentedFunctions);
        }
    }
}

TEST(ShardRewrite, ShardCountInvariant)
{
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::aarch64, false));
    const auto one =
        shardedBytes(img, shardOptions(RewriteMode::jt, 1));
    const auto four =
        shardedBytes(img, shardOptions(RewriteMode::jt, 4));
    EXPECT_EQ(one, four);
}

TEST(ShardRewrite, TinyStreamWindowStaysIdentical)
{
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, false));
    RewriteOptions opts = shardOptions(RewriteMode::jt, 2);
    const auto classic = classicBytes(img, opts);
    opts.streamWindowBytes = 1;
    EXPECT_EQ(shardedBytes(img, opts), classic);
}

TEST(ShardRewrite, ClobberAndCallEmulationIdentical)
{
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::aarch64, true));
    for (int variant = 0; variant < 2; ++variant) {
        RewriteOptions opts = shardOptions(RewriteMode::jt, 3);
        if (variant == 0)
            opts.clobberOriginal = true;
        else
            opts.raTranslation = false; // call emulation
        EXPECT_EQ(shardedBytes(img, opts), classicBytes(img, opts))
            << "variant " << variant;
    }
}

TEST(ShardRewrite, CountersIdenticalWithInstrumentation)
{
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, true));
    RewriteOptions opts = shardOptions(RewriteMode::jt, 2);
    opts.instrumentation.countBlocks = true;
    opts.instrumentation.countFunctionEntries = true;
    AnalysisCache::global().clear();
    const RewriteResult classic = rewriteBinary(
        img, [&] {
            RewriteOptions o = opts;
            o.shards = 0;
            return o;
        }());
    ASSERT_TRUE(classic.ok) << classic.failReason;
    RewriteResult sharded;
    const auto bytes = shardedBytes(img, opts, &sharded);
    EXPECT_EQ(bytes, classic.image.serialize());
    EXPECT_EQ(sharded.blockCounters, classic.blockCounters);
    EXPECT_EQ(sharded.entryCounters, classic.entryCounters);
}

TEST(ShardWorkers, KilledWorkerRetriesAndCacheStaysLoadable)
{
    const std::string cache = tempCachePath("retry");
    removeCache(cache);
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, true));
    RewriteOptions opts = shardOptions(RewriteMode::jt, 3);
    opts.cachePath = cache;
    const auto classic = classicBytes(img, opts);

    setenv("ICP_TEST_KILL_SHARD", "1", 1);
    RewriteResult rw;
    const auto bytes = shardedBytes(img, opts, &rw);
    unsetenv("ICP_TEST_KILL_SHARD");

    EXPECT_EQ(bytes, classic);
    ASSERT_EQ(rw.stats.shards.size(), 3u);
    EXPECT_EQ(rw.stats.shards[1].workerAttempts, 2u);
    EXPECT_FALSE(rw.stats.shards[1].degraded);
    EXPECT_EQ(rw.stats.shards[0].workerAttempts, 1u);

    // The torn tail the killed worker left behind must not poison
    // the shard file: a fresh load sees only complete segments.
    AnalysisCache::global().clear();
    const CacheLoadReport report =
        AnalysisCache::global().load(cache, img.arch);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.droppedEntries, 0u);
    EXPECT_GT(report.loadedEntries(), 0u);
    removeCache(cache);
}

TEST(ShardWorkers, PersistentCrashDegradesButStaysCorrect)
{
    const std::string cache = tempCachePath("degrade");
    removeCache(cache);
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, true));
    RewriteOptions opts = shardOptions(RewriteMode::jt, 3);
    opts.cachePath = cache;
    const auto classic = classicBytes(img, opts);

    setenv("ICP_TEST_KILL_SHARD_ALWAYS", "2", 1);
    RewriteResult rw;
    const auto bytes = shardedBytes(img, opts, &rw);
    unsetenv("ICP_TEST_KILL_SHARD_ALWAYS");

    EXPECT_EQ(bytes, classic);
    ASSERT_EQ(rw.stats.shards.size(), 3u);
    EXPECT_EQ(rw.stats.shards[2].workerAttempts, 2u);
    EXPECT_TRUE(rw.stats.shards[2].degraded);
    EXPECT_EQ(rw.stats.shards[2].workerPeakRssBytes, 0u);

    AnalysisCache::global().clear();
    const CacheLoadReport report =
        AnalysisCache::global().load(cache, img.arch);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.droppedEntries, 0u);
    removeCache(cache);
}

TEST(ShardWorkers, AllWorkersRunConcurrently)
{
    // Workers rendezvous on a start-file barrier that only completes
    // when every shard's process is alive at the same time: a
    // coordinator that serialized launch and reap would park its one
    // live worker in the barrier timeout and degrade the shard.
    const std::string dir =
        "/tmp/icp-test-shard-barrier." + std::to_string(getpid());
    std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
    const BinaryImage img =
        compileProgram(chromiumSmallProfile(Arch::x64, true));
    const RewriteOptions opts = shardOptions(RewriteMode::jt, 3);
    const auto classic = classicBytes(img, opts);

    setenv("ICP_TEST_SHARD_BARRIER", (dir + ":3").c_str(), 1);
    RewriteResult rw;
    const auto bytes = shardedBytes(img, opts, &rw);
    unsetenv("ICP_TEST_SHARD_BARRIER");
    std::system(("rm -rf " + dir).c_str());

    EXPECT_EQ(bytes, classic);
    ASSERT_EQ(rw.stats.shards.size(), 3u);
    for (const ShardCounters &sc : rw.stats.shards) {
        EXPECT_EQ(sc.workerAttempts, 1u);
        EXPECT_FALSE(sc.degraded);
    }
}

TEST(ShardRewrite, RejectsIncompatibleOptions)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    std::vector<std::uint8_t> bytes;

    {
        RewriteOptions opts = shardOptions(RewriteMode::jt, 2);
        opts.functionOrder = OrderPolicy::reversed;
        VectorSink sink(bytes);
        const RewriteResult rw =
            rewriteBinarySharded(img, opts, sink);
        EXPECT_FALSE(rw.ok);
        EXPECT_FALSE(rw.failReason.empty());
    }
    {
        RewriteOptions opts = shardOptions(RewriteMode::jt, 2);
        opts.injectDefect = InjectDefect::trampTarget;
        VectorSink sink(bytes);
        const RewriteResult rw =
            rewriteBinarySharded(img, opts, sink);
        EXPECT_FALSE(rw.ok);
        EXPECT_FALSE(rw.failReason.empty());
    }
    {
        RewriteOptions opts = shardOptions(RewriteMode::jt, 2);
        opts.reachabilityPruning = true;
        opts.clobberOriginal = true;
        VectorSink sink(bytes);
        const RewriteResult rw =
            rewriteBinarySharded(img, opts, sink);
        EXPECT_FALSE(rw.ok);
        EXPECT_FALSE(rw.failReason.empty());
    }
}
