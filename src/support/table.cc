#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace icp
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    icp_assert(!header_.empty(), "TextTable: empty header");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    icp_assert(cells.size() == header_.size(),
               "TextTable: row width %zu != header width %zu",
               cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = cells[c];
            s += " " + v + std::string(widths[c] - v.size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::ostringstream out;
    out << rule() << line(header_) << rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out << rule();
        else
            out << line(row);
    }
    out << rule();
    return out.str();
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
TextTable::json() const
{
    std::ostringstream out;
    out << "[";
    bool first_row = true;
    for (const auto &row : rows_) {
        if (row.empty())
            continue; // separator
        out << (first_row ? "\n" : ",\n") << "  {";
        first_row = false;
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c ? ", " : "") << "\"" << jsonEscape(header_[c])
                << "\": \"" << jsonEscape(row[c]) << "\"";
        }
        out << "}";
    }
    out << "\n]\n";
    return out.str();
}

} // namespace icp
