file(REMOVE_RECURSE
  "CMakeFiles/test_trampoline_exec.dir/test_trampoline_exec.cc.o"
  "CMakeFiles/test_trampoline_exec.dir/test_trampoline_exec.cc.o.d"
  "test_trampoline_exec"
  "test_trampoline_exec.pdb"
  "test_trampoline_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trampoline_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
