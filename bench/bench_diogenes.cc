/**
 * @file
 * Reproduces the Diogenes case study (§9): partial instrumentation
 * of a libcuda.so analog — only the driver-API functions and their
 * dispatch helpers are instrumented (700 of 12644 in the paper) to
 * locate the hidden synchronization function. Mainstream Dyninst
 * places per-block trampolines with no scratch-space chaining, so
 * the driver's dense tiny dispatch blocks become trap trampolines;
 * our placement + jump-table cloning eliminates them. The paper
 * reports the instrumentation test dropping from 30 minutes to 30
 * seconds (~60x).
 */

#include <cstdio>
#include <string>

#include "baselines/srbi.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/verify.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

RunResult
runImage(const BinaryImage &img)
{
    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    return machine.run();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Diogenes case study (§9): partial instrumentation "
                "of the libcuda.so analog\n\n");
    const BinaryImage img = compileProgram(libcudaProfile());
    const unsigned total =
        static_cast<unsigned>(img.functionSymbols().size());

    // The Diogenes subset: public driver APIs plus the dispatch
    // helpers on their call paths.
    std::set<std::string> subset;
    for (const Symbol *sym : img.functionSymbols()) {
        if (sym->name.rfind("cu_api", 0) == 0)
            subset.insert(sym->name);
        else if (sym->name.rfind("cu_f", 0) == 0) {
            const unsigned idx = static_cast<unsigned>(
                std::stoul(sym->name.substr(4)));
            if (idx < 170)
                subset.insert(sym->name);
        }
    }
    std::printf("instrumenting %zu of %u functions\n\n",
                subset.size(), total);

    auto golden_proc = loadImage(img);
    Machine golden(*golden_proc, Machine::Config{});
    const RunResult golden_run = golden.run();

    // Mainstream Dyninst: per-block trampolines, no multi-hop.
    RewriteOptions mainstream = srbiOptions();
    mainstream.onlyFunctions = subset;
    mainstream.instrumentation.countFunctionEntries = true;
    const RewriteResult main_rw = rewriteBinary(img, mainstream);

    // Ours: jt mode with trampoline placement analysis.
    RewriteOptions ours;
    ours.mode = RewriteMode::jt;
    ours.onlyFunctions = subset;
    ours.instrumentation.countFunctionEntries = true;
    const RewriteResult ours_rw = rewriteBinary(img, ours);

    const RunResult main_run = runImage(main_rw.image);
    const RunResult ours_run = runImage(ours_rw.image);

    TextTable table({"Tool", "Trap tramps", "Run traps",
                     "Instr test cycles", "vs golden"});
    auto pct = [&](const RunResult &r) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fx",
                      static_cast<double>(r.cycles) /
                          static_cast<double>(golden_run.cycles));
        return std::string(buf);
    };
    table.addRow({"golden (uninstrumented)", "-", "-",
                  std::to_string(golden_run.cycles), "1.00x"});
    table.addRow({"mainstream Dyninst (per-block, no chaining)",
                  std::to_string(main_rw.stats.trapTramps),
                  std::to_string(main_run.traps),
                  std::to_string(main_run.cycles), pct(main_run)});
    table.addRow({"our approach (jt + placement analysis)",
                  std::to_string(ours_rw.stats.trapTramps),
                  std::to_string(ours_run.traps),
                  std::to_string(ours_run.cycles), pct(ours_run)});
    std::printf("%s\n", table.render().c_str());

    const double speedup = static_cast<double>(main_run.cycles) /
                           static_cast<double>(ours_run.cycles);
    std::printf("Instrumentation test speedup: %.1fx "
                "(paper: 30 minutes -> 30 seconds, ~60x,\n"
                "attributed to the reduction of trap-based "
                "trampolines)\n",
                speedup);
    std::printf("\nPartial instrumentation worked without touching "
                "the other %zu functions\n(Egalito could not rewrite "
                "the library at all: symbol versioning).\n",
                total - subset.size());
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          table.json()))
        return 1;
    return 0;
}
