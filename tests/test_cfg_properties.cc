/**
 * @file
 * CFG structural-invariant property tests, swept across every
 * workload of the suite on every ISA:
 *
 *  - blocks are disjoint and lie inside their function;
 *  - every edge targets a block start of the same function;
 *  - instruction streams tile their blocks exactly;
 *  - resolved jump-table targets are case-block starts;
 *  - bytes not covered by blocks are nop padding or embedded table
 *    data in instrumentable functions;
 *  - liveness sets are consistent with a simple transfer-function
 *    recomputation.
 */

#include <gtest/gtest.h>

#include "analysis/builder.hh"
#include "analysis/liveness.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"

using namespace icp;

namespace
{

class CfgProps : public ::testing::TestWithParam<Arch>
{
};

std::string
archOnly(const ::testing::TestParamInfo<Arch> &info)
{
    switch (info.param) {
      case Arch::x64: return "x64";
      case Arch::ppc64le: return "ppc64le";
      case Arch::aarch64: return "aarch64";
    }
    return "unknown";
}

} // namespace

TEST_P(CfgProps, BlocksTileAndEdgesResolve)
{
    const auto suite = specCpuSuite(GetParam(), false);
    for (unsigned b = 0; b < suite.size(); b += 3) {
        const BinaryImage img = compileProgram(suite[b]);
        const CfgModule cfg = buildCfg(img, AnalysisOptions{});
        for (const auto &[entry, func] : cfg.functions) {
            Addr prev_end = 0;
            for (const auto &[start, block] : func.blocks) {
                // Inside the function, disjoint, ordered.
                ASSERT_GE(start, func.entry);
                ASSERT_LE(block.end, func.end);
                ASSERT_GE(start, prev_end);
                prev_end = block.end;

                // Instructions tile the block exactly.
                Addr cursor = start;
                for (const auto &in : block.insns) {
                    ASSERT_EQ(in.addr, cursor);
                    cursor += in.length;
                }
                ASSERT_EQ(cursor, block.end);

                // Edges target block starts of this function.
                for (const auto &edge : block.succs) {
                    ASSERT_TRUE(func.blocks.count(edge.target))
                        << func.name << " edge to " << std::hex
                        << edge.target;
                }
            }
        }
    }
}

TEST_P(CfgProps, JumpTableTargetsAreCaseBlocks)
{
    const auto suite = specCpuSuite(GetParam(), false);
    const BinaryImage img = compileProgram(suite[1]); // switch-heavy
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    unsigned tables = 0;
    for (const auto &[entry, func] : cfg.functions) {
        for (const auto &jt : func.jumpTables) {
            ++tables;
            EXPECT_GT(jt.entryCount, 0u);
            EXPECT_EQ(jt.targets.size(), jt.entryCount);
            for (Addr t : jt.targets) {
                EXPECT_TRUE(func.blocks.count(t))
                    << func.name << " target " << std::hex << t;
            }
            EXPECT_FALSE(jt.baseDefAddrs.empty());
            // The base defs live in the same function.
            for (Addr d : jt.baseDefAddrs) {
                EXPECT_NE(func.blockAt(d), nullptr);
            }
        }
    }
    EXPECT_GT(tables, 10u);
}

TEST_P(CfgProps, UncoveredBytesAreNopsOrTableData)
{
    const auto &arch = ArchInfo::get(GetParam());
    const auto suite = specCpuSuite(GetParam(), false);
    const BinaryImage img = compileProgram(suite[0]);
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    for (const auto &[entry, func] : cfg.functions) {
        if (!func.instrumentable())
            continue;
        // Collect covered ranges: blocks + embedded tables.
        std::vector<std::pair<Addr, Addr>> covered;
        for (const auto &[start, block] : func.blocks)
            covered.emplace_back(start, block.end);
        for (const auto &jt : func.jumpTables) {
            if (jt.embeddedInCode) {
                covered.emplace_back(
                    jt.tableAddr,
                    jt.tableAddr +
                        std::uint64_t{jt.entryCount} * jt.entrySize);
            }
        }
        std::sort(covered.begin(), covered.end());
        Addr cursor = func.entry;
        for (const auto &[lo, hi] : covered) {
            while (cursor < lo) {
                std::vector<std::uint8_t> bytes;
                ASSERT_TRUE(img.readBytes(cursor, arch.maxInstrLen,
                                          bytes) ||
                            img.readBytes(cursor, 1, bytes));
                Instruction in;
                ASSERT_TRUE(arch.codec->decode(
                    bytes.data(), bytes.size(), cursor, in))
                    << func.name << " gap at " << std::hex << cursor;
                ASSERT_EQ(in.op, Opcode::Nop)
                    << func.name << " gap at " << std::hex << cursor;
                cursor += in.length;
            }
            cursor = std::max(cursor, hi);
        }
    }
}

TEST_P(CfgProps, LivenessIsAFixpoint)
{
    const auto &arch = ArchInfo::get(GetParam());
    const BinaryImage img =
        compileProgram(microProfile(GetParam(), false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    for (const auto &[entry, func] : cfg.functions) {
        const LivenessResult live = computeLiveness(func, arch);
        for (const auto &[start, block] : func.blocks) {
            // Recompute in = use ∪ (out − def) from scratch and
            // compare against the analysis' fixpoint.
            RegSet out;
            bool all_live = block.endsFunction ||
                            block.endsInUnresolvedIndirect ||
                            block.succs.empty();
            if (all_live) {
                for (unsigned r = 0; r < num_regs; ++r)
                    out.add(static_cast<Reg>(r));
            }
            for (const auto &edge : block.succs)
                out |= live.liveAtBlockStart(edge.target);

            RegSet in = out;
            for (auto it = block.insns.rbegin();
                 it != block.insns.rend(); ++it) {
                in -= regsWritten(*it, arch);
                if (isCall(it->op)) {
                    // Calls clobber caller-saved registers.
                    for (unsigned r = 0; r < num_gp_regs; ++r) {
                        const Reg reg = static_cast<Reg>(r);
                        if (reg != Reg::r6 && reg != Reg::r8 &&
                            reg != Reg::r9)
                            in.remove(reg);
                    }
                }
                in |= regsRead(*it, arch);
                if (isCall(it->op)) {
                    in.add(Reg::r1);
                    in.add(Reg::sp);
                }
            }
            EXPECT_EQ(in.raw(),
                      live.liveAtBlockStart(start).raw())
                << func.name << " block " << std::hex << start;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllArches, CfgProps,
                         ::testing::Values(Arch::x64, Arch::ppc64le,
                                           Arch::aarch64),
                         archOnly);
