file(REMOVE_RECURSE
  "CMakeFiles/bench_diogenes.dir/bench_diogenes.cc.o"
  "CMakeFiles/bench_diogenes.dir/bench_diogenes.cc.o.d"
  "bench_diogenes"
  "bench_diogenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diogenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
