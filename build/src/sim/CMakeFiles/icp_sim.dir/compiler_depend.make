# Empty compiler generated dependencies file for icp_sim.
# This may be replaced when dependencies are built.
