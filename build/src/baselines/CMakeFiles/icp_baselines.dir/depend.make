# Empty dependencies file for icp_baselines.
# This may be replaced when dependencies are built.
