# Empty dependencies file for icp_isa.
# This may be replaced when dependencies are built.
