file(REMOVE_RECURSE
  "libicp_sim.a"
)
