/**
 * @file
 * The Diogenes pattern (§9): partial instrumentation of a large
 * driver library to locate an internal function. Only the public
 * driver APIs and their dispatch helpers are instrumented with
 * entry counters; the rest of the library — including functions the
 * analysis might not handle — is left untouched. The "hidden
 * synchronization function" analog is the helper called by every
 * public API.
 *
 * Usage: ./build/examples/partial_instrumentation
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

int
main()
{
    const BinaryImage img = compileProgram(libcudaProfile());
    std::printf("driver library: %zu functions\n",
                img.functionSymbols().size());

    // Instrument only the public APIs plus candidate helpers.
    std::set<std::string> subset;
    for (const Symbol *sym : img.functionSymbols()) {
        if (sym->name.rfind("cu_api", 0) == 0)
            subset.insert(sym->name);
        else if (sym->name.rfind("cu_f", 0) == 0 &&
                 std::stoul(sym->name.substr(4)) < 120)
            subset.insert(sym->name);
    }

    RewriteOptions options;
    options.mode = RewriteMode::jt;
    options.onlyFunctions = subset;
    options.instrumentation.countFunctionEntries = true;
    const RewriteResult rewritten = rewriteBinary(img, options);
    if (!rewritten.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rewritten.failReason.c_str());
        return 1;
    }
    std::printf("instrumented %u functions; %u total in binary\n",
                rewritten.stats.instrumentedFunctions,
                rewritten.stats.totalFunctions);

    auto proc = loadImage(rewritten.image);
    RuntimeLib runtime(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&runtime);
    const RunResult run = machine.run();
    if (!run.halted) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.describe().c_str());
        return 1;
    }

    // Find the helper reached from the most public APIs — the
    // "internal synchronization function" of the case study.
    struct Entry
    {
        std::string name;
        std::uint64_t calls;
    };
    std::vector<Entry> helpers;
    for (const auto &[entry, id] : rewritten.entryCounters) {
        const Symbol *sym = img.functionContaining(entry);
        if (!sym || sym->name.rfind("cu_f", 0) != 0)
            continue;
        const std::uint64_t count =
            id < run.counters.size() ? run.counters[id] : 0;
        if (count > 0)
            helpers.push_back({sym->name, count});
    }
    std::sort(helpers.begin(), helpers.end(),
              [](const Entry &a, const Entry &b) {
                  return a.calls > b.calls;
              });
    std::printf("\nmost-called internal helpers (the deepest common "
                "callee is the target):\n");
    for (std::size_t i = 0; i < helpers.size() && i < 5; ++i) {
        std::printf("  %-12s %llu calls\n", helpers[i].name.c_str(),
                    static_cast<unsigned long long>(
                        helpers[i].calls));
    }
    std::printf("\ninstrumentation ran without analyzing or touching "
                "the other %u functions.\n",
                rewritten.stats.totalFunctions -
                    rewritten.stats.instrumentedFunctions);
    return 0;
}
