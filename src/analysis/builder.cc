#include "analysis/builder.hh"

#include <algorithm>
#include <deque>

#include "analysis/cache.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace icp
{

namespace
{

/** Per-function construction state. */
class FunctionBuilder
{
  public:
    FunctionBuilder(const BinaryImage &image,
                    const AnalysisOptions &opts, const Symbol &sym,
                    const std::vector<TryRange> &try_ranges)
        : image_(image), opts_(opts), analyzer_(image, opts.inject)
    {
        func_.name = sym.name;
        func_.entry = sym.addr;
        func_.end = sym.addr + sym.size;
        for (const auto &range : try_ranges)
            func_.landingPads.insert(sym.addr + range.lpOff);
    }

    Function build();

  private:
    bool decodeAt(Addr addr, Instruction &in) const;
    void traverseFrom(Addr addr);
    void formBlocks();
    void resolveIndirectJumps();
    void classifyGaps();

    bool
    inFunction(Addr a) const
    {
        return a >= func_.entry && a < func_.end;
    }

    const BinaryImage &image_;
    const AnalysisOptions &opts_;
    JumpTableAnalyzer analyzer_;

    Function func_;
    std::map<Addr, Instruction> insns_;
    std::set<Addr> leaders_;
    std::deque<Addr> work_;

    /** Ranges of embedded jump-table data (not code). */
    std::vector<std::pair<Addr, Addr>> dataRanges_;

    /** Unresolved indirect jumps (candidates for the heuristic). */
    std::vector<Addr> unresolved_;
};

bool
FunctionBuilder::decodeAt(Addr addr, Instruction &in) const
{
    const auto &arch = image_.archInfo();
    std::vector<std::uint8_t> bytes;
    const std::size_t want = std::min<std::uint64_t>(
        arch.maxInstrLen, func_.end - addr);
    if (want == 0 || !image_.readBytes(addr, want, bytes))
        return false;
    return arch.codec->decode(bytes.data(), bytes.size(), addr, in);
}

void
FunctionBuilder::traverseFrom(Addr start)
{
    if (!inFunction(start) || insns_.count(start))
        return;
    if (start % image_.archInfo().instrAlign != 0)
        return;
    Addr cur = start;
    while (inFunction(cur) && !insns_.count(cur)) {
        Instruction in;
        if (!decodeAt(cur, in)) {
            // Undecodable byte: stop this run; the gap classifier
            // will see it.
            return;
        }
        insns_.emplace(cur, in);
        const Addr next = cur + in.length;

        if (isControlFlow(in.op)) {
            switch (in.op) {
              case Opcode::Jmp:
                if (inFunction(in.target)) {
                    leaders_.insert(in.target);
                    work_.push_back(in.target);
                }
                // Targets outside are direct tail calls.
                break;
              case Opcode::JmpCond:
                if (inFunction(in.target)) {
                    leaders_.insert(in.target);
                    work_.push_back(in.target);
                }
                leaders_.insert(next);
                work_.push_back(next);
                break;
              case Opcode::Call:
              case Opcode::CallInd:
              case Opcode::CallIndMem:
                leaders_.insert(next);
                work_.push_back(next);
                break;
              default:
                // Ret/Halt/Trap/Throw/JmpInd/JmpTar terminate runs.
                break;
            }
            return;
        }
        cur = next;
        if (leaders_.count(cur))
            return;
    }
}

void
FunctionBuilder::formBlocks()
{
    StageTimer timer(Stage::cfg);
    func_.blocks.clear();
    // Drop leaders that fall mid-instruction inside already decoded
    // code (misaligned over-approximated edges are infeasible).
    std::set<Addr> starts;
    for (const auto &[a, in] : insns_)
        starts.insert(a);
    std::set<Addr> valid_leaders;
    for (Addr l : leaders_) {
        if (starts.count(l))
            valid_leaders.insert(l);
    }
    valid_leaders.insert(func_.entry);

    for (Addr start : valid_leaders) {
        if (!insns_.count(start))
            continue;
        Block block;
        block.start = start;
        Addr cur = start;
        while (true) {
            auto it = insns_.find(cur);
            if (it == insns_.end())
                break;
            const Instruction &in = it->second;
            block.insns.push_back(in);
            cur += in.length;
            if (isControlFlow(in.op))
                break;
            if (valid_leaders.count(cur))
                break;
        }
        block.end = cur;
        if (block.insns.empty())
            continue;

        // Successor edges.
        const Instruction &last = block.last();
        const Addr next = block.end;
        switch (last.op) {
          case Opcode::Jmp:
            if (inFunction(last.target))
                block.succs.push_back({last.target, EdgeKind::taken});
            else
                block.endsFunction = true;
            break;
          case Opcode::JmpCond:
            if (inFunction(last.target))
                block.succs.push_back({last.target, EdgeKind::taken});
            block.succs.push_back({next, EdgeKind::fallthrough});
            break;
          case Opcode::Call:
            block.callTarget = last.target;
            block.succs.push_back({next, EdgeKind::callFallthrough});
            break;
          case Opcode::CallInd:
          case Opcode::CallIndMem:
            block.succs.push_back({next, EdgeKind::callFallthrough});
            break;
          case Opcode::JmpInd:
          case Opcode::JmpTar:
            block.endsInUnresolvedIndirect = true; // refined later
            break;
          case Opcode::Ret:
          case Opcode::Halt:
          case Opcode::Trap:
          case Opcode::Throw:
            block.endsFunction = true;
            break;
          default:
            if (!isControlFlow(last.op))
                block.succs.push_back({next, EdgeKind::fallthrough});
            break;
        }
        func_.blocks.emplace(block.start, std::move(block));
    }
}

void
FunctionBuilder::resolveIndirectJumps()
{
    // Iterate to a fixpoint: resolving a table discovers case
    // blocks, which may contain further switches.
    for (unsigned round = 0; round < 16; ++round) {
        formBlocks();
        unresolved_.clear();
        bool discovered = false;
        for (auto &[start, block] : func_.blocks) {
            if (!block.endsInUnresolvedIndirect)
                continue;
            const Addr jump_addr = block.last().addr;
            const bool known = std::any_of(
                func_.jumpTables.begin(), func_.jumpTables.end(),
                [&](const JumpTable &jt) {
                    return jt.jumpAddr == jump_addr;
                });
            if (known)
                continue;
            if (!opts_.resolveJumpTables) {
                unresolved_.push_back(jump_addr);
                continue;
            }
            // Layout predecessor: the block ending exactly at this
            // block's start with a fall-through edge.
            const Block *pred = nullptr;
            auto it = func_.blocks.find(start);
            if (it != func_.blocks.begin()) {
                const Block &before = std::prev(it)->second;
                if (before.end == start)
                    pred = &before;
            }
            StageTimer timer(Stage::jumpTable);
            auto jt = analyzer_.analyze(block, pred);
            if (!jt) {
                unresolved_.push_back(jump_addr);
                continue;
            }
            if (jt->embeddedInCode) {
                dataRanges_.emplace_back(
                    jt->tableAddr,
                    jt->tableAddr + std::uint64_t{jt->entryCount} *
                                        jt->entrySize);
            }
            for (Addr t : jt->targets) {
                if (!inFunction(t))
                    continue;
                if (t % image_.archInfo().instrAlign != 0)
                    continue;
                leaders_.insert(t);
                work_.push_back(t);
                discovered = true;
            }
            // An anchor-relative base (a code label the entries are
            // offsets from) must survive as a block even when no
            // entry currently targets it — entry values are
            // recomputed against the relocated anchor, and a data
            // edit may legally retarget every entry away from it.
            if (jt->base && *jt->base != jt->tableAddr &&
                inFunction(*jt->base) &&
                *jt->base % image_.archInfo().instrAlign == 0 &&
                !leaders_.count(*jt->base)) {
                leaders_.insert(*jt->base);
                work_.push_back(*jt->base);
                discovered = true;
            }
            func_.jumpTables.push_back(std::move(*jt));
        }
        {
            StageTimer timer(Stage::disasm);
            while (!work_.empty()) {
                const Addr a = work_.front();
                work_.pop_front();
                traverseFrom(a);
            }
        }
        if (!discovered && round > 0)
            break;
        if (!discovered && unresolved_.empty())
            break;
    }
    formBlocks();

    // Attach resolved jump-table successor edges.
    for (auto &jt : func_.jumpTables) {
        Block *block = func_.blockAt(jt.jumpAddr);
        if (!block)
            continue;
        block->endsInUnresolvedIndirect = false;
        for (Addr t : jt.targets) {
            if (inFunction(t) && func_.blocks.count(t))
                block->succs.push_back({t, EdgeKind::jumpTable});
        }
    }
}

void
FunctionBuilder::classifyGaps()
{
    if (unresolved_.empty())
        return;

    if (!opts_.tailCallHeuristic) {
        func_.failure = AnalysisFailure::jumpTableUnresolved;
        return;
    }

    // Gap analysis (§5.1): decode the bytes not covered by blocks or
    // embedded table data; nop-only gaps mean the unresolved jumps
    // are indirect tail calls.
    std::vector<std::pair<Addr, Addr>> covered;
    for (const auto &[start, block] : func_.blocks)
        covered.emplace_back(start, block.end);
    for (const auto &range : dataRanges_)
        covered.push_back(range);
    std::sort(covered.begin(), covered.end());

    Addr cursor = func_.entry;
    bool gaps_real = false;
    auto scanGap = [&](Addr lo, Addr hi) {
        Addr a = lo;
        while (a < hi) {
            Instruction in;
            if (!decodeAt(a, in) || in.op != Opcode::Nop) {
                gaps_real = true;
                return;
            }
            a += in.length;
        }
    };
    for (const auto &[lo, hi] : covered) {
        if (lo > cursor)
            scanGap(cursor, std::min(lo, func_.end));
        cursor = std::max(cursor, hi);
        if (gaps_real || cursor >= func_.end)
            break;
    }
    if (!gaps_real && cursor < func_.end)
        scanGap(cursor, func_.end);

    if (gaps_real) {
        func_.failure = AnalysisFailure::gapsWithRealCode;
    } else {
        func_.indirectTailCalls = unresolved_;
        for (Addr a : unresolved_) {
            if (Block *block = func_.blockAt(a)) {
                block->endsInUnresolvedIndirect = false;
                block->endsFunction = true;
            }
        }
    }
}

Function
FunctionBuilder::build()
{
    leaders_.insert(func_.entry);
    work_.push_back(func_.entry);
    for (Addr lp : func_.landingPads) {
        leaders_.insert(lp);
        work_.push_back(lp);
    }
    {
        StageTimer timer(Stage::disasm);
        while (!work_.empty()) {
            const Addr a = work_.front();
            work_.pop_front();
            traverseFrom(a);
        }
    }
    resolveIndirectJumps();
    {
        StageTimer timer(Stage::cfg);
        classifyGaps();
    }
    return func_;
}

} // namespace

CfgModule
buildCfg(const BinaryImage &image, const AnalysisOptions &opts)
{
    CfgModule mod;
    mod.image = &image;

    // Landing pads per function from .eh_frame.
    std::map<Addr, std::vector<TryRange>> tries;
    for (const auto &fde : image.fdeRecords()) {
        if (!fde.tryRanges.empty())
            tries[fde.start] = fde.tryRanges;
    }

    const std::uint64_t seed =
        opts.useCache ? imageCacheSeed(image, opts) : 0;

    // Functions are analyzed independently; build (or fetch) each
    // one in parallel into an index-addressed slot, then insert in
    // address order so the module is identical for any thread count.
    std::vector<const Symbol *> syms = image.functionSymbols();
    if (opts.rangeLo != 0 || opts.rangeHi != ~static_cast<Addr>(0)) {
        std::erase_if(syms, [&](const Symbol *sym) {
            return sym->addr < opts.rangeLo ||
                   sym->addr >= opts.rangeHi;
        });
    }
    std::vector<Function> built(syms.size());
    ThreadPool::shared().parallelFor(
        syms.size(), effectiveThreads(opts.threads),
        [&](std::size_t i) {
            const Symbol &sym = *syms[i];
            auto it = tries.find(sym.addr);
            static const std::vector<TryRange> none;
            const std::vector<TryRange> &try_ranges =
                it == tries.end() ? none : it->second;

            std::uint64_t key = 0;
            if (opts.useCache) {
                key = functionCacheKey(image, sym, try_ranges, seed);
                if (auto hit = AnalysisCache::global().findFunction(
                        key, sym.addr, image.tocBase)) {
                    // The key covers code bytes but not data
                    // contents; accept the hit only when the data
                    // bytes its analysis read are unchanged — for a
                    // cross-binary hit the read-set comes back
                    // rebased to *this* image's addresses, so the
                    // re-hash checks this binary's data bytes. No
                    // recorded read-set (caching off earlier) is a
                    // conservative miss.
                    auto deps = AnalysisCache::global().findDataDeps(
                        key, sym.addr);
                    bool ok = false;
                    if (deps) {
                        StageTimer timer(Stage::depsValidate);
                        ok = deps->validate(image);
                    }
                    DepsCounters &dc = DepsCounters::global();
                    if (ok) {
                        dc.hitsValidated.fetch_add(
                            1, std::memory_order_relaxed);
                        built[i] = *hit;
                        built[i].dataDeps = *deps;
                        return;
                    }
                    dc.hitsRejected.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
            FunctionBuilder builder(image, opts, sym, try_ranges);
            built[i] = builder.build();
            built[i].cacheKey = key;
            {
                StageTimer timer(Stage::depsCompute);
                built[i].dataDeps = computeDataDeps(built[i], image);
            }
            DepsCounters &dc = DepsCounters::global();
            dc.rangesRecorded.fetch_add(built[i].dataDeps.size(),
                                        std::memory_order_relaxed);
            dc.bytesRecorded.fetch_add(
                built[i].dataDeps.totalBytes(),
                std::memory_order_relaxed);
            if (opts.useCache) {
                AnalysisCache::global().storeFunction(
                    key, image.arch, built[i], image.tocBase);
                // Stored even when empty: presence means "computed,
                // reads nothing", absence means "unknown" (which
                // findFunction consumers must treat as a miss).
                AnalysisCache::global().storeDataDeps(
                    key, image.arch, sym.addr, built[i].dataDeps);
            }
        });

    for (std::size_t i = 0; i < syms.size(); ++i)
        mod.functions.emplace(syms[i]->addr, std::move(built[i]));
    return mod;
}

} // namespace icp
