/**
 * @file
 * The rewrite manifest: a structured record of every artifact the
 * rewriter emitted — trampoline patches with their byte extents,
 * cloned jump tables, rewritten function-pointer cells, donated
 * scratch ranges, and copies of the address maps. The static
 * soundness verifier (src/verify/) checks the rewritten image
 * against this record; the rewriter fills it when
 * RewriteOptions::lint is set.
 */

#ifndef ICP_REWRITE_MANIFEST_HH
#define ICP_REWRITE_MANIFEST_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/datadeps.hh"
#include "rewrite/trampoline.hh"

namespace icp
{

/** One trampoline installation: where, what form, which bytes. */
struct TrampolinePatch
{
    Addr site = 0;      ///< CFL block start the trampoline replaces
    Addr funcEntry = 0; ///< containing function
    Addr target = 0;    ///< relocated destination the chain must reach
    TrampolineKind kind = TrampolineKind::trap;
    Reg scratchReg = Reg::none; ///< dead register used by long forms
    std::uint64_t space = 0;    ///< superblock bytes available at site

    /** Byte extents written, as (address, length) pairs. */
    std::vector<std::pair<Addr, std::uint64_t>> writes;
};

/** One cloned jump table placed in .newrodata. */
struct JumpTableClonePatch
{
    Addr jumpAddr = 0;      ///< original indirect jump
    Addr funcEntry = 0;     ///< containing function
    Addr cloneAddr = 0;     ///< first clone entry
    unsigned entrySize = 4; ///< clone entry size (possibly widened)
    unsigned entryCount = 0;
    unsigned shift = 0;     ///< scale applied to relative entries
    bool widened = false;

    /** Original base anchor; nullopt = absolute entries. */
    std::optional<Addr> origBase;
    Addr origTableAddr = 0;
    std::vector<Addr> origTargets; ///< original targets, entry order
};

/** One rewritten function-pointer definition. */
struct FuncPtrPatch
{
    enum class Kind : std::uint8_t
    {
        dataCell, ///< initialized 8-byte cell + runtime relocation
        codeDef,  ///< pointer materialized by instructions
    };

    Kind kind = Kind::dataCell;
    Addr site = 0;      ///< data cell address (dataCell only)
    Addr funcEntry = 0; ///< pointee function
    std::int64_t delta = 0; ///< displaced-pointer offset (§5.2)
    Addr newValue = 0;  ///< rewritten pointer value
};

/**
 * One relocated function's extent inside .instr: where the engine
 * placed it and how many bytes it emitted (excluding the alignment
 * padding that follows). Recorded so a later selective re-rewrite
 * (RewriteSession::repair) can splice a re-emitted function into the
 * previous layout and reuse every other function's bytes verbatim.
 */
struct FuncSpan
{
    Addr entry = 0;          ///< original function entry
    Addr base = 0;           ///< relocated base inside .instr
    std::uint64_t size = 0;  ///< emitted bytes (without padding)
};

struct RewriteManifest
{
    /** False when the rewrite ran with RewriteOptions::lint off. */
    bool populated = false;

    /** Original block start -> relocated address. */
    std::map<Addr, Addr> blockMap;

    /** Original instruction -> relocated address. */
    std::map<Addr, Addr> insnMap;

    /** (relocated return address -> original return address). */
    std::vector<std::pair<Addr, Addr>> raPairs;

    std::vector<TrampolinePatch> trampolines;
    std::vector<JumpTableClonePatch> clones;
    std::vector<FuncPtrPatch> funcPtrs;

    /** Relocated function extents in emission order (§3 reuse). */
    std::vector<FuncSpan> funcSpans;

    /** Scratch ranges donated to the multi-hop pool (addr, len). */
    std::vector<std::pair<Addr, std::uint64_t>> scratchRanges;

    /** Embedded jump-table data no patch may touch ([lo, hi)). */
    std::vector<std::pair<Addr, Addr>> protectedRanges;

    /** Entries of the instrumented (relocated) functions. */
    std::set<Addr> instrumented;

    /**
     * Per-function data read-sets (function entry -> finalized
     * ranges), copied from the analyzed CFG. The datadep-* lint
     * rules audit these against a recomputation from the original
     * image; loadInput keys data-edit invalidation on them.
     */
    std::map<Addr, DataDeps> dataDeps;

    /**
     * When fault injection ran (RewriteOptions::injectDefect), the
     * id of the lint rule the planted defect must trip; empty when
     * no defect was applicable or injection was off.
     */
    std::string injectedRule;
};

} // namespace icp

#endif // ICP_REWRITE_MANIFEST_HH
