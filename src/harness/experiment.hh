/**
 * @file
 * The block-level empty-instrumentation experiment of §8: rewrite a
 * workload with a given tool configuration, verify correctness with
 * the strong test + counting instrumentation, then measure runtime
 * overhead with empty instrumentation, and report the Table-3 row
 * ingredients (overhead, coverage, size increase, pass/fail).
 */

#ifndef ICP_HARNESS_EXPERIMENT_HH
#define ICP_HARNESS_EXPERIMENT_HH

#include <string>

#include "harness/verify.hh"
#include "rewrite/options.hh"

namespace icp
{

struct ToolRun
{
    bool pass = false;
    std::string failReason;

    double overhead = 0.0;     ///< rewritten cycles / golden - 1
    double coverage = 0.0;     ///< instrumented / total functions
    double sizeIncrease = 0.0; ///< loaded-size growth

    /**
     * Static soundness findings in the timing-pass artifact (the
     * "lint err" Table-3 column): with fault injection enabled on a
     * baseline, its documented bug shows up here as a nonzero error
     * count even when the dynamic strong test happens to pass.
     */
    unsigned lintErrors = 0;
    unsigned lintWarnings = 0;

    RewriteStats stats;
    RunResult goldenRun;
    RunResult rewrittenRun;
};

/**
 * Run the full §8 protocol on @p original with @p tool_options.
 * The harness forces block-level instrumentation: the verification
 * pass counts function entries (checked against native counts) and
 * clobbers original bytes; the timing pass uses empty
 * instrumentation, as the paper does.
 */
ToolRun runBlockLevelExperiment(const BinaryImage &original,
                                RewriteOptions tool_options,
                                Machine::Config machine_cfg);

} // namespace icp

#endif // ICP_HARNESS_EXPERIMENT_HH
