/**
 * @file
 * The incremental analysis cache: the "incremental" in incremental
 * CFG patching applied to analysis time. Per-function analysis
 * results (CFG with jump tables, liveness summaries, data read-sets)
 * are memoized under a *content-addressed* FNV-1a key — architecture,
 * analysis options, landing-pad layout, symbol size, and the
 * function's code bytes. The entry address is deliberately not part
 * of the key: two binaries that statically link the same function at
 * different addresses (or `icp serve` sessions for different
 * binaries in one process) share a single cache entry.
 *
 * The v4 contract that makes an address-free key sound:
 *  - Entries are position-independent. Every absolute address in a
 *    stored result (block bounds, branch targets, jump-table
 *    anchors, liveness keys, read-set ranges) is kept relative to
 *    the entry it was analyzed at; find*() rematerializes absolute
 *    addresses at the *requested* entry (rebase-on-hit). Identical
 *    bytes imply identical pc-relative displacements, so every
 *    derived address shifts by exactly the entry delta; code whose
 *    bytes embed absolute addresses (non-PIE immediates,
 *    toc-relative forms at a different toc offset) differs in bytes
 *    or fails the recorded toc-delta check and simply never hits.
 *  - Data contents are still not part of the key. Every hit is
 *    validated by re-hashing the function's recorded data read-set
 *    (Function::dataDeps, per-range FNV content hashes, stored under
 *    the same key) against the current image *at the rebased
 *    addresses*, and degrades to a conservative miss when the deps
 *    are absent or their bytes changed. Data edits thus invalidate
 *    exactly the functions that read the edited bytes — and a
 *    cross-binary hit is accepted only when the second binary's data
 *    bytes match what the analysis originally read.
 */

#ifndef ICP_ANALYSIS_CACHE_HH
#define ICP_ANALYSIS_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/builder.hh"
#include "analysis/datadeps.hh"
#include "analysis/liveness.hh"

namespace icp
{

struct CacheLoadReport; // analysis/cache_store.hh

/**
 * A read-only mapping of a cache file (mmap with a heap-buffer
 * fallback), shared by every lazy entry indexed from it so the bytes
 * stay addressable for the process lifetime of those entries.
 * Appends to the file never move the mapped prefix, and full
 * rewrites go through rename (new inode), so a mapping can never be
 * invalidated behind its holders' backs.
 */
class MappedCacheFile
{
  public:
    /** nullptr when the file does not exist or cannot be read. */
    static std::shared_ptr<MappedCacheFile>
    open(const std::string &path);

    ~MappedCacheFile();
    MappedCacheFile(const MappedCacheFile &) = delete;
    MappedCacheFile &operator=(const MappedCacheFile &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    MappedCacheFile() = default;

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    void *map_ = nullptr;              ///< munmap target (or null)
    std::vector<std::uint8_t> buffer_; ///< read() fallback storage
};

/** Incremental FNV-1a (64-bit). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t hash = 0xcbf29ce484222325ULL);

/**
 * Image-wide key component: architecture, PIE-ness, and analysis
 * options — nothing position-dependent (no base addresses, no
 * section layout), so binaries laid out differently can share
 * entries. Computed once per buildCfg call and folded into every
 * function key.
 */
std::uint64_t imageCacheSeed(const BinaryImage &image,
                             const AnalysisOptions &opts);

/**
 * Content-addressed key of one function's analysis results under
 * @p seed: its size, landing-pad layout (entry-relative try
 * offsets), and code bytes. Neither the entry address nor the symbol
 * name is folded, so the same code linked at a different address —
 * or into a different binary — produces the same key.
 */
std::uint64_t functionCacheKey(const BinaryImage &image,
                               const Symbol &sym,
                               const std::vector<TryRange> &tries,
                               std::uint64_t seed);

/**
 * Shift every absolute address in @p func by `newEntry - func.entry`:
 * entry/end, block bounds, instruction addresses and branch targets
 * (the invalid_addr sentinel is preserved), edges, call targets,
 * jump-table anchors and computed targets, landing pads, indirect
 * tail calls, and the data read-set ranges (their content hashes are
 * position-independent and carry over). Sound for byte-identical
 * code because all of these derive from pc-relative displacements.
 */
Function rebaseFunction(const Function &func, Addr new_entry);

/** Shift liveness keys (instruction addresses) by the entry delta. */
LivenessResult rebaseLiveness(const LivenessResult &live,
                              Addr orig_entry, Addr new_entry);

/** Shift read-set ranges by the entry delta (hashes carry over). */
DataDeps rebaseDataDeps(const DataDeps &deps, Addr orig_entry,
                        Addr new_entry);

/**
 * Process-wide memo of per-function analysis results. Thread-safe;
 * entries are shared immutable snapshots. Consulted by buildCfg
 * (function CFGs) and the rewriter (liveness), so the second
 * rewrite of the same image reuses >= 95% of analysis work.
 */
class AnalysisCache
{
  public:
    struct Stats
    {
        std::uint64_t functionHits = 0;
        std::uint64_t functionMisses = 0;
        std::uint64_t livenessHits = 0;
        std::uint64_t livenessMisses = 0;

        std::uint64_t
        hits() const
        {
            return functionHits + livenessHits;
        }

        std::uint64_t
        misses() const
        {
            return functionMisses + livenessMisses;
        }
    };

    static AnalysisCache &global();

    /**
     * nullptr on miss. Counts a hit/miss either way. An entry
     * indexed lazily from a mapped cache file is checksum-verified
     * and deserialized on its first lookup here (and only then) — a
     * corrupt or malformed payload degrades to a miss and the
     * function simply re-analyzes.
     *
     * Entries are canonical at the entry they were analyzed at. When
     * @p entry differs (a cross-binary hit) the result is rebased to
     * @p entry (CacheCounters::crossHits, Stage::cacheRebase); toc-
     * relative code additionally requires `tocBase - entry` to match
     * the recorded value, else the lookup misses — a rebased
     * toc-relative target would be wrong.
     */
    std::shared_ptr<const Function>
    findFunction(std::uint64_t key, Addr entry, Addr toc_base);
    void storeFunction(std::uint64_t key, Arch arch, Function func,
                       Addr toc_base);

    std::shared_ptr<const LivenessResult>
    findLiveness(std::uint64_t key, Addr entry);
    void storeLiveness(std::uint64_t key, Arch arch, Addr entry,
                       LivenessResult live);

    /**
     * The data read-set recorded for @p key's function rebased to
     * @p entry, or nullptr when none was stored (legacy cache file,
     * caching off): the consumer must then treat a code-keyed hit as
     * a conservative miss. Does not count toward hit/miss stats —
     * deps ride along with their function entry.
     */
    std::shared_ptr<const DataDeps> findDataDeps(std::uint64_t key,
                                                 Addr entry);
    void storeDataDeps(std::uint64_t key, Arch arch, Addr entry,
                       DataDeps deps);

    Stats stats() const;

    /** Decoded plus lazily-indexed entries. */
    std::size_t entryCount() const;
    void clear();

    // --- on-disk persistence (implemented in cache_store.cc) -----------

    /**
     * Persist the cache to @p path in the v4 format of
     * analysis/cache_store.hh. Delta save: under the advisory
     * `<path>.lock` flock, the file's existing key set is re-scanned
     * (merging segments appended by concurrent writers) and only
     * entries the file lacks are appended as one new segment — when
     * nothing is missing the file is not touched at all. A v1,
     * torn-tailed, or unreadable target falls back to a full atomic
     * rewrite (tmp + rename). When @p max_bytes is non-zero and the
     * file ends up larger, it is compacted in place under the same
     * lock (newest-generation entries survive). Returns false when
     * the file cannot be written.
     */
    bool save(const std::string &path,
              std::uint64_t max_bytes = 0) const;

    /**
     * Merge entries from @p path. The file is mapped, file/segment/
     * entry headers are verified, and surviving entries are indexed
     * for lazy deserialization — no payload byte is read here
     * (checksum verification and decode happen on first lookup; a
     * corrupt payload degrades to a miss there). Tolerant by
     * construction: a missing file, a bad magic or future version,
     * truncated or torn segments load as empty-or-partial, each
     * recorded as a structured cache-* issue on the report — never a
     * crash. A v1 file loads read-only with a single `cache-migrated`
     * info issue. When @p expect_arch is set, entries tagged with any
     * other ISA are dropped (their keys could never be looked up, but
     * dropping keeps the merge bounded and reports the mismatch).
     * Existing in-memory entries win over file entries with the same
     * key.
     */
    CacheLoadReport load(const std::string &path,
                         std::optional<Arch> expect_arch = {});

  private:
    /**
     * One memoized result, tagged with the ISA it was built for and
     * the entry address it was analyzed at (the canonical form keeps
     * absolute addresses at origEntry so same-entry hits return the
     * shared snapshot without copying; a different requested entry
     * rebases a copy). usesToc/tocDelta guard toc-relative code:
     * a hit at a different entry is only valid when the requester's
     * `tocBase - entry` matches.
     */
    template <typename T> struct Entry
    {
        Arch arch = Arch::x64;
        Addr origEntry = 0;
        std::int64_t tocDelta = 0; ///< tocBase - entry at analysis
        bool usesToc = false;      ///< any AddisToc instruction
        std::shared_ptr<const T> value;
    };

    /**
     * One not-yet-decoded entry pointing into a mapped cache file.
     * Checksum verification and decode both happen on first lookup
     * (keeping load() free of any per-byte work). The shared mapping
     * keeps the bytes alive.
     */
    struct PendingEntry
    {
        Arch arch = Arch::x64;
        const std::uint8_t *payload = nullptr;
        std::uint32_t payloadLen = 0;
        std::uint64_t payloadHash = 0;
        std::shared_ptr<MappedCacheFile> file;
    };

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry<Function>> functions_;
    std::unordered_map<std::uint64_t, Entry<LivenessResult>>
        liveness_;
    std::unordered_map<std::uint64_t, Entry<DataDeps>> dataDeps_;
    std::unordered_map<std::uint64_t, PendingEntry>
        pendingFunctions_;
    std::unordered_map<std::uint64_t, PendingEntry> pendingLiveness_;
    std::unordered_map<std::uint64_t, PendingEntry>
        pendingDataDeps_;
    Stats stats_;
};

} // namespace icp

#endif // ICP_ANALYSIS_CACHE_HH
