#include "isa/codec_fixed.hh"

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

namespace
{

// Tag bytes. 0x00 and 0xff decode as illegal. The direct branch
// forms borrow the tag's low two bits for displacement bits [25:24],
// mirroring how real fixed-width ISAs split opcode and immediate
// fields.
enum Tag : std::uint8_t
{
    T_NOP = 0x01, T_TRAP, T_HALT, T_RET, T_THROW,
    T_JMPIND, T_CALLIND, T_JMPTAR, T_MTTAR,
    T_MOVREG, T_ADD, T_SUB, T_MUL, T_XOR, T_CMP,
    T_SHL, T_SHR,
    T_MOVZK, T_ADDIMM, T_CMPIMM, T_ADDISTOC,
    T_LEA, T_ADRP,
    T_LOAD, T_STORE, T_LOADSZ, T_STORESZ, T_LOADIDX,
    T_CALLRT, T_THROWRA,

    T_JMP_BASE = 0x40,  // 0x40..0x43
    T_CALL_BASE = 0x44, // 0x44..0x47
    T_JCC = 0x48,
};

std::uint8_t
regByte(Reg r)
{
    auto v = static_cast<std::uint8_t>(r);
    icp_assert(v < num_regs, "fixed codec: bad register");
    return v;
}

std::uint8_t
szLog2(std::uint8_t size)
{
    switch (size) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
      default: icp_panic("bad memory size %u", size);
    }
}

} // namespace

bool
CodecFixed::opcodeSupported(Opcode op) const
{
    switch (op) {
      case Opcode::AddisToc:
      case Opcode::MoveToTar:
      case Opcode::JmpTar:
        return opts_.hasToc;
      case Opcode::Lea:
      case Opcode::AdrPage:
        return opts_.hasAdr;
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::CallIndMem:
      case Opcode::MovHi:
      case Opcode::Illegal:
        return false;
      default:
        return true;
    }
}

unsigned
CodecFixed::encodedLength(const Instruction &in) const
{
    return opcodeSupported(in.op) ? 4 : 0;
}

bool
CodecFixed::encode(const Instruction &in, Addr addr,
                   std::vector<std::uint8_t> &out) const
{
    return encodeImpl(in, addr, out, true);
}

bool
CodecFixed::encodeUnchecked(const Instruction &in, Addr addr,
                            std::vector<std::uint8_t> &out) const
{
    return encodeImpl(in, addr, out, false);
}

bool
CodecFixed::encodeImpl(const Instruction &in, Addr addr,
                       std::vector<std::uint8_t> &out,
                       bool enforce_range) const
{
    if (!opcodeSupported(in.op))
        return false;
    icp_assert(addr % 4 == 0, "fixed codec: misaligned encode at 0x%llx",
               static_cast<unsigned long long>(addr));

    auto emit3 = [&](std::uint8_t tag, std::uint8_t b1, std::uint8_t b2,
                     std::uint8_t b3) {
        putU8(out, tag);
        putU8(out, b1);
        putU8(out, b2);
        putU8(out, b3);
        return true;
    };
    auto emitRegImm16 = [&](std::uint8_t tag, Reg r, std::int64_t imm) {
        if (!fitsSigned(imm, 16))
            return false;
        putU8(out, tag);
        putU8(out, regByte(r));
        putU16(out, static_cast<std::uint16_t>(imm));
        return true;
    };

    switch (in.op) {
      case Opcode::Nop: return emit3(T_NOP, 0, 0, 0);
      case Opcode::Trap: return emit3(T_TRAP, 0, 0, 0);
      case Opcode::Halt: return emit3(T_HALT, 0, 0, 0);
      case Opcode::Ret: return emit3(T_RET, 0, 0, 0);
      case Opcode::Throw: return emit3(T_THROW, 0, 0, 0);
      case Opcode::ThrowRa: return emit3(T_THROWRA, 0, 0, 0);
      case Opcode::JmpTar: return emit3(T_JMPTAR, 0, 0, 0);

      case Opcode::JmpInd:
        return emit3(T_JMPIND, regByte(in.rs1), 0, 0);
      case Opcode::CallInd:
        return emit3(T_CALLIND, regByte(in.rs1), 0, 0);
      case Opcode::MoveToTar:
        return emit3(T_MTTAR, regByte(in.rs1), 0, 0);

      case Opcode::MovReg:
        return emit3(T_MOVREG, regByte(in.rd), regByte(in.rs1), 0);
      case Opcode::Add:
        return emit3(T_ADD, regByte(in.rd), regByte(in.rs1), 0);
      case Opcode::Sub:
        return emit3(T_SUB, regByte(in.rd), regByte(in.rs1), 0);
      case Opcode::Mul:
        return emit3(T_MUL, regByte(in.rd), regByte(in.rs1), 0);
      case Opcode::Xor:
        return emit3(T_XOR, regByte(in.rd), regByte(in.rs1), 0);
      case Opcode::Cmp:
        return emit3(T_CMP, regByte(in.rs1), regByte(in.rs2), 0);

      case Opcode::ShlImm:
        return emit3(T_SHL, regByte(in.rd),
                     static_cast<std::uint8_t>(in.imm), 0);
      case Opcode::ShrImm:
        return emit3(T_SHR, regByte(in.rd),
                     static_cast<std::uint8_t>(in.imm), 0);

      case Opcode::MovImm: {
        // movz/movk form: 16-bit chunk at half-word movShift.
        if (in.imm < 0 || in.imm > 0xffff)
            return false;
        icp_assert(in.movShift % 16 == 0 && in.movShift <= 48,
                   "bad movShift");
        const std::uint8_t b1 = static_cast<std::uint8_t>(
            regByte(in.rd) | ((in.movShift / 16) << 5) |
            (in.movKeep ? 0x80 : 0));
        putU8(out, T_MOVZK);
        putU8(out, b1);
        putU16(out, static_cast<std::uint16_t>(in.imm));
        return true;
      }

      case Opcode::AddImm:
        return emitRegImm16(T_ADDIMM, in.rd, in.imm);
      case Opcode::CmpImm:
        return emitRegImm16(T_CMPIMM, in.rs1, in.imm);
      case Opcode::AddisToc:
        return emitRegImm16(T_ADDISTOC, in.rd, in.imm);

      case Opcode::Lea: {
        // ADR: target = addr + simm16 * 4 (±128 KB, word aligned).
        const std::int64_t d = static_cast<std::int64_t>(in.target) -
                               static_cast<std::int64_t>(addr);
        if (d % 4 != 0 || !fitsSigned(d / 4, 16))
            return false;
        return emitRegImm16(T_LEA, in.rd, d / 4);
      }
      case Opcode::AdrPage: {
        // ADRP with a 64 KB granule: rd = (addr & ~0xffff) +
        // simm16 << 16. The page is chosen round-to-nearest so the
        // paired signed-16-bit AddImm always covers the remainder.
        const std::int64_t page =
            static_cast<std::int64_t>((in.target + 0x8000) >> 16) -
            static_cast<std::int64_t>(addr >> 16);
        if (!fitsSigned(page, 16))
            return false;
        return emitRegImm16(T_ADRP, in.rd, page);
      }

      case Opcode::Load:
      case Opcode::Store: {
        // disp8 scaled by 8: ±1016 bytes, 8-byte aligned.
        if (in.imm % 8 != 0 || !fitsSigned(in.imm / 8, 8))
            return false;
        const Reg data = in.op == Opcode::Load ? in.rd : in.rs2;
        return emit3(in.op == Opcode::Load ? T_LOAD : T_STORE,
                     regByte(data), regByte(in.rs1),
                     static_cast<std::uint8_t>(in.imm / 8));
      }

      case Opcode::LoadSz:
      case Opcode::StoreSz: {
        if (in.imm != 0)
            return false;
        const Reg data = in.op == Opcode::LoadSz ? in.rd : in.rs2;
        return emit3(in.op == Opcode::LoadSz ? T_LOADSZ : T_STORESZ,
                     regByte(data), regByte(in.rs1),
                     static_cast<std::uint8_t>(
                         (szLog2(in.memSize) << 1) |
                         (in.signedLoad ? 1 : 0)));
      }

      case Opcode::LoadIdx: {
        if (in.imm != 0)
            return false;
        return emit3(T_LOADIDX, regByte(in.rd), regByte(in.rs1),
                     static_cast<std::uint8_t>(
                         (regByte(in.rs2) << 3) |
                         (szLog2(in.memSize) << 1) |
                         (in.signedLoad ? 1 : 0)));
      }

      case Opcode::CallRt: {
        if (in.imm < 0 || in.imm >= (1 << 24))
            return false;
        putU8(out, T_CALLRT);
        putU8(out, static_cast<std::uint8_t>(in.imm));
        putU16(out, static_cast<std::uint16_t>(in.imm >> 8));
        return true;
      }

      case Opcode::Jmp:
      case Opcode::Call: {
        const std::int64_t d = static_cast<std::int64_t>(in.target) -
                               static_cast<std::int64_t>(addr);
        if (d % 4 != 0)
            return false;
        if (enforce_range &&
            (d < -opts_.branchRange || d > opts_.branchRange))
            return false;
        const std::int64_t words = d / 4;
        if (!fitsSigned(words, 26))
            return false;
        const std::uint32_t w = static_cast<std::uint32_t>(words) &
                                0x3ffffffu;
        const std::uint8_t base =
            in.op == Opcode::Jmp ? T_JMP_BASE : T_CALL_BASE;
        putU8(out, static_cast<std::uint8_t>(base | (w >> 24)));
        putU8(out, static_cast<std::uint8_t>(w));
        putU8(out, static_cast<std::uint8_t>(w >> 8));
        putU8(out, static_cast<std::uint8_t>(w >> 16));
        return true;
      }

      case Opcode::JmpCond: {
        const std::int64_t d = static_cast<std::int64_t>(in.target) -
                               static_cast<std::int64_t>(addr);
        if (d % 4 != 0 || !fitsSigned(d / 4, 20))
            return false;
        const std::uint32_t w = static_cast<std::uint32_t>(d / 4) &
                                0xfffffu;
        putU8(out, T_JCC);
        putU8(out, static_cast<std::uint8_t>(
                 (static_cast<std::uint8_t>(in.cond) << 4) | (w >> 16)));
        putU16(out, static_cast<std::uint16_t>(w));
        return true;
      }

      default:
        return false;
    }
}

bool
CodecFixed::decode(const std::uint8_t *bytes, std::size_t avail,
                   Addr addr, Instruction &out) const
{
    out = Instruction();
    out.addr = addr;
    out.length = 4;
    if (avail < 4 || addr % 4 != 0)
        return false;

    const std::uint8_t tag = bytes[0];

    // Direct branch forms with displacement bits in the tag.
    if ((tag & 0xfc) == T_JMP_BASE || (tag & 0xfc) == T_CALL_BASE) {
        const std::uint32_t w = (static_cast<std::uint32_t>(tag & 3)
                                 << 24) |
                                (static_cast<std::uint32_t>(bytes[3])
                                 << 16) |
                                (static_cast<std::uint32_t>(bytes[2])
                                 << 8) |
                                bytes[1];
        const std::int64_t words = signExtend(w, 26);
        out.op = (tag & 0xfc) == T_JMP_BASE ? Opcode::Jmp : Opcode::Call;
        out.target = static_cast<Addr>(
            static_cast<std::int64_t>(addr) + words * 4);
        return true;
    }

    switch (tag) {
      case T_NOP: out.op = Opcode::Nop; return true;
      case T_TRAP: out.op = Opcode::Trap; return true;
      case T_HALT: out.op = Opcode::Halt; return true;
      case T_RET: out.op = Opcode::Ret; return true;
      case T_THROW: out.op = Opcode::Throw; return true;
      case T_THROWRA: out.op = Opcode::ThrowRa; return true;
      case T_JMPTAR:
        if (!opts_.hasToc) break;
        out.op = Opcode::JmpTar;
        return true;

      case T_JMPIND:
        out.op = Opcode::JmpInd;
        out.rs1 = static_cast<Reg>(bytes[1]);
        return true;
      case T_CALLIND:
        out.op = Opcode::CallInd;
        out.rs1 = static_cast<Reg>(bytes[1]);
        return true;
      case T_MTTAR:
        if (!opts_.hasToc) break;
        out.op = Opcode::MoveToTar;
        out.rs1 = static_cast<Reg>(bytes[1]);
        return true;

      case T_MOVREG: case T_ADD: case T_SUB: case T_MUL: case T_XOR:
        switch (tag) {
          case T_MOVREG: out.op = Opcode::MovReg; break;
          case T_ADD: out.op = Opcode::Add; break;
          case T_SUB: out.op = Opcode::Sub; break;
          case T_MUL: out.op = Opcode::Mul; break;
          default: out.op = Opcode::Xor; break;
        }
        out.rd = static_cast<Reg>(bytes[1]);
        out.rs1 = static_cast<Reg>(bytes[2]);
        return true;
      case T_CMP:
        out.op = Opcode::Cmp;
        out.rs1 = static_cast<Reg>(bytes[1]);
        out.rs2 = static_cast<Reg>(bytes[2]);
        return true;

      case T_SHL: case T_SHR:
        out.op = tag == T_SHL ? Opcode::ShlImm : Opcode::ShrImm;
        out.rd = static_cast<Reg>(bytes[1]);
        out.imm = bytes[2];
        return true;

      case T_MOVZK:
        out.op = Opcode::MovImm;
        out.rd = static_cast<Reg>(bytes[1] & 0x1f);
        out.movShift = static_cast<std::uint8_t>(
            ((bytes[1] >> 5) & 3) * 16);
        out.movKeep = bytes[1] & 0x80;
        out.imm = getU16(bytes + 2);
        return true;

      case T_ADDIMM:
        out.op = Opcode::AddImm;
        out.rd = static_cast<Reg>(bytes[1]);
        out.imm = signExtend(getU16(bytes + 2), 16);
        return true;
      case T_CMPIMM:
        out.op = Opcode::CmpImm;
        out.rs1 = static_cast<Reg>(bytes[1]);
        out.imm = signExtend(getU16(bytes + 2), 16);
        return true;
      case T_ADDISTOC:
        if (!opts_.hasToc) break;
        out.op = Opcode::AddisToc;
        out.rd = static_cast<Reg>(bytes[1]);
        out.imm = signExtend(getU16(bytes + 2), 16);
        return true;

      case T_LEA: {
        if (!opts_.hasAdr) break;
        out.op = Opcode::Lea;
        out.rd = static_cast<Reg>(bytes[1]);
        const std::int64_t words = signExtend(getU16(bytes + 2), 16);
        out.target = static_cast<Addr>(
            static_cast<std::int64_t>(addr) + words * 4);
        return true;
      }
      case T_ADRP: {
        if (!opts_.hasAdr) break;
        out.op = Opcode::AdrPage;
        out.rd = static_cast<Reg>(bytes[1]);
        const std::int64_t pages = signExtend(getU16(bytes + 2), 16);
        out.target = static_cast<Addr>(
            (static_cast<std::int64_t>(addr >> 16) + pages) << 16);
        return true;
      }

      case T_LOAD: case T_STORE:
        if (tag == T_LOAD) {
            out.op = Opcode::Load;
            out.rd = static_cast<Reg>(bytes[1]);
        } else {
            out.op = Opcode::Store;
            out.rs2 = static_cast<Reg>(bytes[1]);
        }
        out.rs1 = static_cast<Reg>(bytes[2]);
        out.imm = signExtend(bytes[3], 8) * 8;
        return true;

      case T_LOADSZ: case T_STORESZ:
        if (tag == T_LOADSZ) {
            out.op = Opcode::LoadSz;
            out.rd = static_cast<Reg>(bytes[1]);
        } else {
            out.op = Opcode::StoreSz;
            out.rs2 = static_cast<Reg>(bytes[1]);
        }
        out.rs1 = static_cast<Reg>(bytes[2]);
        out.memSize = static_cast<std::uint8_t>(1u << ((bytes[3] >> 1) & 3));
        out.signedLoad = bytes[3] & 1;
        return true;

      case T_LOADIDX:
        out.op = Opcode::LoadIdx;
        out.rd = static_cast<Reg>(bytes[1]);
        out.rs1 = static_cast<Reg>(bytes[2]);
        out.rs2 = static_cast<Reg>(bytes[3] >> 3);
        out.memSize = static_cast<std::uint8_t>(1u << ((bytes[3] >> 1) & 3));
        out.signedLoad = bytes[3] & 1;
        return true;

      case T_CALLRT:
        out.op = Opcode::CallRt;
        out.imm = bytes[1] | (getU16(bytes + 2) << 8);
        return true;

      case T_JCC: {
        out.op = Opcode::JmpCond;
        out.cond = static_cast<Cond>(bytes[1] >> 4);
        const std::uint32_t w = (static_cast<std::uint32_t>(bytes[1] & 0xf)
                                 << 16) | getU16(bytes + 2);
        out.target = static_cast<Addr>(
            static_cast<std::int64_t>(addr) + signExtend(w, 20) * 4);
        return true;
      }

      default:
        break;
    }

    out = Instruction();
    out.addr = addr;
    out.op = Opcode::Illegal;
    out.length = 4;
    return false;
}

} // namespace icp
