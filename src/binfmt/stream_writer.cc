#include "binfmt/stream_writer.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"
#include "support/stats.hh"

namespace icp
{

namespace
{

constexpr std::uint32_t sbf_magic = 0x31464253; // "SBF1"

} // namespace

void
VectorSink::writeAt(std::uint64_t off, const void *data,
                    std::size_t len)
{
    if (off + len > out_.size())
        out_.resize(off + len, 0);
    std::memcpy(out_.data() + off, data, len);
}

void
FileSink::writeAt(std::uint64_t off, const void *data, std::size_t len)
{
    if (!ok_ || len == 0)
        return;
    if (off != pos_) {
        if (std::fseek(f_, static_cast<long>(off), SEEK_SET) != 0) {
            ok_ = false;
            return;
        }
        pos_ = off;
    }
    if (std::fwrite(data, 1, len, f_) != len) {
        ok_ = false;
        return;
    }
    pos_ = off + len;
    size_ = std::max(size_, pos_);
}

SbfStreamWriter::SbfStreamWriter(SbfSink &sink,
                                 std::size_t reorderWindowBytes)
    : sink_(sink), window_(reorderWindowBytes)
{
}

void
SbfStreamWriter::put(const void *data, std::size_t len)
{
    sink_.append(data, len);
    StreamCounters::global().bytesStreamed.fetch_add(
        len, std::memory_order_relaxed);
}

void
SbfStreamWriter::putU8(std::uint8_t v)
{
    put(&v, 1);
}

void
SbfStreamWriter::putU32(std::uint32_t v)
{
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, sizeof(b));
}

void
SbfStreamWriter::putU64(std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, sizeof(b));
}

void
SbfStreamWriter::putString(const std::string &s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    put(s.data(), s.size());
}

void
SbfStreamWriter::beginImage(const BinaryImage &img)
{
    putU32(sbf_magic);
    putU8(static_cast<std::uint8_t>(img.arch));
    putU8(img.pie ? 1 : 0);
    putU64(img.prefBase);
    putU64(img.entry);
    putU64(img.tocBase);
    putString(img.soname);
    putU8(img.features.cppExceptions);
    putU8(img.features.isGo);
    putU8(img.features.rustMetadata);
    putU8(img.features.symbolVersioning);
    putU8(img.features.fortranComponent);
    putU32(static_cast<std::uint32_t>(img.sections.size()));
}

void
SbfStreamWriter::sectionHeader(const Section &s,
                               std::uint64_t payloadLen)
{
    putString(s.name);
    putU8(static_cast<std::uint8_t>(s.kind));
    putU64(s.addr);
    putU64(s.memSize);
    putU8(static_cast<std::uint8_t>((s.loadable ? 1 : 0) |
                                    (s.executable ? 2 : 0) |
                                    (s.writable ? 4 : 0)));
    putU32(static_cast<std::uint32_t>(payloadLen));
}

void
SbfStreamWriter::writeSection(const Section &s)
{
    icp_assert(!streaming_, "writeSection inside streamed section");
    sectionHeader(s, s.bytes.size());
    put(s.bytes.data(), s.bytes.size());
}

void
SbfStreamWriter::beginStreamedSection(const Section &s,
                                      std::uint64_t payloadLen)
{
    icp_assert(!streaming_, "nested streamed section");
    icp_assert(payloadLen <= s.memSize,
               "streamed payload larger than section memSize");
    sectionHeader(s, payloadLen);
    streaming_ = true;
    payloadBase_ = sink_.size();
    payloadLen_ = payloadLen;
    cursor_ = 0;
    pending_.clear();
    pendingBytes_ = 0;
}

void
SbfStreamWriter::addChunk(std::uint64_t off, const std::uint8_t *data,
                          std::size_t len)
{
    icp_assert(streaming_, "addChunk outside streamed section");
    icp_assert(off + len <= payloadLen_,
               "chunk past streamed payload length");
    StreamCounters::global().bytesStreamed.fetch_add(
        len, std::memory_order_relaxed);
    if (len == 0)
        return;

    if (off == cursor_) {
        sink_.writeAt(payloadBase_ + off, data, len);
        cursor_ = off + len;
        // Drain any buffered chunks that are now contiguous.
        auto it = pending_.begin();
        while (it != pending_.end() && it->first == cursor_) {
            sink_.writeAt(payloadBase_ + it->first, it->second.data(),
                          it->second.size());
            cursor_ = it->first + it->second.size();
            pendingBytes_ -= it->second.size();
            it = pending_.erase(it);
        }
        return;
    }

    if (off < cursor_) {
        // Fills a hole left behind by an earlier window overflow.
        sink_.writeAt(payloadBase_ + off, data, len);
        return;
    }

    if (pendingBytes_ + len > window_) {
        // Reorder window exhausted: place everything buffered (and
        // this chunk) at its final offset now. Gaps become zero
        // holes that later chunks overwrite in place.
        StreamCounters::global().windowOverflows.fetch_add(
            1, std::memory_order_relaxed);
        std::uint64_t high = cursor_;
        for (const auto &[o, bytes] : pending_) {
            sink_.writeAt(payloadBase_ + o, bytes.data(),
                          bytes.size());
            high = std::max(high, o + bytes.size());
        }
        pending_.clear();
        pendingBytes_ = 0;
        sink_.writeAt(payloadBase_ + off, data, len);
        cursor_ = std::max(high, off + len);
        return;
    }

    auto [it, inserted] =
        pending_.emplace(off, std::vector<std::uint8_t>(data, data + len));
    icp_assert(inserted, "duplicate streamed chunk offset");
    (void)it;
    pendingBytes_ += len;
}

void
SbfStreamWriter::endStreamedSection()
{
    icp_assert(streaming_, "endStreamedSection with no open section");
    for (const auto &[o, bytes] : pending_) {
        sink_.writeAt(payloadBase_ + o, bytes.data(), bytes.size());
        cursor_ = std::max(cursor_, o + bytes.size());
    }
    pending_.clear();
    pendingBytes_ = 0;
    // Zero-fill any uncovered tail so the container length holds.
    if (sink_.size() < payloadBase_ + payloadLen_) {
        static const std::uint8_t zeros[4096] = {};
        std::uint64_t at = sink_.size();
        const std::uint64_t end = payloadBase_ + payloadLen_;
        while (at < end) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(sizeof(zeros), end - at));
            sink_.writeAt(at, zeros, n);
            at += n;
        }
    }
    streaming_ = false;
}

void
SbfStreamWriter::finishImage(const BinaryImage &img)
{
    icp_assert(!streaming_, "finishImage inside streamed section");
    putU32(static_cast<std::uint32_t>(img.symbols.size()));
    for (const auto &sym : img.symbols) {
        putString(sym.name);
        putU8(static_cast<std::uint8_t>(sym.kind));
        putU64(sym.addr);
        putU64(sym.size);
    }
    putU32(static_cast<std::uint32_t>(img.relocs.size()));
    for (const auto &rel : img.relocs) {
        putU64(rel.site);
        putU64(static_cast<std::uint64_t>(rel.addend));
    }
    putU32(static_cast<std::uint32_t>(img.linkRelocs.size()));
    for (const auto &rel : img.linkRelocs) {
        putU64(rel.site);
        putString(rel.symbol);
        putU64(static_cast<std::uint64_t>(rel.addend));
    }
}

void
streamImage(const BinaryImage &img, SbfSink &sink)
{
    SbfStreamWriter w(sink);
    w.beginImage(img);
    for (const Section &s : img.sections)
        w.writeSection(s);
    w.finishImage(img);
}

} // namespace icp
