/**
 * @file
 * Static soundness verifier ("icp lint") for rewritten SBF images.
 * Takes the original image and a RewriteResult (whose manifest
 * records what the rewriter intended to emit) and checks, without
 * executing anything, that the rewritten artifacts uphold the
 * invariants the paper's design depends on: trampoline chains land
 * on relocated instruction boundaries (§3), displacements respect
 * each ISA's reach (Table 2), scratch registers are genuinely dead
 * (§7), cloned jump tables stay in bounds and decode to relocated
 * block heads (§5), address maps round-trip (§6), unwind coverage
 * survives, and rewritten function-pointer cells load to their
 * relocated targets (§5.2).
 */

#ifndef ICP_VERIFY_LINT_HH
#define ICP_VERIFY_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "binfmt/image.hh"
#include "rewrite/options.hh"
#include "verify/diagnostics.hh"

namespace icp
{

struct LintOptions
{
    /** Findings at or above this severity fail the lint. */
    Severity failOn = Severity::error;

    /**
     * Run the loader-backed function-pointer rule (maps the image
     * into simulated memory and applies runtime relocations).
     */
    bool checkLoadedImage = true;
};

struct LintReport
{
    std::vector<Diagnostic> findings;

    // What was examined (for reporting; zero when skipped).
    std::uint64_t checkedTrampolines = 0;
    std::uint64_t checkedCloneEntries = 0;
    std::uint64_t checkedFuncPtrs = 0;
    std::uint64_t checkedRaPairs = 0;
    std::uint64_t checkedFdes = 0;

    bool clean() const { return findings.empty(); }

    unsigned
    countAtLeast(Severity floor) const
    {
        return icp::countAtLeast(findings, floor);
    }

    /** True when the report should fail a --fail-on=@p floor run. */
    bool failed(Severity floor) const
    {
        return countAtLeast(floor) > 0;
    }

    /** Findings table plus a one-line summary and checked counts. */
    std::string renderText() const;

    /** Machine-readable report: summary, counts, findings array. */
    std::string renderJson() const;
};

/**
 * Verify @p rw (produced by rewriting @p original) against its
 * manifest. The rewrite must have run with RewriteOptions::lint so
 * the manifest is populated; otherwise a single "lint-manifest"
 * finding is returned.
 */
LintReport lintRewrite(const BinaryImage &original,
                       const RewriteResult &rw,
                       const LintOptions &opts = LintOptions{});

/** Convert SBF container issues into lint diagnostics. */
std::vector<Diagnostic>
diagnosticsFromSbfIssues(const std::vector<SbfIssue> &issues);

} // namespace icp

#endif // ICP_VERIFY_LINT_HH
