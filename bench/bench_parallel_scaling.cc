/**
 * @file
 * Scaling benchmark of the parallel per-function pipeline: full
 * rewrites of the two largest workloads at 1/2/4/8 threads, each
 * under five cache regimes — cold (no prior state), warm-memory
 * (in-process AnalysisCache primed), cold-disk (--cache-file set but
 * the file does not exist yet: pays the save), warm-disk (fresh
 * process, populated cache file: pays load + save, reuses analysis),
 * and warm-disk-delta (fresh process, file primed from a
 * one-instruction-edited binary: one analysis miss, one-entry delta
 * append — the paper's incremental steady state) — reporting wall
 * time, the cache file size, and the per-stage timer breakdown,
 * including the cache.load/cache.save stages. `--json <path>` writes
 * the results (BENCH_parallel.json in the repository is a committed
 * baseline); `--cache-file <path>` relocates the disk regimes'
 * cache file from its /tmp default.
 *
 * Speedups are whatever the host delivers: on a single-core
 * container the thread counts verify determinism and overhead
 * rather than demonstrating parallel speedup.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cache.hh"
#include "bench_main.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

constexpr unsigned reps = 3;

/** The disk-regime cache file; overridable with --cache-file. */
std::string cache_file = "/tmp/icp_bench_parallel.icpc";

double
rewriteWallMs(const BinaryImage &img, unsigned threads,
              const std::string &cache_path = "")
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countFunctionEntries = true;
    opts.threads = threads;
    opts.cachePath = cache_path;
    const auto t0 = std::chrono::steady_clock::now();
    const RewriteResult rw = rewriteBinary(img, opts);
    const auto t1 = std::chrono::steady_clock::now();
    if (!rw.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        std::exit(1);
    }
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

enum class CacheMode
{
    cold,       ///< no prior state at all
    warmMemory, ///< in-process AnalysisCache primed
    coldDisk,   ///< --cache-file set, file absent (pays the save)
    warmDisk,   ///< fresh process + populated file (load + reuse)
    /** Fresh process + file primed from a one-instruction-edited
     *  binary: one analysis miss, one-entry delta append — the
     *  incremental-patching steady state. */
    warmDiskDelta,
};

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::cold: return "cold";
      case CacheMode::warmMemory: return "warm-memory";
      case CacheMode::coldDisk: return "cold-disk";
      case CacheMode::warmDisk: return "warm-disk";
      case CacheMode::warmDiskDelta: return "warm-disk-delta";
    }
    return "?";
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

/**
 * Flip the low bit of one AddImm immediate, in place (same encoded
 * length), so exactly one function's cache key changes. Mirrors the
 * dirty-function probe in test_session.cc.
 */
bool
mutateOneImmediate(BinaryImage &img)
{
    const Codec &codec = *img.archInfo().codec;
    for (const Symbol *sym : img.functionSymbols()) {
        std::vector<std::uint8_t> body;
        if (!img.readBytes(sym->addr, sym->size, body))
            continue;
        Addr addr = sym->addr;
        std::size_t off = 0;
        while (off < body.size()) {
            Instruction in;
            if (!codec.decode(body.data() + off, body.size() - off,
                              addr, in) ||
                in.length == 0)
                break;
            if (in.op == Opcode::AddImm && in.imm > 1) {
                Instruction edit = in;
                edit.imm = in.imm ^ 1;
                std::vector<std::uint8_t> enc;
                if (codec.encode(edit, addr, enc) &&
                    enc.size() == in.length)
                    return img.writeBytes(addr, enc);
            }
            off += in.length;
            addr += in.length;
        }
    }
    return false;
}

struct Run
{
    unsigned threads = 0;
    CacheMode mode = CacheMode::cold;
    double wallMs = 0.0;
    std::string stages; ///< StageTimers JSON of the best rep
    std::uint64_t cacheFileBytes = 0; ///< file size after the run
};

/**
 * Best-of-reps wall time. The disk modes clear the in-memory cache
 * before every rep (each rep models a fresh process); warm-memory
 * primes once and keeps it; cold clears everything every rep.
 */
Run
measure(const BinaryImage &img, unsigned threads, CacheMode mode)
{
    Run run;
    run.threads = threads;
    run.mode = mode;
    if (mode == CacheMode::warmMemory) {
        AnalysisCache::global().clear();
        rewriteWallMs(img, threads);
    }
    if (mode == CacheMode::warmDisk) {
        AnalysisCache::global().clear();
        std::remove(cache_file.c_str());
        rewriteWallMs(img, threads, cache_file); // populate the file
    }
    BinaryImage edited;
    if (mode == CacheMode::warmDiskDelta) {
        edited = img;
        if (!mutateOneImmediate(edited)) {
            std::fprintf(stderr,
                         "no in-place-mutable immediate found\n");
            std::exit(1);
        }
    }
    const bool disk = mode == CacheMode::coldDisk ||
                      mode == CacheMode::warmDisk ||
                      mode == CacheMode::warmDiskDelta;
    for (unsigned r = 0; r < reps; ++r) {
        if (mode == CacheMode::warmDiskDelta) {
            // Re-prime from the edited binary every rep so the timed
            // run always sees exactly one stale entry (its own delta
            // append would otherwise warm the file fully).
            AnalysisCache::global().clear();
            std::remove(cache_file.c_str());
            rewriteWallMs(edited, threads, cache_file);
        }
        if (mode != CacheMode::warmMemory)
            AnalysisCache::global().clear();
        if (mode == CacheMode::coldDisk)
            std::remove(cache_file.c_str());
        StageTimers::global().reset();
        const double ms =
            rewriteWallMs(img, threads, disk ? cache_file : "");
        if (r == 0 || ms < run.wallMs) {
            run.wallMs = ms;
            run.stages = StageTimers::global().json();
            run.cacheFileBytes = disk ? fileBytes(cache_file) : 0;
        }
    }
    return run;
}

std::string
runsJson(const std::vector<Run> &runs)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run &r = runs[i];
        out << (i ? ",\n" : "\n")
            << "    {\"threads\": " << r.threads << ", \"cache\": \""
            << cacheModeName(r.mode) << "\", \"wall_ms\": "
            << r.wallMs
            << ", \"cache_file_bytes\": " << r.cacheFileBytes
            << ", \"stages\": " << r.stages << "}";
    }
    out << "\n  ]";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache-file" && i + 1 < argc)
            cache_file = argv[++i];
        else if (arg.rfind("--cache-file=", 0) == 0)
            cache_file = arg.substr(13);
    }

    std::printf("Parallel pipeline scaling (hardware concurrency: "
                "%u)\n\n",
                std::thread::hardware_concurrency());

    struct Workload
    {
        const char *name;
        BinaryImage img;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"libxul", compileProgram(libxulProfile())});
    workloads.push_back(
        {"spec_gcc_aarch64",
         compileProgram(specCpuSuite(Arch::aarch64, true)[1])});

    icp::bench::JsonSections sections;
    {
        std::ostringstream hw;
        hw << std::thread::hardware_concurrency();
        sections.add("hardware_concurrency", hw.str());
    }

    for (Workload &w : workloads) {
        TextTable table({"Threads", "Cache", "Wall ms", "Speedup",
                         "vs cold"});
        std::vector<Run> runs;
        double base_cold = 0.0;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            double cold_ms = 0.0;
            for (CacheMode mode :
                 {CacheMode::cold, CacheMode::warmMemory,
                  CacheMode::coldDisk, CacheMode::warmDisk,
                  CacheMode::warmDiskDelta}) {
                Run run = measure(w.img, threads, mode);
                if (mode == CacheMode::cold) {
                    cold_ms = run.wallMs;
                    if (threads == 1)
                        base_cold = run.wallMs;
                }
                char speedup[32], vs_cold[32];
                std::snprintf(speedup, sizeof(speedup), "%.2fx",
                              base_cold / run.wallMs);
                std::snprintf(vs_cold, sizeof(vs_cold), "%.2fx",
                              cold_ms / run.wallMs);
                table.addRow({std::to_string(threads),
                              cacheModeName(run.mode),
                              std::to_string(run.wallMs), speedup,
                              mode == CacheMode::cold ? "-"
                                                      : vs_cold});
                runs.push_back(std::move(run));
            }
        }
        std::printf("%s: %zu functions\n%s\n", w.name,
                    w.img.functionSymbols().size(),
                    table.render().c_str());
        sections.add(w.name, runsJson(runs));
    }
    std::remove(cache_file.c_str());

    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          sections.str()))
        return 1;
    return 0;
}
