/**
 * @file
 * Streaming SBF serializer: writes a BinaryImage to a byte sink
 * section by section, so a producer can emit one section's payload
 * in bounded-size chunks (in roughly ascending offset order) instead
 * of materializing the whole image in memory first.
 *
 * Invariants:
 *  - The byte stream produced is identical to the historical
 *    BinaryImage::serialize() layout; serialize() itself is now a
 *    VectorSink client of this writer.
 *  - Chunks pushed through addChunk() may arrive out of order. Out
 *    of order chunks are buffered up to the reorder window; a chunk
 *    that would overflow the window falls back to a positioned
 *    write (and bumps StreamCounters::windowOverflows), which
 *    requires a seekable sink but never loses bytes.
 *  - A streamed section's payload must cover [0, payloadLen)
 *    exactly once; uncovered tail bytes are zero-filled at
 *    endStreamedSection() (matching zero-fill section semantics).
 */

#ifndef ICP_BINFMT_STREAM_WRITER_HH
#define ICP_BINFMT_STREAM_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "binfmt/image.hh"

namespace icp
{

/**
 * Positioned byte sink. size() is the max extent written so far;
 * writing at size() appends, writing below it overwrites in place,
 * and writing past it zero-fills the gap.
 */
class SbfSink
{
  public:
    virtual ~SbfSink() = default;
    virtual void writeAt(std::uint64_t off, const void *data,
                         std::size_t len) = 0;
    virtual std::uint64_t size() const = 0;

    void
    append(const void *data, std::size_t len)
    {
        writeAt(size(), data, len);
    }
};

/** Sink into a caller-owned byte vector. */
class VectorSink final : public SbfSink
{
  public:
    explicit VectorSink(std::vector<std::uint8_t> &out) : out_(out) {}

    void writeAt(std::uint64_t off, const void *data,
                 std::size_t len) override;
    std::uint64_t size() const override { return out_.size(); }

  private:
    std::vector<std::uint8_t> &out_;
};

/**
 * Sink into an open stdio stream (caller keeps ownership). The
 * stream must be seekable for out-of-order writes; purely in-order
 * producers never seek.
 */
class FileSink final : public SbfSink
{
  public:
    explicit FileSink(std::FILE *f) : f_(f) {}

    void writeAt(std::uint64_t off, const void *data,
                 std::size_t len) override;
    std::uint64_t size() const override { return size_; }

    /** False when any fwrite/fseek failed; check before trusting. */
    bool ok() const { return ok_; }

  private:
    std::FILE *f_;
    std::uint64_t pos_ = 0;  ///< current stream position
    std::uint64_t size_ = 0; ///< max extent written
    bool ok_ = true;
};

/**
 * SBF stream writer. Usage, in strict order:
 *
 *   beginImage(img);
 *   for each section (in img.sections order):
 *       writeSection(s)                       // materialized payload
 *     or
 *       beginStreamedSection(s, payloadLen);
 *       addChunk(off, data, len); ...         // cover [0, payloadLen)
 *       endStreamedSection();
 *   finishImage(img);                         // symbols + relocs
 */
class SbfStreamWriter
{
  public:
    static constexpr std::size_t default_window = 1u << 20;

    explicit SbfStreamWriter(SbfSink &sink,
                             std::size_t reorderWindowBytes =
                                 default_window);

    void beginImage(const BinaryImage &img);
    void writeSection(const Section &s);
    void beginStreamedSection(const Section &s,
                              std::uint64_t payloadLen);
    void addChunk(std::uint64_t off, const std::uint8_t *data,
                  std::size_t len);
    void endStreamedSection();
    void finishImage(const BinaryImage &img);

  private:
    void put(const void *data, std::size_t len);
    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putString(const std::string &s);
    void sectionHeader(const Section &s, std::uint64_t payloadLen);

    SbfSink &sink_;
    std::size_t window_;

    // Streamed-section state.
    bool streaming_ = false;
    std::uint64_t payloadBase_ = 0;
    std::uint64_t payloadLen_ = 0;
    std::uint64_t cursor_ = 0; ///< next in-order payload offset
    std::map<std::uint64_t, std::vector<std::uint8_t>> pending_;
    std::size_t pendingBytes_ = 0;
};

/**
 * Serialize @p img through the streaming writer with every section
 * payload already materialized. BinaryImage::serialize() is this
 * with a VectorSink.
 */
void streamImage(const BinaryImage &img, SbfSink &sink);

} // namespace icp

#endif // ICP_BINFMT_STREAM_WRITER_HH
