file(REMOVE_RECURSE
  "CMakeFiles/partial_instrumentation.dir/partial_instrumentation.cpp.o"
  "CMakeFiles/partial_instrumentation.dir/partial_instrumentation.cpp.o.d"
  "partial_instrumentation"
  "partial_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
