#!/bin/sh
# Full pre-merge check, split into named legs:
#
#   tsan           ThreadSanitizer build + parallel determinism tests
#                  (the pipeline's concurrency is only exercised with
#                  >= 2 requested threads, which TSan then observes)
#   asan           Address+UBSanitizer build + the memory-heavy suites
#                  (rewriter, verifier, binfmt, engine, session, cache
#                  store) and the repair-loop CLI smoke
#   release        plain release build + the complete ctest suite
#   lint-baseline  lint the canonical input against the checked-in
#                  report (tests/data/lint_baseline.json): any new
#                  finding fails with exit 2
#   warm-cache     two rewrites sharing an on-disk AnalysisCache
#                  (--cache-file): the second, fresh-process run must
#                  reuse 100% of function analyses, produce
#                  byte-identical output, and leave the cache file
#                  untouched (delta save finds nothing to append)
#   cache-v2       cache store v2 smoke: two concurrent sharded
#                  rewrites merge into one cache file, `icp cache
#                  verify` finds it clean, and `icp cache compact
#                  --max-bytes` / `--cache-max-bytes` enforce the
#                  size cap
#   sharded        multi-process rewrite smoke: the chromium-small
#                  corpus through `icp rewrite --shards 2` must be
#                  byte-identical to the classic path, lint clean,
#                  leave a verifiable + compactable cache file, and
#                  report a peak RSS below the classic run's (the
#                  streaming writer's whole reason to exist)
#   cross-binary   content-addressed sharing smoke: two libcommon
#                  corpus binaries (same static-lib core, different
#                  link bases) rewritten through one shared
#                  --cache-file; the second must reuse >= 50% of its
#                  function analyses as cross-binary hits, stay
#                  byte-identical to its cold rewrite, and leave a
#                  verifiable cache file
#   serve          hot-session daemon smoke: background `icp serve`,
#                  drive open -> rewrite -> edited rewrite -> lint ->
#                  shutdown through `icp client`, assert byte identity
#                  with one-shot rewrites and a warm session hit on
#                  the second rewrite; a second pass SIGKILLs the
#                  daemon mid-session and asserts the stale socket and
#                  lock files don't wedge a restart
#   datadeps       data-dependency smoke on every ISA: `icp deps
#                  --poke-padding` (all) and `--poke-table`
#                  (x64/aarch64; ppc64le embeds its tables in code)
#                  must report identical=1, each datadep-* lint rule
#                  must fire under --inject at its severity, and the
#                  clean binary must stay lint-clean
#   tidy           clang-tidy over src/ + tools/ using the exported
#                  compilation database; skipped (PASS) when
#                  clang-tidy is not installed
#
# Unlike a `set -e` script, every requested leg runs even when an
# earlier one fails; the per-leg PASS/FAIL summary and the aggregate
# exit code report all of them.
#
# Usage: tools/check.sh [jobs] [leg...]   (default: nproc, all legs)
# The ICP_CACHE_FILE env var relocates the warm-cache leg's cache
# file (CI points it into the actions-cache directory).

set -u

cd "$(dirname "$0")/.."

jobs=""
legs=""
for arg in "$@"; do
    case "$arg" in
        [0-9]*) jobs="$arg" ;;
        *) legs="$legs $arg" ;;
    esac
done
jobs="${jobs:-$(nproc)}"
legs="${legs:-tsan asan release lint-baseline warm-cache cache-v2 cross-binary sharded serve datadeps tidy}"

# Compiler launcher: use ccache when available (CI restores its
# directory between runs), invisible otherwise.
launcher=""
if command -v ccache >/dev/null 2>&1; then
    launcher="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

leg_tsan() {
    echo "== ThreadSanitizer build (build-tsan/) =="
    cmake -B build-tsan -S . $launcher \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" &&
    cmake --build build-tsan -j "$jobs" --target test_parallel &&
    echo "== TSan: parallel pipeline tests ==" &&
    ./build-tsan/tests/test_parallel
}

leg_asan() {
    echo "== Address+UBSanitizer build (build-asan/) =="
    cmake -B build-asan -S . $launcher \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" &&
    cmake --build build-asan -j "$jobs" \
        --target test_lint test_rewrite test_binfmt test_engine \
                 test_session test_cache_store icp_cli &&
    echo "== ASan+UBSan: rewriter / verifier / binfmt / session / cache tests ==" &&
    ./build-asan/tests/test_lint &&
    ./build-asan/tests/test_rewrite &&
    ./build-asan/tests/test_binfmt &&
    ./build-asan/tests/test_engine &&
    ./build-asan/tests/test_session &&
    ./build-asan/tests/test_cache_store &&
    echo "== ASan+UBSan: repair-loop smoke (inject -> repair -> lint) ==" &&
    smoke_dir="$(mktemp -d)" &&
    ./build-asan/tools/icp compile micro "$smoke_dir/in.sbf" --pie &&
    ./build-asan/tools/icp rewrite "$smoke_dir/in.sbf" \
        "$smoke_dir/out.sbf" --mode func-ptr --count-blocks \
        --inject tramp-chain --lint --repair
    status=$?
    rm -rf "${smoke_dir:-}"
    return $status
}

leg_release() {
    echo "== Release build (build/) =="
    cmake -B build -S . $launcher &&
    cmake --build build -j "$jobs" &&
    echo "== Release: full test suite ==" &&
    (cd build && ctest --output-on-failure -j "$jobs")
}

build_cli() {
    cmake -B build -S . $launcher >/dev/null &&
    cmake --build build -j "$jobs" --target icp_cli >/dev/null
}

leg_lint_baseline() {
    echo "== Lint baseline gate (tests/data/lint_baseline.json) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    ./build/tools/icp compile micro "$dir/micro.sbf" --pie &&
    ./build/tools/icp lint --diff tests/data/lint_baseline.json \
        "$dir/micro.sbf" --mode func-ptr --count-blocks \
        --fail-on info
    status=$?
    rm -rf "$dir"
    if [ $status -eq 2 ]; then
        echo "lint regressions against the saved baseline" \
             "(regenerate with tools/ci.sh regen-lint-baseline" \
             "if intended)"
    fi
    return $status
}

leg_warm_cache() {
    echo "== Warm-cache smoke (--cache-file round trip) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    cache="${ICP_CACHE_FILE:-$dir/analysis-cache.icpc}"
    mkdir -p "$(dirname "$cache")" &&
    ./build/tools/icp compile micro "$dir/in.sbf" --pie &&
    ./build/tools/icp rewrite "$dir/in.sbf" "$dir/cold.sbf" \
        --cache-file "$cache" &&
    stamp_before="$(stat -c '%Y %s' "$cache")" &&
    ./build/tools/icp rewrite "$dir/in.sbf" "$dir/warm.sbf" \
        --cache-file "$cache" | tee "$dir/warm.log" &&
    grep -q " reused (100.0%)" "$dir/warm.log" &&
    cmp "$dir/cold.sbf" "$dir/warm.sbf" &&
    stamp_after="$(stat -c '%Y %s' "$cache")" &&
    [ "$stamp_before" = "$stamp_after" ] &&
    echo "warm run: full reuse, byte-identical output," \
         "cache file untouched"
    status=$?
    rm -rf "$dir"
    return $status
}

leg_cache_v2() {
    echo "== Cache store v2 smoke (merge / verify / compact) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    cache="$dir/shared.icpc"
    # Two writers race on one cache file; flock + merge-on-save must
    # leave a clean file holding both shards.
    ./build/tools/icp compile micro "$dir/a.sbf" --pie &&
    ./build/tools/icp compile spec1 "$dir/b.sbf" --pie &&
    {
        ./build/tools/icp rewrite "$dir/a.sbf" "$dir/a_out.sbf" \
            --cache-file "$cache" &
        pid_a=$!
        ./build/tools/icp rewrite "$dir/b.sbf" "$dir/b_out.sbf" \
            --cache-file "$cache" &
        pid_b=$!
        # A bare `wait` always exits 0; wait on each pid so a failed
        # background rewrite fails the leg.
        wait "$pid_a" && wait "$pid_b"
    } &&
    ./build/tools/icp cache verify "$cache" &&
    ./build/tools/icp rewrite "$dir/a.sbf" "$dir/a_warm.sbf" \
        --cache-file "$cache" | grep -q " reused (100.0%)" &&
    ./build/tools/icp rewrite "$dir/b.sbf" "$dir/b_warm.sbf" \
        --cache-file "$cache" | grep -q " reused (100.0%)" &&
    cmp "$dir/a_out.sbf" "$dir/a_warm.sbf" &&
    cmp "$dir/b_out.sbf" "$dir/b_warm.sbf" &&
    echo "concurrent writers merged: clean file, both warm" &&
    # Compaction honors the byte cap, and the rewrite flag applies
    # the same cap automatically.
    ./build/tools/icp cache compact "$cache" --max-bytes 8192 &&
    [ "$(stat -c '%s' "$cache")" -le 8192 ] &&
    ./build/tools/icp cache verify "$cache" &&
    ./build/tools/icp rewrite "$dir/b.sbf" "$dir/b_cap.sbf" \
        --cache-file "$cache" --cache-max-bytes 8192 &&
    [ "$(stat -c '%s' "$cache")" -le 8192 ] &&
    echo "compaction: size cap enforced, file still clean"
    status=$?
    rm -rf "$dir"
    return $status
}

leg_cross_binary() {
    echo "== Cross-binary cache smoke (libcommon corpus, shared --cache-file) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    cache="$dir/shared.icpc"
    ./build/tools/icp compile libcommon0 "$dir/a.sbf" &&
    ./build/tools/icp compile libcommon1 "$dir/b.sbf" &&
    # Cold ground truth for the second binary: no cache anywhere.
    ./build/tools/icp rewrite "$dir/b.sbf" "$dir/b_cold.sbf" &&
    # Prime the shared file with the first binary...
    ./build/tools/icp rewrite "$dir/a.sbf" "$dir/a_out.sbf" \
        --cache-file "$cache" &&
    # ...then rewrite the second against it. The binaries share only
    # their static-lib core, at different link bases: the >= 50%
    # analysis reuse below is possible only if content-addressed
    # keys hit across binaries and rebase-on-hit keeps the output
    # byte-identical to the cold run.
    ./build/tools/icp rewrite "$dir/b.sbf" "$dir/b_warm.sbf" \
        --cache-file "$cache" --timing | tee "$dir/warm.log" &&
    pct="$(sed -n 's/.*reused (\([0-9.]*\)%).*/\1/p' "$dir/warm.log")" &&
    [ -n "$pct" ] &&
    awk "BEGIN{exit !($pct >= 50)}" &&
    cross="$(sed -n 's/.* \([0-9][0-9]*\) cross hits.*/\1/p' "$dir/warm.log")" &&
    [ -n "$cross" ] && [ "$cross" -gt 0 ] &&
    cmp "$dir/b_cold.sbf" "$dir/b_warm.sbf" &&
    ./build/tools/icp cache verify "$cache" &&
    echo "cross-binary: ${pct}% reuse, $cross cross hits," \
         "byte-identical to cold, cache clean"
    status=$?
    rm -rf "$dir"
    return $status
}

leg_sharded() {
    echo "== Sharded rewrite smoke (chromium-small, --shards 2) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    cache="$dir/shards.icpc"
    ./build/tools/icp compile chromium-small "$dir/in.sbf" --pie &&
    ./build/tools/icp rewrite "$dir/in.sbf" "$dir/classic.sbf" \
        --mode jt --timing | tee "$dir/classic.log" &&
    ./build/tools/icp rewrite "$dir/in.sbf" "$dir/sharded.sbf" \
        --mode jt --shards 2 --cache-file "$cache" --timing |
        tee "$dir/sharded.log" &&
    cmp "$dir/classic.sbf" "$dir/sharded.sbf" &&
    echo "sharded output byte-identical to classic" &&
    grep -q "^shard 1:" "$dir/sharded.log" &&
    ./build/tools/icp lint "$dir/in.sbf" --mode jt \
        --fail-on error &&
    ./build/tools/icp cache verify "$cache" &&
    ./build/tools/icp cache compact "$cache" --max-bytes 262144 &&
    ./build/tools/icp cache verify "$cache" &&
    # The whole point of streaming: the sharded run's peak RSS must
    # come in under the materializing classic run's.
    classic_rss="$(awk '/peak-rss/{print $2}' "$dir/classic.log")" &&
    sharded_rss="$(awk '/peak-rss/{print $2}' "$dir/sharded.log")" &&
    [ -n "$classic_rss" ] && [ -n "$sharded_rss" ] &&
    [ "$sharded_rss" -lt "$classic_rss" ] &&
    echo "peak RSS: sharded $sharded_rss < classic $classic_rss"
    status=$?
    rm -rf "$dir"
    return $status
}

# Poll a daemon's socket with `icp client ping` until it answers
# (readiness, not a fixed sleep). Fails after ~5s.
serve_wait_ready() {
    sock="$1"
    i=0
    while [ "$i" -lt 50 ]; do
        if ./build/tools/icp client "$sock" ping >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "serve: daemon on $sock never became ready"
    return 1
}

leg_serve() {
    echo "== Serve daemon smoke (icp serve / icp client round trip) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    sock="$dir/serve.sock"
    status=1
    # Ground truths: one-shot rewrites of the original and the edited
    # input, produced without any daemon in the picture.
    if ./build/tools/icp compile micro "$dir/in.sbf" --pie &&
       ./build/tools/icp compile spec1 "$dir/edit.sbf" --pie &&
       ./build/tools/icp rewrite "$dir/in.sbf" "$dir/oneshot.sbf" &&
       cp "$dir/edit.sbf" "$dir/edit_in.sbf" &&
       ./build/tools/icp rewrite "$dir/edit_in.sbf" \
           "$dir/oneshot_edit.sbf"
    then
        # Pass 1: full session lifecycle against one daemon, ending in
        # a graceful shutdown whose exit status we actually collect.
        ./build/tools/icp serve "$sock" &
        srv=$!
        if serve_wait_ready "$sock" &&
           ./build/tools/icp client "$sock" open "$dir/in.sbf" &&
           ./build/tools/icp client "$sock" rewrite "$dir/in.sbf" \
               "$dir/served.sbf" &&
           cmp "$dir/oneshot.sbf" "$dir/served.sbf" &&
           ./build/tools/icp client "$sock" rewrite "$dir/in.sbf" \
               "$dir/served2.sbf" | tee "$dir/warm.log" &&
           grep -q "warm=1" "$dir/warm.log" &&
           cmp "$dir/oneshot.sbf" "$dir/served2.sbf" &&
           echo "serve: second rewrite warm, byte-identical" &&
           # Edit the binary on disk; the resident session must notice
           # the stamp change and still match the one-shot answer.
           cp "$dir/edit.sbf" "$dir/in.sbf" &&
           ./build/tools/icp client "$sock" rewrite "$dir/in.sbf" \
               "$dir/served_edit.sbf" | tee "$dir/edit.log" &&
           grep -q "warm=1" "$dir/edit.log" &&
           cmp "$dir/oneshot_edit.sbf" "$dir/served_edit.sbf" &&
           echo "serve: edited rewrite warm, byte-identical" &&
           ./build/tools/icp client "$sock" lint "$dir/in.sbf" \
               --fail-on error &&
           ./build/tools/icp client "$sock" shutdown &&
           wait "$srv"
        then
            echo "serve: lifecycle pass clean (daemon exit 0)"
            status=0
        else
            kill "$srv" 2>/dev/null
            wait "$srv" 2>/dev/null
        fi
    fi
    # Pass 2: SIGKILL the daemon mid-session. The abandoned socket and
    # lock files must not wedge a restart on the same path.
    if [ $status -eq 0 ]; then
        status=1
        ./build/tools/icp serve "$sock" &
        srv=$!
        if serve_wait_ready "$sock" &&
           ./build/tools/icp client "$sock" open "$dir/in.sbf"
        then
            kill -9 "$srv"
            wait "$srv" 2>/dev/null
            [ -S "$sock" ] || echo "serve: note: socket already gone"
            ./build/tools/icp serve "$sock" &
            srv=$!
            if serve_wait_ready "$sock" &&
               ./build/tools/icp client "$sock" rewrite "$dir/in.sbf" \
                   "$dir/served_restart.sbf" &&
               cmp "$dir/oneshot_edit.sbf" "$dir/served_restart.sbf" &&
               ./build/tools/icp client "$sock" shutdown &&
               wait "$srv"
            then
                echo "serve: SIGKILL restart pass clean"
                status=0
            else
                kill "$srv" 2>/dev/null
                wait "$srv" 2>/dev/null
            fi
        else
            kill -9 "$srv" 2>/dev/null
            wait "$srv" 2>/dev/null
        fi
    fi
    rm -rf "$dir"
    return $status
}

leg_datadeps() {
    echo "== Data-dependency smoke (icp deps pokes + inject matrix) =="
    build_cli || return 1
    dir="$(mktemp -d)"
    status=0
    for arch in x64 aarch64 ppc64le; do
        in="$dir/in-$arch.sbf"
        if ! ./build/tools/icp compile chromium-small "$in" \
                --pie --arch "$arch"; then
            status=1
            continue
        fi
        # Padding poke: a data-only edit no function reads must make
        # the warm pass re-analyze and re-emit nothing.
        if ! ./build/tools/icp deps "$in" --poke-padding |
                tee "$dir/pad-$arch.log" ||
           ! grep -q "deps-check padding: .* dirty=0 emitted=0 identical=1" \
                "$dir/pad-$arch.log"; then
            echo "datadeps: padding poke failed ($arch)"
            status=1
        fi
        # Table poke: retargeting one jump-table entry must dirty
        # exactly its reader and still emit byte-identical output.
        # ppc64le embeds its tables in code, so there is nothing to
        # poke without touching text.
        if [ "$arch" != "ppc64le" ]; then
            if ! ./build/tools/icp deps "$in" --poke-table |
                    tee "$dir/tbl-$arch.log" ||
               ! grep -q "deps-check table: .* identical=1 lint-errors=0" \
                    "$dir/tbl-$arch.log"; then
                echo "datadeps: table poke failed ($arch)"
                status=1
            fi
        fi
        # Each datadep rule fires under injection at its severity:
        # missing/stale are errors, overbroad is a warning only.
        for defect in dep-missing dep-stale; do
            if ./build/tools/icp lint "$in" --inject "$defect" \
                    --fail-on error >/dev/null 2>&1; then
                echo "datadeps: --inject $defect not an error ($arch)"
                status=1
            fi
        done
        if ! ./build/tools/icp lint "$in" --inject dep-overbroad \
                --fail-on error >/dev/null 2>&1; then
            echo "datadeps: dep-overbroad escalated past warning ($arch)"
            status=1
        fi
        if ./build/tools/icp lint "$in" --inject dep-overbroad \
                --fail-on warning >/dev/null 2>&1; then
            echo "datadeps: --inject dep-overbroad not a warning ($arch)"
            status=1
        fi
        # ...and without injection the binary stays clean.
        if ! ./build/tools/icp lint "$in" --fail-on warning \
                >/dev/null; then
            echo "datadeps: clean binary not lint-clean ($arch)"
            status=1
        fi
    done
    rm -rf "$dir"
    [ $status -eq 0 ] &&
    echo "deps checks: pokes identical, rules fire, clean stays clean"
    return $status
}

leg_tidy() {
    echo "== clang-tidy (src/ + tools/, .clang-tidy config) =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; leg skipped"
        return 0
    fi
    build_cli || return 1
    clang-tidy -p build --quiet \
        $(git ls-files 'src/*.cc' 'tools/*.cc')
}

summary=""
failed=0
for leg in $legs; do
    fn="leg_$(echo "$leg" | tr - _)"
    if ! command -v "$fn" >/dev/null 2>&1 && ! type "$fn" >/dev/null 2>&1; then
        echo "check.sh: unknown leg '$leg'" >&2
        summary="$summary
  $leg: UNKNOWN"
        failed=1
        continue
    fi
    echo ""
    echo "=== leg: $leg ==="
    if "$fn"; then
        summary="$summary
  $leg: PASS"
    else
        summary="$summary
  $leg: FAIL"
        failed=1
    fi
done

echo ""
echo "== check.sh summary ==$summary"
if [ $failed -ne 0 ]; then
    echo "== check.sh: FAILURES =="
    exit 1
fi
echo "== check.sh: all green =="
