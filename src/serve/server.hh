/**
 * @file
 * The `icp serve` daemon: a long-lived server holding warm
 * RewriteSessions keyed by binary path, answering rewrite / lint /
 * repair / deps requests over a Unix-domain socket so a CI fleet
 * pays process startup and the mmap'd cache load once instead of
 * per invocation (the ROADMAP's hot-session item).
 *
 * Resident sessions form an LRU with a byte budget: when the sum of
 * per-session resident bytes (input file + cached output) exceeds
 * ServeOptions::sessionMaxBytes, least-recently-used sessions are
 * evicted first — the same oldest-first policy as `--cache-max-bytes`
 * cache compaction. An evicted binary transparently re-opens cold on
 * its next request (their analysis entries usually survive in the
 * process-wide AnalysisCache, so "cold" is still warm-memory).
 *
 * Concurrency: the accept loop dispatches each connection onto the
 * process-wide ThreadPool (ThreadPool::submit); a per-session mutex
 * serializes requests against the same binary while distinct
 * binaries proceed in parallel. A `rewrite` against a warm session
 * whose input file changed goes through RewriteSession::loadInput's
 * input-diff / overlap-keyed invalidation, so a one-function edit
 * re-analyzes and re-emits exactly one function.
 *
 * Robustness: per-request socket timeouts, structured "error"
 * replies for malformed frames and failed operations (a broken
 * request never kills a worker), and graceful drain — SIGTERM (via
 * requestDrain(), which is async-signal-safe) stops the accept loop,
 * lets in-flight requests finish, delta-saves every session's
 * on-disk cache, and removes the socket and lock files. A SIGKILL'd
 * daemon leaves both files behind; the flock-based lock means a
 * restart detects the stale socket and rebinds instead of wedging.
 */

#ifndef ICP_SERVE_SERVER_HH
#define ICP_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rewrite/session.hh"
#include "serve/protocol.hh"
#include "support/stats.hh"

namespace icp
{

struct ServeOptions
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /**
     * Byte budget for resident sessions (0 = unbounded). Evicts
     * least-recently-used sessions until the total fits, mirroring
     * the oldest-first `--cache-max-bytes` eviction policy.
     */
    std::uint64_t sessionMaxBytes = 0;

    /** Hard cap on resident session count (0 = none). */
    unsigned maxSessions = 0;

    /** Per-request socket read/write timeout (<= 0 = none). */
    int requestTimeoutMs = 30000;

    /**
     * Bound on accepted-but-unfinished connections (0 = unbounded).
     * When the bound is reached the accept loop drains each new
     * connection's request frame, answers it with a structured
     * `error` reply (code "busy"), and closes it — so an overloaded
     * daemon sheds load in milliseconds instead of queueing
     * unbounded work behind the thread pool. Rejections count in
     * ServeCounters::rejected (`serve_rejected`).
     */
    unsigned maxPending = 0;

    /** Default worker threads for sessions opened without an
     *  explicit threads field. 0 = hardware concurrency. */
    unsigned threads = 0;
};

/** Snapshot of the daemon's counters (the `stats` verb). */
struct ServeStatsSnapshot
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t sessionHits = 0;
    std::uint64_t sessionMisses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t badFrames = 0;
    std::uint64_t rejected = 0; ///< connections shed at --max-pending

    unsigned residentSessions = 0;
    std::uint64_t residentBytes = 0;

    /** Request latency percentiles in milliseconds (0 when empty). */
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

class ServeServer
{
  public:
    explicit ServeServer(ServeOptions options);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Acquire the lock file (`<socket>.lock`), replace any stale
     * socket, bind, and listen. False with @p error set when another
     * daemon holds the lock or the socket cannot be created.
     */
    bool start(std::string &error);

    /**
     * Accept/dispatch until drained. Returns 0 after a clean drain
     * (all in-flight requests finished, caches delta-saved, socket
     * and lock files removed), 1 on accept-loop failure.
     */
    int run();

    /**
     * Begin graceful drain: refuse new connections, finish in-flight
     * requests, then return from run(). Async-signal-safe (an atomic
     * store plus a self-pipe write), so SIGTERM handlers call it
     * directly.
     */
    void requestDrain();

    ServeStatsSnapshot statsSnapshot() const;

    const ServeOptions &options() const { return opts_; }

  private:
    /** One resident session plus its bookkeeping. */
    struct Resident
    {
        std::mutex mu; ///< serializes requests on this binary

        std::string key;       ///< canonical binary path
        RewriteOptions opts;   ///< options it was opened under
        std::unique_ptr<RewriteSession> session;

        /** Serialized output of the last rewrite (what a one-shot
         *  `icp rewrite` would have written), reused verbatim when
         *  the input file is unchanged. */
        std::vector<std::uint8_t> outputBytes;

        /** Input-file stamp at last load (mtime ns, size). */
        std::uint64_t stampMtimeNs = 0;
        std::uint64_t stampSize = 0;

        std::uint64_t residentBytes = 0;
        std::uint64_t lastUse = 0; ///< LRU tick
        bool everRewritten = false;
    };

    void handleConnection(int fd);

    /**
     * Dispatch one parsed request to its verb handler; never throws
     * (failures become "error" replies).
     */
    ServeMessage handleRequest(const ServeMessage &request);

    ServeMessage handleOpen(const ServeMessage &request);
    ServeMessage handleRewrite(const ServeMessage &request);
    ServeMessage handleLint(const ServeMessage &request);
    ServeMessage handleRepair(const ServeMessage &request);
    ServeMessage handleDeps(const ServeMessage &request);
    ServeMessage handleStats(const ServeMessage &request);

    /**
     * Look up or create the resident session for @p path. Sets
     * @p warm to whether it was already resident, bumps the LRU
     * tick, and applies eviction after an insert.
     */
    std::shared_ptr<Resident>
    ensureResident(const std::string &path,
                   const ServeMessage &request, bool &warm,
                   std::string &error);

    /**
     * Bring @p resident up to date with its input file: (re)load
     * when the stamp changed, run the first rewrite, or reuse the
     * previous result. Caller holds resident->mu. Returns false
     * with @p error on unreadable/undecodable input or a failed
     * rewrite; @p reply receives the warm/dirty/emitted fields.
     */
    bool refreshResident(Resident &resident, ServeMessage &reply,
                        std::string &error);

    /** Evict LRU sessions past the byte/count budget (not @p keep). */
    void evictOverBudget(const Resident *keep);

    void noteLatency(double ms);

    ServeOptions opts_;
    std::string lockPath_;
    int listenFd_ = -1;
    int lockFd_ = -1;
    int drainPipe_[2] = {-1, -1};
    std::atomic<bool> draining_{false};

    mutable std::mutex registryMu_;
    std::map<std::string, std::shared_ptr<Resident>> sessions_;
    std::uint64_t tick_ = 0;

    std::mutex inflightMu_;
    std::condition_variable inflightCv_;
    unsigned inflight_ = 0;

    mutable std::mutex latencyMu_;
    SampleStats latency_;
};

} // namespace icp

#endif // ICP_SERVE_SERVER_HH
