# Empty compiler generated dependencies file for icp_cli.
# This may be replaced when dependencies are built.
