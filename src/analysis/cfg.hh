/**
 * @file
 * CFG data structures produced by binary analysis and consumed by
 * the rewriters: basic blocks with decoded instructions, typed
 * edges, per-function jump-table results, and the failure states of
 * Figure 2 (analysis reporting failure / over-approximation /
 * under-approximation).
 */

#ifndef ICP_ANALYSIS_CFG_HH
#define ICP_ANALYSIS_CFG_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/datadeps.hh"
#include "binfmt/image.hh"
#include "isa/instruction.hh"

namespace icp
{

enum class EdgeKind : std::uint8_t
{
    fallthrough,
    taken,          ///< direct branch target
    callFallthrough,///< resume point after a call
    jumpTable,      ///< resolved indirect-jump target
};

struct Edge
{
    Addr target;
    EdgeKind kind;
};

/** A basic block: [start, end) with decoded instructions. */
struct Block
{
    Addr start = 0;
    Addr end = 0;
    std::vector<Instruction> insns;

    /** Intra-procedural successors. */
    std::vector<Edge> succs;

    /** Direct call target, if the block ends in a Call. */
    std::optional<Addr> callTarget;

    /** Block ends in an unresolved indirect jump (tail call?). */
    bool endsInUnresolvedIndirect = false;

    /** Block ends in Ret / Halt / tail jump leaving the function. */
    bool endsFunction = false;

    const Instruction &
    last() const
    {
        return insns.back();
    }

    std::uint64_t size() const { return end - start; }
};

/** A resolved (or failed) jump table. */
struct JumpTable
{
    Addr jumpAddr = 0;       ///< address of the indirect jump
    Addr tableAddr = 0;      ///< first entry
    unsigned entrySize = 4;
    bool signedEntries = false;
    unsigned shift = 0;      ///< scale applied to entries (a64: 2)

    /** Entries are target-base-relative; absolute when empty. */
    std::optional<Addr> base;

    /**
     * Instruction addresses that materialize the table base —
     * the ones jump-table cloning overwrites to reference the clone.
     */
    std::vector<Addr> baseDefAddrs;

    /** Address of the table-entry load instruction. */
    Addr loadAddr = 0;

    unsigned entryCount = 0;
    std::vector<Addr> targets; ///< computed, in entry order

    /** True when the table bytes live inside .text (ppc64le). */
    bool embeddedInCode = false;
};

/** Why a function was marked uninstrumentable. */
enum class AnalysisFailure : std::uint8_t
{
    none = 0,
    jumpTableUnresolved, ///< couldn't find where a table starts (F1)
    gapsWithRealCode,    ///< unresolved jump + non-nop gaps
};

struct Function
{
    std::string name;
    Addr entry = 0;
    Addr end = 0; ///< entry + symbol size

    std::map<Addr, Block> blocks; ///< keyed by start

    std::vector<JumpTable> jumpTables;

    /** Unresolved indirect jumps classified as tail calls. */
    std::vector<Addr> indirectTailCalls;

    AnalysisFailure failure = AnalysisFailure::none;

    /** Landing-pad block starts (from .eh_frame try ranges). */
    std::set<Addr> landingPads;

    /**
     * Analysis-cache key this function was built (or found) under;
     * 0 when caching was disabled. Derived analyses (liveness) are
     * memoized under the same key.
     */
    std::uint64_t cacheKey = 0;

    /**
     * Data bytes this function's analysis and clones read (jump
     * tables, constant-base data loads), finalized against the image
     * it was analyzed on. Cache hits keyed on code bytes are
     * validated by re-hashing these ranges; loadInput keys data-edit
     * invalidation on overlap with them.
     */
    DataDeps dataDeps;

    bool instrumentable() const
    {
        return failure == AnalysisFailure::none;
    }

    const Block *blockAt(Addr a) const;
    Block *blockAt(Addr a);

    /** Blocks that are targets of resolved jump tables. */
    std::set<Addr> jumpTableTargets() const;
};

/** Whole-module analysis result. */
struct CfgModule
{
    const BinaryImage *image = nullptr;

    std::map<Addr, Function> functions; ///< keyed by entry

    /** Totals for coverage reporting. */
    unsigned totalFunctions() const
    {
        return static_cast<unsigned>(functions.size());
    }
    unsigned instrumentableFunctions() const;

    const Function *functionAt(Addr entry) const;
};

} // namespace icp

#endif // ICP_ANALYSIS_CFG_HH
