file(REMOVE_RECURSE
  "CMakeFiles/bench_docker.dir/bench_docker.cc.o"
  "CMakeFiles/bench_docker.dir/bench_docker.cc.o.d"
  "bench_docker"
  "bench_docker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_docker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
