#include "serve/protocol.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace icp
{

namespace
{

bool
verbToken(const std::string &verb)
{
    if (verb.empty())
        return false;
    for (char c : verb) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** Values travel on one line each; fold any newline into a space. */
std::string
sanitizeValue(const std::string &value)
{
    std::string out = value;
    for (char &c : out) {
        if (c == '\n' || c == '\r' || c == '\0')
            c = ' ';
    }
    return out;
}

/**
 * poll @p fd for @p events; false on timeout or poll failure.
 * timeout_ms <= 0 waits forever.
 */
bool
waitFd(int fd, short events, int timeout_ms, bool *timed_out)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        const int rc = poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
        if (rc > 0)
            return true;
        if (rc == 0) {
            if (timed_out != nullptr)
                *timed_out = true;
            return false;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
}

/** Read exactly @p size bytes; partial reads loop under the timeout. */
FrameStatus
readFully(int fd, std::uint8_t *data, std::size_t size,
          int timeout_ms, std::size_t *got, std::string &error)
{
    std::size_t off = 0;
    while (off < size) {
        bool timed_out = false;
        if (!waitFd(fd, POLLIN, timeout_ms, &timed_out)) {
            if (got != nullptr)
                *got = off;
            error = timed_out ? "read timeout" : "poll failed";
            return timed_out ? FrameStatus::timeout
                             : FrameStatus::ioError;
        }
        const ssize_t n = recv(fd, data + off, size - off, 0);
        if (n == 0) {
            if (got != nullptr)
                *got = off;
            error = "connection closed";
            return FrameStatus::closed;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (got != nullptr)
                *got = off;
            error = std::string("read failed: ") +
                    std::strerror(errno);
            return FrameStatus::ioError;
        }
        off += static_cast<std::size_t>(n);
    }
    if (got != nullptr)
        *got = off;
    return FrameStatus::ok;
}

} // namespace

void
ServeMessage::set(const std::string &key, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    fields.emplace_back(key, buf);
}

std::string
ServeMessage::get(const std::string &key,
                  const std::string &fallback) const
{
    const std::string *found = nullptr;
    for (const auto &[k, v] : fields) {
        if (k == key)
            found = &v;
    }
    return found != nullptr ? *found : fallback;
}

std::uint64_t
ServeMessage::getU64(const std::string &key,
                     std::uint64_t fallback) const
{
    const std::string v = get(key);
    if (v.empty())
        return fallback;
    return std::strtoull(v.c_str(), nullptr, 10);
}

bool
ServeMessage::has(const std::string &key) const
{
    for (const auto &[k, v] : fields) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

std::vector<std::uint8_t>
encodeServePayload(const ServeMessage &msg)
{
    std::string text = sanitizeValue(msg.verb);
    text += '\n';
    for (const auto &[key, value] : msg.fields) {
        text += sanitizeValue(key);
        text += '=';
        text += sanitizeValue(value);
        text += '\n';
    }
    return {text.begin(), text.end()};
}

bool
parseServePayload(const std::uint8_t *data, std::size_t size,
                  ServeMessage &out, std::string &error)
{
    out = ServeMessage{};
    if (size == 0) {
        error = "empty payload";
        return false;
    }
    if (std::memchr(data, '\0', size) != nullptr) {
        error = "embedded NUL in payload";
        return false;
    }
    const std::string text(reinterpret_cast<const char *>(data),
                           size);
    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (first) {
            if (!verbToken(line)) {
                error = "bad verb line";
                return false;
            }
            out.verb = line;
            first = false;
            continue;
        }
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "field line without key=value";
            return false;
        }
        out.fields.emplace_back(line.substr(0, eq),
                                line.substr(eq + 1));
    }
    if (first) {
        error = "missing verb line";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
encodeServeFrame(const ServeMessage &msg)
{
    const std::vector<std::uint8_t> payload =
        encodeServePayload(msg);
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::vector<std::uint8_t> frame;
    frame.reserve(4 + payload.size());
    for (unsigned b = 0; b < 4; ++b)
        frame.push_back(
            static_cast<std::uint8_t>((len >> (8 * b)) & 0xff));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::ok: return "ok";
      case FrameStatus::closed: return "closed";
      case FrameStatus::timeout: return "timeout";
      case FrameStatus::oversized: return "oversized";
      case FrameStatus::malformed: return "malformed";
      case FrameStatus::ioError: return "io-error";
    }
    return "?";
}

FrameStatus
readServeFrame(int fd, ServeMessage &out, int timeout_ms,
               std::string &error)
{
    std::uint8_t head[4];
    std::size_t got = 0;
    FrameStatus status =
        readFully(fd, head, sizeof(head), timeout_ms, &got, error);
    if (status != FrameStatus::ok) {
        // EOF mid-prefix is a truncated frame, not an orderly close.
        if (status == FrameStatus::closed && got > 0) {
            error = "truncated frame (EOF in length prefix)";
            return FrameStatus::malformed;
        }
        return status;
    }
    std::uint32_t len = 0;
    for (unsigned b = 0; b < 4; ++b)
        len |= static_cast<std::uint32_t>(head[b]) << (8 * b);
    if (len == 0) {
        error = "zero-length frame";
        return FrameStatus::malformed;
    }
    if (len > kMaxFramePayload) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "frame payload %u exceeds limit %u", len,
                      kMaxFramePayload);
        error = buf;
        return FrameStatus::oversized;
    }
    std::vector<std::uint8_t> payload(len);
    status = readFully(fd, payload.data(), payload.size(),
                       timeout_ms, &got, error);
    if (status != FrameStatus::ok) {
        if (status == FrameStatus::closed) {
            error = "truncated frame (EOF in payload)";
            return FrameStatus::malformed;
        }
        return status;
    }
    if (!parseServePayload(payload.data(), payload.size(), out,
                           error))
        return FrameStatus::malformed;
    return FrameStatus::ok;
}

bool
writeServeFrame(int fd, const ServeMessage &msg, int timeout_ms)
{
    const std::vector<std::uint8_t> frame = encodeServeFrame(msg);
    std::size_t off = 0;
    while (off < frame.size()) {
        if (!waitFd(fd, POLLOUT, timeout_ms, nullptr))
            return false;
        const ssize_t n = send(fd, frame.data() + off,
                               frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
serveCall(const std::string &socket_path,
          const ServeMessage &request, ServeMessage &reply,
          std::string &error, int timeout_ms)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long";
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size());

    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket failed: ") +
                std::strerror(errno);
        return false;
    }
    if (connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        error = std::string("cannot connect to ") + socket_path +
                ": " + std::strerror(errno);
        close(fd);
        return false;
    }
    bool ok = writeServeFrame(fd, request, timeout_ms);
    if (!ok) {
        error = "cannot send request";
    } else {
        const FrameStatus status =
            readServeFrame(fd, reply, timeout_ms, error);
        ok = status == FrameStatus::ok;
        if (!ok && error.empty())
            error = frameStatusName(status);
    }
    close(fd);
    return ok;
}

} // namespace icp
