#include "baselines/instpatch.hh"

#include "analysis/builder.hh"
#include "binfmt/addr_map.hh"
#include "isa/assembler.hh"
#include "rewrite/scratch.hh"
#include "rewrite/trampoline.hh"
#include "sim/runtime_lib.hh"
#include "support/logging.hh"

namespace icp
{

RewriteResult
instPatchRewrite(const BinaryImage &input,
                 const InstrumentationSpec &instrumentation)
{
    RewriteResult result;
    const ArchInfo &arch = input.archInfo();
    if (arch.arch != Arch::x64) {
        result.failReason = "instruction patching is x86-64 only "
                            "(its tactics depend on the ISA, §2.2)";
        return result;
    }

    const CfgModule cfg = buildCfg(input, AnalysisOptions{});
    result.stats.totalFunctions = cfg.totalFunctions();
    result.stats.instrumentableFunctions =
        cfg.instrumentableFunctions();
    result.stats.originalLoadedSize = input.loadedSize();

    BinaryImage out = input;
    const Addr stub_base = input.highWaterMark(4096);
    Assembler as(arch, stub_base);

    struct PendingTramp
    {
        Addr block;
        std::uint64_t size;
        Assembler::Label stub;
    };
    std::vector<PendingTramp> tramps;
    std::uint32_t next_counter = 0;

    for (const auto &[entry, func] : cfg.functions) {
        if (!func.instrumentable())
            continue;
        result.stats.instrumentedFunctions++;
        for (const auto &[start, block] : func.blocks) {
            const auto stub = as.newLabel();
            as.bind(stub);

            if (instrumentation.countFunctionEntries &&
                start == func.entry) {
                const std::uint32_t id = next_counter++;
                result.entryCounters[func.entry] = id;
                as.emit(makeCallRt(
                    rtServiceImm(RtService::count, id)));
            }
            if (instrumentation.countBlocks) {
                const std::uint32_t id = next_counter++;
                result.blockCounters[start] = id;
                as.emit(makeCallRt(
                    rtServiceImm(RtService::count, id)));
            }

            // Copy the block; direct branches re-encode against
            // their original absolute targets. Control leaves the
            // stub straight back into original code.
            for (const auto &in : block.insns)
                as.emit(in);
            const Instruction &last = block.last();
            const bool falls = !isControlFlow(last.op) ||
                               last.op == Opcode::JmpCond ||
                               isCall(last.op);
            if (falls)
                as.emit(makeJmp(block.end));

            tramps.push_back({start, block.size(), stub});
            result.stats.totalBlocks++;
            result.stats.cflBlocks++; // every block is a landing site
        }
    }

    Section stubs;
    stubs.name = ".instr";
    stubs.kind = SectionKind::instr;
    stubs.addr = stub_base;
    stubs.bytes = as.finalize();
    stubs.memSize = stubs.bytes.size();
    stubs.executable = true;
    out.addSection(std::move(stubs));

    // Install the entry branches. Inter-function padding serves as
    // the punning-analog scratch space.
    ScratchPool pool;
    {
        const auto funcs = input.functionSymbols();
        const Section *text = input.findSection(SectionKind::text);
        Addr cursor = text->addr;
        for (const Symbol *sym : funcs) {
            if (sym->addr > cursor)
                pool.donate(cursor, sym->addr - cursor, 1);
            cursor = std::max(cursor, sym->addr + sym->size);
        }
        if (text->end() > cursor)
            pool.donate(cursor, text->end() - cursor, 1);
    }
    TrampolineWriter writer(arch, input.tocBase, pool, true);
    std::vector<std::pair<Addr, Addr>> trap_entries;
    for (const auto &t : tramps) {
        TrampolineRequest req;
        req.at = t.block;
        req.space = t.size;
        req.target = as.labelAddr(t.stub);
        const TrampolineOut installed = writer.install(req);
        result.stats.trampolines++;
        switch (installed.kind) {
          case TrampolineKind::direct:
            result.stats.directTramps++;
            break;
          case TrampolineKind::multiHop:
            result.stats.multiHopTramps++;
            break;
          case TrampolineKind::trap:
            result.stats.trapTramps++;
            break;
          default:
            result.stats.longTramps++;
            break;
        }
        for (const auto &write : installed.writes) {
            const bool ok = out.writeBytes(write.at, write.bytes);
            icp_assert(ok, "patch write failed");
        }
        for (const auto &te : installed.trapEntries)
            trap_entries.push_back(te);
    }

    {
        AddrPairMap trap_map(trap_entries);
        Section s;
        s.name = ".trap_map";
        s.kind = SectionKind::trapMap;
        s.addr = out.highWaterMark(4096);
        s.bytes = trap_map.serialize();
        s.memSize = s.bytes.size();
        out.addSection(std::move(s));
    }

    result.stats.rewrittenLoadedSize = out.loadedSize();
    result.image = std::move(out);
    result.ok = true;
    return result;
}

} // namespace icp
