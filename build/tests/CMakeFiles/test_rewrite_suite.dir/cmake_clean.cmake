file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite_suite.dir/test_rewrite_suite.cc.o"
  "CMakeFiles/test_rewrite_suite.dir/test_rewrite_suite.cc.o.d"
  "test_rewrite_suite"
  "test_rewrite_suite.pdb"
  "test_rewrite_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
