#include "verify/diagnostics.hh"

#include <cstdio>

#include "support/table.hh"

namespace icp
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::info: return "info";
      case Severity::warning: return "warning";
      case Severity::error: return "error";
    }
    return "?";
}

std::optional<Severity>
parseSeverity(const std::string &name)
{
    for (Severity s :
         {Severity::info, Severity::warning, Severity::error}) {
        if (name == severityName(s))
            return s;
    }
    return std::nullopt;
}

const std::vector<LintRuleInfo> &
lintRules()
{
    static const std::vector<LintRuleInfo> rules = {
        {"tramp-target", Severity::error,
         "trampoline chain must land on a relocated instruction "
         "boundary matching the manifest target"},
        {"tramp-range", Severity::error,
         "branch displacement exceeds the ISA's enforced reach"},
        {"tramp-chain", Severity::error,
         "multi-hop trampoline chain loops or never terminates"},
        {"tramp-scratch-live", Severity::error,
         "long-form trampoline scratch register is live at the site"},
        {"toc-preserved", Severity::error,
         "ppc64le trampoline clobbers the TOC register"},
        {"tramp-trap", Severity::warning,
         "trap-fallback trampoline depends on runtime redirection"},
        {"jt-clone-target", Severity::error,
         "cloned jump-table entry does not decode to the relocated "
         "block head"},
        {"jt-clone-bounds", Severity::error,
         "cloned jump-table extent escapes .newrodata"},
        {"patch-overlap", Severity::error,
         "patch bytes overlap another patch, protected table data, "
         "or a rewriter-generated section"},
        {"addr-map-round-trip", Severity::error,
         "address maps are non-injective, out of range, or disagree "
         "with the serialized .ra_map/.trap_map"},
        {"eh-frame-cover", Severity::error,
         "instrumented function lost its original unwind coverage"},
        {"func-ptr-target", Severity::error,
         "rewritten pointer cell does not load to its relocated "
         "target"},
        {"datadep-missing", Severity::error,
         "cloned jump table or loaded pointer cell whose source "
         "bytes are absent from the owner's recorded read-set"},
        {"datadep-stale", Severity::error,
         "recorded read-set range hash disagrees with the image"},
        {"datadep-overbroad", Severity::warning,
         "recorded read-set exceeds the analysis slice's actual "
         "reads beyond the audit threshold"},
        {"lint-input", Severity::error,
         "rewrite failed; there is no output image to verify"},
        {"lint-manifest", Severity::error,
         "rewrite ran without manifest recording (lint disabled)"},
        {"sbf-magic", Severity::error,
         "container does not start with the SBF magic"},
        {"sbf-truncated", Severity::error,
         "container field or payload runs past the end of the blob"},
        {"sbf-section-bounds", Severity::error,
         "section payload exceeds its memory size or wraps"},
        {"sbf-section-overlap", Severity::error,
         "two sections share addresses"},
        {"cache-magic", Severity::warning,
         "analysis-cache file does not start with the ICPC magic"},
        {"cache-version", Severity::warning,
         "analysis-cache file has an unsupported format version"},
        {"cache-truncated", Severity::warning,
         "analysis-cache entry runs past the end of the file"},
        {"cache-checksum", Severity::warning,
         "analysis-cache entry payload fails its checksum"},
        {"cache-entry", Severity::warning,
         "analysis-cache entry payload does not decode"},
        {"cache-arch", Severity::warning,
         "analysis-cache entry was produced for a different ISA"},
        {"cache-skip", Severity::info,
         "analysis-cache entry of an unknown kind was skipped "
         "(file written by a newer build)"},
    };
    return rules;
}

unsigned
countAtLeast(const std::vector<Diagnostic> &findings, Severity floor)
{
    unsigned n = 0;
    for (const Diagnostic &d : findings)
        if (d.severity >= floor)
            ++n;
    return n;
}

namespace
{

std::string
addrCell(Addr a)
{
    if (a == invalid_addr)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

TextTable
findingsTable(const std::vector<Diagnostic> &findings)
{
    TextTable table({"rule", "severity", "function", "orig", "new",
                     "message"});
    for (const Diagnostic &d : findings)
        table.addRow({d.rule, severityName(d.severity),
                      d.function.empty() ? "-" : d.function,
                      addrCell(d.origAddr), addrCell(d.newAddr),
                      d.message});
    return table;
}

} // namespace

std::string
renderDiagnosticsText(const std::vector<Diagnostic> &findings)
{
    if (findings.empty())
        return "";
    return findingsTable(findings).render();
}

std::string
renderDiagnosticsJson(const std::vector<Diagnostic> &findings)
{
    return findingsTable(findings).json();
}

} // namespace icp
