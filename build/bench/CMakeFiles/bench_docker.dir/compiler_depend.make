# Empty compiler generated dependencies file for bench_docker.
# This may be replaced when dependencies are built.
