#!/bin/sh
# CI entry point: maps one workflow job onto the matching
# tools/check.sh leg(s), so the GitHub matrix and a local
# `tools/check.sh` run exercise byte-for-byte the same commands.
#
#   tools/ci.sh release        release build + full ctest
#   tools/ci.sh asan           ASan+UBSan suites + repair smoke
#   tools/ci.sh tsan           TSan parallel-pipeline tests
#   tools/ci.sh lint-baseline  lint --diff against the saved baseline
#   tools/ci.sh warm-cache     on-disk AnalysisCache round-trip smoke
#   tools/ci.sh cache-v2       concurrent-writer merge + verify +
#                              compaction size-cap smoke
#   tools/ci.sh cross-binary   content-addressed cross-binary cache
#                              smoke: second libcommon binary >= 50%
#                              analysis reuse via rebase-on-hit,
#                              byte-identical to its cold rewrite
#   tools/ci.sh sharded        multi-process --shards rewrite smoke:
#                              byte identity, lint, cache, RSS
#   tools/ci.sh serve          hot-session daemon smoke: lifecycle via
#                              `icp client`, warm-hit + byte-identity
#                              asserts, SIGKILL restart pass
#   tools/ci.sh datadeps       per-ISA `icp deps` poke checks plus the
#                              datadep-* lint-rule inject matrix
#   tools/ci.sh tidy           clang-tidy over src/ + tools/ (skips
#                              cleanly when clang-tidy is absent)
#   tools/ci.sh all            every leg (what check.sh runs bare)
#
#   tools/ci.sh regen-lint-baseline
#       rebuild tests/data/lint_baseline.json from the current tree
#       (run after intentionally changing lint findings, then commit)
#
# ICP_CI_JOBS overrides the parallelism (default: nproc).

set -u

cd "$(dirname "$0")/.."

job="${1:-all}"
jobs="${ICP_CI_JOBS:-$(nproc)}"

regen_lint_baseline() {
    cmake -B build -S . >/dev/null &&
    cmake --build build -j "$jobs" --target icp_cli >/dev/null ||
        return 1
    dir="$(mktemp -d)"
    ./build/tools/icp compile micro "$dir/micro.sbf" --pie &&
    ./build/tools/icp lint "$dir/micro.sbf" \
        --mode func-ptr --count-blocks --json \
        > tests/data/lint_baseline.json
    status=$?
    rm -rf "$dir"
    [ $status -eq 0 ] && echo "wrote tests/data/lint_baseline.json"
    return $status
}

case "$job" in
    release|asan|tsan|lint-baseline|warm-cache|cache-v2|cross-binary|sharded|serve|datadeps|tidy)
        exec tools/check.sh "$jobs" "$job"
        ;;
    all)
        exec tools/check.sh "$jobs"
        ;;
    regen-lint-baseline)
        regen_lint_baseline
        ;;
    *)
        echo "ci.sh: unknown job '$job'" >&2
        echo "jobs: release asan tsan lint-baseline warm-cache" \
             "cache-v2 cross-binary sharded serve datadeps tidy" \
             "all regen-lint-baseline" >&2
        exit 64
        ;;
esac
