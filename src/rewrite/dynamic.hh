/**
 * @file
 * Dynamic binary instrumentation (§10): attach the rewriter to an
 * already-running process. All static-mode techniques apply
 * unchanged; the differences the paper names are reproduced:
 * no byte clobbering (original code keeps executing until control
 * migrates through trampolines), and the runtime library attaches
 * directly instead of via LD_PRELOAD (the .got-wrapping analog).
 *
 * Control flow already in flight — the current pc and the return
 * addresses on the stack — keeps running original code; the next
 * transfer through a patched CFL block migrates execution into the
 * instrumented copy. That graceful migration is exactly the
 * incremental-patching generality argument.
 *
 * Limitation (matching §10's scope, which extends dynamic support
 * to C++ exceptions only): code pointers the program has already
 * *derived* into mutable state before the attach — e.g. Go's
 * startup-computed goexit+1 value — cannot be fixed by rewriting
 * their definition sites, so Go binaries are not supported
 * dynamically.
 */

#ifndef ICP_REWRITE_DYNAMIC_HH
#define ICP_REWRITE_DYNAMIC_HH

#include "rewrite/options.hh"
#include "sim/loader.hh"

namespace icp
{

/**
 * Rewrite @p original under @p options and patch the live
 * @p process: map the new sections into its memory and overwrite
 * the trampoline bytes in the mapped .text. clobberOriginal is
 * forcibly disabled (in-flight control flow must keep working).
 *
 * The caller must flush the executing Machine's decode cache
 * afterwards and attach a RuntimeLib built from the returned image.
 */
RewriteResult attachAndPatch(Process &process,
                             const BinaryImage &original,
                             RewriteOptions options);

} // namespace icp

#endif // ICP_REWRITE_DYNAMIC_HH
