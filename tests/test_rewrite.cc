/**
 * @file
 * Integration tests of the core rewriter: all three modes on all
 * three ISAs under the strong test (clobbered original bytes +
 * counting instrumentation), partial instrumentation, placement
 * ablation, and the Go-specific behaviours (dir==jt, func-ptr-mode
 * failure, RA-translated GC unwinding).
 */

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/verify.hh"
#include "rewrite/rewriter.hh"

using namespace icp;

namespace
{

struct ModeArch
{
    Arch arch;
    bool pie;
    RewriteMode mode;
};

class RewritePerModeArch : public ::testing::TestWithParam<ModeArch>
{
};

std::string
modeArchName(const ::testing::TestParamInfo<ModeArch> &info)
{
    std::string s;
    switch (info.param.arch) {
      case Arch::x64: s = "x64"; break;
      case Arch::ppc64le: s = "ppc64le"; break;
      case Arch::aarch64: s = "aarch64"; break;
    }
    s += info.param.pie ? "_pie_" : "_nopie_";
    switch (info.param.mode) {
      case RewriteMode::dir: s += "dir"; break;
      case RewriteMode::jt: s += "jt"; break;
      case RewriteMode::funcPtr: s += "funcptr"; break;
    }
    return s;
}

RewriteOptions
strongTestOptions(RewriteMode mode)
{
    RewriteOptions opts;
    opts.mode = mode;
    opts.clobberOriginal = true;
    opts.instrumentation.countFunctionEntries = true;
    opts.instrumentation.countBlocks = true;
    return opts;
}

} // namespace

TEST_P(RewritePerModeArch, MicroStrongTestPasses)
{
    const auto param = GetParam();
    const BinaryImage img =
        compileProgram(microProfile(param.arch, param.pie));
    const RewriteResult rw =
        rewriteBinary(img, strongTestOptions(param.mode));
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_EQ(rw.stats.instrumentedFunctions, 6u);
    EXPECT_GT(rw.stats.trampolines, 0u);

    const VerifyOutcome outcome =
        verifyRewrite(img, rw, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;
    EXPECT_GT(outcome.rewritten.exceptionsThrown, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RewritePerModeArch,
    ::testing::Values(
        ModeArch{Arch::x64, false, RewriteMode::dir},
        ModeArch{Arch::x64, false, RewriteMode::jt},
        ModeArch{Arch::x64, false, RewriteMode::funcPtr},
        ModeArch{Arch::x64, true, RewriteMode::dir},
        ModeArch{Arch::x64, true, RewriteMode::jt},
        ModeArch{Arch::x64, true, RewriteMode::funcPtr},
        ModeArch{Arch::ppc64le, false, RewriteMode::dir},
        ModeArch{Arch::ppc64le, false, RewriteMode::jt},
        ModeArch{Arch::ppc64le, false, RewriteMode::funcPtr},
        ModeArch{Arch::aarch64, false, RewriteMode::dir},
        ModeArch{Arch::aarch64, false, RewriteMode::jt},
        ModeArch{Arch::aarch64, false, RewriteMode::funcPtr}),
    modeArchName);

TEST(Rewrite, SizeGrowsAndRaMapEmitted)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const RewriteResult rw =
        rewriteBinary(img, strongTestOptions(RewriteMode::jt));
    ASSERT_TRUE(rw.ok);
    EXPECT_GT(rw.stats.rewrittenLoadedSize,
              rw.stats.originalLoadedSize);
    EXPECT_GT(rw.stats.raMapEntries, 0u);
    EXPECT_NE(rw.image.findSection(SectionKind::raMap), nullptr);
    EXPECT_NE(rw.image.findSection(SectionKind::trapMap), nullptr);
    EXPECT_NE(rw.image.findSection(SectionKind::instr), nullptr);
    // .eh_frame bytes untouched.
    EXPECT_EQ(rw.image.findSection(SectionKind::ehFrame)->bytes,
              img.findSection(SectionKind::ehFrame)->bytes);
}

TEST(Rewrite, JtModeClonesTables)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const RewriteResult dir =
        rewriteBinary(img, strongTestOptions(RewriteMode::dir));
    const RewriteResult jt =
        rewriteBinary(img, strongTestOptions(RewriteMode::jt));
    ASSERT_TRUE(dir.ok && jt.ok);
    EXPECT_EQ(dir.stats.clonedTables, 0u);
    EXPECT_GT(jt.stats.clonedTables, 0u);
    // Fewer CFL blocks in jt mode: table targets dropped.
    EXPECT_LT(jt.stats.cflBlocks, dir.stats.cflBlocks);
}

TEST(Rewrite, PlacementAblationInstallsEverywhere)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions naive = strongTestOptions(RewriteMode::jt);
    naive.trampolinePlacement = false;
    const RewriteResult naive_rw = rewriteBinary(img, naive);
    const RewriteResult smart_rw =
        rewriteBinary(img, strongTestOptions(RewriteMode::jt));
    ASSERT_TRUE(naive_rw.ok && smart_rw.ok);
    EXPECT_GT(naive_rw.stats.trampolines, smart_rw.stats.trampolines);

    const VerifyOutcome outcome =
        verifyRewrite(img, naive_rw, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;
}

TEST(Rewrite, PartialInstrumentation)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts = strongTestOptions(RewriteMode::jt);
    opts.onlyFunctions = {"switcher", "worker", "taken"};
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);
    EXPECT_EQ(rw.stats.instrumentedFunctions, 3u);

    const VerifyOutcome outcome =
        verifyRewrite(img, rw, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;
}

TEST(RewriteGo, DirEqualsJtAndFuncPtrFails)
{
    const BinaryImage img = compileProgram(dockerProfile());
    Machine::Config cfg;
    cfg.goGcEveryCalls = 64;

    const RewriteResult jt =
        rewriteBinary(img, strongTestOptions(RewriteMode::jt));
    ASSERT_TRUE(jt.ok);
    EXPECT_EQ(jt.stats.clonedTables, 0u); // Go: no jump tables
    const VerifyOutcome jt_ok = verifyRewrite(img, jt, cfg);
    EXPECT_TRUE(jt_ok.pass) << jt_ok.reason;
    EXPECT_GT(jt_ok.rewritten.gcWalks, 0u);

    // func-ptr mode: the .vtab pointers stay unrewritten while
    // entry trampolines are still present, but the pcdata start
    // pointers get rewritten, breaking findfunc — the strong test
    // must catch a failure, as the paper's Docker run did.
    const RewriteResult fp =
        rewriteBinary(img, strongTestOptions(RewriteMode::funcPtr));
    ASSERT_TRUE(fp.ok);
    const VerifyOutcome fp_out = verifyRewrite(img, fp, cfg);
    EXPECT_FALSE(fp_out.pass);
}

TEST(RewriteGo, PlusOnePointerHandledInJtMode)
{
    // The Listing-1 pattern must work in jt mode (entry trampolines
    // cover it) — the call lands at goexit+1 in original space,
    // which is NOT a trampoline... it must therefore be covered by
    // func-entry handling: the +1 target falls inside the entry
    // trampoline's block. The strong test validates the behaviour.
    const BinaryImage img = compileProgram(dockerProfile());
    const RewriteResult rw =
        rewriteBinary(img, strongTestOptions(RewriteMode::jt));
    ASSERT_TRUE(rw.ok);
    const VerifyOutcome outcome =
        verifyRewrite(img, rw, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;
}
