/**
 * @file
 * Baseline-tool tests: SRBI's per-block placement, call emulation
 * and its documented bugs; IR lowering's all-or-nothing metadata
 * requirements and zero-bounce output; the BOLT-like reorderer's
 * link-reloc requirement and corruption pattern; and our rewriter's
 * ability to do both reorderings safely.
 */

#include <gtest/gtest.h>

#include "baselines/boltlike.hh"
#include "baselines/instpatch.hh"
#include "baselines/irlower.hh"
#include "baselines/srbi.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "harness/verify.hh"
#include "rewrite/rewriter.hh"
#include "sim/machine.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

/** A micro workload without exceptions or sp-based indirect calls. */
ProgramSpec
plainSpec(Arch arch, bool pie)
{
    ProgramSpec spec = microProfile(arch, pie);
    spec.features.cppExceptions = false;
    spec.funcs[2].catches = false;
    spec.funcs[2].comparesFuncPtr = false;
    spec.funcs[3].throwsOnOdd = false;
    spec.funcs[0].indirectCalls = 0; // avoid CallIndMem (k odd)
    return spec;
}

RunResult
runRewritten(const BinaryImage &img)
{
    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    return machine.run();
}

RunResult
runPlain(const BinaryImage &img)
{
    auto proc = loadImage(img);
    Machine machine(*proc, Machine::Config{});
    return machine.run();
}

} // namespace

TEST(Srbi, RefusalMatrix)
{
    auto cpp = compileProgram(microProfile(Arch::ppc64le, false));
    EXPECT_TRUE(srbiRefuses(cpp).has_value());
    auto cpp_x64 = compileProgram(microProfile(Arch::x64, false));
    EXPECT_FALSE(srbiRefuses(cpp_x64).has_value());
    auto go = compileProgram(dockerProfile());
    EXPECT_TRUE(srbiRefuses(go).has_value());
}

TEST(Srbi, PerBlockPlacementAndCallEmulationWork)
{
    const BinaryImage img = compileProgram(plainSpec(Arch::x64,
                                                     false));
    RewriteOptions opts = srbiOptions();
    opts.clobberOriginal = true;
    opts.instrumentation.countFunctionEntries = true;
    const RewriteResult srbi = rewriteBinary(img, opts);
    ASSERT_TRUE(srbi.ok);

    RewriteOptions ours_opts;
    ours_opts.mode = RewriteMode::jt;
    ours_opts.clobberOriginal = true;
    ours_opts.instrumentation.countFunctionEntries = true;
    const RewriteResult ours = rewriteBinary(img, ours_opts);
    ASSERT_TRUE(ours.ok);

    // SRBI: trampoline at every block; ours: CFL blocks only.
    EXPECT_GT(srbi.stats.trampolines, ours.stats.trampolines);

    const VerifyOutcome outcome =
        verifyRewrite(img, srbi, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;
}

TEST(Srbi, CallEmulationBreaksStackMemoryIndirectCalls)
{
    // main.indirectCalls = 2 emits the sp-based CallIndMem variant.
    ProgramSpec spec = plainSpec(Arch::x64, false);
    spec.funcs[0].indirectCalls = 2;
    const BinaryImage img = compileProgram(spec);

    RewriteOptions opts = srbiOptions();
    opts.clobberOriginal = true;
    const RewriteResult srbi = rewriteBinary(img, opts);
    ASSERT_TRUE(srbi.ok);
    const VerifyOutcome outcome =
        verifyRewrite(img, srbi, Machine::Config{});
    EXPECT_FALSE(outcome.pass); // the documented Dyninst-10.2 bug
}

TEST(Srbi, CallEmulationSupportsExceptionsOnX64)
{
    // Exception unwinding sees original return addresses under call
    // emulation, so no RA map is needed.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts = srbiOptions();
    opts.clobberOriginal = true;
    const RewriteResult srbi = rewriteBinary(img, opts);
    ASSERT_TRUE(srbi.ok);
    EXPECT_EQ(srbi.stats.raMapEntries, 0u);
    const VerifyOutcome outcome =
        verifyRewrite(img, srbi, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;
    EXPECT_GT(outcome.rewritten.exceptionsThrown, 0u);
}

TEST(Srbi, DocumentedBugsTripExactlyTheirLintRules)
{
    // §8.1's bug catalog under fault injection: each documented SRBI
    // bug, planted in an SRBI-configured rewrite, must be flagged by
    // exactly the lint rule the catalog names — on every ISA where
    // the defect is plantable.
    for (const SrbiDocumentedBug &bug : srbiDocumentedBugs()) {
        bool fired = false;
        for (Arch arch : all_arches) {
            const BinaryImage img =
                compileProgram(plainSpec(arch, false));
            if (srbiRefuses(img))
                continue;
            RewriteOptions opts = srbiOptions();
            opts.instrumentation.countBlocks = true;
            opts.injectDefect = bug.defect;
            const RewriteResult rw = rewriteBinary(img, opts);
            ASSERT_TRUE(rw.ok) << bug.name << ": " << rw.failReason;
            if (rw.manifest.injectedRule.empty())
                continue;
            fired = true;
            EXPECT_EQ(rw.manifest.injectedRule, bug.rule)
                << bug.name;
            const LintReport rep = lintRewrite(img, rw);
            ASSERT_GE(rep.countAtLeast(Severity::error), 1u)
                << bug.name << " went undetected on "
                << archName(arch);
            for (const Diagnostic &d : rep.findings) {
                if (d.severity < Severity::error)
                    continue;
                EXPECT_EQ(d.rule, bug.rule)
                    << bug.name << " tripped a different rule:\n"
                    << rep.renderText();
            }
        }
        EXPECT_TRUE(fired)
            << bug.name << " never applicable under SRBI options";
    }
}

TEST(Srbi, DocumentedBugSurfacesInLintErrColumn)
{
    // The Table-3 harness lints every artifact, so a planted baseline
    // bug shows up as a nonzero "lint err" count even though the
    // defective run fails (or sneaks past) the dynamic strong test.
    const BinaryImage img = compileProgram(plainSpec(Arch::x64,
                                                     false));
    ASSERT_FALSE(srbiRefuses(img));
    RewriteOptions opts = srbiOptions();
    opts.injectDefect = InjectDefect::trampTarget;
    const ToolRun run =
        runBlockLevelExperiment(img, opts, Machine::Config{});
    EXPECT_GE(run.lintErrors, 1u) << run.failReason;

    // Without injection the artifact is lint-clean.
    const ToolRun clean = runBlockLevelExperiment(img, srbiOptions(),
                                                  Machine::Config{});
    EXPECT_EQ(clean.lintErrors, 0u) << clean.failReason;
}

TEST(IrLower, MetadataRefusals)
{
    EXPECT_FALSE(irLowerRewrite(
        compileProgram(plainSpec(Arch::x64, false)), {}).ok);
    EXPECT_FALSE(irLowerRewrite(
        compileProgram(microProfile(Arch::x64, true)), {}).ok);
    EXPECT_FALSE(
        irLowerRewrite(compileProgram(dockerProfile()), {}).ok);
    EXPECT_FALSE(
        irLowerRewrite(compileProgram(libxulProfile()), {}).ok);
}

TEST(IrLower, RegeneratesRunnableBinary)
{
    const BinaryImage img =
        compileProgram(plainSpec(Arch::x64, true));
    const RunResult golden = runPlain(img);
    ASSERT_TRUE(golden.halted);

    const RewriteResult lowered = irLowerRewrite(img, {});
    ASSERT_TRUE(lowered.ok) << lowered.failReason;
    const RunResult run = runPlain(lowered.image);
    ASSERT_TRUE(run.halted) << run.describe();
    EXPECT_EQ(run.checksum, golden.checksum);
    // No original .text left: size stays close to the original.
    EXPECT_LT(lowered.stats.sizeIncrease(), 0.25);
}

TEST(IrLower, AllOrNothingOnAnalysisFailure)
{
    ProgramSpec spec = plainSpec(Arch::x64, true);
    SwitchSpec hard;
    hard.cases = 8;
    hard.hard = true;
    spec.funcs[1].switches = {hard};
    const RewriteResult lowered =
        irLowerRewrite(compileProgram(spec), {});
    EXPECT_FALSE(lowered.ok);
}

TEST(Bolt, FunctionReorderNeedsLinkRelocs)
{
    const BinaryImage no_relocs =
        compileProgram(plainSpec(Arch::x64, true));
    const BoltOutcome refused =
        boltRewrite(no_relocs, BoltOperation::reorderFunctions);
    EXPECT_FALSE(refused.ok);
    EXPECT_NE(refused.error.find("relocations are enabled"),
              std::string::npos);

    ProgramSpec spec = plainSpec(Arch::x64, true);
    spec.emitLinkRelocs = true;
    const BinaryImage with_relocs = compileProgram(spec);
    const BoltOutcome ok =
        boltRewrite(with_relocs, BoltOperation::reorderFunctions);
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_FALSE(ok.corrupted);
    const RunResult run = runPlain(ok.image);
    EXPECT_TRUE(run.halted) << run.describe();
    EXPECT_EQ(run.checksum, runPlain(with_relocs).checksum);
}

TEST(Bolt, BlockReorderCorruptsExceptionAndFortranBinaries)
{
    ProgramSpec cpp = microProfile(Arch::x64, true);
    cpp.emitLinkRelocs = true;
    const BoltOutcome corrupted = boltRewrite(
        compileProgram(cpp), BoltOperation::reorderBlocks);
    EXPECT_TRUE(corrupted.ok);
    EXPECT_TRUE(corrupted.corrupted);

    ProgramSpec plain = plainSpec(Arch::x64, true);
    plain.emitLinkRelocs = true;
    const BinaryImage img = compileProgram(plain);
    const BoltOutcome fine =
        boltRewrite(img, BoltOperation::reorderBlocks);
    ASSERT_TRUE(fine.ok);
    EXPECT_FALSE(fine.corrupted);
    const RunResult run = runPlain(fine.image);
    EXPECT_TRUE(run.halted) << run.describe();
    EXPECT_EQ(run.checksum, runPlain(img).checksum);
}

TEST(Reorder, OurRewriterReordersSafely)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    for (auto policy : {OrderPolicy::reversed}) {
        RewriteOptions funcs;
        funcs.mode = RewriteMode::jt;
        funcs.functionOrder = policy;
        funcs.clobberOriginal = true;
        funcs.instrumentation.countFunctionEntries = true;
        const RewriteResult rf = rewriteBinary(img, funcs);
        ASSERT_TRUE(rf.ok);
        const VerifyOutcome of =
            verifyRewrite(img, rf, Machine::Config{});
        EXPECT_TRUE(of.pass) << "functions: " << of.reason;

        RewriteOptions blocks;
        blocks.mode = RewriteMode::jt;
        blocks.blockOrder = policy;
        blocks.clobberOriginal = true;
        blocks.instrumentation.countFunctionEntries = true;
        const RewriteResult rb = rewriteBinary(img, blocks);
        ASSERT_TRUE(rb.ok);
        const VerifyOutcome ob =
            verifyRewrite(img, rb, Machine::Config{});
        EXPECT_TRUE(ob.pass) << "blocks: " << ob.reason;
    }
}

TEST(Verification, RewrittenGoldenChecksumsDiverge)
{
    // Sanity check on the harness itself: a deliberately broken
    // rewrite (under-approximated jump table) must be caught.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.clobberOriginal = true;
    opts.analysis.inject.underProb = 1.0;
    opts.analysis.inject.underCut = 4;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);
    const VerifyOutcome outcome =
        verifyRewrite(img, rw, Machine::Config{});
    EXPECT_FALSE(outcome.pass);
}

TEST(InstPatch, PingPongIsExpensiveButCorrect)
{
    // A loop-heavy exception-free benchmark: instruction patching
    // works but bounces on every executed block.
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[5]); // lbm
    const RewriteResult patched = instPatchRewrite(img, {});
    ASSERT_TRUE(patched.ok) << patched.failReason;
    // A trampoline at every block of every function.
    EXPECT_EQ(patched.stats.trampolines, patched.stats.totalBlocks);

    const RunResult golden = runPlain(img);
    const RunResult run = runRewritten(patched.image);
    ASSERT_TRUE(run.halted) << run.describe();
    EXPECT_EQ(run.checksum, golden.checksum);

    RewriteOptions ours_opts;
    ours_opts.mode = RewriteMode::jt;
    const RewriteResult ours = rewriteBinary(img, ours_opts);
    const RunResult ours_run = runRewritten(ours.image);
    ASSERT_TRUE(ours_run.halted);

    const double e9_ovh = static_cast<double>(run.cycles) /
                          static_cast<double>(golden.cycles) - 1.0;
    const double ours_ovh =
        static_cast<double>(ours_run.cycles) /
            static_cast<double>(golden.cycles) - 1.0;
    // The per-block bounce dwarfs incremental CFG patching. (The
    // cycle model has no branch-misprediction term, so the absolute
    // gap is smaller than the paper's >100%; the ordering is the
    // claim under test.)
    EXPECT_GT(e9_ovh, 0.02);
    EXPECT_GT(e9_ovh, ours_ovh * 5);
}

TEST(InstPatch, ExceptionsBreakByConstruction)
{
    // Stubs are invisible to the unwinder: the first throw dies.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const RewriteResult patched = instPatchRewrite(img, {});
    ASSERT_TRUE(patched.ok);
    const RunResult run = runRewritten(patched.image);
    EXPECT_FALSE(run.halted);
    EXPECT_EQ(run.fault, FaultKind::unwindFailure);
}

TEST(InstPatch, RefusesOtherArchitectures)
{
    const BinaryImage img =
        compileProgram(plainSpec(Arch::ppc64le, false));
    EXPECT_FALSE(instPatchRewrite(img, {}).ok);
}
