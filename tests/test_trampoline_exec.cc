/**
 * @file
 * Runtime execution tests of every trampoline form: build a tiny
 * image, install the form under test at its entry with the real
 * TrampolineWriter, and run it in the simulator — including the
 * ppc64le spill form's register preservation and the trap path
 * through the runtime library.
 */

#include <functional>

#include <gtest/gtest.h>

#include "binfmt/addr_map.hh"
#include "isa/assembler.hh"
#include "rewrite/scratch.hh"
#include "rewrite/trampoline.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

constexpr Addr text_base = 0x401000;
constexpr Addr pad_base = 0x402000;   // in-image scratch
constexpr Addr far_base = 0x20000000; // "relocated" destination

/**
 * An image with a nop-sled entry (trampoline canvas), a scratch
 * area, and a far destination that moves r0 into the checksum.
 */
BinaryImage
makeCanvas(Arch arch, std::uint64_t marker)
{
    const ArchInfo &arch_info = ArchInfo::get(arch);
    BinaryImage img;
    img.arch = arch;
    img.prefBase = 0x400000;
    img.entry = text_base;
    img.tocBase = 0x500000;

    Section text;
    text.name = ".text";
    text.kind = SectionKind::text;
    text.addr = text_base;
    {
        Assembler as(arch_info, text_base);
        for (int i = 0; i < 32; ++i)
            as.emit(makeNop());
        as.emit(makeHalt()); // reaching this means no trampoline ran
        text.bytes = as.finalize();
    }
    text.memSize = 0x2000; // covers the pad area too
    text.executable = true;
    img.sections.push_back(std::move(text));

    Section dest;
    dest.name = ".instr";
    dest.kind = SectionKind::instr;
    dest.addr = far_base;
    {
        Assembler as(arch_info, far_base);
        as.emit(makeAddImm(Reg::r0,
                           static_cast<std::int64_t>(marker)));
        as.emit(makeHalt());
        dest.bytes = as.finalize();
    }
    dest.memSize = dest.bytes.size();
    dest.executable = true;
    img.sections.push_back(std::move(dest));

    Section eh;
    eh.name = ".eh_frame";
    eh.kind = SectionKind::ehFrame;
    eh.addr = 0x600000;
    eh.bytes = serializeEhFrame({});
    eh.memSize = eh.bytes.size();
    img.sections.push_back(std::move(eh));

    Symbol sym;
    sym.name = "main";
    sym.addr = text_base;
    sym.size = 0x2000;
    img.symbols.push_back(sym);
    return img;
}

RunResult
runCanvas(BinaryImage &img, const TrampolineOut &installed)
{
    for (const auto &write : installed.writes)
        EXPECT_TRUE(img.writeBytes(write.at, write.bytes));
    if (!installed.trapEntries.empty()) {
        AddrPairMap trap_map(installed.trapEntries);
        Section s;
        s.name = ".trap_map";
        s.kind = SectionKind::trapMap;
        s.addr = 0x700000;
        s.bytes = trap_map.serialize();
        s.memSize = s.bytes.size();
        img.sections.push_back(std::move(s));
    }
    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    return machine.run();
}

} // namespace

TEST(TrampolineExec, X64Direct)
{
    BinaryImage img = makeCanvas(Arch::x64, 7);
    ScratchPool pool;
    TrampolineWriter writer(ArchInfo::get(Arch::x64), img.tocBase,
                            pool, true);
    const TrampolineOut out =
        writer.install({text_base, 32, far_base, Reg::none});
    ASSERT_EQ(out.kind, TrampolineKind::direct);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 7u);
}

TEST(TrampolineExec, X64MultiHopRuntime)
{
    BinaryImage img = makeCanvas(Arch::x64, 8);
    ScratchPool pool;
    pool.donate(pad_base, 64);
    // pad_base is ~4KB away: outside the ±127B short reach, so keep
    // scratch close instead.
    pool.donate(text_base + 0x40, 32);
    TrampolineWriter writer(ArchInfo::get(Arch::x64), img.tocBase,
                            pool, true);
    const TrampolineOut out =
        writer.install({text_base, 3, far_base, Reg::none});
    ASSERT_EQ(out.kind, TrampolineKind::multiHop);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 8u);
}

TEST(TrampolineExec, X64TrapRuntime)
{
    BinaryImage img = makeCanvas(Arch::x64, 9);
    ScratchPool pool; // empty: force the trap
    TrampolineWriter writer(ArchInfo::get(Arch::x64), img.tocBase,
                            pool, true);
    const TrampolineOut out =
        writer.install({text_base, 3, far_base, Reg::none});
    ASSERT_EQ(out.kind, TrampolineKind::trap);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 9u);
    EXPECT_EQ(r.traps, 1u);
}

TEST(TrampolineExec, PpcLongFormRuntime)
{
    BinaryImage img = makeCanvas(Arch::ppc64le, 11);
    ScratchPool pool;
    TrampolineWriter writer(ArchInfo::get(Arch::ppc64le),
                            img.tocBase, pool, true);
    const TrampolineOut out =
        writer.install({text_base, 16, far_base, Reg::r5});
    ASSERT_EQ(out.kind, TrampolineKind::longForm);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 11u);
}

TEST(TrampolineExec, PpcSpillFormPreservesRegister)
{
    // The destination adds r0 to the marker: if the spill form
    // failed to restore r0 (clobbered by addis/addi), the checksum
    // would be wrong.
    BinaryImage img = makeCanvas(Arch::ppc64le, 13);
    ScratchPool pool;
    TrampolineWriter writer(ArchInfo::get(Arch::ppc64le),
                            img.tocBase, pool, true);
    const TrampolineOut out =
        writer.install({text_base, 24, far_base, Reg::none});
    ASSERT_EQ(out.kind, TrampolineKind::longFormSpill);
    // r0 starts at 0 in the machine; the spill form must leave it 0
    // so the destination's AddImm produces exactly the marker.
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 13u);
}

TEST(TrampolineExec, PpcMultiHopRuntime)
{
    BinaryImage img = makeCanvas(Arch::ppc64le, 15);
    ScratchPool pool;
    pool.donate(pad_base, 64, 4);
    TrampolineWriter writer(ArchInfo::get(Arch::ppc64le),
                            img.tocBase, pool, true);
    const TrampolineOut out =
        writer.install({text_base, 4, far_base, Reg::r5});
    ASSERT_EQ(out.kind, TrampolineKind::multiHop);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 15u);
}

TEST(TrampolineExec, A64LongFormRuntime)
{
    BinaryImage img = makeCanvas(Arch::aarch64, 17);
    ScratchPool pool;
    TrampolineWriter writer(ArchInfo::get(Arch::aarch64),
                            img.tocBase, pool, true);
    const TrampolineOut out =
        writer.install({text_base, 12, far_base, Reg::r4});
    ASSERT_EQ(out.kind, TrampolineKind::longForm);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 17u);
}

TEST(TrampolineExec, A64TrapRuntime)
{
    BinaryImage img = makeCanvas(Arch::aarch64, 19);
    ScratchPool pool;
    TrampolineWriter writer(ArchInfo::get(Arch::aarch64),
                            img.tocBase, pool, true);
    const TrampolineOut out =
        writer.install({text_base, 4, far_base, Reg::none});
    ASSERT_EQ(out.kind, TrampolineKind::trap);
    const RunResult r = runCanvas(img, out);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 19u);
    EXPECT_EQ(r.traps, 1u);
}
