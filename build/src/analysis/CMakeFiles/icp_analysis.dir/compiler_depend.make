# Empty compiler generated dependencies file for icp_analysis.
# This may be replaced when dependencies are built.
