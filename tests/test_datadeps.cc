/**
 * @file
 * Unit tests for the per-function data-reference dependency analysis
 * (analysis/datadeps.hh): interval-set construction and queries,
 * content-hash validation against an image, the overlap index that
 * drives loadInput's data-edit invalidation, computeDataDeps on
 * compiled corpora (jump-table extents recorded, .text-embedded
 * tables excluded, constant-base global reads visible on every ISA),
 * and the AnalysisCache round trip of read-sets through the v3
 * on-disk store.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "analysis/datadeps.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"

using namespace icp;

namespace
{

BinaryImage
compileMicro(Arch arch)
{
    return compileProgram(microProfile(arch, /*pie=*/true));
}

/** First non-executable section with bytes (the micro .rodata). */
const Section *
firstDataSection(const BinaryImage &img)
{
    for (const Section &sec : img.sections)
        if (!sec.executable && !sec.bytes.empty())
            return &sec;
    return nullptr;
}

std::string
tmpPath(const std::string &name)
{
    return "/tmp/icp_datadeps_" + std::to_string(::getpid()) + "_" +
           name;
}

struct FileGuard
{
    std::string path;
    ~FileGuard() { std::remove(path.c_str()); }
};

} // namespace

// --- interval set ----------------------------------------------------------

TEST(DataDepsSet, AddFinalizeCoalescesAndHashes)
{
    const BinaryImage img = compileMicro(Arch::x64);
    const Section *sec = firstDataSection(img);
    ASSERT_NE(sec, nullptr);
    ASSERT_GE(sec->bytes.size(), 32u);
    const Addr base = sec->addr;

    DataDeps deps;
    // Out of order, overlapping, and adjacent ranges all coalesce.
    deps.add(base + 8, base + 12);
    deps.add(base + 0, base + 4);
    deps.add(base + 2, base + 9);  // bridges the first two
    deps.add(base + 16, base + 20);
    deps.add(base + 20, base + 24); // adjacent: merges
    deps.finalize(img);

    ASSERT_EQ(deps.size(), 2u);
    EXPECT_EQ(deps.ranges()[0].lo, base + 0);
    EXPECT_EQ(deps.ranges()[0].hi, base + 12);
    EXPECT_EQ(deps.ranges()[1].lo, base + 16);
    EXPECT_EQ(deps.ranges()[1].hi, base + 24);
    EXPECT_EQ(deps.totalBytes(), 20u);
    // Mapped ranges carry a content hash (0 is the unmapped marker).
    EXPECT_NE(deps.ranges()[0].hash, 0u);
    EXPECT_NE(deps.ranges()[1].hash, 0u);
    EXPECT_TRUE(deps.validate(img));
}

TEST(DataDepsSet, EmptyAndInvertedRangesIgnored)
{
    const BinaryImage img = compileMicro(Arch::x64);
    DataDeps deps;
    deps.add(0x1000, 0x1000); // empty
    deps.add(0x2000, 0x1000); // inverted
    deps.finalize(img);
    EXPECT_TRUE(deps.empty());
    EXPECT_EQ(deps.totalBytes(), 0u);
    // An empty set reads nothing: trivially valid, overlaps nothing.
    EXPECT_TRUE(deps.validate(img));
    EXPECT_FALSE(deps.overlaps(0, ~static_cast<Addr>(0)));
}

TEST(DataDepsSet, OverlapsAndCoversAreHalfOpen)
{
    DataDeps deps;
    deps.setRanges({{0x100, 0x110, 1}, {0x200, 0x208, 2}});

    EXPECT_TRUE(deps.overlaps(0x100, 0x101));
    EXPECT_TRUE(deps.overlaps(0x10f, 0x110));
    EXPECT_FALSE(deps.overlaps(0x110, 0x200)); // exactly the gap
    EXPECT_TRUE(deps.overlaps(0x0, 0x101));
    EXPECT_TRUE(deps.overlaps(0x10f, 0x201)); // spans both
    EXPECT_FALSE(deps.overlaps(0xff, 0x100)); // ends at lo

    EXPECT_TRUE(deps.covers(0x100, 0x110));
    EXPECT_TRUE(deps.covers(0x104, 0x108));
    EXPECT_FALSE(deps.covers(0x10c, 0x114)); // straddles hi
    EXPECT_FALSE(deps.covers(0x110, 0x200)); // outside entirely
}

TEST(DataDepsSet, ValidateDetectsExactlyTheReadBytes)
{
    BinaryImage img = compileMicro(Arch::x64);
    const Section *sec = firstDataSection(img);
    ASSERT_NE(sec, nullptr);
    ASSERT_GE(sec->bytes.size(), 16u);
    const Addr base = sec->addr;

    DataDeps deps;
    deps.add(base + 0, base + 8);
    deps.finalize(img);
    ASSERT_TRUE(deps.validate(img));

    // A byte inside the recorded range invalidates...
    BinaryImage edited = img;
    edited.sections[static_cast<std::size_t>(
        sec - img.sections.data())].bytes[4] ^= 0xff;
    EXPECT_FALSE(deps.validate(edited));

    // ...a byte outside it does not.
    BinaryImage other = img;
    other.sections[static_cast<std::size_t>(
        sec - img.sections.data())].bytes[12] ^= 0xff;
    EXPECT_TRUE(deps.validate(other));
}

TEST(HashImageRange, UnmappedIsZeroAndContentSensitive)
{
    BinaryImage img = compileMicro(Arch::x64);
    const Section *sec = firstDataSection(img);
    ASSERT_NE(sec, nullptr);

    const std::uint64_t h =
        hashImageRange(img, sec->addr, sec->addr + 8);
    EXPECT_NE(h, 0u);

    // Nothing maps address 8; the sentinel is 0.
    EXPECT_EQ(hashImageRange(img, 0x8, 0x10), 0u);

    img.sections[static_cast<std::size_t>(sec - img.sections.data())]
        .bytes[3] ^= 0x01;
    EXPECT_NE(hashImageRange(img, sec->addr, sec->addr + 8), h);
}

// --- overlap index ---------------------------------------------------------

TEST(DepIndexTest, OverlapQueryCollectsOwners)
{
    DataDeps a;
    a.setRanges({{0x100, 0x110, 1}});
    DataDeps b;
    b.setRanges({{0x108, 0x120, 2}, {0x300, 0x308, 3}});

    DepIndex index;
    index.add(0x4000, a);
    index.add(0x5000, b);
    index.build();
    EXPECT_EQ(index.rangeCount(), 3u);

    std::set<Addr> owners;
    index.overlapping(0x10c, 0x10d, owners);
    EXPECT_EQ(owners, (std::set<Addr>{0x4000, 0x5000}));

    owners.clear();
    index.overlapping(0x118, 0x119, owners);
    EXPECT_EQ(owners, (std::set<Addr>{0x5000}));

    owners.clear();
    index.overlapping(0x120, 0x300, owners); // exactly the gap
    EXPECT_TRUE(owners.empty());

    // Accumulation across queries (the loadInput usage pattern).
    index.overlapping(0x100, 0x101, owners);
    index.overlapping(0x304, 0x305, owners);
    EXPECT_EQ(owners, (std::set<Addr>{0x4000, 0x5000}));
}

// --- computeDataDeps on compiled corpora -----------------------------------

namespace
{

CfgModule
analyzeNoCache(const BinaryImage &img)
{
    AnalysisOptions opts;
    opts.useCache = false;
    return buildCfg(img, opts);
}

} // namespace

TEST(ComputeDataDeps, JumpTableExtentsRecorded)
{
    for (const Arch arch : {Arch::x64, Arch::aarch64}) {
        const BinaryImage img = compileMicro(arch);
        const CfgModule cfg = analyzeNoCache(img);

        unsigned tables_checked = 0;
        for (const auto &[entry, func] : cfg.functions) {
            (void)entry;
            for (const JumpTable &jt : func.jumpTables) {
                if (jt.embeddedInCode || jt.entryCount == 0)
                    continue;
                const Addr lo = jt.tableAddr;
                const Addr hi =
                    jt.tableAddr + static_cast<Addr>(jt.entryCount) *
                                       jt.entrySize;
                EXPECT_TRUE(func.dataDeps.covers(lo, hi))
                    << archName(arch) << " " << func.name
                    << ": table bytes not in the read-set";
                ++tables_checked;
            }
        }
        EXPECT_GT(tables_checked, 0u)
            << archName(arch) << ": corpus grew no jump tables";
    }
}

TEST(ComputeDataDeps, ReadSetsNeverCoverCode)
{
    for (const Arch arch : all_arches) {
        const BinaryImage img = compileMicro(arch);
        const CfgModule cfg = analyzeNoCache(img);
        for (const auto &[entry, func] : cfg.functions) {
            (void)entry;
            for (const DepRange &r : func.dataDeps.ranges()) {
                for (const Section &sec : img.sections) {
                    if (!sec.executable)
                        continue;
                    EXPECT_FALSE(r.lo < sec.end() && sec.addr < r.hi)
                        << archName(arch) << " " << func.name
                        << ": read-set range overlaps " << sec.name;
                }
            }
        }
    }
}

TEST(ComputeDataDeps, GlobalReadsVisibleOnEveryIsa)
{
    // FuncSpec::readsGlobal emits a constant-base load of a .data
    // cell — the ISA-generic shape (ppc64le embeds its jump tables in
    // .text, so this is what makes its read-sets non-empty).
    for (const Arch arch : all_arches) {
        ProgramSpec spec = microProfile(arch, /*pie=*/true);
        ASSERT_GE(spec.funcs.size(), 2u);
        spec.funcs[1].readsGlobal = true;
        spec.funcs[1].globalSlot = 3;
        const std::string victim = spec.funcs[1].name;

        const BinaryImage img = compileProgram(spec);
        const CfgModule cfg = analyzeNoCache(img);

        const Function *func = nullptr;
        for (const auto &[entry, f] : cfg.functions) {
            (void)entry;
            if (f.name == victim)
                func = &f;
        }
        ASSERT_NE(func, nullptr) << archName(arch);
        EXPECT_FALSE(func->dataDeps.empty())
            << archName(arch)
            << ": global read missing from the read-set";
        EXPECT_GE(func->dataDeps.totalBytes(), 8u) << archName(arch);
        EXPECT_TRUE(func->dataDeps.validate(img));
    }
}

TEST(ComputeDataDeps, MatchesFreshRecomputation)
{
    const BinaryImage img = compileMicro(Arch::x64);
    const CfgModule cfg = analyzeNoCache(img);
    unsigned nonempty = 0;
    for (const auto &[entry, func] : cfg.functions) {
        (void)entry;
        const DataDeps fresh = computeDataDeps(func, img);
        EXPECT_EQ(fresh, func.dataDeps) << func.name;
        if (!fresh.empty())
            ++nonempty;
    }
    EXPECT_GT(nonempty, 0u);
}

// --- cache round trip ------------------------------------------------------

TEST(DataDepsCache, RoundTripsThroughStoreAndDiskFile)
{
    const BinaryImage img = compileMicro(Arch::x64);
    const CfgModule cfg = analyzeNoCache(img);

    const Function *func = nullptr;
    for (const auto &[entry, f] : cfg.functions) {
        (void)entry;
        if (!f.dataDeps.empty())
            func = &f;
    }
    ASSERT_NE(func, nullptr);

    AnalysisCache::global().clear();
    const std::uint64_t key = 0x1234abcdULL;
    AnalysisCache::global().storeDataDeps(key, Arch::x64,
                                          func->entry,
                                          func->dataDeps);

    const auto in_memory =
        AnalysisCache::global().findDataDeps(key, func->entry);
    ASSERT_NE(in_memory, nullptr);
    EXPECT_EQ(*in_memory, func->dataDeps);
    EXPECT_EQ(
        AnalysisCache::global().findDataDeps(key + 1, func->entry),
        nullptr);

    // A lookup at a shifted entry comes back rebased by the same
    // delta, hashes unchanged (the cross-binary contract).
    const auto rebased = AnalysisCache::global().findDataDeps(
        key, func->entry + 0x1000);
    ASSERT_NE(rebased, nullptr);
    ASSERT_EQ(rebased->size(), func->dataDeps.size());
    for (std::size_t i = 0; i < rebased->size(); ++i) {
        EXPECT_EQ(rebased->ranges()[i].lo,
                  func->dataDeps.ranges()[i].lo + 0x1000);
        EXPECT_EQ(rebased->ranges()[i].hash,
                  func->dataDeps.ranges()[i].hash);
    }

    // Through the v4 file: save, clear, lazy-load, look up again.
    FileGuard guard{tmpPath("roundtrip.icpc")};
    ASSERT_TRUE(AnalysisCache::global().save(guard.path));
    AnalysisCache::global().clear();
    ASSERT_EQ(AnalysisCache::global().findDataDeps(key, func->entry),
              nullptr);

    const CacheLoadReport rep =
        AnalysisCache::global().load(guard.path, Arch::x64);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.fileVersion, cache_file_version);
    EXPECT_EQ(rep.loadedDataDeps, 1u);

    const auto from_disk =
        AnalysisCache::global().findDataDeps(key, func->entry);
    ASSERT_NE(from_disk, nullptr);
    EXPECT_EQ(*from_disk, func->dataDeps);
    AnalysisCache::global().clear();
}
