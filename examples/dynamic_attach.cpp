/**
 * @file
 * Dynamic binary instrumentation (§10): start a process, let it run
 * for a while, attach the rewriter mid-execution, and finish with
 * block counting live. Shows the graceful-migration property: the
 * instrumentation counts only what executed after the attach, and
 * behaviour is preserved.
 *
 * Usage: ./build/examples/dynamic_attach
 */

#include <cstdio>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/dynamic.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

int
main()
{
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[0]);

    // Golden run for the behavioural baseline.
    auto golden_proc = loadImage(img);
    Machine golden(*golden_proc, Machine::Config{});
    const RunResult golden_run = golden.run();
    std::printf("golden: %s\n", golden_run.describe().c_str());

    // Live process: run one third of the way, then attach.
    auto proc = loadImage(img);
    Machine machine(*proc, Machine::Config{});
    machine.start();
    machine.runFor(golden_run.instructions / 3);
    std::printf("ran %llu instructions, attaching rewriter...\n",
                static_cast<unsigned long long>(
                    golden_run.instructions / 3));

    RewriteOptions options;
    options.mode = RewriteMode::jt;
    options.instrumentation.countBlocks = true;
    const RewriteResult rewritten =
        attachAndPatch(*proc, img, options);
    if (!rewritten.ok) {
        std::fprintf(stderr, "attach failed: %s\n",
                     rewritten.failReason.c_str());
        return 1;
    }
    machine.flushDecodeCache(); // the icache flush a patcher owes
    RuntimeLib runtime(rewritten.image);
    machine.attachRuntimeLib(&runtime);

    const RunResult result = machine.runFor(~std::uint64_t{0});
    std::printf("after attach: %s\n", result.describe().c_str());
    if (!result.halted || result.checksum != golden_run.checksum) {
        std::fprintf(stderr, "behaviour diverged after attach!\n");
        return 1;
    }

    std::uint64_t counted = 0, blocks = 0;
    for (std::uint64_t c : result.counters) {
        counted += c;
        blocks += c > 0;
    }
    std::printf("post-attach instrumentation: %llu executions over "
                "%llu blocks (the first third of the run was, by "
                "design, uninstrumented)\n",
                static_cast<unsigned long long>(counted),
                static_cast<unsigned long long>(blocks));
    return 0;
}
