#include "sim/icache.hh"

#include "support/logging.hh"

namespace icp
{

namespace
{

unsigned
log2u(unsigned v)
{
    unsigned r = 0;
    while ((1u << r) < v)
        ++r;
    icp_assert((1u << r) == v, "icache geometry must be power of two");
    return r;
}

} // namespace

ICache::ICache(const Config &cfg)
    : cfg_(cfg)
{
    numSets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.ways);
    icp_assert(numSets_ > 0, "icache too small");
    log2u(numSets_); // geometry check
    lineShift_ = log2u(cfg_.lineBytes);
    ways_.assign(static_cast<std::size_t>(numSets_) * cfg_.ways, Way{});
}

bool
ICache::access(Addr addr)
{
    ++accesses_;
    ++tick_;
    const std::uint64_t line = addr >> lineShift_;
    const unsigned set = static_cast<unsigned>(line % numSets_);
    Way *base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];

    Way *lru = base;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].tag == line) {
            base[w].lastUse = tick_;
            return false;
        }
        if (base[w].lastUse < lru->lastUse)
            lru = &base[w];
    }
    ++misses_;
    lru->tag = line;
    lru->lastUse = tick_;
    return true;
}

void
ICache::reset()
{
    for (auto &w : ways_)
        w = Way{};
    tick_ = 0;
    accesses_ = 0;
    misses_ = 0;
}

} // namespace icp
