/**
 * @file
 * Tests for the static soundness verifier: the standard corpus must
 * lint clean for every ISA × mode × placement/multi-hop knob combo,
 * and each fault-injection defect must trip exactly the lint rule
 * the manifest records — the verifier's self test.
 */

#include <set>

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

BinaryImage
compileMicro(Arch arch, bool pie = true)
{
    return compileProgram(microProfile(arch, pie));
}

/** Errors only; tramp-trap warnings are expected on tight configs. */
unsigned
errorCount(const LintReport &rep)
{
    return rep.countAtLeast(Severity::error);
}

} // namespace

// --- lint-clean matrix ----------------------------------------------------

struct CleanParam
{
    Arch arch;
    RewriteMode mode;
};

class LintClean : public ::testing::TestWithParam<CleanParam>
{
};

std::string
cleanName(const ::testing::TestParamInfo<CleanParam> &info)
{
    std::string s = std::string(archName(info.param.arch)) + "_" +
                    rewriteModeName(info.param.mode);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

TEST_P(LintClean, StandardCorpusIsClean)
{
    const auto [arch, mode] = GetParam();
    const BinaryImage img = compileMicro(arch);
    for (const bool placement : {true, false}) {
        for (const bool multihop : {true, false}) {
            RewriteOptions opts;
            opts.mode = mode;
            opts.trampolinePlacement = placement;
            opts.multiHop = multihop;
            opts.instrumentation.countBlocks = true;
            const RewriteResult rw = rewriteBinary(img, opts);
            ASSERT_TRUE(rw.ok) << rw.failReason;
            ASSERT_TRUE(rw.manifest.populated);
            const LintReport rep = lintRewrite(img, rw);
            EXPECT_EQ(errorCount(rep), 0u)
                << "placement=" << placement
                << " multihop=" << multihop << "\n"
                << rep.renderText();
            EXPECT_GT(rep.checkedTrampolines, 0u);
        }
    }
}

TEST_P(LintClean, SpecWorkloadIsClean)
{
    const auto [arch, mode] = GetParam();
    const auto suite = specCpuSuite(arch, false);
    const BinaryImage img = compileProgram(suite[3]);
    RewriteOptions opts;
    opts.mode = mode;
    opts.clobberOriginal = true;
    opts.instrumentation.countFunctionEntries = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok) << rw.failReason;
    const LintReport rep = lintRewrite(img, rw);
    EXPECT_EQ(errorCount(rep), 0u) << rep.renderText();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LintClean,
    ::testing::Values(
        CleanParam{Arch::x64, RewriteMode::dir},
        CleanParam{Arch::x64, RewriteMode::jt},
        CleanParam{Arch::x64, RewriteMode::funcPtr},
        CleanParam{Arch::ppc64le, RewriteMode::dir},
        CleanParam{Arch::ppc64le, RewriteMode::jt},
        CleanParam{Arch::ppc64le, RewriteMode::funcPtr},
        CleanParam{Arch::aarch64, RewriteMode::dir},
        CleanParam{Arch::aarch64, RewriteMode::jt},
        CleanParam{Arch::aarch64, RewriteMode::funcPtr}),
    cleanName);

// --- fault injection: each defect trips exactly its rule ------------------

struct InjectParam
{
    Arch arch;
    InjectDefect defect;
};

class LintInjection : public ::testing::TestWithParam<InjectParam>
{
};

std::string
injectName(const ::testing::TestParamInfo<InjectParam> &info)
{
    std::string s = archName(info.param.arch);
    for (char &c : s)
        if (c == '-')
            c = '_';
    std::string d = injectDefectName(info.param.defect);
    for (char &c : d)
        if (c == '-')
            c = '_';
    return s + "_" + d;
}

TEST_P(LintInjection, DefectTripsExactlyItsRule)
{
    const auto [arch, defect] = GetParam();
    const BinaryImage img = compileMicro(arch);
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countBlocks = true;
    opts.injectDefect = defect;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok) << rw.failReason;

    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect " << injectDefectName(defect)
                     << " not applicable on " << archName(arch);

    const LintReport rep = lintRewrite(img, rw);
    if (defect == InjectDefect::depOverbroad) {
        // Overbroad read-sets are an efficiency smell, not a
        // soundness hole: the rule reports at warning severity and
        // must not be drowned out by (or promoted to) errors.
        EXPECT_EQ(errorCount(rep), 0u) << rep.renderText();
        bool fired = false;
        for (const Diagnostic &d : rep.findings)
            fired |= d.rule == rw.manifest.injectedRule &&
                     d.severity == Severity::warning;
        EXPECT_TRUE(fired)
            << "planted defect went undetected: "
            << rw.manifest.injectedRule << "\n"
            << rep.renderText();
    } else {
        EXPECT_GE(errorCount(rep), 1u)
            << "planted defect went undetected: "
            << rw.manifest.injectedRule;
        for (const Diagnostic &d : rep.findings) {
            if (d.severity < Severity::error)
                continue;
            EXPECT_EQ(d.rule, rw.manifest.injectedRule)
                << "defect " << injectDefectName(defect)
                << " tripped a different rule:\n"
                << rep.renderText();
        }
    }

    // The same config without injection is clean — the finding is
    // attributable to the planted defect alone.
    opts.injectDefect = InjectDefect::none;
    const RewriteResult clean_rw = rewriteBinary(img, opts);
    ASSERT_TRUE(clean_rw.ok);
    EXPECT_EQ(errorCount(lintRewrite(img, clean_rw)), 0u);
}

std::vector<InjectParam>
allInjections()
{
    std::vector<InjectParam> params;
    for (Arch arch : all_arches) {
        for (auto d = static_cast<unsigned>(InjectDefect::trampTarget);
             d <= static_cast<unsigned>(InjectDefect::depOverbroad);
             ++d)
            params.push_back({arch, static_cast<InjectDefect>(d)});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(AllDefects, LintInjection,
                         ::testing::ValuesIn(allInjections()),
                         injectName);

// --- injection applicability ----------------------------------------------

TEST(LintInjectionCoverage, EveryDefectFiresOnSomeArch)
{
    // Each defect must be plantable on at least one ISA, so every
    // rule's detection path is genuinely exercised by the matrix.
    for (auto d = static_cast<unsigned>(InjectDefect::trampTarget);
         d <= static_cast<unsigned>(InjectDefect::depOverbroad);
         ++d) {
        const auto defect = static_cast<InjectDefect>(d);
        bool fired = false;
        for (Arch arch : all_arches) {
            RewriteOptions opts;
            opts.mode = RewriteMode::funcPtr;
            opts.instrumentation.countBlocks = true;
            opts.injectDefect = defect;
            const RewriteResult rw =
                rewriteBinary(compileMicro(arch), opts);
            ASSERT_TRUE(rw.ok);
            fired |= !rw.manifest.injectedRule.empty();
        }
        EXPECT_TRUE(fired) << "defect " << injectDefectName(defect)
                           << " never applicable";
    }
}

// --- severity model and fail-on thresholds --------------------------------

TEST(LintSeverity, TrapTrampolinesAreWarningsNotErrors)
{
    // SRBI-style placement without multi-hop forces trap fallbacks
    // on x64: blocks shorter than the 5-byte near branch cannot
    // reach .instr with the 2-byte short form.
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.trampolinePlacement = false;
    opts.multiHop = false;
    opts.instrumentation.countBlocks = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok) << rw.failReason;
    if (rw.stats.trapTramps == 0)
        GTEST_SKIP() << "config produced no trap trampolines";

    const LintReport rep = lintRewrite(img, rw);
    EXPECT_EQ(rep.countAtLeast(Severity::error), 0u)
        << rep.renderText();
    EXPECT_GE(rep.countAtLeast(Severity::warning),
              rw.stats.trapTramps);
    EXPECT_FALSE(rep.failed(Severity::error));
    EXPECT_TRUE(rep.failed(Severity::warning));
    EXPECT_FALSE(rep.clean());
}

TEST(LintSeverity, ParseAndName)
{
    EXPECT_EQ(parseSeverity("error"), Severity::error);
    EXPECT_EQ(parseSeverity("warning"), Severity::warning);
    EXPECT_EQ(parseSeverity("info"), Severity::info);
    EXPECT_FALSE(parseSeverity("fatal").has_value());
    EXPECT_STREQ(severityName(Severity::warning), "warning");
}

// --- report plumbing ------------------------------------------------------

TEST(LintReportTest, ManifestOffYieldsSingleFinding)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteOptions opts;
    opts.lint = false;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);
    EXPECT_FALSE(rw.manifest.populated);
    const LintReport rep = lintRewrite(img, rw);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].rule, "lint-manifest");
}

TEST(LintReportTest, FailedRewriteYieldsLintInput)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteOptions opts;
    // Reachability pruning under byte clobbering is rejected.
    opts.reachabilityPruning = true;
    opts.clobberOriginal = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_FALSE(rw.ok);
    const LintReport rep = lintRewrite(img, rw);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].rule, "lint-input");
}

TEST(LintReportTest, RendersTextAndJson)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.injectDefect = InjectDefect::doublePatch;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);
    const LintReport rep = lintRewrite(img, rw);
    ASSERT_FALSE(rep.clean());

    const std::string text = rep.renderText();
    EXPECT_NE(text.find("patch-overlap"), std::string::npos);
    EXPECT_NE(text.find("lint: FAIL"), std::string::npos);

    const std::string json = rep.renderJson();
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"patch-overlap\""),
              std::string::npos);
    EXPECT_NE(json.find("\"checked\""), std::string::npos);
}

TEST(LintReportTest, SbfIssuesConvertToDiagnostics)
{
    std::vector<SbfIssue> issues = {
        {"sbf-magic", 0, "container does not start with SBF1"},
        {"sbf-truncated", 17, "section payload runs past end"},
    };
    const auto diags = diagnosticsFromSbfIssues(issues);
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "sbf-magic");
    EXPECT_EQ(diags[0].severity, Severity::error);
    EXPECT_NE(diags[1].message.find("offset 17"), std::string::npos);
}

TEST(LintReportTest, RuleRegistryCoversEmittedRules)
{
    std::set<std::string> registered;
    for (const LintRuleInfo &r : lintRules())
        registered.insert(r.id);
    // Every rule the fault injector can name is registered.
    for (auto d = static_cast<unsigned>(InjectDefect::trampTarget);
         d <= static_cast<unsigned>(InjectDefect::depOverbroad);
         ++d) {
        for (Arch arch : all_arches) {
            RewriteOptions opts;
            opts.mode = RewriteMode::funcPtr;
            opts.injectDefect = static_cast<InjectDefect>(d);
            const RewriteResult rw =
                rewriteBinary(compileMicro(arch), opts);
            if (!rw.manifest.injectedRule.empty()) {
                EXPECT_TRUE(
                    registered.count(rw.manifest.injectedRule))
                    << rw.manifest.injectedRule;
            }
        }
    }
}
