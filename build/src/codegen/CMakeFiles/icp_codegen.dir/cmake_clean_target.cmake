file(REMOVE_RECURSE
  "libicp_codegen.a"
)
