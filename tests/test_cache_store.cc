/**
 * @file
 * Tests for the on-disk AnalysisCache (analysis/cache_store.hh):
 * save/load round-trips restore every entry; a simulated process
 * restart (clear + load) reuses >= 95% of function analyses and
 * rewrites byte-identically; and every corruption mode — missing
 * file, foreign magic, wrong version, truncated tail, flipped
 * payload byte, wrong-ISA entries — loads as empty-or-partial with
 * one structured cache-* issue per problem, never a crash, and never
 * a different rewrite output.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "isa/bytes.hh"
#include "rewrite/rewriter.hh"

using namespace icp;

namespace
{

BinaryImage
compileMicro(Arch arch, bool pie = true)
{
    return compileProgram(microProfile(arch, pie));
}

RewriteOptions
baseOptions(const std::string &cache_path = "")
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countBlocks = true;
    opts.cachePath = cache_path;
    return opts;
}

std::string
tmpPath(const std::string &name)
{
    return "/tmp/icp_cache_store_" + name + ".icpc";
}

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path,
         const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

bool
hasIssue(const CacheLoadReport &rep, const std::string &rule)
{
    for (const CacheFileIssue &issue : rep.issues)
        if (issue.rule == rule)
            return true;
    return false;
}

/**
 * Cold rewrite that also populates the cache file at @p path:
 * returns the serialized output for byte-comparisons.
 */
std::vector<std::uint8_t>
coldRewrite(const BinaryImage &img, const std::string &path)
{
    AnalysisCache::global().clear();
    std::remove(path.c_str());
    const RewriteResult rw = rewriteBinary(img, baseOptions(path));
    EXPECT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(rw.cacheLoad.clean());
    return rw.image.serialize();
}

} // namespace

// --- round trip across a simulated process restart ------------------------

class CacheStoreArch : public ::testing::TestWithParam<Arch>
{
};

TEST_P(CacheStoreArch, RestartReusesAnalysesAndMatchesBytes)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const std::string path =
        tmpPath(std::string("restart_") + archName(arch));

    const std::vector<std::uint8_t> cold = coldRewrite(img, path);

    // "Process restart": the in-memory cache is gone, only the file
    // remains.
    AnalysisCache::global().clear();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_TRUE(warm.cacheLoad.clean());
    EXPECT_GT(warm.cacheLoad.loadedFunctions, 0u);

    const auto stats = AnalysisCache::global().stats();
    const std::uint64_t lookups =
        stats.functionHits + stats.functionMisses;
    ASSERT_GT(lookups, 0u);
    // The acceptance bar: >= 95% of function analyses reused from
    // the file. (Identical input means 100% here.)
    EXPECT_GE(static_cast<double>(stats.functionHits),
              0.95 * static_cast<double>(lookups))
        << stats.functionHits << "/" << lookups;

    EXPECT_EQ(warm.image.serialize(), cold);
}

TEST_P(CacheStoreArch, SaveLoadRestoresEveryEntry)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const std::string path =
        tmpPath(std::string("roundtrip_") + archName(arch));

    coldRewrite(img, path);
    const std::size_t entries = AnalysisCache::global().entryCount();
    ASSERT_GT(entries, 0u);

    AnalysisCache::global().clear();
    const CacheLoadReport rep =
        AnalysisCache::global().load(path, arch);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(rep.clean())
        << (rep.issues.empty() ? "" : rep.issues.front().message);
    EXPECT_EQ(rep.loadedEntries(), entries);
    EXPECT_EQ(rep.droppedEntries, 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), entries);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, CacheStoreArch,
    ::testing::Values(Arch::x64, Arch::ppc64le, Arch::aarch64),
    [](const ::testing::TestParamInfo<Arch> &info) {
        std::string name = archName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --- corruption tolerance -------------------------------------------------

namespace
{

/** A populated, valid cache file for mutation tests (x64 micro). */
std::vector<std::uint8_t>
validCacheFile(const std::string &path)
{
    const BinaryImage img = compileMicro(Arch::x64);
    coldRewrite(img, path);
    return readAll(path);
}

} // namespace

TEST(CacheStore, MissingFileIsEmptyAndClean)
{
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(
        "/tmp/icp_cache_store_definitely_missing.icpc");
    EXPECT_FALSE(rep.fileRead);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, ForeignMagicLoadsEmptyWithIssue)
{
    const std::string path = tmpPath("magic");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    raw[0] ^= 0xff;
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(hasIssue(rep, "cache-magic"));
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, WrongVersionLoadsEmptyWithIssue)
{
    const std::string path = tmpPath("version");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    // Version is the u32 after the magic.
    raw[4] = static_cast<std::uint8_t>(cache_file_version + 1);
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(hasIssue(rep, "cache-version"));
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, TruncatedFileLoadsPartialWithIssue)
{
    const std::string path = tmpPath("truncated");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    const std::size_t total = raw.size();
    // Cut the file mid-way through the entry list: a strict prefix
    // of entries survives, the rest is reported, nothing crashes.
    raw.resize(total / 2);
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(hasIssue(rep, "cache-truncated"));
    EXPECT_GE(rep.droppedEntries, 1u);
    EXPECT_EQ(AnalysisCache::global().entryCount(),
              rep.loadedEntries());
}

TEST(CacheStore, FlippedPayloadByteDropsOnlyThatEntry)
{
    const std::string path = tmpPath("checksum");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    AnalysisCache::global().clear();
    const CacheLoadReport clean_rep =
        AnalysisCache::global().load(path);
    const unsigned total = clean_rep.loadedEntries();
    ASSERT_GE(total, 2u);

    // First entry starts right after the 12-byte header; its payload
    // starts 22 bytes further (kind u8 + arch u8 + key u64 +
    // payloadLen u32 + payloadHash u64). Flip the payload's first
    // byte so only the checksum rule can catch it.
    const std::size_t payload0 = 12 + 22;
    ASSERT_LT(payload0, raw.size());
    raw[payload0] ^= 0x01;
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(hasIssue(rep, "cache-checksum"));
    EXPECT_EQ(rep.droppedEntries, 1u);
    EXPECT_EQ(rep.loadedEntries(), total - 1);
}

TEST(CacheStore, WrongIsaEntriesAreDroppedWithIssue)
{
    const std::string path = tmpPath("wrong_isa");
    // Populate the file from a ppc64le rewrite...
    const BinaryImage img = compileMicro(Arch::ppc64le);
    coldRewrite(img, path);

    // ...then load it expecting x64: every entry is foreign.
    AnalysisCache::global().clear();
    const CacheLoadReport rep =
        AnalysisCache::global().load(path, Arch::x64);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(hasIssue(rep, "cache-arch"));
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_GE(rep.droppedEntries, 1u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, InMemoryEntriesWinOverFileEntries)
{
    const std::string path = tmpPath("merge");
    const BinaryImage img = compileMicro(Arch::x64);
    coldRewrite(img, path);
    const std::size_t entries = AnalysisCache::global().entryCount();

    // Load on top of the same in-memory state: nothing new.
    const CacheLoadReport rep =
        AnalysisCache::global().load(path, Arch::x64);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(rep.skippedExisting, entries);
    EXPECT_EQ(AnalysisCache::global().entryCount(), entries);
}

// --- corrupt cache never changes the rewrite ------------------------------

class CacheCorruptionRewrite : public ::testing::TestWithParam<Arch>
{
};

TEST_P(CacheCorruptionRewrite, RewriteAfterBadLoadIsByteIdentical)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const std::string path =
        tmpPath(std::string("corrupt_") + archName(arch));

    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    std::vector<std::uint8_t> raw = readAll(path);

    // Corrupt every fourth byte after the header: a mix of checksum
    // failures, undecodable entries, and truncation.
    for (std::size_t i = 12; i < raw.size(); i += 4)
        raw[i] ^= 0xa5;
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const RewriteResult rw = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(rw.cacheLoad.fileRead);
    EXPECT_FALSE(rw.cacheLoad.clean());
    EXPECT_EQ(rw.image.serialize(), cold);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, CacheCorruptionRewrite,
    ::testing::Values(Arch::x64, Arch::ppc64le, Arch::aarch64),
    [](const ::testing::TestParamInfo<Arch> &info) {
        std::string name = archName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });
