file(REMOVE_RECURSE
  "CMakeFiles/dynamic_attach.dir/dynamic_attach.cpp.o"
  "CMakeFiles/dynamic_attach.dir/dynamic_attach.cpp.o.d"
  "dynamic_attach"
  "dynamic_attach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
