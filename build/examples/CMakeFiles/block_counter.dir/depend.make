# Empty dependencies file for block_counter.
# This may be replaced when dependencies are built.
