#include "logging.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace icp
{

int log_verbosity = 0;

namespace detail
{

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
abortWithMessage(const char *kind, const char *file, int line,
                 const std::string &msg)
{
    std::fprintf(stderr, "icp %s: %s (%s:%d)\n", kind, msg.c_str(),
                 file, line);
    std::abort();
}

void
emitMessage(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "icp %s: %s\n", kind, msg.c_str());
}

} // namespace detail
} // namespace icp
