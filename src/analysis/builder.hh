/**
 * @file
 * CFG construction by recursive control-flow traversal from function
 * symbols, with iterative jump-table resolution, landing-pad leaders
 * from .eh_frame, and the gap-decoding indirect-tail-call heuristic
 * of §5.1.
 */

#ifndef ICP_ANALYSIS_BUILDER_HH
#define ICP_ANALYSIS_BUILDER_HH

#include "analysis/cfg.hh"
#include "analysis/jump_table.hh"

namespace icp
{

struct AnalysisOptions
{
    /** Run jump-table analysis (all modeled tools do). */
    bool resolveJumpTables = true;

    /**
     * Our gap-decoding heuristic: unresolved indirect jumps in a
     * function whose address range has no non-nop gaps are treated
     * as indirect tail calls instead of failing the function.
     * Dyninst-10.2 / SRBI lacks it.
     */
    bool tailCallHeuristic = true;

    JumpTableFailurePlan inject;

    /**
     * Worker threads for per-function CFG construction. 0 means one
     * per hardware thread; 1 builds serially on the caller. Results
     * are identical for any value (functions are independent).
     */
    unsigned threads = 1;

    /**
     * Consult/populate the process-wide AnalysisCache so repeat
     * rewrites of an unchanged image skip re-analysis. Not part of
     * the cache key; hits are bit-identical to fresh results.
     */
    bool useCache = true;

    /**
     * Restrict construction to function symbols whose entry lies in
     * [rangeLo, rangeHi). Per-function analysis never looks at other
     * functions, so a range-restricted build returns bit-identical
     * Function objects (same cache keys — the range is deliberately
     * not folded into the cache seed). Used by the sharded rewriter
     * to bound one slice's memory.
     */
    Addr rangeLo = 0;
    Addr rangeHi = ~static_cast<Addr>(0);
};

/** Build the module CFG for every function symbol in @p image. */
CfgModule buildCfg(const BinaryImage &image,
                   const AnalysisOptions &opts = AnalysisOptions{});

} // namespace icp

#endif // ICP_ANALYSIS_BUILDER_HH
