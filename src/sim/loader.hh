/**
 * @file
 * Maps an SBF image into simulated memory and applies runtime
 * relocations — the dynamic-loader analog. PIE images are loaded at
 * a non-zero slide so that relocation handling is genuinely
 * exercised.
 */

#ifndef ICP_SIM_LOADER_HH
#define ICP_SIM_LOADER_HH

#include <cstdint>
#include <memory>

#include "binfmt/image.hh"
#include "sim/memory.hh"

namespace icp
{

/** An image mapped at a concrete base. */
struct LoadedModule
{
    const BinaryImage *image = nullptr;
    std::int64_t slide = 0;

    Addr
    toLoaded(Addr pref) const
    {
        return static_cast<Addr>(static_cast<std::int64_t>(pref) +
                                 slide);
    }

    Addr
    toPref(Addr loaded) const
    {
        return static_cast<Addr>(static_cast<std::int64_t>(loaded) -
                                 slide);
    }
};

/** A loaded process: memory, module, and the initial stack. */
struct Process
{
    Memory mem;
    LoadedModule module;
    Addr stackTop = 0;
    Addr stackLimit = 0;
};

/** Default slide applied to PIE images (0 for non-PIE). */
inline constexpr std::int64_t default_pie_slide = 0x10000000;

/**
 * Load @p image into a fresh process. @p slide must be 0 for
 * non-PIE images; PIE images default to default_pie_slide.
 */
std::unique_ptr<Process> loadImage(const BinaryImage &image,
                                   std::int64_t slide = -1);

} // namespace icp

#endif // ICP_SIM_LOADER_HH
