file(REMOVE_RECURSE
  "libicp_analysis.a"
)
