#include "baselines/srbi.hh"

namespace icp
{

RewriteOptions
srbiOptions()
{
    RewriteOptions opts;
    opts.mode = RewriteMode::dir;
    opts.trampolinePlacement = false; // trampoline at every block
    opts.multiHop = false;            // short form or trap only
    opts.raTranslation = false;       // call emulation
    opts.analysis.tailCallHeuristic = false;
    return opts;
}

const std::vector<SrbiDocumentedBug> &
srbiDocumentedBugs()
{
    // §8.1's engineering-gap catalog, keyed to the fault-injection
    // defect that reproduces each bug in an emitted artifact.
    static const std::vector<SrbiDocumentedBug> bugs = {
        {"clobbered-branch-target", InjectDefect::trampTarget,
         "tramp-target"},
        {"trampoline-chain-cycle", InjectDefect::trampChain,
         "tramp-chain"},
        {"overlapping-block-patches", InjectDefect::doublePatch,
         "patch-overlap"},
        {"dropped-unwind-entry", InjectDefect::dropFde,
         "eh-frame-cover"},
    };
    return bugs;
}

std::optional<std::string>
srbiRefuses(const BinaryImage &image)
{
    const bool fixed = image.archInfo().fixedLength;
    if (image.features.cppExceptions && fixed) {
        return "call emulation not implemented on " +
               std::string(image.archInfo().name);
    }
    if (image.features.isGo) {
        return "Go runtime stack unwinding unsupported";
    }
    return std::nullopt;
}

} // namespace icp
