
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_matrix.cc" "bench/CMakeFiles/bench_table1_matrix.dir/bench_table1_matrix.cc.o" "gcc" "bench/CMakeFiles/bench_table1_matrix.dir/bench_table1_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/icp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/icp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/icp_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/icp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/icp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/icp_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/icp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
