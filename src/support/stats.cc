#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace icp
{

void
SampleStats::add(double v)
{
    samples_.push_back(v);
}

double
SampleStats::min() const
{
    icp_assert(!samples_.empty(), "SampleStats::min on empty set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    icp_assert(!samples_.empty(), "SampleStats::max on empty set");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleStats::mean() const
{
    icp_assert(!samples_.empty(), "SampleStats::mean on empty set");
    double total = 0;
    for (double v : samples_)
        total += v;
    return total / static_cast<double>(samples_.size());
}

double
SampleStats::percentile(double p) const
{
    icp_assert(!samples_.empty(), "SampleStats::percentile on empty set");
    icp_assert(p >= 0 && p <= 100, "percentile out of range");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string
formatPercent(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
    return buf;
}

double
relativeDelta(double a, double b)
{
    icp_assert(a != 0, "relativeDelta: zero base");
    return (b - a) / a;
}

} // namespace icp
