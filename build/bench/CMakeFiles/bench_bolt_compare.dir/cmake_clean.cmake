file(REMOVE_RECURSE
  "CMakeFiles/bench_bolt_compare.dir/bench_bolt_compare.cc.o"
  "CMakeFiles/bench_bolt_compare.dir/bench_bolt_compare.cc.o.d"
  "bench_bolt_compare"
  "bench_bolt_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bolt_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
