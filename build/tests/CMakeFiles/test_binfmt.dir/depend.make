# Empty dependencies file for test_binfmt.
# This may be replaced when dependencies are built.
