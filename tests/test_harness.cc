/**
 * @file
 * Harness self-tests: the block-level experiment protocol produces
 * sane rows, golden-run faults are reported (not masked), and the
 * SRBI signal-bug helper thresholds correctly.
 */

#include <gtest/gtest.h>

#include "baselines/srbi.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "rewrite/rewriter.hh"

using namespace icp;

TEST(Harness, BlockLevelExperimentRowIsSane)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    const ToolRun run =
        runBlockLevelExperiment(img, opts, Machine::Config{});
    ASSERT_TRUE(run.pass) << run.failReason;
    EXPECT_DOUBLE_EQ(run.coverage, 1.0);
    EXPECT_GT(run.sizeIncrease, 0.0);
    EXPECT_GT(run.overhead, -0.5);
    EXPECT_LT(run.overhead, 5.0);
    EXPECT_GT(run.goldenRun.instructions, 0u);
    EXPECT_GT(run.rewrittenRun.instructions,
              run.goldenRun.instructions);
}

TEST(Harness, GoldenFaultIsReportedNotMasked)
{
    // A thrower without a catcher: the *golden* run aborts with an
    // uncaught exception, and the harness must say so instead of
    // blaming the rewrite.
    ProgramSpec spec = microProfile(Arch::x64, false);
    spec.funcs[2].catches = false;
    const BinaryImage img = compileProgram(spec);
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    const ToolRun run =
        runBlockLevelExperiment(img, opts, Machine::Config{});
    EXPECT_FALSE(run.pass);
    EXPECT_NE(run.failReason.find("golden"), std::string::npos)
        << run.failReason;
}

TEST(Harness, TimingPassUsesEmptyInstrumentation)
{
    // The timing run's overhead must not include counter costs:
    // compare against a manual counting run.
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[5]);
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    const ToolRun run =
        runBlockLevelExperiment(img, opts, Machine::Config{});
    ASSERT_TRUE(run.pass) << run.failReason;
    // Empty instrumentation: no runtime-library counter calls in
    // the timing pass.
    EXPECT_EQ(run.rewrittenRun.rtCalls, 0u);
}

TEST(Harness, SrbiSignalBugThreshold)
{
    EXPECT_FALSE(srbiSignalBugTriggered(0));
    EXPECT_FALSE(srbiSignalBugTriggered(srbi_signal_bug_traps));
    EXPECT_TRUE(srbiSignalBugTriggered(srbi_signal_bug_traps + 1));
}
