#include "verify/lint.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "analysis/liveness.hh"
#include "binfmt/addr_map.hh"
#include "binfmt/ehframe.hh"
#include "isa/bytes.hh"
#include "isa/reg_usage.hh"
#include "sim/loader.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace icp
{

namespace
{

std::string
hex(Addr a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

/**
 * The rule checker. Walks the rewritten image against the manifest;
 * each check() method appends at most a small number of findings so
 * a single planted defect yields a focused report instead of a
 * cascade.
 */
class Checker
{
  public:
    Checker(const BinaryImage &orig, const BinaryImage &rew,
            const RewriteManifest &m, const LintOptions &opts)
        : orig_(orig),
          rew_(rew),
          m_(m),
          opts_(opts),
          arch_(rew.archInfo()),
          instr_(rew.findSection(SectionKind::instr))
    {
        for (const auto &kv : m_.blockMap)
            boundaries_.insert(kv.second);
        for (const auto &kv : m_.insnMap)
            boundaries_.insert(kv.second);
    }

    std::vector<Diagnostic>
    run()
    {
        checkTrampolines();
        checkScratchRegs();
        checkTocPreserved();
        checkClones();
        checkOverlaps();
        checkAddrMaps();
        checkEhFrames();
        checkDataDeps();
        if (opts_.checkLoadedImage)
            checkFuncPtrs();
        return std::move(findings_);
    }

  private:
    // --- reporting -------------------------------------------------------

    /** Build one finding (const: safe from parallel workers). */
    Diagnostic
    diag(const char *rule, Severity sev, Addr orig_addr,
         Addr new_addr, Addr func_entry, std::string msg) const
    {
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.origAddr = orig_addr;
        d.newAddr = new_addr;
        if (const Symbol *s = orig_.functionContaining(func_entry))
            d.function = s->name;
        d.message = std::move(msg);
        return d;
    }

    void
    report(const char *rule, Severity sev, Addr orig_addr,
           Addr new_addr, Addr func_entry, std::string msg)
    {
        findings_.push_back(diag(rule, sev, orig_addr, new_addr,
                                 func_entry, std::move(msg)));
    }

    // --- incremental-lint filters ----------------------------------------

    bool
    ruleEnabled(const char *rule) const
    {
        return opts_.onlyRules.empty() ||
               opts_.onlyRules.count(rule) > 0;
    }

    bool
    anyRuleEnabled(std::initializer_list<const char *> rules) const
    {
        for (const char *r : rules) {
            if (ruleEnabled(r))
                return true;
        }
        return false;
    }

    bool
    siteEnabled(Addr func_entry) const
    {
        return opts_.onlyFunctions.empty() ||
               opts_.onlyFunctions.count(func_entry) > 0;
    }

    // --- shared helpers --------------------------------------------------

    bool
    decodeAt(Addr a, Instruction &in) const
    {
        const Section *sec = rew_.sectionAt(a);
        if (!sec)
            return false;
        const std::uint64_t avail = std::min<std::uint64_t>(
            arch_.maxInstrLen, sec->end() - a);
        std::vector<std::uint8_t> buf;
        if (!rew_.readBytes(a, static_cast<std::size_t>(avail), buf))
            return false;
        return arch_.codec->decode(buf.data(), buf.size(), a, in) &&
               in.valid();
    }

    const Function *
    functionAt(Addr entry)
    {
        if (opts_.originalCfg)
            return opts_.originalCfg->functionAt(entry);
        if (!cfgBuilt_) {
            cfg_ = buildCfg(orig_);
            cfgBuilt_ = true;
            rebuiltOriginalCfg_ = true;
        }
        return cfg_.functionAt(entry);
    }

    const LivenessResult *
    livenessAt(Addr entry)
    {
        auto it = liveness_.find(entry);
        if (it != liveness_.end())
            return it->second.get();
        const Function *fn = functionAt(entry);
        if (!fn)
            return nullptr;
        const bool cached =
            opts_.useAnalysisCache && fn->cacheKey != 0;
        if (cached) {
            if (auto hit = AnalysisCache::global().findLiveness(
                    fn->cacheKey, fn->entry)) {
                ++livenessCacheHits_;
                return liveness_.emplace(entry, std::move(hit))
                    .first->second.get();
            }
        }
        ++livenessCacheMisses_;
        auto fresh = std::make_shared<LivenessResult>(
            computeLiveness(*fn, arch_));
        if (cached) {
            AnalysisCache::global().storeLiveness(
                fn->cacheKey, orig_.arch, fn->entry, *fresh);
        }
        return liveness_.emplace(entry, std::move(fresh))
            .first->second.get();
    }

    // --- R1/R2/R3/R12: trampoline chain walking --------------------------

    /**
     * Symbolically execute one trampoline chain: follow direct
     * branches, evaluate the long-form address-materialization
     * sequences (addis/addi/mtspr-tar/bctar, adrp/add/br, lea/jmp),
     * and require the chain to terminate on a relocated instruction
     * boundary equal to the manifest target. Emits at most one
     * finding per trampoline, classified range -> chain -> target.
     */
    void
    walkChain(const TrampolinePatch &p,
              std::vector<Diagnostic> &out) const
    {
        // Shadows the serial member: chain walking runs on pool
        // workers, so findings collect into a per-site vector.
        auto report = [&](const char *rule, Severity sev,
                          Addr orig_addr, Addr new_addr,
                          Addr func_entry, std::string msg) {
            out.push_back(diag(rule, sev, orig_addr, new_addr,
                               func_entry, std::move(msg)));
        };
        Addr addr = p.site;
        std::set<Addr> visited;
        std::map<Reg, Addr> vals;
        bool tar_known = false;
        Addr tar = 0;
        unsigned steps = 0;

        while (true) {
            if (instr_ && instr_->contains(addr)) {
                if (!boundaries_.count(addr)) {
                    report("tramp-target", Severity::error, p.site,
                           addr, p.funcEntry,
                           "chain lands inside relocated code at " +
                               hex(addr) +
                               ", not on an instruction boundary");
                } else if (addr != p.target) {
                    report("tramp-target", Severity::error, p.site,
                           addr, p.funcEntry,
                           "chain reaches " + hex(addr) +
                               " but the manifest target is " +
                               hex(p.target));
                }
                return;
            }
            if (++steps > max_chain_steps) {
                report("tramp-chain", Severity::error, p.site, addr,
                       p.funcEntry,
                       "chain executes more than 64 instructions "
                       "without reaching relocated code");
                return;
            }
            const Section *sec = rew_.sectionAt(addr);
            if (!sec) {
                report("tramp-target", Severity::error, p.site, addr,
                       p.funcEntry,
                       "chain escapes to unmapped address " +
                           hex(addr));
                return;
            }
            if (!sec->executable) {
                report("tramp-target", Severity::error, p.site, addr,
                       p.funcEntry,
                       "chain enters non-executable section " +
                           sec->name);
                return;
            }
            Instruction in;
            if (!decodeAt(addr, in)) {
                report("tramp-target", Severity::error, p.site, addr,
                       p.funcEntry,
                       "undecodable instruction at " + hex(addr));
                return;
            }

            switch (in.op) {
              case Opcode::Jmp: {
                const auto delta =
                    static_cast<std::int64_t>(in.target) -
                    static_cast<std::int64_t>(addr);
                std::int64_t limit = arch_.directJmpRange;
                if (!arch_.fixedLength &&
                    in.length == arch_.shortJmpLen)
                    limit = arch_.shortJmpRange;
                if (delta < -limit || delta > limit) {
                    report("tramp-range", Severity::error, p.site,
                           addr, p.funcEntry,
                           "branch at " + hex(addr) + " spans " +
                               std::to_string(delta) +
                               " bytes, beyond the ISA limit of +/-" +
                               std::to_string(limit));
                    return;
                }
                if (!visited.insert(addr).second) {
                    report("tramp-chain", Severity::error, p.site,
                           addr, p.funcEntry,
                           "chain loops back through " + hex(addr));
                    return;
                }
                addr = in.target;
                continue;
              }
              case Opcode::Trap:
                if (p.kind == TrampolineKind::trap) {
                    report("tramp-trap", Severity::warning, p.site,
                           p.target, p.funcEntry,
                           "trap fallback at " + hex(p.site) +
                               "; control reaches " + hex(p.target) +
                               " only via runtime redirection");
                } else {
                    report("tramp-target", Severity::error, p.site,
                           addr, p.funcEntry,
                           "non-trap trampoline runs into a trap "
                           "instruction at " +
                               hex(addr));
                }
                return;
              case Opcode::Store:
                break; // scratch spill to the stack (ppc spill form)
              case Opcode::Load:
                vals.erase(in.rd); // spill restore
                break;
              case Opcode::AddisToc:
                vals[in.rd] = static_cast<Addr>(
                    static_cast<std::int64_t>(rew_.tocBase) +
                    (in.imm << 16));
                break;
              case Opcode::AddImm: {
                auto it = vals.find(in.rd);
                if (it == vals.end()) {
                    reportUnresolved(p, addr, in, out);
                    return;
                }
                it->second = static_cast<Addr>(
                    static_cast<std::int64_t>(it->second) + in.imm);
                break;
              }
              case Opcode::Lea:
              case Opcode::AdrPage:
                vals[in.rd] = in.target;
                break;
              case Opcode::MovImm:
                if (!in.movKeep) {
                    vals[in.rd] = static_cast<Addr>(
                        static_cast<std::uint64_t>(in.imm)
                        << in.movShift);
                } else {
                    auto it = vals.find(in.rd);
                    if (it == vals.end()) {
                        reportUnresolved(p, addr, in, out);
                        return;
                    }
                    it->second |=
                        (static_cast<std::uint64_t>(in.imm) & 0xffff)
                        << in.movShift;
                }
                break;
              case Opcode::MovHi: {
                auto it = vals.find(in.rd);
                if (it == vals.end()) {
                    reportUnresolved(p, addr, in, out);
                    return;
                }
                it->second =
                    (it->second & 0xffff) |
                    ((static_cast<std::uint64_t>(in.imm) & 0xffff)
                     << 16);
                break;
              }
              case Opcode::MoveToTar: {
                auto it = vals.find(in.rs1);
                if (it == vals.end()) {
                    reportUnresolved(p, addr, in, out);
                    return;
                }
                tar = it->second;
                tar_known = true;
                break;
              }
              case Opcode::JmpTar:
                if (!tar_known) {
                    reportUnresolved(p, addr, in, out);
                    return;
                }
                if (!visited.insert(addr).second) {
                    report("tramp-chain", Severity::error, p.site,
                           addr, p.funcEntry,
                           "chain loops back through " + hex(addr));
                    return;
                }
                addr = tar;
                continue;
              case Opcode::JmpInd: {
                auto it = vals.find(in.rs1);
                if (it == vals.end()) {
                    reportUnresolved(p, addr, in, out);
                    return;
                }
                if (!visited.insert(addr).second) {
                    report("tramp-chain", Severity::error, p.site,
                           addr, p.funcEntry,
                           "chain loops back through " + hex(addr));
                    return;
                }
                addr = it->second;
                continue;
              }
              default:
                report("tramp-target", Severity::error, p.site, addr,
                       p.funcEntry,
                       "unexpected instruction '" + in.toString() +
                           "' in trampoline chain");
                return;
            }
            addr += in.length;
        }
    }

    void
    reportUnresolved(const TrampolinePatch &p, Addr addr,
                     const Instruction &in,
                     std::vector<Diagnostic> &out) const
    {
        out.push_back(diag(
            "tramp-target", Severity::error, p.site, addr,
            p.funcEntry,
            "cannot resolve the branch target: '" + in.toString() +
                "' uses a register with no known value"));
    }

    void
    checkTrampolines()
    {
        if (!anyRuleEnabled({"tramp-target", "tramp-range",
                             "tramp-chain", "tramp-trap"}))
            return;
        const StageTimer timer(Stage::lintChains);
        std::vector<const TrampolinePatch *> sites;
        for (const TrampolinePatch &p : m_.trampolines) {
            if (siteEnabled(p.funcEntry))
                sites.push_back(&p);
        }
        checkedTrampolines_ = sites.size();
        // Per-site chain walks are independent and read-only; the
        // index-slot results keep finding order deterministic for
        // every thread count.
        auto results =
            ThreadPool::shared().parallelMap<std::vector<Diagnostic>>(
                sites.size(), effectiveThreads(opts_.threads),
                [&](std::size_t i) {
                    std::vector<Diagnostic> out;
                    walkChain(*sites[i], out);
                    return out;
                });
        for (auto &site_findings : results) {
            for (auto &d : site_findings)
                findings_.push_back(std::move(d));
        }
    }

    // --- R4: scratch-register liveness -----------------------------------

    void
    checkScratchRegs()
    {
        if (!ruleEnabled("tramp-scratch-live"))
            return;
        for (const TrampolinePatch &p : m_.trampolines) {
            if (!siteEnabled(p.funcEntry))
                continue;
            if (p.kind != TrampolineKind::longForm &&
                p.kind != TrampolineKind::multiHop)
                continue;
            if (p.scratchReg == Reg::none ||
                static_cast<unsigned>(p.scratchReg) >= num_gp_regs)
                continue;
            const LivenessResult *live = livenessAt(p.funcEntry);
            if (!live)
                continue;
            if (live->liveAtBlockStart(p.site).contains(p.scratchReg))
                report("tramp-scratch-live", Severity::error, p.site,
                       p.target, p.funcEntry,
                       std::string("long form clobbers ") +
                           regName(p.scratchReg) +
                           ", which is live at " + hex(p.site));
        }
    }

    // --- R5: ppc64le TOC preservation ------------------------------------

    void
    checkTocPreserved()
    {
        if (!arch_.hasToc || !ruleEnabled("toc-preserved"))
            return;
        for (const TrampolinePatch &p : m_.trampolines) {
            if (!siteEnabled(p.funcEntry))
                continue;
            bool flagged = false;
            for (const auto &w : p.writes) {
                for (Addr a = w.first;
                     !flagged && a < w.first + w.second;) {
                    Instruction in;
                    if (!decodeAt(a, in))
                        break; // the chain walker reports this
                    if (regsWritten(in, arch_).contains(Reg::toc)) {
                        report("toc-preserved", Severity::error,
                               p.site, a, p.funcEntry,
                               "trampoline instruction '" +
                                   in.toString() +
                                   "' clobbers the TOC register");
                        flagged = true;
                    }
                    a += in.length;
                }
                if (flagged)
                    break;
            }
        }
    }

    // --- R6/R7: cloned jump tables ---------------------------------------

    void
    checkClones()
    {
        if (!anyRuleEnabled({"jt-clone-bounds", "jt-clone-target"}))
            return;
        const StageTimer timer(Stage::lintClones);
        const Section *ro = rew_.findSection(SectionKind::newRodata);
        std::vector<const JumpTableClonePatch *> clones;
        for (const JumpTableClonePatch &p : m_.clones) {
            if (siteEnabled(p.funcEntry))
                clones.push_back(&p);
        }

        struct CloneOut
        {
            std::vector<Diagnostic> findings;
            std::uint64_t checked = 0;
        };
        auto results = ThreadPool::shared().parallelMap<CloneOut>(
            clones.size(), effectiveThreads(opts_.threads),
            [&](std::size_t i) {
                const JumpTableClonePatch &p = *clones[i];
                CloneOut out;
                const Addr lo = p.cloneAddr;
                const Addr hi = p.cloneAddr +
                                static_cast<Addr>(p.entryCount) *
                                    p.entrySize;
                if (!ro || lo < ro->addr || hi > ro->end()) {
                    out.findings.push_back(diag(
                        "jt-clone-bounds", Severity::error,
                        p.jumpAddr, lo, p.funcEntry,
                        "clone [" + hex(lo) + ", " + hex(hi) +
                            ") escapes .newrodata" +
                            (ro ? " [" + hex(ro->addr) + ", " +
                                      hex(ro->end()) + ")"
                                : " (section missing)")));
                    return out;
                }
                checkCloneEntries(p, out.findings, out.checked);
                return out;
            });
        for (auto &r : results) {
            checkedCloneEntries_ += r.checked;
            for (auto &d : r.findings)
                findings_.push_back(std::move(d));
        }
    }

    /**
     * Re-derive each entry's branch destination exactly as the
     * rewritten dispatch would: absolute entries hold the target;
     * relative entries are sign-extended, scaled by the table's
     * shift, and added to the relocated base anchor (the clone
     * itself for table-relative bases, the base block's relocated
     * address otherwise). Entries whose original target was not
     * relocated are dispatch-unreachable garbage and stay zero.
     */
    void
    checkCloneEntries(const JumpTableClonePatch &p,
                      std::vector<Diagnostic> &out,
                      std::uint64_t &checked) const
    {
        auto report = [&](const char *rule, Severity sev,
                          Addr orig_addr, Addr new_addr,
                          Addr func_entry, std::string msg) {
            out.push_back(diag(rule, sev, orig_addr, new_addr,
                               func_entry, std::move(msg)));
        };
        Addr base_new = 0;
        if (p.origBase) {
            if (*p.origBase == p.origTableAddr) {
                base_new = p.cloneAddr;
            } else {
                auto bb = m_.blockMap.find(*p.origBase);
                if (bb == m_.blockMap.end()) {
                    report("jt-clone-target", Severity::error,
                           p.jumpAddr, p.cloneAddr, p.funcEntry,
                           "table base anchor " + hex(*p.origBase) +
                               " was not relocated");
                    return;
                }
                base_new = bb->second;
            }
        }
        const unsigned n = std::min<unsigned>(
            p.entryCount,
            static_cast<unsigned>(p.origTargets.size()));
        for (unsigned i = 0; i < n; ++i) {
            auto ti = m_.blockMap.find(p.origTargets[i]);
            if (ti == m_.blockMap.end())
                continue;
            const Addr at = p.cloneAddr +
                            static_cast<Addr>(i) * p.entrySize;
            const auto value = rew_.readValue(at, p.entrySize);
            ++checked;
            if (!value) {
                report("jt-clone-target", Severity::error,
                       p.origTargets[i], at, p.funcEntry,
                       "clone entry " + std::to_string(i) +
                           " is unreadable");
                return;
            }
            Addr actual;
            if (!p.origBase)
                actual = *value;
            else
                actual = static_cast<Addr>(
                    static_cast<std::int64_t>(base_new) +
                    (signExtend(*value, p.entrySize * 8)
                     << p.shift));
            if (actual != ti->second) {
                report("jt-clone-target", Severity::error,
                       p.origTargets[i], at, p.funcEntry,
                       "clone entry " + std::to_string(i) +
                           " decodes to " + hex(actual) +
                           ", expected relocated block " +
                           hex(ti->second));
                return; // one finding per clone
            }
        }
    }

    // --- R8: patch overlap and placement ---------------------------------

    void
    checkOverlaps()
    {
        if (!ruleEnabled("patch-overlap"))
            return;
        struct Ext
        {
            Addr lo, hi, site;
        };
        std::vector<Ext> exts;
        for (const TrampolinePatch &p : m_.trampolines)
            for (const auto &w : p.writes)
                exts.push_back({w.first, w.first + w.second, p.site});

        for (const Ext &e : exts) {
            const Section *sec = rew_.sectionAt(e.lo);
            if (!sec || !sec->executable || e.hi > sec->end()) {
                report("patch-overlap", Severity::error, e.site, e.lo,
                       e.site,
                       "patch bytes [" + hex(e.lo) + ", " +
                           hex(e.hi) +
                           ") fall outside executable sections");
                continue;
            }
            if (sec->kind == SectionKind::instr ||
                sec->kind == SectionKind::newRodata)
                report("patch-overlap", Severity::error, e.site, e.lo,
                       e.site,
                       "patch bytes land in generated section " +
                           sec->name);
            for (const auto &pr : m_.protectedRanges)
                if (e.lo < pr.second && pr.first < e.hi)
                    report("patch-overlap", Severity::error, e.site,
                           e.lo, e.site,
                           "patch bytes [" + hex(e.lo) + ", " +
                               hex(e.hi) +
                               ") overwrite protected table data [" +
                               hex(pr.first) + ", " +
                               hex(pr.second) + ")");
        }

        std::sort(exts.begin(), exts.end(),
                  [](const Ext &a, const Ext &b) {
                      return a.lo < b.lo ||
                             (a.lo == b.lo && a.hi < b.hi);
                  });
        for (std::size_t i = 1; i < exts.size(); ++i)
            if (exts[i].lo < exts[i - 1].hi)
                report("patch-overlap", Severity::error,
                       exts[i].site, exts[i].lo, exts[i].site,
                       "patch bytes at " + hex(exts[i].lo) +
                           " overlap the patch at " +
                           hex(exts[i - 1].lo) + " (site " +
                           hex(exts[i - 1].site) + ")");
    }

    // --- R9: address-map consistency -------------------------------------

    void
    checkAddrMaps()
    {
        if (!ruleEnabled("addr-map-round-trip"))
            return;
        checkMapInto("block map", m_.blockMap);
        checkMapInto("instruction map", m_.insnMap);

        // .ra_map must round-trip to the manifest's pairs.
        const Section *ra = rew_.findSection(SectionKind::raMap);
        std::vector<std::pair<Addr, Addr>> stored;
        if (ra)
            stored = AddrPairMap::parse(ra->bytes).pairs();
        std::vector<std::pair<Addr, Addr>> expect =
            AddrPairMap(m_.raPairs).pairs();
        checkedRaPairs_ = expect.size();
        comparePairs("'.ra_map'", stored, expect);

        // .trap_map must hold exactly the trap trampolines.
        const Section *tm = rew_.findSection(SectionKind::trapMap);
        std::vector<std::pair<Addr, Addr>> traps;
        if (tm)
            traps = AddrPairMap::parse(tm->bytes).pairs();
        std::vector<std::pair<Addr, Addr>> expect_traps;
        for (const TrampolinePatch &p : m_.trampolines)
            if (p.kind == TrampolineKind::trap)
                expect_traps.emplace_back(p.site, p.target);
        std::sort(expect_traps.begin(), expect_traps.end());
        comparePairs("'.trap_map'", traps, expect_traps);
    }

    void
    checkMapInto(const char *what, const std::map<Addr, Addr> &map)
    {
        std::map<Addr, Addr> reverse;
        for (const auto &[o, n] : map) {
            if (!instr_ || !instr_->contains(n)) {
                report("addr-map-round-trip", Severity::error, o, n,
                       o,
                       std::string(what) + " sends " + hex(o) +
                           " to " + hex(n) + ", outside .instr");
                return;
            }
            if (!reverse.emplace(n, o).second) {
                report("addr-map-round-trip", Severity::error, o, n,
                       o,
                       std::string(what) + " is not injective: " +
                           hex(reverse[n]) + " and " + hex(o) +
                           " both map to " + hex(n));
                return;
            }
        }
    }

    void
    comparePairs(const char *what,
                 const std::vector<std::pair<Addr, Addr>> &stored,
                 const std::vector<std::pair<Addr, Addr>> &expect)
    {
        if (stored == expect)
            return;
        Addr where = invalid_addr;
        const std::size_t n = std::min(stored.size(), expect.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (stored[i] != expect[i]) {
                where = stored[i].first;
                break;
            }
        }
        report("addr-map-round-trip", Severity::error, invalid_addr,
               where, invalid_addr,
               std::string(what) + " does not round-trip: section "
                   "stores " + std::to_string(stored.size()) +
                   " pairs, manifest has " +
                   std::to_string(expect.size()) +
                   (where == invalid_addr
                        ? std::string()
                        : ", first mismatch at key " + hex(where)));
    }

    // --- R10: unwind coverage --------------------------------------------

    void
    checkEhFrames()
    {
        if (m_.instrumented.empty() ||
            !ruleEnabled("eh-frame-cover"))
            return;
        const FdeIndex orig_idx(orig_.fdeRecords());
        const FdeIndex new_idx(rew_.fdeRecords());
        for (Addr entry : m_.instrumented) {
            if (!siteEnabled(entry))
                continue;
            const FdeRecord *of = orig_idx.find(entry);
            if (!of)
                continue;
            ++checkedFdes_;
            const FdeRecord *nf = new_idx.find(entry);
            if (!nf || nf->start != of->start || nf->end != of->end)
                report("eh-frame-cover", Severity::error, entry,
                       invalid_addr, entry,
                       "FDE [" + hex(of->start) + ", " +
                           hex(of->end) +
                           ") no longer covers the instrumented "
                           "function");
        }
    }

    // --- R13/R14/R15: data read-set audit ---------------------------------

    /**
     * Audit each function's recorded data read-set against a fresh
     * recomputation from the original CFG and image: ranges the
     * slices read must be recorded (datadep-missing), recorded
     * hashes must match the image (datadep-stale), and the recorded
     * total must not exceed the actual reads beyond a threshold
     * (datadep-overbroad) — an overbroad set is sound but erodes the
     * precision of overlap-keyed invalidation. One finding per rule
     * per function, so a planted defect yields a focused report.
     */
    void
    checkDataDeps()
    {
        if (!anyRuleEnabled({"datadep-missing", "datadep-stale",
                             "datadep-overbroad"}))
            return;
        for (const auto &[entry, recorded] : m_.dataDeps) {
            if (!siteEnabled(entry))
                continue;
            const Function *fn = functionAt(entry);
            if (!fn)
                continue;
            ++checkedDataDeps_;

            DataDeps expected;
            {
                const StageTimer timer(Stage::depsCompute);
                expected = computeDataDeps(*fn, orig_);
            }
            if (ruleEnabled("datadep-missing")) {
                for (const DepRange &r : expected.ranges()) {
                    if (recorded.covers(r.lo, r.hi))
                        continue;
                    report("datadep-missing", Severity::error, r.lo,
                           invalid_addr, entry,
                           "analysis reads [" + hex(r.lo) + ", " +
                               hex(r.hi) +
                               ") but the recorded read-set does "
                               "not cover it");
                    break;
                }
            }
            if (ruleEnabled("datadep-stale")) {
                for (const DepRange &r : recorded.ranges()) {
                    const std::uint64_t now =
                        hashImageRange(orig_, r.lo, r.hi);
                    if (now == r.hash)
                        continue;
                    report("datadep-stale", Severity::error, r.lo,
                           invalid_addr, entry,
                           "recorded hash of [" + hex(r.lo) + ", " +
                               hex(r.hi) +
                               ") disagrees with the image");
                    break;
                }
            }
            if (ruleEnabled("datadep-overbroad")) {
                const std::uint64_t want = expected.totalBytes();
                const std::uint64_t have = recorded.totalBytes();
                const std::uint64_t slack =
                    std::max<std::uint64_t>(64, want);
                if (have > want + slack) {
                    report("datadep-overbroad", Severity::warning,
                           entry, invalid_addr, entry,
                           "recorded read-set spans " +
                               std::to_string(have) +
                               " bytes; the analysis slices read " +
                               std::to_string(want));
                }
            }
        }
    }

    // --- R11: function-pointer cells under the loader ---------------------

    void
    checkFuncPtrs()
    {
        if (!ruleEnabled("func-ptr-target"))
            return;
        std::vector<const FuncPtrPatch *> cells;
        for (const FuncPtrPatch &p : m_.funcPtrs) {
            if (p.kind == FuncPtrPatch::Kind::dataCell &&
                siteEnabled(p.funcEntry))
                cells.push_back(&p);
        }
        if (cells.empty())
            return;
        const StageTimer timer(Stage::lintPtrs);
        // Loading is serial; the per-cell reads afterwards touch the
        // loaded memory read-only and are independent.
        const auto proc = loadImage(rew_);
        checkedFuncPtrs_ = cells.size();
        auto results =
            ThreadPool::shared().parallelMap<std::vector<Diagnostic>>(
                cells.size(), effectiveThreads(opts_.threads),
                [&](std::size_t i) {
                    const FuncPtrPatch &p = *cells[i];
                    std::vector<Diagnostic> out;
                    std::uint64_t value = 0;
                    const Addr cell = proc->module.toLoaded(p.site);
                    if (!proc->mem.read(cell, 8, value)) {
                        out.push_back(diag(
                            "func-ptr-target", Severity::error,
                            p.site, invalid_addr, p.funcEntry,
                            "pointer cell at " + hex(p.site) +
                                " is unmapped after loading"));
                        return out;
                    }
                    const Addr expect =
                        proc->module.toLoaded(p.newValue);
                    if (value != expect) {
                        out.push_back(diag(
                            "func-ptr-target", Severity::error,
                            p.site, p.newValue, p.funcEntry,
                            "loaded cell holds " + hex(value) +
                                ", expected " + hex(expect) +
                                " (relocated target " +
                                hex(p.newValue) + ")"));
                    }
                    return out;
                });
        for (auto &cell_findings : results) {
            for (auto &d : cell_findings)
                findings_.push_back(std::move(d));
        }
    }

  public:
    std::uint64_t checkedTrampolines_ = 0;
    std::uint64_t checkedCloneEntries_ = 0;
    std::uint64_t checkedFuncPtrs_ = 0;
    std::uint64_t checkedRaPairs_ = 0;
    std::uint64_t checkedFdes_ = 0;
    std::uint64_t checkedDataDeps_ = 0;
    bool rebuiltOriginalCfg_ = false;
    std::uint64_t livenessCacheHits_ = 0;
    std::uint64_t livenessCacheMisses_ = 0;

  private:
    static constexpr unsigned max_chain_steps = 64;

    const BinaryImage &orig_;
    const BinaryImage &rew_;
    const RewriteManifest &m_;
    const LintOptions &opts_;
    const ArchInfo &arch_;
    const Section *instr_;

    std::set<Addr> boundaries_; ///< valid relocated landing points
    std::vector<Diagnostic> findings_;

    bool cfgBuilt_ = false;
    CfgModule cfg_;
    std::map<Addr, std::shared_ptr<const LivenessResult>> liveness_;
};

} // namespace

LintReport
lintRewrite(const BinaryImage &original, const RewriteResult &rw,
            const LintOptions &opts)
{
    const StageTimer timer(Stage::lint);
    LintReport rep;
    if (!rw.ok) {
        Diagnostic d;
        d.rule = "lint-input";
        d.message = "rewrite failed: " + rw.failReason;
        rep.findings.push_back(std::move(d));
        return rep;
    }
    if (!rw.manifest.populated) {
        Diagnostic d;
        d.rule = "lint-manifest";
        d.message = "rewrite ran with RewriteOptions::lint off; no "
                    "manifest to verify against";
        rep.findings.push_back(std::move(d));
        return rep;
    }
    Checker checker(original, rw.image, rw.manifest, opts);
    rep.findings = checker.run();
    // Surface persistent-cache degradation alongside the soundness
    // findings: a dropped or rejected cache entry never affects the
    // output bytes (analysis simply re-runs), so these are warnings,
    // but CI's --fail-on=warning gate still notices a rotting
    // artifact.
    if (!rw.cacheLoad.clean() &&
        (opts.onlyRules.empty() ||
         opts.onlyRules.count("cache-file"))) {
        auto cache_diags =
            diagnosticsFromCacheIssues(rw.cacheLoad.issues);
        rep.findings.insert(rep.findings.end(),
                            cache_diags.begin(), cache_diags.end());
    }
    rep.checkedTrampolines = checker.checkedTrampolines_;
    rep.checkedCloneEntries = checker.checkedCloneEntries_;
    rep.checkedFuncPtrs = checker.checkedFuncPtrs_;
    rep.checkedRaPairs = checker.checkedRaPairs_;
    rep.checkedFdes = checker.checkedFdes_;
    rep.checkedDataDeps = checker.checkedDataDeps_;
    rep.rebuiltOriginalCfg = checker.rebuiltOriginalCfg_;
    rep.livenessCacheHits = checker.livenessCacheHits_;
    rep.livenessCacheMisses = checker.livenessCacheMisses_;
    return rep;
}

std::vector<Diagnostic>
diagnosticsFromCacheIssues(const std::vector<CacheFileIssue> &issues)
{
    std::vector<Diagnostic> out;
    out.reserve(issues.size());
    for (const CacheFileIssue &issue : issues) {
        Diagnostic d;
        d.rule = issue.rule;
        // A v1 file migrating on its next save and an unknown entry
        // kind skipped for forward compatibility are both expected
        // behavior, not degradation: info, so --fail-on=warning
        // gates stay green across format transitions.
        d.severity = issue.rule == "cache-migrated" ||
                             issue.rule == "cache-skip"
                         ? Severity::info
                         : Severity::warning;
        d.message = issue.message + " (cache-file offset " +
                    std::to_string(issue.offset) + ")";
        out.push_back(std::move(d));
    }
    return out;
}

std::vector<Diagnostic>
diagnosticsFromSbfIssues(const std::vector<SbfIssue> &issues)
{
    std::vector<Diagnostic> out;
    out.reserve(issues.size());
    for (const SbfIssue &issue : issues) {
        Diagnostic d;
        d.rule = issue.rule;
        d.severity = Severity::error;
        d.message = issue.message + " (container offset " +
                    std::to_string(issue.offset) + ")";
        out.push_back(std::move(d));
    }
    return out;
}

namespace
{

/**
 * Minimal scanner for the JSON that LintReport::renderJson() emits:
 * a top-level object whose "findings" member is an array of flat
 * objects with string values. Tolerant of whitespace and member
 * order; anything structurally different fails the parse.
 */
class ReportJsonScanner
{
  public:
    explicit ReportJsonScanner(const std::string &text)
        : s_(text)
    {
    }

    bool
    parse(LintReport &out)
    {
        skipWs();
        if (!eat('{'))
            return false;
        // Scan top-level members; only "findings" matters.
        bool first = true;
        while (true) {
            skipWs();
            if (eat('}'))
                return sawFindings_;
            if (!first && !eat(','))
                return false;
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (key == "findings") {
                if (!parseFindings(out))
                    return false;
                sawFindings_ = true;
            } else if (!skipValue()) {
                return false;
            }
        }
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\r' || s_[pos_] == '\t'))
            ++pos_;
    }

    bool
    eat(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return false;
            const char esc = s_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return false;
                const unsigned v = static_cast<unsigned>(std::strtoul(
                    s_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                out += static_cast<char>(v & 0xff);
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    /** Skip any scalar / object / array value (no capture). */
    bool
    skipValue()
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '"') {
            std::string scratch;
            return parseString(scratch);
        }
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++pos_;
            skipWs();
            if (eat(close))
                return true;
            while (true) {
                if (!skipValue())
                    return false;
                skipWs();
                if (eat(close))
                    return true;
                if (eat(',')) {
                    skipWs();
                    // Object members: "key": value.
                    if (close == '}' ) {
                        std::string key;
                        if (!parseString(key))
                            return false;
                        skipWs();
                        if (!eat(':'))
                            return false;
                    }
                    continue;
                }
                if (eat(':')) // first member of an object
                    continue;
                return false;
            }
        }
        // Bare scalar: number / true / false / null.
        const std::size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] != ',' &&
               s_[pos_] != '}' && s_[pos_] != ']' &&
               s_[pos_] != ' ' && s_[pos_] != '\n')
            ++pos_;
        return pos_ > start;
    }

    bool
    parseFindings(LintReport &out)
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            skipWs();
            if (!eat('{'))
                return false;
            Diagnostic d;
            bool first = true;
            while (true) {
                skipWs();
                if (eat('}'))
                    break;
                if (!first && !eat(','))
                    return false;
                first = false;
                skipWs();
                std::string key, value;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!eat(':'))
                    return false;
                skipWs();
                if (!parseString(value))
                    return false;
                if (key == "rule") {
                    d.rule = value;
                } else if (key == "severity") {
                    const auto sev = parseSeverity(value);
                    if (!sev)
                        return false;
                    d.severity = *sev;
                } else if (key == "function") {
                    d.function = value == "-" ? "" : value;
                } else if (key == "orig" || key == "new") {
                    Addr addr = invalid_addr;
                    if (value.rfind("0x", 0) == 0)
                        addr = std::strtoull(value.c_str(), nullptr,
                                             16);
                    (key == "orig" ? d.origAddr : d.newAddr) = addr;
                } else if (key == "message") {
                    d.message = value;
                }
            }
            if (d.rule.empty())
                return false;
            out.findings.push_back(std::move(d));
            skipWs();
            if (eat(']'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    bool sawFindings_ = false;
};

} // namespace

std::optional<LintReport>
parseLintReportJson(const std::string &text)
{
    LintReport report;
    ReportJsonScanner scanner(text);
    if (!scanner.parse(report))
        return std::nullopt;
    return report;
}

std::string
LintReport::renderText() const
{
    std::string out;
    if (!findings.empty())
        out += renderDiagnosticsText(findings);
    char line[192];
    std::snprintf(
        line, sizeof(line),
        "lint: %s (%u errors, %u warnings, %u notes)\n",
        countAtLeast(Severity::error) ? "FAIL"
        : findings.empty()            ? "clean"
                                      : "clean with warnings",
        countAtLeast(Severity::error),
        countAtLeast(Severity::warning) -
            countAtLeast(Severity::error),
        static_cast<unsigned>(findings.size()) -
            countAtLeast(Severity::warning));
    out += line;
    std::snprintf(
        line, sizeof(line),
        "checked: %llu trampolines, %llu clone entries, %llu "
        "func-ptr cells, %llu ra-map pairs, %llu FDEs, %llu "
        "read-sets\n",
        static_cast<unsigned long long>(checkedTrampolines),
        static_cast<unsigned long long>(checkedCloneEntries),
        static_cast<unsigned long long>(checkedFuncPtrs),
        static_cast<unsigned long long>(checkedRaPairs),
        static_cast<unsigned long long>(checkedFdes),
        static_cast<unsigned long long>(checkedDataDeps));
    out += line;
    return out;
}

LintDiff
diffReports(const LintReport &before, const LintReport &after)
{
    // Match findings by (function, rule, severity) with
    // multiplicity; addresses differ between any two binaries and
    // do not participate.
    auto key = [](const Diagnostic &d) {
        return d.function + '\x1f' + d.rule + '\x1f' +
               static_cast<char>('0' +
                                 static_cast<unsigned>(d.severity));
    };

    LintDiff diff;
    std::map<std::string, LintDiff::FuncDelta> by_func;
    auto tally = [](const Diagnostic &d, unsigned &err,
                    unsigned &warn, unsigned &note) {
        switch (d.severity) {
          case Severity::error: ++err; break;
          case Severity::warning: ++warn; break;
          case Severity::info: ++note; break;
        }
    };

    std::map<std::string, int> baseline;
    for (const Diagnostic &d : before.findings)
        ++baseline[key(d)];
    for (const Diagnostic &d : after.findings) {
        auto it = baseline.find(key(d));
        if (it != baseline.end() && it->second > 0) {
            --it->second;
            continue;
        }
        by_func[d.function].regressions.push_back(d);
        tally(d, diff.newErrors, diff.newWarnings, diff.newNotes);
    }

    std::map<std::string, int> current;
    for (const Diagnostic &d : after.findings)
        ++current[key(d)];
    for (const Diagnostic &d : before.findings) {
        auto it = current.find(key(d));
        if (it != current.end() && it->second > 0) {
            --it->second;
            continue;
        }
        by_func[d.function].resolved.push_back(d);
        tally(d, diff.resolvedErrors, diff.resolvedWarnings,
              diff.resolvedNotes);
    }

    for (auto &[name, delta] : by_func) {
        delta.function = name;
        diff.functions.push_back(std::move(delta));
    }
    return diff;
}

std::string
LintDiff::renderText() const
{
    std::string out;
    for (const FuncDelta &f : functions) {
        out += "function " +
               (f.function.empty() ? std::string("<image>")
                                   : f.function) +
               ":\n";
        for (const Diagnostic &d : f.regressions) {
            out += "  + [" +
                   std::string(severityName(d.severity)) + "] " +
                   d.rule + ": " + d.message + "\n";
        }
        for (const Diagnostic &d : f.resolved) {
            out += "  - [" +
                   std::string(severityName(d.severity)) + "] " +
                   d.rule + ": " + d.message + "\n";
        }
    }
    char line[160];
    std::snprintf(
        line, sizeof(line),
        "lint-diff: %u new (%u errors, %u warnings), %u resolved "
        "(%u errors, %u warnings)\n",
        newErrors + newWarnings + newNotes, newErrors, newWarnings,
        resolvedErrors + resolvedWarnings + resolvedNotes,
        resolvedErrors, resolvedWarnings);
    out += line;
    return out;
}

std::string
LintDiff::renderJson() const
{
    std::string out = "{";
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "\"new_errors\": %u, \"new_warnings\": %u, "
        "\"new_notes\": %u, \"resolved_errors\": %u, "
        "\"resolved_warnings\": %u, \"resolved_notes\": %u, "
        "\"functions\": [",
        newErrors, newWarnings, newNotes, resolvedErrors,
        resolvedWarnings, resolvedNotes);
    out += buf;
    bool first = true;
    for (const FuncDelta &f : functions) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"function\": \"" + f.function + "\", ";
        out += "\"regressions\": " +
               renderDiagnosticsJson(f.regressions) + ", ";
        out += "\"resolved\": " +
               renderDiagnosticsJson(f.resolved) + "}";
    }
    out += "]}";
    return out;
}

std::string
LintReport::renderJson() const
{
    const unsigned errors = countAtLeast(Severity::error);
    const unsigned warnings =
        countAtLeast(Severity::warning) - errors;
    const unsigned notes =
        static_cast<unsigned>(findings.size()) - errors - warnings;
    std::string out = "{";
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "\"clean\": %s, \"errors\": %u, \"warnings\": %u, "
        "\"notes\": %u, ",
        findings.empty() ? "true" : "false", errors, warnings,
        notes);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "\"checked\": {\"trampolines\": %llu, \"clone_entries\": "
        "%llu, \"func_ptrs\": %llu, \"ra_pairs\": %llu, \"fdes\": "
        "%llu, \"data_deps\": %llu}, ",
        static_cast<unsigned long long>(checkedTrampolines),
        static_cast<unsigned long long>(checkedCloneEntries),
        static_cast<unsigned long long>(checkedFuncPtrs),
        static_cast<unsigned long long>(checkedRaPairs),
        static_cast<unsigned long long>(checkedFdes),
        static_cast<unsigned long long>(checkedDataDeps));
    out += buf;
    out += "\"findings\": " + renderDiagnosticsJson(findings);
    out += "}";
    return out;
}

} // namespace icp
