/**
 * @file
 * Binary-format tests: SBF serialization round trips, .eh_frame
 * record encoding, FDE lookup, landing-pad resolution, address-map
 * properties against a reference map, and image accessors.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include <gtest/gtest.h>

#include "binfmt/addr_map.hh"
#include "binfmt/ehframe.hh"
#include "binfmt/image.hh"
#include "binfmt/stream_writer.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "support/random.hh"
#include "support/stats.hh"

using namespace icp;

TEST(AddrPairMap, MatchesReferenceMap)
{
    Rng rng(123);
    std::map<Addr, Addr> reference;
    std::vector<std::pair<Addr, Addr>> pairs;
    for (int i = 0; i < 3000; ++i) {
        const Addr key = rng.range(0, 1 << 24);
        if (reference.count(key))
            continue;
        const Addr value = rng.next();
        reference[key] = value;
        pairs.emplace_back(key, value);
    }
    const AddrPairMap map(pairs);
    EXPECT_EQ(map.size(), reference.size());
    for (int i = 0; i < 5000; ++i) {
        const Addr probe = rng.range(0, 1 << 24);
        auto expect = reference.find(probe);
        auto got = map.lookup(probe);
        if (expect == reference.end()) {
            EXPECT_FALSE(got.has_value());
        } else {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, expect->second);
        }
    }
}

TEST(AddrPairMap, SerializationRoundTrip)
{
    std::vector<std::pair<Addr, Addr>> pairs = {
        {0x1000, 0x2000}, {0x1008, 0x2040}, {0xffffffffffULL, 7},
    };
    const AddrPairMap map(pairs);
    const AddrPairMap back = AddrPairMap::parse(map.serialize());
    EXPECT_EQ(back.pairs(), map.pairs());
}

TEST(EhFrame, RecordsRoundTrip)
{
    std::vector<FdeRecord> fdes(2);
    fdes[0].start = 0x1000;
    fdes[0].end = 0x1100;
    fdes[0].frameSize = 48;
    fdes[0].raOnStack = true;
    fdes[0].raOffset = 40;
    fdes[0].savesCalleeSaved = true;
    fdes[0].tryRanges = {{0x10, 0x30, 0x80}};
    fdes[1].start = 0x1100;
    fdes[1].end = 0x1180;
    fdes[1].raOnStack = false;

    const auto bytes = serializeEhFrame(fdes);
    const auto back = parseEhFrame(bytes);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].start, fdes[0].start);
    EXPECT_EQ(back[0].frameSize, 48u);
    EXPECT_TRUE(back[0].savesCalleeSaved);
    ASSERT_EQ(back[0].tryRanges.size(), 1u);
    EXPECT_EQ(back[0].tryRanges[0].lpOff, 0x80u);
    EXPECT_FALSE(back[1].raOnStack);
    EXPECT_FALSE(back[1].savesCalleeSaved);
}

TEST(EhFrame, IndexLookupAndLandingPads)
{
    std::vector<FdeRecord> fdes(3);
    for (int i = 0; i < 3; ++i) {
        fdes[i].start = 0x1000 + 0x100 * i;
        fdes[i].end = fdes[i].start + 0x100;
    }
    fdes[1].tryRanges = {{0x20, 0x40, 0x90}};
    const FdeIndex index(fdes);

    EXPECT_EQ(index.find(0xfff), nullptr);
    ASSERT_NE(index.find(0x1000), nullptr);
    EXPECT_EQ(index.find(0x10ff)->start, 0x1000u);
    EXPECT_EQ(index.find(0x1100)->start, 0x1100u);
    EXPECT_EQ(index.find(0x1300), nullptr);

    const FdeRecord *mid = index.find(0x1120);
    ASSERT_NE(mid, nullptr);
    EXPECT_TRUE(mid->landingPadFor(0x20).has_value());
    EXPECT_EQ(*mid->landingPadFor(0x3f), 0x90u);
    EXPECT_FALSE(mid->landingPadFor(0x40).has_value());
    EXPECT_FALSE(mid->landingPadFor(0x10).has_value());
}

TEST(Image, SerializeRoundTripOnRealWorkload)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::ppc64le, true));
    const BinaryImage back =
        BinaryImage::deserialize(img.serialize());
    EXPECT_EQ(back.arch, img.arch);
    EXPECT_EQ(back.pie, img.pie);
    EXPECT_EQ(back.entry, img.entry);
    EXPECT_EQ(back.tocBase, img.tocBase);
    EXPECT_EQ(back.sections.size(), img.sections.size());
    EXPECT_EQ(back.symbols.size(), img.symbols.size());
    EXPECT_EQ(back.relocs.size(), img.relocs.size());
    EXPECT_EQ(back.loadedSize(), img.loadedSize());
    EXPECT_EQ(back.serialize(), img.serialize());
}

TEST(Image, SectionAndSymbolAccessors)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const Section *text = img.findSection(SectionKind::text);
    ASSERT_NE(text, nullptr);
    EXPECT_TRUE(text->executable);
    EXPECT_EQ(img.sectionAt(text->addr + 1), text);
    EXPECT_EQ(img.sectionAt(0x1), nullptr);

    const auto funcs = img.functionSymbols();
    ASSERT_FALSE(funcs.empty());
    for (std::size_t i = 1; i < funcs.size(); ++i)
        EXPECT_GT(funcs[i]->addr, funcs[i - 1]->addr);
    const Symbol *inside =
        img.functionContaining(funcs[0]->addr + 2);
    ASSERT_NE(inside, nullptr);
    EXPECT_EQ(inside->addr, funcs[0]->addr);
}

TEST(Image, ReadWriteBytesAndValues)
{
    BinaryImage img = compileProgram(microProfile(Arch::x64, false));
    Section *data = img.findSection(SectionKind::data);
    ASSERT_NE(data, nullptr);
    const Addr at = data->addr + 8;
    ASSERT_TRUE(img.writeBytes(at, {1, 2, 3, 4}));
    auto v = img.readValue(at, 4);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0x04030201u);
    std::vector<std::uint8_t> raw;
    EXPECT_FALSE(img.readBytes(0x1, 4, raw)); // unmapped
}

TEST(Image, HighWaterMarkIsAboveEverySection)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::aarch64, false));
    const Addr top = img.highWaterMark();
    EXPECT_EQ(top % 4096, 0u);
    for (const auto &sec : img.sections)
        EXPECT_LE(sec.end(), top);
}

// --- streaming SBF writer ---------------------------------------------------

namespace
{

/**
 * Stream @p img through SbfStreamWriter with the .text payload fed
 * as chunks in the order given by @p chunk_order (indices into
 * @p chunk_size-sized slices), every other section materialized.
 */
std::vector<std::uint8_t>
streamWithChunkedText(const BinaryImage &img,
                      const std::vector<std::size_t> &chunk_order,
                      std::size_t chunk_size, std::size_t window)
{
    std::vector<std::uint8_t> out;
    VectorSink sink(out);
    SbfStreamWriter writer(sink, window);
    writer.beginImage(img);
    for (const Section &sec : img.sections) {
        if (sec.kind != SectionKind::text) {
            writer.writeSection(sec);
            continue;
        }
        writer.beginStreamedSection(sec, sec.bytes.size());
        for (std::size_t idx : chunk_order) {
            const std::size_t off = idx * chunk_size;
            const std::size_t len =
                std::min(chunk_size, sec.bytes.size() - off);
            writer.addChunk(off, sec.bytes.data() + off, len);
        }
        writer.endStreamedSection();
    }
    writer.finishImage(img);
    return out;
}

std::vector<std::size_t>
chunkIndices(const BinaryImage &img, std::size_t chunk_size)
{
    const Section *text = img.findSection(SectionKind::text);
    const std::size_t n =
        (text->bytes.size() + chunk_size - 1) / chunk_size;
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    return order;
}

} // namespace

TEST(StreamWriter, InOrderChunksMatchSerialize)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    const auto order = chunkIndices(img, 512);
    EXPECT_EQ(streamWithChunkedText(img, order, 512,
                                    SbfStreamWriter::default_window),
              img.serialize());
}

TEST(StreamWriter, OutOfOrderChunksWithinWindowMatchSerialize)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::aarch64, false));
    auto order = chunkIndices(img, 256);
    ASSERT_GE(order.size(), 4u);
    // Swap pairs so every chunk arrives out of order but within a
    // one-chunk reorder distance.
    for (std::size_t i = 0; i + 1 < order.size(); i += 2)
        std::swap(order[i], order[i + 1]);
    StreamCounters::global().reset();
    EXPECT_EQ(streamWithChunkedText(img, order, 256,
                                    SbfStreamWriter::default_window),
              img.serialize());
    EXPECT_EQ(StreamCounters::global().windowOverflows.load(), 0u);
}

TEST(StreamWriter, WindowOverflowFallsBackToPositionedWrites)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::ppc64le, true));
    auto order = chunkIndices(img, 256);
    ASSERT_GE(order.size(), 4u);
    // Feed the payload back to front: everything except the final
    // chunk is out of order, far beyond a 64-byte reorder window.
    std::reverse(order.begin(), order.end());
    StreamCounters::global().reset();
    EXPECT_EQ(streamWithChunkedText(img, order, 256, 64),
              img.serialize());
    EXPECT_GT(StreamCounters::global().windowOverflows.load(), 0u);
    EXPECT_GT(StreamCounters::global().bytesStreamed.load(), 0u);
}

TEST(StreamWriter, FileSinkMatchesVectorSink)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    {
        FileSink sink(f);
        streamImage(img, sink);
        ASSERT_TRUE(sink.ok());
    }
    std::fflush(f);
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::rewind(f);
    std::vector<std::uint8_t> from_file(
        static_cast<std::size_t>(len));
    ASSERT_EQ(std::fread(from_file.data(), 1, from_file.size(), f),
              from_file.size());
    std::fclose(f);
    EXPECT_EQ(from_file, img.serialize());
}
