#include "sim/loader.hh"

#include "support/logging.hh"

namespace icp
{

std::unique_ptr<Process>
loadImage(const BinaryImage &image, std::int64_t slide)
{
    if (slide < 0)
        slide = image.pie ? default_pie_slide : 0;
    icp_assert(image.pie || slide == 0,
               "non-PIE image cannot be loaded with a slide");

    auto proc = std::make_unique<Process>();
    proc->module.image = &image;
    proc->module.slide = slide;

    for (const auto &sec : image.sections) {
        if (!sec.loadable)
            continue;
        const Addr base = proc->module.toLoaded(sec.addr);
        proc->mem.map(base, sec.memSize);
        if (!sec.bytes.empty())
            proc->mem.writeBlock(base, sec.bytes);
    }

    // Apply runtime relocations: each 8-byte slot receives the
    // relocated value of its addend (an address at preferred base).
    for (const auto &rel : image.relocs) {
        const Addr site = proc->module.toLoaded(rel.site);
        const std::uint64_t value = static_cast<std::uint64_t>(
            rel.addend + slide);
        const bool ok = proc->mem.write(site, 8, value);
        icp_assert(ok, "relocation site 0x%llx unmapped",
                   static_cast<unsigned long long>(site));
    }

    // 1 MiB stack well above the image.
    constexpr std::uint64_t stack_bytes = 1 << 20;
    const Addr stack_base =
        (proc->module.toLoaded(image.highWaterMark()) + 0xffffff) &
        ~static_cast<Addr>(0xfff);
    proc->mem.map(stack_base, stack_bytes);
    proc->stackLimit = stack_base;
    proc->stackTop = stack_base + stack_bytes;
    return proc;
}

} // namespace icp
