# Empty dependencies file for bench_bolt_compare.
# This may be replaced when dependencies are built.
