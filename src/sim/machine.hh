/**
 * @file
 * The instruction-level simulator. Executes a loaded process under
 * the cycle cost model, dispatches traps to the runtime library,
 * performs DWARF-analog exception unwinding with optional RA
 * translation, and models the Go runtime's GC stack walks through
 * the binary's own findfunc/pcvalue functions.
 */

#ifndef ICP_SIM_MACHINE_HH
#define ICP_SIM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "binfmt/ehframe.hh"
#include "sim/cost_model.hh"
#include "sim/icache.hh"
#include "sim/loader.hh"
#include "sim/runtime_lib.hh"

namespace icp
{

enum class FaultKind : std::uint8_t
{
    none = 0,
    illegalInstr,
    badFetch,
    badMemory,
    badJump,
    uncaughtException,
    unwindFailure,
    goUnwindFailure,
    trapUnmapped,
    stepLimit,
    stackOverflow,
};

const char *faultKindName(FaultKind kind);

/** Everything an experiment needs to know about one run. */
struct RunResult
{
    bool halted = false;
    FaultKind fault = FaultKind::none;
    Addr faultPc = 0;

    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t traps = 0;
    std::uint64_t rtCalls = 0;
    std::uint64_t unwindSteps = 0;
    std::uint64_t gcWalks = 0;
    std::uint64_t exceptionsThrown = 0;

    /** Program checksum (r0 at halt). */
    std::uint64_t checksum = 0;

    /** Instrumentation counters (CallRt count service). */
    std::vector<std::uint64_t> counters;

    /**
     * Control-transfer target counts (preferred-base addresses),
     * recorded when Config::recordTransferTargets is set. Used by
     * the verification harness to check function-entry
     * instrumentation semantics against an uninstrumented run.
     */
    std::map<Addr, std::uint64_t> transferTargets;

    std::string describe() const;
};

class Machine
{
  public:
    struct Config
    {
        CostModel cost;
        ICache::Config icache;
        std::uint64_t maxSteps = 400'000'000;

        /**
         * Go-runtime modeling: every N calls the simulator performs
         * a GC safepoint stack walk that consults the binary's own
         * runtime.findfunc / runtime.pcvalue. 0 disables.
         */
        std::uint64_t goGcEveryCalls = 0;

        /** Record every control-transfer target (golden runs). */
        bool recordTransferTargets = false;

        /**
         * Use frdwarf-style compiled unwinding instead of per-frame
         * DWARF recipe interpretation (§2.3).
         */
        bool compiledUnwinding = false;

        /**
         * Trace-based debugging: invoked before each executed
         * instruction (outside findfunc/pcvalue subroutine runs).
         * Leave empty for full-speed simulation.
         */
        std::function<void(const Instruction &)> traceHook;
    };

    Machine(Process &proc, const Config &cfg);

    /** Attach the LD_PRELOAD-analog runtime library. */
    void attachRuntimeLib(const RuntimeLib *rt) { rt_ = rt; }

    /** Execute from the image entry point to completion. */
    RunResult run();

    /**
     * Resumable execution for dynamic instrumentation (§10): start()
     * resets to the entry point; runFor() executes up to @p steps
     * more instructions and returns the accumulated result so far;
     * finished() reports whether the program halted or faulted.
     */
    void start();
    RunResult runFor(std::uint64_t steps);
    bool finished() const { return !running_; }

    /**
     * Drop cached decodes after code bytes changed underneath a
     * running process (the icache-flush a dynamic instrumenter must
     * perform).
     */
    void flushDecodeCache();

  private:
    static constexpr Addr magic_exit = 0xfee1dead0000ULL;
    static constexpr Addr magic_subret = 0xfee1dead1000ULL;

    struct Frame
    {
        Addr pc;  ///< loaded-space pc of the active location
        Addr sp;
    };

    void reset();
    bool fetch(Addr pc, Instruction &in);
    void fault(FaultKind kind, Addr pc);
    void execute(const Instruction &in);
    bool evalCond(Cond cond) const;

    void doBranchTo(Addr target);
    void doCall(Addr target, Addr returnAddr);
    void doRet();
    void doTrap(Addr pc);
    void doThrow(Addr pc);
    void doCallRt(const Instruction &in);

    /** Go GC safepoint: walk the stack via findfunc/pcvalue. */
    void gcWalk();

    /**
     * Run a subroutine of the target binary synchronously (used for
     * findfunc/pcvalue during GC walks). Returns r0, or nullopt on
     * fault inside the subroutine.
     */
    std::optional<std::uint64_t> runSubroutine(Addr entryLoaded,
                                               std::uint64_t arg);

    /** Unwinder frame step; false when the stack is exhausted. */
    bool unwindStep(Frame &frame, Addr &raOut, const FdeRecord *&fde);

    Addr translatedPrefPc(Addr loadedPc) const;

    Process &proc_;
    Config cfg_;
    const RuntimeLib *rt_ = nullptr;

    FdeIndex fdeIndex_;
    Addr findfuncEntry_ = invalid_addr;
    Addr pcvalueEntry_ = invalid_addr;

    // Machine state.
    std::uint64_t regs_[num_regs] = {};
    int flags_ = 0;
    Addr pc_ = 0;
    bool running_ = false;

    std::uint64_t callsSinceGc_ = 0;
    std::uint64_t steps_ = 0;
    unsigned subroutineDepth_ = 0;

    ICache icache_;
    RunResult result_;

    // Direct-mapped decode cache (software front cache).
    struct DecodeSlot
    {
        Addr addr = invalid_addr;
        Instruction in;
    };
    std::vector<DecodeSlot> decodeCache_;
};

} // namespace icp

#endif // ICP_SIM_MACHINE_HH
