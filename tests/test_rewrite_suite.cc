/**
 * @file
 * The full evaluation matrix as a test suite: every SPEC-like
 * benchmark × every ISA × every rewriting mode runs the strong test
 * (clobbered originals + entry-counter verification against native
 * transfer counts). 171 distinct workload/mode combinations.
 */

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/verify.hh"
#include "rewrite/rewriter.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

struct SweepParam
{
    Arch arch;
    unsigned benchmark;
    RewriteMode mode;
};

class SuiteSweep : public ::testing::TestWithParam<SweepParam>
{
};

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::string s;
    switch (info.param.arch) {
      case Arch::x64: s = "x64_"; break;
      case Arch::ppc64le: s = "ppc64le_"; break;
      case Arch::aarch64: s = "aarch64_"; break;
    }
    std::string name = specCpuNames()[info.param.benchmark];
    for (char &c : name) {
        if (c == '.')
            c = '_';
    }
    s += name + "_";
    switch (info.param.mode) {
      case RewriteMode::dir: s += "dir"; break;
      case RewriteMode::jt: s += "jt"; break;
      case RewriteMode::funcPtr: s += "funcptr"; break;
    }
    return s;
}

std::vector<SweepParam>
allParams()
{
    std::vector<SweepParam> params;
    for (Arch arch : all_arches) {
        for (unsigned b = 0; b < 19; ++b) {
            for (RewriteMode mode :
                 {RewriteMode::dir, RewriteMode::jt,
                  RewriteMode::funcPtr}) {
                params.push_back({arch, b, mode});
            }
        }
    }
    return params;
}

} // namespace

TEST_P(SuiteSweep, StrongTestPasses)
{
    const SweepParam param = GetParam();
    const auto suite = specCpuSuite(param.arch, false);
    const BinaryImage img = compileProgram(suite[param.benchmark]);

    RewriteOptions opts;
    opts.mode = param.mode;
    opts.clobberOriginal = true;
    opts.instrumentation.countFunctionEntries = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_GE(rw.stats.coverage(), 0.9);

    const VerifyOutcome outcome =
        verifyRewrite(img, rw, Machine::Config{});
    EXPECT_TRUE(outcome.pass) << outcome.reason;

    // The static soundness verifier is a property oracle over the
    // whole matrix: no combination may produce an error finding.
    const LintReport lint = lintRewrite(img, rw);
    EXPECT_EQ(lint.countAtLeast(Severity::error), 0u)
        << lint.renderText();

    // Mode invariants.
    if (param.mode == RewriteMode::dir) {
        EXPECT_EQ(rw.stats.clonedTables, 0u);
    }
    if (param.mode != RewriteMode::dir &&
        rw.stats.clonedTables > 0) {
        // Cloning removed jump-table-target CFL blocks.
        RewriteOptions dir_opts = opts;
        dir_opts.mode = RewriteMode::dir;
        const RewriteResult dir_rw = rewriteBinary(img, dir_opts);
        EXPECT_LE(rw.stats.cflBlocks, dir_rw.stats.cflBlocks);
    }
}

INSTANTIATE_TEST_SUITE_P(FullMatrix, SuiteSweep,
                         ::testing::ValuesIn(allParams()), sweepName);
