/**
 * @file
 * Small statistics helpers used by the experiment harness: min, max,
 * mean, and percentile over sample vectors, plus percent formatting,
 * and the per-stage pipeline timers the CLI's --timing flag and the
 * scaling benchmark report.
 */

#ifndef ICP_SUPPORT_STATS_HH
#define ICP_SUPPORT_STATS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace icp
{

/** Accumulates double samples and reports summary statistics. */
class SampleStats
{
  public:
    void add(double v);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;
    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/** Pipeline stages with dedicated wall-clock accumulators. */
enum class Stage : unsigned
{
    disasm,     ///< instruction decoding during CFG traversal
    cfg,        ///< block formation, edges, gap classification
    jumpTable,  ///< backward-slicing jump-table analysis
    liveness,   ///< register liveness fixpoints
    funcPtr,    ///< function-pointer analysis + rewriting
    relocate,   ///< per-function relocation/codegen + fixup
    trampoline, ///< trampoline placement + installation
    output,     ///< section assembly / maps / clobbering
    lint,       ///< static soundness verification
    lintChains, ///< lint: trampoline-chain walking
    lintClones, ///< lint: jump-table clone re-solving
    lintPtrs,   ///< lint: loaded function-pointer cells
    cacheLoad,  ///< on-disk AnalysisCache deserialization
    cacheSave,  ///< on-disk AnalysisCache serialization
    cacheRebase,///< rematerializing cross-binary hits at a new entry
    depsCompute,///< data read-set recording (computeDataDeps)
    depsValidate,///< data read-set re-hash on cache hits
    serve,      ///< serve daemon request handling
    count_      ///< number of stages (not a stage)
};

const char *stageName(Stage stage);

/**
 * Process-wide per-stage time accumulators. Workers on any thread
 * add to the same atomic counters, so under parallel execution a
 * stage's total is summed CPU time across threads (it can exceed
 * wall time); with one thread it is plain wall time. Reset between
 * runs to scope a measurement.
 */
class StageTimers
{
  public:
    static StageTimers &global();

    void add(Stage stage, std::uint64_t nanos);
    std::uint64_t nanos(Stage stage) const;
    void reset();

    /** Human-readable two-column table (for --timing). */
    std::string table() const;

    /** One flat JSON object: {"disasm_ms": 1.23, ...}. */
    std::string json() const;

  private:
    std::array<std::atomic<std::uint64_t>,
               static_cast<unsigned>(Stage::count_)>
        nanos_{};
};

/**
 * Process-wide counters for the on-disk analysis cache's hot-path
 * behavior: bytes mapped by load(), bytes appended by save(), and
 * entries deserialized lazily on first lookup. Reset together with
 * StageTimers (same measurement scope); reported by table()/json().
 */
class CacheCounters
{
  public:
    static CacheCounters &global();

    std::atomic<std::uint64_t> bytesMapped{0};
    std::atomic<std::uint64_t> bytesAppended{0};
    std::atomic<std::uint64_t> entriesLazy{0};

    /**
     * Hits whose stored entry was analyzed at a different entry
     * address (another binary, or the same library linked elsewhere)
     * and was rebased to the requested entry on lookup.
     */
    std::atomic<std::uint64_t> crossHits{0};

    void reset();
};

/**
 * Process-wide counters for the data read-set layer: ranges and
 * bytes recorded by computeDataDeps during CFG construction, and the
 * hit-validation outcomes (a rejected hit means a data byte the
 * function reads changed, so the hit degraded to a conservative
 * miss). Reset together with StageTimers; reported by table()/json().
 */
class DepsCounters
{
  public:
    static DepsCounters &global();

    std::atomic<std::uint64_t> rangesRecorded{0};
    std::atomic<std::uint64_t> bytesRecorded{0};
    std::atomic<std::uint64_t> hitsValidated{0};
    std::atomic<std::uint64_t> hitsRejected{0};

    void reset();
};

/**
 * Process-wide counters for the streaming output writer: payload
 * bytes pushed through SbfStreamWriter sinks and reorder-window
 * overflows (chunks that arrived too far out of order and fell back
 * to a positioned write). Reset together with StageTimers; reported
 * by table()/json().
 */
class StreamCounters
{
  public:
    static StreamCounters &global();

    std::atomic<std::uint64_t> bytesStreamed{0};
    std::atomic<std::uint64_t> windowOverflows{0};

    void reset();
};

/**
 * Process-wide counters for the `icp serve` daemon: request volume,
 * structured error replies, warm-session hits vs misses, LRU
 * evictions, request timeouts, and malformed frames. Reset together
 * with StageTimers; reported by table()/json().
 */
class ServeCounters
{
  public:
    static ServeCounters &global();

    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> sessionHits{0};
    std::atomic<std::uint64_t> sessionMisses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> badFrames{0};

    /** Connections refused with `error=busy` (pending queue full). */
    std::atomic<std::uint64_t> rejected{0};

    void reset();
};

/**
 * Peak resident set size of this process in bytes (getrusage
 * ru_maxrss). Monotonic over the process lifetime: it cannot be
 * reset, so bound a measurement by running it in a fresh process.
 * Returns 0 where the platform offers no equivalent.
 */
std::uint64_t peakRssBytes();

/** RAII accumulator: adds the scope's duration to one stage. */
class StageTimer
{
  public:
    explicit StageTimer(Stage stage)
        : stage_(stage), start_(std::chrono::steady_clock::now())
    {
    }

    ~StageTimer()
    {
        const auto end = std::chrono::steady_clock::now();
        StageTimers::global().add(
            stage_,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - start_)
                    .count()));
    }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    Stage stage_;
    std::chrono::steady_clock::time_point start_;
};

/** Render v (e.g. 0.0123) as a percent string "1.23%". */
std::string formatPercent(double v, int decimals = 2);

/** Relative difference (b - a) / a. */
double relativeDelta(double a, double b);

} // namespace icp

#endif // ICP_SUPPORT_STATS_HH
