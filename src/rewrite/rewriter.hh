/**
 * @file
 * Incremental CFG patching (§3): the top-level rewriter. Analyzes
 * the input binary, relocates instrumentable functions into .instr,
 * computes CFL blocks, runs trampoline placement analysis, installs
 * Table-2 trampolines (with multi-hop chaining and trap fallback),
 * clones jump tables, rewrites function pointers, emits the .ra_map
 * and .trap_map sections, moves the dynamic-linking sections and
 * reuses the retired ones as scratch space, and optionally clobbers
 * the original bytes for the strong correctness test of §8.
 */

#ifndef ICP_REWRITE_REWRITER_HH
#define ICP_REWRITE_REWRITER_HH

#include "rewrite/options.hh"

namespace icp
{

/** Rewrite @p input under @p options. Never throws; check result.ok. */
RewriteResult rewriteBinary(const BinaryImage &input,
                            const RewriteOptions &options);

} // namespace icp

#endif // ICP_REWRITE_REWRITER_HH
