/**
 * @file
 * The decoded instruction record shared by the assembler, the
 * disassembler, the simulator, and the rewriter.
 */

#ifndef ICP_ISA_INSTRUCTION_HH
#define ICP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/registers.hh"
#include "support/types.hh"

namespace icp
{

/**
 * One decoded (or to-be-encoded) instruction.
 *
 * For direct branches (Jmp/JmpCond/Call) the authoritative field is
 * @c target, the absolute destination address; the codec computes the
 * encoded displacement from the instruction address. For pc-relative
 * address formation (Lea/AdrPage) @c target holds the absolute
 * address being formed. @c imm holds plain immediates and memory
 * displacements.
 */
struct Instruction
{
    Opcode op = Opcode::Illegal;
    Reg rd = Reg::none;
    Reg rs1 = Reg::none;
    Reg rs2 = Reg::none;
    Cond cond = Cond::none;

    /** Immediate operand or memory displacement. */
    std::int64_t imm = 0;

    /** Access size in bytes for LoadSz/LoadIdx/StoreSz (1/2/4/8). */
    std::uint8_t memSize = 8;

    /** Sign-extend sized loads (relative jump-table entries). */
    bool signedLoad = false;

    /**
     * MovImm on the fixed-length ISAs is movz/movk-style: a 16-bit
     * immediate placed at half-word position movShift (0/16/32/48),
     * keeping the other bits when movKeep is set.
     */
    std::uint8_t movShift = 0;
    bool movKeep = false;

    /**
     * Encoding-form hint: 0 = canonical (x64 Jmp -> 5-byte near),
     * 1 = short form (x64 2-byte jump). Only the trampoline writer
     * requests short forms; the assembler always uses canonical
     * lengths so that code layout is deterministic.
     */
    std::uint8_t formHint = 0;

    /** Absolute target for direct branches / pc-relative addressing. */
    Addr target = invalid_addr;

    /** Address the instruction was decoded at (or will be placed). */
    Addr addr = 0;

    /** Encoded length in bytes (filled by codec). */
    std::uint32_t length = 0;

    bool valid() const { return op != Opcode::Illegal; }

    /** Human-readable disassembly, e.g. "jmp 0x4010a0". */
    std::string toString() const;
};

// --- Construction helpers -------------------------------------------------

Instruction makeNop();
Instruction makeTrap();
Instruction makeHalt();
Instruction makeMovImm(Reg rd, std::int64_t imm);
/** movz/movk-style piecewise immediate (fixed-length ISAs). */
Instruction makeMovZk(Reg rd, std::uint16_t imm, std::uint8_t shift,
                      bool keep);
Instruction makeMovHi(Reg rd, std::uint16_t imm);
Instruction makeMovReg(Reg rd, Reg rs);
Instruction makeAdd(Reg rd, Reg rs);
Instruction makeSub(Reg rd, Reg rs);
Instruction makeMul(Reg rd, Reg rs);
Instruction makeXor(Reg rd, Reg rs);
Instruction makeAddImm(Reg rd, std::int64_t imm);
Instruction makeShlImm(Reg rd, std::uint8_t amount);
Instruction makeShrImm(Reg rd, std::uint8_t amount);
Instruction makeCmp(Reg rs1, Reg rs2);
Instruction makeCmpImm(Reg rs1, std::int64_t imm);
Instruction makeLoad(Reg rd, Reg base, std::int64_t disp);
Instruction makeStore(Reg base, std::int64_t disp, Reg src);
Instruction makeLoadSz(Reg rd, Reg base, std::int64_t disp,
                       std::uint8_t size, bool sign_extend = false);
Instruction makeLoadIdx(Reg rd, Reg base, Reg index, std::uint8_t size,
                        std::int64_t disp = 0, bool sign_extend = false);
Instruction makeStoreSz(Reg base, std::int64_t disp, Reg src,
                        std::uint8_t size);
Instruction makeLea(Reg rd, Addr target);
Instruction makeAdrPage(Reg rd, Addr target);
Instruction makeAddisToc(Reg rd, std::int32_t hi16);
Instruction makeJmp(Addr target);
Instruction makeJmpCond(Cond cond, Addr target);
Instruction makeCall(Addr target);
Instruction makeJmpInd(Reg rs);
Instruction makeCallInd(Reg rs);
Instruction makeCallIndMem(Reg base, std::int64_t disp);
Instruction makeJmpTar();
Instruction makeMoveToTar(Reg rs);
Instruction makeRet();
Instruction makePush(Reg rs);
Instruction makePushImm(std::int64_t imm);
Instruction makePop(Reg rd);
Instruction makeThrow();
Instruction makeThrowRa();
Instruction makeCallRt(std::uint32_t service);

} // namespace icp

#endif // ICP_ISA_INSTRUCTION_HH
