/**
 * @file
 * The code-relocation engine: translates instrumented functions into
 * the .instr section, inserting instrumentation snippets, rewriting
 * direct control flow, cloning jump tables, recording the RA map,
 * and optionally emulating calls or permuting function/block order
 * (for the baselines and the BOLT comparison).
 */

#ifndef ICP_REWRITE_ENGINE_HH
#define ICP_REWRITE_ENGINE_HH

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "analysis/cfg.hh"
#include "rewrite/options.hh"

namespace icp
{

/**
 * Placement of one cloned jump table in .newrodata. Owns a copy of
 * the source table so the plan outlives the CFG it came from (the
 * sharded coordinator drops each shard's CFG between passes).
 */
struct TableClone
{
    JumpTable table;
    Addr funcEntry = 0; ///< owning function
    Addr cloneAddr = 0;
    unsigned entrySize = 0; ///< possibly widened (a64 1/2 -> 4)
    bool widened = false;
};

/**
 * Previous-pass artifacts for a selective re-rewrite
 * (RewriteSession::repair): the prior manifest's function spans and
 * .instr bytes, plus the set of dirty function entries that must
 * re-emit. Functions outside the dirty set splice their previous
 * bytes verbatim; the engine falls back to a full run whenever the
 * previous layout cannot be reproduced exactly.
 */
struct EngineReuse
{
    const RewriteManifest *manifest = nullptr;
    const std::vector<std::uint8_t> *instrBytes = nullptr;
    const std::set<Addr> *dirty = nullptr;

    bool
    valid() const
    {
        return manifest && manifest->populated && instrBytes &&
               dirty && !manifest->funcSpans.empty();
    }
};

struct EngineConfig
{
    RewriteMode mode = RewriteMode::funcPtr;
    bool callEmulation = false;
    InstrumentationSpec instrumentation;
    OrderPolicy functionOrder = OrderPolicy::original;
    OrderPolicy blockOrder = OrderPolicy::original;

    Addr instrBase = 0;
    Addr newRodataBase = 0;

    /** Instrument findfunc/pcvalue entries with RA translation. */
    bool goRaTranslation = false;

    /** Relocated function alignment (IR lowering compacts to 4). */
    unsigned functionAlign = 16;

    /**
     * Worker threads for per-function emission (0 = hardware
     * concurrency, 1 = sequential). Output bytes are identical for
     * every value; 1 additionally skips the speculative-emission
     * machinery and emits each function directly at its final base.
     */
    unsigned threads = 1;

    /** When valid(), attempt the selective re-rewrite fast path. */
    EngineReuse reuse;
};

struct EngineResult
{
    std::vector<std::uint8_t> instrBytes;
    std::vector<std::uint8_t> newRodataBytes;

    /** Original block start -> relocated address. */
    std::map<Addr, Addr> blockMap;

    /** Original instruction -> relocated address. */
    std::map<Addr, Addr> insnMap;

    /** (relocated return address -> original return address). */
    std::vector<std::pair<Addr, Addr>> raPairs;

    std::vector<TableClone> clones;

    std::map<Addr, std::uint32_t> blockCounters;
    std::map<Addr, std::uint32_t> entryCounters;

    /** Per-function extents in emission order (for later reuse). */
    std::vector<FuncSpan> funcSpans;

    /** Functions re-emitted this pass vs. spliced from reuse. */
    unsigned emittedFunctions = 0;
    unsigned reusedFunctions = 0;
};

/**
 * Relocate @p instrumented functions of @p cfg. The caller supplies
 * final section base addresses in @p cfg_in so all cross references
 * encode directly.
 */
EngineResult relocateFunctions(const CfgModule &cfg,
                               const std::set<Addr> &instrumented,
                               const EngineConfig &config);

/**
 * Per-function driver over the same relocation engine, for
 * coordinators that never hold the whole-module CFG at once (the
 * sharded rewriter). The protocol mirrors the monolithic run:
 *
 *   1. plan:   planFunction() once per instrumented function, in
 *              ascending entry order — jump-table clones, operand
 *              substitutions, counter ids, relocated-block set.
 *   2. layout: layoutFunction() in the same order — emits the
 *              function at its final base, records the block /
 *              instruction / return-address maps, and DISCARDS the
 *              bytes (cross-function branches can only bind once
 *              every function has a layout address).
 *   3. emit:   emitFunction() in the same order — re-emits at the
 *              recorded base (emission is deterministic in (CFG,
 *              base)), binds cross-function branches against the
 *              global block map, and returns the finalized bytes.
 *
 * Driving all three passes over every instrumented function in
 * address order reproduces relocateFunctions() bit for bit; peak
 * memory is one function's assembler stream plus the flat maps.
 * Only OrderPolicy::original function order is supported.
 */
class IncrementalEngine
{
  public:
    IncrementalEngine(const BinaryImage &image,
                      const EngineConfig &config);
    ~IncrementalEngine();
    IncrementalEngine(const IncrementalEngine &) = delete;
    IncrementalEngine &operator=(const IncrementalEngine &) = delete;

    // Pass 1: planning.
    void planFunction(const Function &func);

    // Pass 2: layout. Returns the function's span.
    FuncSpan layoutFunction(const Function &func);

    /** First address past the last laid-out span. */
    Addr layoutEnd() const;

    // Pass 3: final emission (call with the span's recorded base).
    std::vector<std::uint8_t> emitFunction(const Function &func,
                                           Addr base);

    /** The inter-span alignment padding bytes (encoded nops). */
    std::vector<std::uint8_t> paddingBytes(Addr from, Addr to) const;

    /** Relocated address of an original block start, if relocated. */
    std::optional<Addr> lookupBlock(Addr orig) const;

    /** Relocated address of an original instruction, if relocated. */
    std::optional<Addr> lookupInsn(Addr orig) const;

    /** (relocated RA -> original RA), emission order. */
    const std::vector<std::pair<Addr, Addr>> &raPairs() const;

    const std::vector<TableClone> &clones() const;

    /** The .newrodata payload (valid after all layoutFunction calls). */
    std::vector<std::uint8_t> cloneBytes() const;

    /** Counter-id maps (block start / entry -> CallRt id). */
    const std::map<Addr, std::uint32_t> &blockCounters() const;
    const std::map<Addr, std::uint32_t> &entryCounters() const;

  private:
    struct State;
    std::unique_ptr<State> st_;
};

} // namespace icp

#endif // ICP_REWRITE_ENGINE_HH
