/**
 * @file
 * The scratch-space pool of §7: byte ranges in the original image
 * that are provably never executed or no longer used — inter-function
 * nop padding, scratch basic blocks, and the retired dynamic-linking
 * sections — from which multi-hop trampolines allocate their long
 * branch sequences.
 */

#ifndef ICP_REWRITE_SCRATCH_HH
#define ICP_REWRITE_SCRATCH_HH

#include <map>
#include <optional>

#include "support/types.hh"

namespace icp
{

class ScratchPool
{
  public:
    /** Donate [start, start+len) to the pool. */
    void donate(Addr start, std::uint64_t len, unsigned align = 1);

    /**
     * Allocate @p len bytes whose start lies within ± @p range of
     * @p near (range 0 = anywhere), aligned to @p align.
     */
    std::optional<Addr> allocate(std::uint64_t len, Addr near,
                                 std::int64_t range, unsigned align);

    std::uint64_t bytesFree() const;
    std::uint64_t bytesDonated() const { return donated_; }

  private:
    std::map<Addr, std::uint64_t> free_; ///< start -> length
    std::uint64_t donated_ = 0;
};

} // namespace icp

#endif // ICP_REWRITE_SCRATCH_HH
