/**
 * @file
 * The program specification consumed by the synthetic compiler: a
 * deterministic, architecture-independent description of a workload
 * binary. Workload profiles (SPEC-like suite, libxul, docker,
 * libcuda) are just generators of these specs.
 */

#ifndef ICP_CODEGEN_SPEC_HH
#define ICP_CODEGEN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "binfmt/image.hh"
#include "isa/arch.hh"

namespace icp
{

/** A switch statement lowered to a jump table. */
struct SwitchSpec
{
    /** Number of cases; kept a power of two so the index masks. */
    unsigned cases = 4;

    /**
     * Table entry width in bytes. x64 uses 4 or 8; ppc64le 4 or 8;
     * aarch64 commonly 1 or 2 (§5.1), which forces the rewriter to
     * widen reads when cloning.
     */
    unsigned entrySize = 4;

    /**
     * Hard switches compute the table base through a stack spill,
     * which defeats the backward-slicing analysis — the
     * "analysis reporting failure" case of Figure 2.
     */
    bool hard = false;

    /**
     * Dense fall-through cases only a couple of bytes long (driver
     * style, §9): on x64 these blocks are too small for the 5-byte
     * branch, forcing naive per-block trampoline placement into
     * traps.
     */
    bool denseTiny = false;

    /**
     * The last case shares case 0's block (real compilers merge
     * identical case bodies): the table carries a duplicated target,
     * so one entry can be redirected onto another without changing
     * the function's jump-table target *set* — the edit the
     * data-dependency invalidation check pokes.
     */
    bool dupLastCase = false;
};

/** One function of the synthetic program. */
struct FuncSpec
{
    std::string name;

    /** Arithmetic operations in the body (per invocation). */
    unsigned computeOps = 8;

    /** Iterations of the body loop; 0 = straight-line. */
    unsigned loopIters = 0;

    std::vector<SwitchSpec> switches;

    /** Indices of functions called directly from the loop body. */
    std::vector<unsigned> callees;

    /**
     * Number of indirect calls through the program's function
     * pointer table per body iteration.
     */
    unsigned indirectCalls = 0;

    /** Throw an exception on odd argument values. */
    bool throwsOnOdd = false;

    /** Wrap direct calls in a try range with a landing pad. */
    bool catches = false;

    /** Direct tail call to this function index at the end. */
    int tailCallTo = -1;

    /** End with an indirect tail call through the funcptr table. */
    bool indirectTailCall = false;

    /** Publish this function's address in the funcptr table. */
    bool addressTaken = false;

    /** Function alignment in .text. */
    unsigned alignment = 16;

    /** Extra nop padding emitted after the function. */
    unsigned padding = 0;

    /**
     * Start the body with a nop — the Go runtime.goexit shape whose
     * entry+1 pointer Listing 1 exhibits.
     */
    bool leadingNop = false;

    /** Emit an x == &f comparison (func-ptr safety, §5.2). */
    bool comparesFuncPtr = false;

    /**
     * Load one 8-byte cell of the .data globals area through a
     * constant base — a data read the dependency analysis records on
     * every ISA. globalSlot picks which of the 8 cells (mod 8).
     */
    bool readsGlobal = false;
    unsigned globalSlot = 0;
};

/** A whole program. funcs[0] is main. */
struct ProgramSpec
{
    std::string name;
    Arch arch = Arch::x64;
    bool pie = false;
    LangFeatures features;

    std::vector<FuncSpec> funcs;

    /** Top-level iterations main runs its body. */
    std::uint64_t mainIterations = 1000;

    /** Inflate .rodata to push sections apart (range pressure). */
    std::uint64_t rodataPadding = 0;

    /**
     * Extra offset added to the preferred link base (0 = none).
     * Corpus binaries that share a static-library core use distinct
     * multiples of 0x10000 here, so byte-identical functions land at
     * different absolute addresses — the shape the content-addressed
     * analysis cache rebases on hit.
     */
    std::uint64_t baseOffset = 0;

    /**
     * Alignment of .text's base (0 = the default 4096). Corpus
     * binaries sharing code raise this to 0x10000 so differently
     * sized dynamic-linking headers cannot shift .text relative to
     * the link base.
     */
    std::uint64_t textAlign = 0;

    /**
     * Pad .text to at least this many bytes (0 = none), pinning the
     * .rodata/.data bases at a fixed distance from .text across
     * binaries whose app-specific tails differ in size — which keeps
     * the shared core's pc-relative references byte-identical.
     */
    std::uint64_t textSizeFloor = 0;

    /** Retain link-time relocations (-Wl,-q analog, for BOLT). */
    bool emitLinkRelocs = false;

    /** Go-specific constructs (§6.2, Listing 1). */
    bool goRuntime = false;     ///< emit runtime.findfunc / pcvalue
    bool goVtab = false;        ///< hidden function table (.vtab)
    bool goFuncPtrPlusOne = false; ///< the entry+1 pointer pattern

    /** Shared object instead of an executable. */
    bool sharedObject = false;
};

} // namespace icp

#endif // ICP_CODEGEN_SPEC_HH
