/**
 * @file
 * Reproduces the Firefox experiment (§8.2): rewrite the libxul.so
 * analog (large C++/Rust shared library) and run the two browser
 * workloads — a latency benchmark and a JetStream-like throughput
 * score. The paper reports jt / func-ptr overheads of a few
 * percent, a dir-mode runtime-library failure, 99.93% coverage,
 * +82.8% size, and an Egalito failure on Rust metadata.
 */

#include <cstdio>

#include "baselines/irlower.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "rewrite/rewriter.hh"
#include "support/stats.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

int
main(int argc, char **argv)
{
    std::printf("Firefox experiment: libxul.so analog (§8.2)\n\n");
    const BinaryImage img = compileProgram(libxulProfile());
    std::printf("libxul profile: %zu functions, loaded size %.1f "
                "KiB, Rust metadata, symbol versioning\n\n",
                img.functionSymbols().size(),
                static_cast<double>(img.loadedSize()) / 1024.0);

    TextTable table({"Mode", "Latency ovh", "Score change",
                     "Coverage", "Size", "Result"});

    const Machine::Config mc{};
    for (RewriteMode mode : {RewriteMode::dir, RewriteMode::jt,
                             RewriteMode::funcPtr}) {
        RewriteOptions opts;
        opts.mode = mode;
        const ToolRun run = runBlockLevelExperiment(img, opts, mc);
        if (!run.pass) {
            table.addRow({rewriteModeName(mode), "-", "-",
                          formatPercent(run.coverage), "-",
                          "FAILED: " + run.failReason});
            continue;
        }
        // The latency benchmark is responsiveness: overhead on the
        // end-to-end cycles. The JetStream-like score is inverse
        // runtime, so the score change is -overhead/(1+overhead).
        const double score_change =
            -run.overhead / (1.0 + run.overhead);
        std::string result = "pass";
        if (mode == RewriteMode::dir &&
            run.rewrittenRun.traps > 0) {
            // The paper's dir mode failed on a runtime-library bug
            // handling trap trampolines in library destructors; our
            // runtime library handles them, so we report the trap
            // pressure that triggered it instead.
            result = "pass (" +
                     std::to_string(run.rewrittenRun.traps) +
                     " traps; paper's dir run hit a runtime-library "
                     "bug here)";
        }
        table.addRow({rewriteModeName(mode),
                      formatPercent(run.overhead),
                      formatPercent(score_change),
                      formatPercent(run.coverage),
                      formatPercent(run.sizeIncrease), result});
    }

    // Egalito: fails on Rust metadata.
    const RewriteResult egalito = irLowerRewrite(img, {});
    table.addRow({"Egalito", "-", "-", "-", "-",
                  egalito.ok ? "unexpectedly ok"
                             : "FAILED: " + egalito.failReason});

    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: jt 3.07%% avg latency overhead, func-ptr "
                "2.31%%; JetStream2 score\nreductions 2.08%% / "
                "0.20%%; coverage 99.93%%; size +82.83%%; Egalito "
                "segfaults\non Rust meta-data.\n");
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          table.json()))
        return 1;
    return 0;
}
