/**
 * @file
 * AnalysisCache::save()/load() and the `icp cache` helpers: the v4
 * segmented cache-file format documented in cache_store.hh
 * (position-independent entries, content-addressed keys; the v1-v3
 * framing still loads, with absolute-form entries degrading to
 * misses).
 *
 * Layered like the SBF container code: a bounds-latched ByteReader
 * and kind-specific payload encoders/decoders at the bottom; a
 * header-walking scanner shared by every consumer (load, save's
 * merge step, inspect, verify, compact) in the middle; and the
 * public operations on top. Every decode path validates enum ranges
 * so a corrupt payload can only ever drop its own entry, never read
 * out of bounds or poison the cache.
 *
 * Concurrency: writers (save, compact) serialize on an advisory
 * flock over `<path>.lock`. Readers never lock — the format is
 * append-only, so a reader sees a valid prefix plus at most one
 * torn tail, which the scanner salvages entry-by-entry. Full
 * rewrites (v1 migration, torn-tail repair, compaction) write a
 * temp file and rename it into place, which keeps existing mmaps
 * valid on the old inode.
 */

#include "analysis/cache_store.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "analysis/cache.hh"
#include "isa/bytes.hh"
#include "support/stats.hh"

namespace icp
{

namespace
{

// --- low-level byte IO ----------------------------------------------------

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/**
 * Bounds-latched sequential reader: the first out-of-range read
 * flips failed() and every later read returns zeros, so decoders can
 * run straight through and check once at the end.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool failed() const { return failed_; }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        const std::uint32_t v = getU32(data_ + pos_);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        const std::uint64_t v = getU64(data_ + pos_);
        pos_ += 8;
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!need(len))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      len);
        pos_ += len;
        return s;
    }

    const std::uint8_t *
    blob(std::size_t len)
    {
        if (!need(len))
            return nullptr;
        const std::uint8_t *p = data_ + pos_;
        pos_ += len;
        return p;
    }

  private:
    bool
    need(std::uint64_t len)
    {
        if (failed_ || pos_ + len > size_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

// --- payload encoders -----------------------------------------------------

/**
 * Entry-relative address encoding (v4): addresses are stored as
 * wrap-around u64 deltas from the function entry, so a payload is
 * position-independent and decoding at any entry reconstructs
 * consistent absolute addresses (two's-complement round trip).
 * The invalid_addr sentinel (unresolved Instruction::target) is
 * preserved verbatim — it must not shift.
 */
std::uint64_t
relAddr(Addr a, Addr entry)
{
    return a == invalid_addr ? a : a - entry;
}

Addr
absAddr(std::uint64_t rel, Addr entry)
{
    return rel == invalid_addr ? rel : rel + entry;
}

void
encodeInstruction(std::vector<std::uint8_t> &out,
                  const Instruction &in, Addr entry)
{
    putU8(out, static_cast<std::uint8_t>(in.op));
    putU8(out, static_cast<std::uint8_t>(in.rd));
    putU8(out, static_cast<std::uint8_t>(in.rs1));
    putU8(out, static_cast<std::uint8_t>(in.rs2));
    putU8(out, static_cast<std::uint8_t>(in.cond));
    putU8(out, in.memSize);
    putU8(out, in.signedLoad ? 1 : 0);
    putU8(out, in.movShift);
    putU8(out, in.movKeep ? 1 : 0);
    putU8(out, in.formHint);
    putU64(out, static_cast<std::uint64_t>(in.imm));
    putU64(out, relAddr(in.target, entry));
    putU64(out, relAddr(in.addr, entry));
    putU32(out, in.length);
}

void
encodeJumpTable(std::vector<std::uint8_t> &out, const JumpTable &jt,
                Addr entry)
{
    putU64(out, relAddr(jt.jumpAddr, entry));
    putU64(out, relAddr(jt.tableAddr, entry));
    putU32(out, jt.entrySize);
    putU8(out, jt.signedEntries ? 1 : 0);
    putU32(out, jt.shift);
    putU8(out, jt.base.has_value() ? 1 : 0);
    putU64(out, jt.base ? relAddr(*jt.base, entry) : 0);
    putU32(out, static_cast<std::uint32_t>(jt.baseDefAddrs.size()));
    for (Addr a : jt.baseDefAddrs)
        putU64(out, relAddr(a, entry));
    putU64(out, relAddr(jt.loadAddr, entry));
    putU32(out, jt.entryCount);
    putU32(out, static_cast<std::uint32_t>(jt.targets.size()));
    for (Addr a : jt.targets)
        putU64(out, relAddr(a, entry));
    putU8(out, jt.embeddedInCode ? 1 : 0);
}

void
encodeBlock(std::vector<std::uint8_t> &out, const Block &block,
            Addr entry)
{
    putU64(out, relAddr(block.start, entry));
    putU64(out, relAddr(block.end, entry));
    std::uint8_t flags = 0;
    if (block.endsInUnresolvedIndirect)
        flags |= 1;
    if (block.endsFunction)
        flags |= 2;
    if (block.callTarget.has_value())
        flags |= 4;
    putU8(out, flags);
    putU64(out, block.callTarget ? relAddr(*block.callTarget, entry)
                                 : 0);
    putU32(out, static_cast<std::uint32_t>(block.insns.size()));
    for (const Instruction &in : block.insns)
        encodeInstruction(out, in, entry);
    putU32(out, static_cast<std::uint32_t>(block.succs.size()));
    for (const Edge &e : block.succs) {
        putU64(out, relAddr(e.target, entry));
        putU8(out, static_cast<std::uint8_t>(e.kind));
    }
}

std::vector<std::uint8_t>
encodeFunction(const Function &func, std::int64_t toc_delta,
               bool uses_toc)
{
    std::vector<std::uint8_t> out;
    // Position-independence metadata: the entry the analysis ran at
    // (provenance for cross-hit accounting and the canonical decode
    // base) and the toc offset guard for toc-relative code.
    putU64(out, func.entry);
    putU64(out, static_cast<std::uint64_t>(toc_delta));
    putU8(out, uses_toc ? 1 : 0);
    putString(out, func.name);
    putU64(out, relAddr(func.end, func.entry));
    putU8(out, static_cast<std::uint8_t>(func.failure));
    putU32(out, static_cast<std::uint32_t>(func.landingPads.size()));
    for (Addr a : func.landingPads)
        putU64(out, relAddr(a, func.entry));
    putU32(out, static_cast<std::uint32_t>(
                    func.indirectTailCalls.size()));
    for (Addr a : func.indirectTailCalls)
        putU64(out, relAddr(a, func.entry));
    putU32(out, static_cast<std::uint32_t>(func.jumpTables.size()));
    for (const JumpTable &jt : func.jumpTables)
        encodeJumpTable(out, jt, func.entry);
    putU32(out, static_cast<std::uint32_t>(func.blocks.size()));
    for (const auto &[start, block] : func.blocks)
        encodeBlock(out, block, func.entry);
    return out;
}

std::vector<std::uint8_t>
encodeLiveness(const LivenessResult &live, Addr entry)
{
    std::vector<std::uint8_t> out;
    putU64(out, entry);
    putU32(out, static_cast<std::uint32_t>(live.liveIn.size()));
    for (const auto &[addr, regs] : live.liveIn) {
        putU64(out, relAddr(addr, entry));
        putU32(out, regs.raw());
    }
    return out;
}

// --- payload decoders -----------------------------------------------------

bool
validReg(std::uint8_t v)
{
    return v < num_regs || v == static_cast<std::uint8_t>(Reg::none);
}

bool
decodeInstruction(ByteReader &rd, Instruction &in, Addr entry)
{
    const std::uint8_t op = rd.u8();
    const std::uint8_t vrd = rd.u8();
    const std::uint8_t rs1 = rd.u8();
    const std::uint8_t rs2 = rd.u8();
    const std::uint8_t cond = rd.u8();
    in.memSize = rd.u8();
    in.signedLoad = rd.u8() != 0;
    in.movShift = rd.u8();
    in.movKeep = rd.u8() != 0;
    in.formHint = rd.u8();
    in.imm = static_cast<std::int64_t>(rd.u64());
    in.target = absAddr(rd.u64(), entry);
    in.addr = absAddr(rd.u64(), entry);
    in.length = rd.u32();
    if (rd.failed())
        return false;
    if (op >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
        return false;
    if (!validReg(vrd) || !validReg(rs1) || !validReg(rs2))
        return false;
    if (cond > static_cast<std::uint8_t>(Cond::ge) &&
        cond != static_cast<std::uint8_t>(Cond::none))
        return false;
    in.op = static_cast<Opcode>(op);
    in.rd = static_cast<Reg>(vrd);
    in.rs1 = static_cast<Reg>(rs1);
    in.rs2 = static_cast<Reg>(rs2);
    in.cond = static_cast<Cond>(cond);
    return true;
}

bool
decodeJumpTable(ByteReader &rd, JumpTable &jt, Addr entry)
{
    jt.jumpAddr = absAddr(rd.u64(), entry);
    jt.tableAddr = absAddr(rd.u64(), entry);
    jt.entrySize = rd.u32();
    jt.signedEntries = rd.u8() != 0;
    jt.shift = rd.u32();
    const bool has_base = rd.u8() != 0;
    const Addr base = rd.u64();
    if (has_base)
        jt.base = absAddr(base, entry);
    const std::uint32_t ndefs = rd.u32();
    if (ndefs > rd.remaining() / 8)
        return false;
    jt.baseDefAddrs.reserve(ndefs);
    for (std::uint32_t i = 0; i < ndefs; ++i)
        jt.baseDefAddrs.push_back(absAddr(rd.u64(), entry));
    jt.loadAddr = absAddr(rd.u64(), entry);
    jt.entryCount = rd.u32();
    const std::uint32_t ntargets = rd.u32();
    if (ntargets > rd.remaining() / 8)
        return false;
    jt.targets.reserve(ntargets);
    for (std::uint32_t i = 0; i < ntargets; ++i)
        jt.targets.push_back(absAddr(rd.u64(), entry));
    jt.embeddedInCode = rd.u8() != 0;
    return !rd.failed();
}

bool
decodeBlock(ByteReader &rd, Block &block, Addr entry)
{
    block.start = absAddr(rd.u64(), entry);
    block.end = absAddr(rd.u64(), entry);
    const std::uint8_t flags = rd.u8();
    if (flags > 7)
        return false;
    block.endsInUnresolvedIndirect = (flags & 1) != 0;
    block.endsFunction = (flags & 2) != 0;
    const Addr call_target = rd.u64();
    if (flags & 4)
        block.callTarget = absAddr(call_target, entry);
    const std::uint32_t ninsns = rd.u32();
    if (ninsns > rd.remaining() / 38) // encoded instruction size
        return false;
    block.insns.resize(ninsns);
    for (Instruction &in : block.insns) {
        if (!decodeInstruction(rd, in, entry))
            return false;
    }
    const std::uint32_t nsuccs = rd.u32();
    if (nsuccs > rd.remaining() / 9)
        return false;
    block.succs.resize(nsuccs);
    for (Edge &e : block.succs) {
        e.target = absAddr(rd.u64(), entry);
        const std::uint8_t kind = rd.u8();
        if (kind > static_cast<std::uint8_t>(EdgeKind::jumpTable))
            return false;
        e.kind = static_cast<EdgeKind>(kind);
    }
    return !rd.failed();
}

/**
 * Decode a v4 function payload into its canonical form: absolute
 * addresses at the entry it was analyzed at (carried in the payload).
 * Structural validation (sortedness, enum ranges) runs on the
 * rematerialized absolute values — wrap-around deltas round-trip
 * exactly, so this checks the same invariants the encoder wrote.
 */
bool
decodeFunction(ByteReader &rd, Function &func,
               std::int64_t &toc_delta, bool &uses_toc)
{
    const Addr entry = rd.u64();
    toc_delta = static_cast<std::int64_t>(rd.u64());
    uses_toc = rd.u8() != 0;
    func.entry = entry;
    func.name = rd.str();
    func.end = absAddr(rd.u64(), entry);
    const std::uint8_t failure = rd.u8();
    if (failure >
        static_cast<std::uint8_t>(AnalysisFailure::gapsWithRealCode))
        return false;
    func.failure = static_cast<AnalysisFailure>(failure);
    const std::uint32_t npads = rd.u32();
    if (npads > rd.remaining() / 8)
        return false;
    for (std::uint32_t i = 0; i < npads; ++i)
        func.landingPads.insert(absAddr(rd.u64(), entry));
    const std::uint32_t ntails = rd.u32();
    if (ntails > rd.remaining() / 8)
        return false;
    for (std::uint32_t i = 0; i < ntails; ++i)
        func.indirectTailCalls.push_back(absAddr(rd.u64(), entry));
    const std::uint32_t njts = rd.u32();
    if (njts > rd.remaining() / 46) // minimum encoded table size
        return false;
    func.jumpTables.resize(njts);
    for (JumpTable &jt : func.jumpTables) {
        if (!decodeJumpTable(rd, jt, entry))
            return false;
    }
    const std::uint32_t nblocks = rd.u32();
    if (nblocks > rd.remaining() / 33) // minimum encoded block size
        return false;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        Block block;
        if (!decodeBlock(rd, block, entry))
            return false;
        func.blocks.emplace(block.start, std::move(block));
    }
    // Trailing garbage means the payload was not written by this
    // encoder: reject rather than guess.
    return !rd.failed() && rd.remaining() == 0;
}

bool
decodeLiveness(ByteReader &rd, LivenessResult &live,
               Addr &orig_entry)
{
    orig_entry = rd.u64();
    const std::uint32_t n = rd.u32();
    if (n > rd.remaining() / 12)
        return false;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr addr = absAddr(rd.u64(), orig_entry);
        live.liveIn.emplace(addr, RegSet::fromRaw(rd.u32()));
    }
    return !rd.failed() && rd.remaining() == 0;
}

std::vector<std::uint8_t>
encodeDataDeps(const DataDeps &deps, Addr entry)
{
    std::vector<std::uint8_t> out;
    putU64(out, entry);
    putU32(out, static_cast<std::uint32_t>(deps.size()));
    for (const DepRange &r : deps.ranges()) {
        putU64(out, relAddr(r.lo, entry));
        putU64(out, relAddr(r.hi, entry));
        putU64(out, r.hash);
    }
    return out;
}

bool
decodeDataDeps(ByteReader &rd, DataDeps &deps, Addr &orig_entry)
{
    orig_entry = rd.u64();
    const std::uint32_t n = rd.u32();
    if (n > rd.remaining() / 24)
        return false;
    std::vector<DepRange> ranges;
    ranges.reserve(n);
    Addr prev_hi = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        DepRange r;
        r.lo = absAddr(rd.u64(), orig_entry);
        r.hi = absAddr(rd.u64(), orig_entry);
        r.hash = rd.u64();
        // The encoder only writes finalized sets: sorted, disjoint,
        // non-empty ranges. Anything else is not ours.
        if (r.hi <= r.lo || (i > 0 && r.lo < prev_hi))
            return false;
        prev_hi = r.hi;
        ranges.push_back(r);
    }
    if (rd.failed() || rd.remaining() != 0)
        return false;
    deps.setRanges(std::move(ranges));
    return true;
}

// v4 position-independent payload kinds. The absolute-form v1-v3
// kinds (1/2/3) are recognized so old files walk cleanly, but never
// indexed: their payloads cannot be rebased and their keys were
// computed under the old address-folding scheme.
constexpr std::uint8_t entry_kind_function = 4;
constexpr std::uint8_t entry_kind_liveness = 5;
constexpr std::uint8_t entry_kind_datadeps = 6;

bool
knownEntryKind(std::uint8_t kind)
{
    return kind == entry_kind_function ||
           kind == entry_kind_liveness ||
           kind == entry_kind_datadeps;
}

bool
legacyEntryKind(std::uint8_t kind)
{
    return kind >= 1 && kind <= 3;
}

void
appendEntry(std::vector<std::uint8_t> &out, std::uint8_t kind,
            Arch arch, std::uint64_t key,
            const std::uint8_t *payload, std::size_t payload_len,
            std::uint64_t payload_hash)
{
    putU8(out, kind);
    putU8(out, static_cast<std::uint8_t>(arch));
    putU64(out, key);
    putU32(out, static_cast<std::uint32_t>(payload_len));
    putU64(out, payload_hash);
    out.insert(out.end(), payload, payload + payload_len);
}

void
appendEntry(std::vector<std::uint8_t> &out, std::uint8_t kind,
            Arch arch, std::uint64_t key,
            const std::vector<std::uint8_t> &payload)
{
    appendEntry(out, kind, arch, key, payload.data(), payload.size(),
                fnv1a(payload.data(), payload.size()));
}

// --- advisory file lock ---------------------------------------------------

/**
 * RAII flock over `<path>.lock`. Best effort: when the lock file
 * cannot even be created (read-only directory), writers proceed
 * unlocked — exactly as unsafe as v1 was, never less available.
 */
class CacheFileLock
{
  public:
    explicit CacheFileLock(const std::string &cache_path)
    {
        const std::string lock_path = cache_path + ".lock";
        fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0666);
        if (fd_ >= 0)
            ::flock(fd_, LOCK_EX);
    }

    ~CacheFileLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    CacheFileLock(const CacheFileLock &) = delete;
    CacheFileLock &operator=(const CacheFileLock &) = delete;

  private:
    int fd_ = -1;
};

// --- header-walking scanner -----------------------------------------------

/** One structurally-intact entry located in the file (not decoded,
 *  checksum not yet verified). */
struct RawEntry
{
    std::uint8_t kind = 0;
    std::uint8_t arch = 0;
    std::uint64_t key = 0;
    const std::uint8_t *payload = nullptr;
    std::uint32_t payloadLen = 0;
    std::uint64_t payloadHash = 0;
    std::uint64_t generation = 0;
    std::size_t offset = 0; ///< entry header offset in the file
    /** Entry lives in a fully-intact segment (false: salvaged from
     *  a torn tail — present in memory but not durably on disk). */
    bool completeSegment = true;
};

struct ScanResult
{
    std::uint32_t version = 0;
    std::uint64_t headerGeneration = 0;
    std::uint64_t maxGeneration = 0;
    unsigned segments = 0;       ///< complete segments
    std::size_t validBytes = 0;  ///< prefix ending after last one
    bool torn = false;           ///< trailing torn/garbage segment
    unsigned droppedEntries = 0; ///< structurally lost entries
    std::vector<RawEntry> entries;
    std::vector<CacheFileIssue> issues;

    bool usableV2() const { return version == cache_file_version; }
};

/**
 * Walk @p data's headers without decoding or checksumming payloads.
 * Understands v1 (single implicit whole-file segment) and v2
 * (segment chain); anything else yields issues and no entries.
 */
ScanResult
scanBuffer(const std::uint8_t *data, std::size_t size)
{
    ScanResult scan;

    ByteReader rd(data, size);
    const std::uint32_t magic = rd.u32();
    if (rd.failed() || magic != cache_file_magic) {
        scan.issues.push_back(
            {"cache-magic", 0,
             "file does not start with the ICPC cache magic"});
        return scan;
    }
    const std::uint32_t version = rd.u32();
    scan.version = version;

    if (version < cache_file_min_version ||
        version > cache_file_version) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "format version %u (this build reads %u..%u); "
                      "file ignored",
                      version, cache_file_min_version,
                      cache_file_version);
        scan.issues.push_back({"cache-version", 4, msg});
        return scan;
    }

    if (version == 1) {
        // v1: u32 entryCount, then entries to end of file. Loaded
        // read-only; the next save migrates the file to v2.
        scan.issues.push_back(
            {"cache-migrated", 4,
             "version-1 cache file loaded read-only; the next save "
             "rewrites it in the current format"});
        const std::uint32_t count = rd.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            RawEntry e;
            e.offset = rd.pos();
            e.kind = rd.u8();
            e.arch = rd.u8();
            e.key = rd.u64();
            e.payloadLen = rd.u32();
            e.payloadHash = rd.u64();
            e.payload = rd.blob(e.payloadLen);
            e.generation = 1;
            if (rd.failed()) {
                char msg[96];
                std::snprintf(msg, sizeof(msg),
                              "entry %u of %u runs past end of file; "
                              "remaining entries dropped",
                              i + 1, count);
                scan.issues.push_back(
                    {"cache-truncated", e.offset, msg});
                scan.droppedEntries += count - i;
                return scan;
            }
            scan.entries.push_back(e);
        }
        return scan;
    }

    // v2: u64 file generation, then the segment chain.
    scan.headerGeneration = rd.u64();
    scan.validBytes = rd.pos();
    while (!rd.failed() && rd.remaining() > 0) {
        const std::size_t seg_off = rd.pos();
        if (rd.remaining() < cache_segment_header_bytes) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "trailing %zu bytes are not a complete "
                          "segment header; tail dropped",
                          rd.remaining());
            scan.issues.push_back({"cache-torn", seg_off, msg});
            scan.torn = true;
            return scan;
        }
        const std::uint32_t seg_magic = rd.u32();
        const std::uint32_t count = rd.u32();
        const std::uint64_t body_bytes = rd.u64();
        const std::uint64_t generation = rd.u64();
        const std::uint64_t header_hash = rd.u64();
        if (seg_magic != cache_segment_magic ||
            header_hash != fnv1a(data + seg_off, 24)) {
            scan.issues.push_back(
                {"cache-torn", seg_off,
                 "segment header corrupt (bad magic or header "
                 "checksum); tail dropped"});
            scan.torn = true;
            return scan;
        }

        // Walk the segment's entries. A complete segment must
        // contain exactly `count` entries in `body_bytes`; a torn
        // final segment salvages the prefix that survived.
        const bool complete = body_bytes <= rd.remaining();
        const std::size_t body_limit =
            seg_off + cache_segment_header_bytes +
            static_cast<std::size_t>(
                std::min<std::uint64_t>(body_bytes, rd.remaining()));
        std::uint32_t salvaged = 0;
        bool inconsistent = false;
        for (std::uint32_t i = 0; i < count; ++i) {
            RawEntry e;
            e.offset = rd.pos();
            if (body_limit - e.offset < cache_entry_header_bytes) {
                inconsistent = true;
                break;
            }
            e.kind = rd.u8();
            e.arch = rd.u8();
            e.key = rd.u64();
            e.payloadLen = rd.u32();
            e.payloadHash = rd.u64();
            if (e.payloadLen > body_limit - rd.pos()) {
                inconsistent = true;
                break;
            }
            e.payload = rd.blob(e.payloadLen);
            e.generation = generation;
            e.completeSegment = complete;
            scan.entries.push_back(e);
            ++salvaged;
        }
        if (!complete || inconsistent || rd.pos() != body_limit) {
            // Torn append (writer died mid-write) or a lying
            // header: keep what was salvaged, drop the rest of the
            // file. Salvaged entries are marked not-durable so the
            // next save re-appends them.
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "segment torn at offset %zu; %u of %u "
                          "entries salvaged, tail dropped",
                          seg_off, salvaged, count);
            scan.issues.push_back({"cache-torn", seg_off, msg});
            scan.torn = true;
            scan.droppedEntries += count - salvaged;
            for (std::size_t i = scan.entries.size() - salvaged;
                 i < scan.entries.size(); ++i)
                scan.entries[i].completeSegment = false;
            return scan;
        }
        ++scan.segments;
        scan.maxGeneration =
            std::max(scan.maxGeneration, generation);
        scan.validBytes = rd.pos();
    }
    return scan;
}

ScanResult
scanFile(const std::shared_ptr<MappedCacheFile> &file)
{
    return scanBuffer(file->data(), file->size());
}

// --- serialization of headers/segments ------------------------------------

std::vector<std::uint8_t>
fileHeader(std::uint64_t generation)
{
    std::vector<std::uint8_t> out;
    putU32(out, cache_file_magic);
    putU32(out, cache_file_version);
    putU64(out, generation);
    return out;
}

/** Wrap @p body (concatenated entries) into a framed segment. */
std::vector<std::uint8_t>
segmentBytes(std::uint32_t entry_count,
             const std::vector<std::uint8_t> &body,
             std::uint64_t generation)
{
    std::vector<std::uint8_t> out;
    out.reserve(cache_segment_header_bytes + body.size());
    putU32(out, cache_segment_magic);
    putU32(out, entry_count);
    putU64(out, body.size());
    putU64(out, generation);
    putU64(out, fnv1a(out.data(), 24));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::uint64_t
fileSizeOf(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/**
 * Compaction body, caller holds the file lock. Rewrites @p path as
 * one deduplicated segment, newest-generation entries first up to
 * @p max_bytes (0 = keep everything that verifies).
 */
bool
compactLocked(const std::string &path, std::uint64_t max_bytes,
              CacheCompactionResult &out)
{
    auto file = MappedCacheFile::open(path);
    if (!file)
        return false;
    out.bytesBefore = file->size();
    const ScanResult scan = scanFile(file);
    if (!scan.issues.empty() && scan.version == 0)
        return false; // not a cache file; refuse to clobber it

    // Deduplicate by (kind, key) — function, liveness, and data-dep
    // entries share the Function::cacheKey namespace — with the last
    // occurrence winning (it is the newest append), and heal
    // silently-corrupt payloads by verifying each checksum here —
    // compaction is the slow, thorough path.
    std::map<std::pair<std::uint8_t, std::uint64_t>,
             const RawEntry *>
        by_key;
    for (const RawEntry &e : scan.entries) {
        if (fnv1a(e.payload, e.payloadLen) != e.payloadHash)
            continue;
        // Legacy absolute-form kinds can never hit again; compaction
        // is where they finally leave the file. Unknown kinds are
        // kept (forward compat).
        if (legacyEntryKind(e.kind))
            continue;
        by_key[{e.kind, e.key}] = &e;
    }
    out.entriesBefore = static_cast<unsigned>(scan.entries.size());

    // Keep newest generations first until the byte cap.
    std::vector<const RawEntry *> candidates;
    candidates.reserve(by_key.size());
    for (const auto &[key, e] : by_key)
        candidates.push_back(e);
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const RawEntry *a, const RawEntry *b) {
                         if (a->generation != b->generation)
                             return a->generation > b->generation;
                         return a->offset < b->offset;
                     });
    std::uint64_t used =
        cache_file_header_bytes + cache_segment_header_bytes;
    std::vector<const RawEntry *> kept;
    for (const RawEntry *e : candidates) {
        const std::uint64_t cost =
            cache_entry_header_bytes + e->payloadLen;
        if (max_bytes != 0 && used + cost > max_bytes &&
            !kept.empty())
            break;
        if (max_bytes != 0 && used + cost > max_bytes)
            break; // even the newest entry alone exceeds the cap
        used += cost;
        kept.push_back(e);
    }

    // Deterministic output order: by key.
    std::sort(kept.begin(), kept.end(),
              [](const RawEntry *a, const RawEntry *b) {
                  if (a->kind != b->kind)
                      return a->kind < b->kind;
                  return a->key < b->key;
              });

    const std::uint64_t generation = scan.maxGeneration + 1;
    std::vector<std::uint8_t> body;
    for (const RawEntry *e : kept)
        appendEntry(body, e->kind, static_cast<Arch>(e->arch),
                    e->key, e->payload, e->payloadLen,
                    e->payloadHash);
    std::vector<std::uint8_t> bytes = fileHeader(generation);
    const std::vector<std::uint8_t> seg = segmentBytes(
        static_cast<std::uint32_t>(kept.size()), body, generation);
    bytes.insert(bytes.end(), seg.begin(), seg.end());

    if (!writeFileAtomic(path, bytes))
        return false;
    out.performed = true;
    out.entriesKept = static_cast<unsigned>(kept.size());
    out.entriesEvicted = static_cast<unsigned>(
        by_key.size() - kept.size());
    out.bytesAfter = bytes.size();
    return true;
}

} // namespace

// --- MappedCacheFile ------------------------------------------------------

std::shared_ptr<MappedCacheFile>
MappedCacheFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return nullptr;
    }
    auto file = std::shared_ptr<MappedCacheFile>(
        new MappedCacheFile());
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        return file; // empty file: valid mapping of zero bytes
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        file->map_ = map;
        file->data_ = static_cast<const std::uint8_t *>(map);
        file->size_ = size;
        ::close(fd);
        return file;
    }
    // mmap-hostile filesystem: fall back to a plain read.
    file->buffer_.resize(size);
    std::size_t off = 0;
    while (off < size) {
        const ::ssize_t n =
            ::read(fd, file->buffer_.data() + off, size - off);
        if (n <= 0) {
            ::close(fd);
            return nullptr;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    file->data_ = file->buffer_.data();
    file->size_ = size;
    return file;
}

MappedCacheFile::~MappedCacheFile()
{
    if (map_ != nullptr)
        ::munmap(map_, size_);
}

// --- lazy lookups ---------------------------------------------------------

std::shared_ptr<const Function>
AnalysisCache::findFunction(std::uint64_t key, Addr entry,
                            Addr toc_base)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = functions_.find(key);
    if (it == functions_.end()) {
        auto pit = pendingFunctions_.find(key);
        if (pit == pendingFunctions_.end()) {
            stats_.functionMisses++;
            return nullptr;
        }
        // First lookup of a lazily-indexed entry: verify its
        // checksum and deserialize it now, outside the lock (the
        // shared mapping keeps the bytes alive; a racing decode of
        // the same key is wasted work, not a bug). The canonical
        // in-memory form keeps absolute addresses at the entry the
        // payload records (origEntry), not the requested one.
        const PendingEntry pe = pit->second;
        lock.unlock();
        Function func;
        std::int64_t toc_delta = 0;
        bool uses_toc = false;
        ByteReader rd(pe.payload, pe.payloadLen);
        const bool ok =
            fnv1a(pe.payload, pe.payloadLen) == pe.payloadHash &&
            decodeFunction(rd, func, toc_delta, uses_toc);
        lock.lock();
        pendingFunctions_.erase(key);
        if (!ok) {
            // Corrupt or undecodable payload: count the miss and
            // re-analyze; the entry heals on the next compaction.
            stats_.functionMisses++;
            return nullptr;
        }
        func.cacheKey = key;
        Entry<Function> rec;
        rec.arch = pe.arch;
        rec.origEntry = func.entry;
        rec.tocDelta = toc_delta;
        rec.usesToc = uses_toc;
        rec.value = std::make_shared<const Function>(std::move(func));
        it = functions_.emplace(key, std::move(rec)).first;
        CacheCounters::global().entriesLazy.fetch_add(
            1, std::memory_order_relaxed);
    }

    const Entry<Function> &e = it->second;
    if (entry == e.origEntry) {
        stats_.functionHits++;
        return e.value;
    }
    // Cross-binary hit: the same code bytes at a different address.
    // Toc-relative code derives targets from tocBase, so the rebase
    // is only exact when the requester's toc offset matches.
    if (e.usesToc &&
        static_cast<std::int64_t>(toc_base) -
                static_cast<std::int64_t>(entry) !=
            e.tocDelta) {
        stats_.functionMisses++;
        return nullptr;
    }
    stats_.functionHits++;
    CacheCounters::global().crossHits.fetch_add(
        1, std::memory_order_relaxed);
    std::shared_ptr<const Function> value = e.value;
    lock.unlock();
    StageTimer timer(Stage::cacheRebase);
    return std::make_shared<const Function>(
        rebaseFunction(*value, entry));
}

std::shared_ptr<const LivenessResult>
AnalysisCache::findLiveness(std::uint64_t key, Addr entry)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = liveness_.find(key);
    if (it == liveness_.end()) {
        auto pit = pendingLiveness_.find(key);
        if (pit == pendingLiveness_.end()) {
            stats_.livenessMisses++;
            return nullptr;
        }
        const PendingEntry pe = pit->second;
        lock.unlock();
        LivenessResult live;
        Addr orig_entry = 0;
        ByteReader rd(pe.payload, pe.payloadLen);
        const bool ok =
            fnv1a(pe.payload, pe.payloadLen) == pe.payloadHash &&
            decodeLiveness(rd, live, orig_entry);
        lock.lock();
        pendingLiveness_.erase(key);
        if (!ok) {
            stats_.livenessMisses++;
            return nullptr;
        }
        Entry<LivenessResult> rec;
        rec.arch = pe.arch;
        rec.origEntry = orig_entry;
        rec.value =
            std::make_shared<const LivenessResult>(std::move(live));
        it = liveness_.emplace(key, std::move(rec)).first;
        CacheCounters::global().entriesLazy.fetch_add(
            1, std::memory_order_relaxed);
    }

    const Entry<LivenessResult> &e = it->second;
    stats_.livenessHits++;
    if (entry == e.origEntry)
        return e.value;
    std::shared_ptr<const LivenessResult> value = e.value;
    const Addr orig = e.origEntry;
    lock.unlock();
    StageTimer timer(Stage::cacheRebase);
    return std::make_shared<const LivenessResult>(
        rebaseLiveness(*value, orig, entry));
}

std::shared_ptr<const DataDeps>
AnalysisCache::findDataDeps(std::uint64_t key, Addr entry)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = dataDeps_.find(key);
    if (it == dataDeps_.end()) {
        auto pit = pendingDataDeps_.find(key);
        if (pit == pendingDataDeps_.end())
            return nullptr;
        const PendingEntry pe = pit->second;
        lock.unlock();
        DataDeps deps;
        Addr orig_entry = 0;
        ByteReader rd(pe.payload, pe.payloadLen);
        const bool ok =
            fnv1a(pe.payload, pe.payloadLen) == pe.payloadHash &&
            decodeDataDeps(rd, deps, orig_entry);
        lock.lock();
        pendingDataDeps_.erase(key);
        if (!ok) {
            // Corrupt read-set: the paired function hit degrades to
            // a conservative miss at its consumer.
            return nullptr;
        }
        Entry<DataDeps> rec;
        rec.arch = pe.arch;
        rec.origEntry = orig_entry;
        rec.value = std::make_shared<const DataDeps>(std::move(deps));
        it = dataDeps_.emplace(key, std::move(rec)).first;
        CacheCounters::global().entriesLazy.fetch_add(
            1, std::memory_order_relaxed);
    }

    const Entry<DataDeps> &e = it->second;
    if (entry == e.origEntry)
        return e.value;
    std::shared_ptr<const DataDeps> value = e.value;
    const Addr orig = e.origEntry;
    lock.unlock();
    // Rebased read-set: the consumer re-hashes it against *its*
    // image, which is exactly the cross-binary soundness check.
    return std::make_shared<const DataDeps>(
        rebaseDataDeps(*value, orig, entry));
}

// --- load -----------------------------------------------------------------

CacheLoadReport
AnalysisCache::load(const std::string &path,
                    std::optional<Arch> expect_arch)
{
    CacheLoadReport report;

    auto file = MappedCacheFile::open(path);
    if (!file)
        return report; // absent file: cold start, not an error
    report.fileRead = true;
    report.bytesMapped = file->size();
    CacheCounters::global().bytesMapped.fetch_add(
        file->size(), std::memory_order_relaxed);

    ScanResult scan = scanFile(file);
    report.fileVersion = scan.version;
    report.segments = scan.segments;
    report.droppedEntries += scan.droppedEntries;
    report.issues = std::move(scan.issues);

    // Validate entry headers eagerly (one cheap pass over headers
    // only — no payload byte is touched), then index survivors for
    // lazy checksum + deserialization on first lookup.
    std::vector<const RawEntry *> accepted;
    accepted.reserve(scan.entries.size());
    std::size_t first_legacy_off = 0;
    for (const RawEntry &e : scan.entries) {
        if (legacyEntryKind(e.kind)) {
            // Absolute-form v1-v3 entry: cannot be rebased and its
            // key predates the content-addressed scheme, so it could
            // never match a lookup anyway. Degrades to a miss; one
            // summarizing issue below instead of per-entry noise.
            if (report.skippedLegacy == 0)
                first_legacy_off = e.offset;
            ++report.skippedLegacy;
            continue;
        }
        if (!knownEntryKind(e.kind)) {
            // Forward compatibility: a newer writer introduced an
            // entry kind this build does not understand. Skipping it
            // only costs re-derivation of whatever it memoized.
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "unknown entry kind %u (newer writer?); "
                          "entry skipped",
                          e.kind);
            report.issues.push_back({"cache-skip", e.offset, msg});
            ++report.skippedUnknown;
            continue;
        }
        if (e.arch > static_cast<std::uint8_t>(Arch::aarch64)) {
            report.issues.push_back(
                {"cache-entry", e.offset,
                 "unknown ISA tag; entry dropped"});
            ++report.droppedEntries;
            continue;
        }
        if (expect_arch &&
            static_cast<Arch>(e.arch) != *expect_arch) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "entry built for %s, image is %s; "
                          "entry dropped",
                          archName(static_cast<Arch>(e.arch)),
                          archName(*expect_arch));
            report.issues.push_back({"cache-arch", e.offset, msg});
            ++report.droppedEntries;
            continue;
        }
        accepted.push_back(&e);
    }
    if (report.skippedLegacy > 0) {
        char msg[128];
        std::snprintf(msg, sizeof(msg),
                      "%u absolute-form v1-v3 entries skipped "
                      "(re-analysis repopulates them); the next save "
                      "rewrites the file as version %u",
                      report.skippedLegacy, cache_file_version);
        report.issues.push_back(
            {"cache-legacy", first_legacy_off, msg});
    }

    std::lock_guard<std::mutex> lock(mu_);
    // Decoded in-memory entries win over file entries; among file
    // entries for the same key the newest occurrence (last in file
    // order: save() appends replacements when a function's data
    // read-set changed) wins.
    for (const RawEntry *e : accepted) {
        PendingEntry pe;
        pe.arch = static_cast<Arch>(e->arch);
        pe.payload = e->payload;
        pe.payloadLen = e->payloadLen;
        pe.payloadHash = e->payloadHash;
        pe.file = file;
        auto index = [&](auto &decoded, auto &pending,
                         unsigned &loaded) {
            if (decoded.count(e->key)) {
                ++report.skippedExisting;
                return;
            }
            if (!pending.count(e->key))
                ++loaded;
            pending[e->key] = std::move(pe);
        };
        if (e->kind == entry_kind_function)
            index(functions_, pendingFunctions_,
                  report.loadedFunctions);
        else if (e->kind == entry_kind_liveness)
            index(liveness_, pendingLiveness_,
                  report.loadedLiveness);
        else
            index(dataDeps_, pendingDataDeps_,
                  report.loadedDataDeps);
    }
    return report;
}

// --- save -----------------------------------------------------------------

bool
AnalysisCache::save(const std::string &path,
                    std::uint64_t max_bytes) const
{
    // Writers serialize here; the scan below therefore sees every
    // segment earlier writers appended (merge-on-save).
    CacheFileLock file_lock(path);

    auto file = MappedCacheFile::open(path);
    ScanResult scan;
    if (file)
        scan = scanFile(file);
    const bool append_mode =
        file && scan.usableV2() && !scan.torn;

    // Keys already durable in the file, kept per entry kind —
    // function, liveness, and data-dep entries share the
    // Function::cacheKey namespace — plus the newest durable payload
    // hash of each data read-set, so a read-set that changed under
    // an unchanged code key (a data edit) triggers a replacement
    // append instead of being treated as already saved.
    std::unordered_set<std::uint64_t> file_fn, file_lv, file_deps;
    std::unordered_map<std::uint64_t, std::uint64_t> file_deps_hash;
    for (const RawEntry &e : scan.entries) {
        if (!e.completeSegment)
            continue;
        if (e.kind == entry_kind_function)
            file_fn.insert(e.key);
        else if (e.kind == entry_kind_liveness)
            file_lv.insert(e.key);
        else if (e.kind == entry_kind_datadeps) {
            file_deps.insert(e.key);
            file_deps_hash[e.key] = e.payloadHash;
        }
    }

    // Collect the delta — everything in memory the file lacks —
    // under the cache lock, but only as cheap references: values are
    // shared immutable snapshots, and pending (never-decoded)
    // entries stay raw so their payload bytes copy straight through
    // without a decode+re-encode trip. On a fully-warm run this
    // finds nothing and the save costs one header scan. Ordered maps
    // keep output byte-stable for identical contents.
    std::map<std::uint64_t, Entry<Function>> miss_fn;
    std::map<std::uint64_t, Entry<LivenessResult>> miss_lv;
    std::map<std::uint64_t, Entry<DataDeps>> miss_deps;
    std::map<std::uint64_t, PendingEntry> miss_fn_raw, miss_lv_raw,
        miss_deps_raw;
    std::map<std::uint64_t, std::vector<std::uint8_t>> deps_payload;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[key, entry] : dataDeps_) {
            // Read-sets are tiny (a handful of ranges); encoding
            // them under the lock to compare against the file's
            // payload hash is cheaper than a decode round trip.
            std::vector<std::uint8_t> payload =
                encodeDataDeps(*entry.value, entry.origEntry);
            const bool stale =
                file_deps.count(key) != 0 &&
                file_deps_hash[key] !=
                    fnv1a(payload.data(), payload.size());
            if (!file_deps.count(key) || stale) {
                miss_deps.emplace(key, entry);
                deps_payload.emplace(key, std::move(payload));
            }
            if (stale) {
                // A changed read-set under an unchanged code key
                // means a data edit re-analyzed this function: the
                // file's function payload is stale too. Append the
                // fresh one — load() lets the newest occurrence of
                // a key win.
                auto fit = functions_.find(key);
                if (fit != functions_.end())
                    miss_fn.emplace(key, fit->second);
            }
        }
        for (const auto &[key, pe] : pendingDataDeps_)
            if (!file_deps.count(key))
                miss_deps_raw.emplace(key, pe);
        for (const auto &[key, entry] : functions_)
            if (!file_fn.count(key))
                miss_fn.emplace(key, entry);
        for (const auto &[key, pe] : pendingFunctions_)
            if (!file_fn.count(key))
                miss_fn_raw.emplace(key, pe);
        for (const auto &[key, entry] : liveness_)
            if (!file_lv.count(key))
                miss_lv.emplace(key, entry);
        for (const auto &[key, pe] : pendingLiveness_)
            if (!file_lv.count(key))
                miss_lv_raw.emplace(key, pe);
    }

    // The delta segment, functions before liveness, sorted by key.
    std::vector<std::uint8_t> body;
    std::uint32_t count = 0;
    for (const auto &[key, entry] : miss_fn) {
        appendEntry(body, entry_kind_function, entry.arch, key,
                    encodeFunction(*entry.value, entry.tocDelta,
                                   entry.usesToc));
        ++count;
    }
    for (const auto &[key, pe] : miss_fn_raw) {
        appendEntry(body, entry_kind_function, pe.arch, key,
                    pe.payload, pe.payloadLen, pe.payloadHash);
        ++count;
    }
    for (const auto &[key, entry] : miss_lv) {
        appendEntry(body, entry_kind_liveness, entry.arch, key,
                    encodeLiveness(*entry.value, entry.origEntry));
        ++count;
    }
    for (const auto &[key, pe] : miss_lv_raw) {
        appendEntry(body, entry_kind_liveness, pe.arch, key,
                    pe.payload, pe.payloadLen, pe.payloadHash);
        ++count;
    }
    for (const auto &[key, entry] : miss_deps) {
        appendEntry(body, entry_kind_datadeps, entry.arch, key,
                    deps_payload[key]);
        ++count;
    }
    for (const auto &[key, pe] : miss_deps_raw) {
        appendEntry(body, entry_kind_datadeps, pe.arch, key,
                    pe.payload, pe.payloadLen, pe.payloadHash);
        ++count;
    }

    bool ok = true;
    if (append_mode && count == 0) {
        // Fully-warm run: nothing new, the file is not touched at
        // all (same bytes, same mtime).
    } else if (append_mode) {
        const std::uint64_t generation = scan.maxGeneration + 1;
        const std::vector<std::uint8_t> seg =
            segmentBytes(count, body, generation);
        std::ofstream out(path, std::ios::binary | std::ios::app);
        ok = static_cast<bool>(out);
        if (ok) {
            out.write(reinterpret_cast<const char *>(seg.data()),
                      static_cast<std::streamsize>(seg.size()));
            ok = static_cast<bool>(out);
        }
        if (ok)
            CacheCounters::global().bytesAppended.fetch_add(
                seg.size(), std::memory_order_relaxed);
    } else {
        // Fresh file, older-version migration, foreign/torn content:
        // full atomic rewrite. Durable raw entries from any readable
        // scan are copied through (deduplicated per kind, newest
        // occurrence first); everything else comes from memory.
        const std::uint64_t generation = scan.maxGeneration + 1;
        std::vector<std::uint8_t> full_body;
        std::uint32_t full_count = 0;
        if (scan.version != 0) {
            std::set<std::pair<std::uint8_t, std::uint64_t>> seen;
            for (auto it = scan.entries.rbegin();
                 it != scan.entries.rend(); ++it) {
                const RawEntry &e = *it;
                // Legacy absolute-form kinds are dropped here — they
                // can never hit again; unknown future kinds pass
                // through so a newer writer's entries survive us.
                if (!e.completeSegment || legacyEntryKind(e.kind) ||
                    !seen.insert({e.kind, e.key}).second)
                    continue;
                appendEntry(full_body, e.kind,
                            static_cast<Arch>(e.arch), e.key,
                            e.payload, e.payloadLen, e.payloadHash);
                ++full_count;
            }
        }
        full_body.insert(full_body.end(), body.begin(), body.end());
        full_count += count;
        std::vector<std::uint8_t> bytes = fileHeader(generation);
        const std::vector<std::uint8_t> seg =
            segmentBytes(full_count, full_body, generation);
        bytes.insert(bytes.end(), seg.begin(), seg.end());
        ok = writeFileAtomic(path, bytes);
        if (ok)
            CacheCounters::global().bytesAppended.fetch_add(
                bytes.size(), std::memory_order_relaxed);
    }

    // Size-cap policy: compact in place while still holding the
    // lock (compaction failure never fails the save).
    if (ok && max_bytes != 0 && fileSizeOf(path) > max_bytes) {
        CacheCompactionResult compaction;
        compactLocked(path, max_bytes, compaction);
    }
    return ok;
}

// --- inspect / verify / compact -------------------------------------------

CacheFileInfo
inspectCacheFile(const std::string &path)
{
    CacheFileInfo info;
    auto file = MappedCacheFile::open(path);
    if (!file)
        return info;
    info.fileRead = true;
    info.fileBytes = file->size();
    ScanResult scan = scanFile(file);
    info.version = scan.version;
    info.generation = scan.maxGeneration;
    info.segments = scan.segments;
    info.issues = std::move(scan.issues);
    std::set<std::pair<std::uint8_t, std::uint64_t>> keys;
    std::set<std::uint64_t> payload_hashes;
    for (const RawEntry &e : scan.entries) {
        if (e.kind == entry_kind_function) {
            ++info.functionEntries;
            info.functionPayloadBytes += e.payloadLen;
        } else if (e.kind == entry_kind_liveness) {
            ++info.livenessEntries;
            info.livenessPayloadBytes += e.payloadLen;
        } else if (e.kind == entry_kind_datadeps) {
            ++info.dataDepsEntries;
            info.dataDepsPayloadBytes += e.payloadLen;
        } else if (legacyEntryKind(e.kind)) {
            ++info.legacyEntries;
        } else {
            ++info.otherEntries;
        }
        info.payloadBytes += e.payloadLen;
        keys.insert({e.kind, e.key});
        payload_hashes.insert(e.payloadHash);
    }
    info.distinctKeys = static_cast<unsigned>(keys.size());
    info.distinctPayloads =
        static_cast<unsigned>(payload_hashes.size());
    return info;
}

CacheLoadReport
verifyCacheFile(const std::string &path)
{
    CacheLoadReport report;
    auto file = MappedCacheFile::open(path);
    if (!file)
        return report;
    report.fileRead = true;
    report.bytesMapped = file->size();

    ScanResult scan = scanFile(file);
    report.fileVersion = scan.version;
    report.segments = scan.segments;
    report.droppedEntries += scan.droppedEntries;
    report.issues = std::move(scan.issues);

    for (const RawEntry &e : scan.entries) {
        if (fnv1a(e.payload, e.payloadLen) != e.payloadHash) {
            report.issues.push_back(
                {"cache-checksum", e.offset,
                 "payload checksum mismatch"});
            ++report.droppedEntries;
            continue;
        }
        if (e.arch > static_cast<std::uint8_t>(Arch::aarch64)) {
            report.issues.push_back(
                {"cache-entry", e.offset, "unknown ISA tag"});
            ++report.droppedEntries;
            continue;
        }
        ByteReader rd(e.payload, e.payloadLen);
        if (e.kind == entry_kind_function) {
            Function func;
            std::int64_t toc_delta = 0;
            bool uses_toc = false;
            if (!decodeFunction(rd, func, toc_delta, uses_toc)) {
                report.issues.push_back(
                    {"cache-entry", e.offset,
                     "malformed function payload"});
                ++report.droppedEntries;
                continue;
            }
            ++report.loadedFunctions;
        } else if (e.kind == entry_kind_liveness) {
            LivenessResult live;
            Addr orig_entry = 0;
            if (!decodeLiveness(rd, live, orig_entry)) {
                report.issues.push_back(
                    {"cache-entry", e.offset,
                     "malformed liveness payload"});
                ++report.droppedEntries;
                continue;
            }
            ++report.loadedLiveness;
        } else if (e.kind == entry_kind_datadeps) {
            DataDeps deps;
            Addr orig_entry = 0;
            if (!decodeDataDeps(rd, deps, orig_entry)) {
                report.issues.push_back(
                    {"cache-entry", e.offset,
                     "malformed data read-set payload"});
                ++report.droppedEntries;
                continue;
            }
            ++report.loadedDataDeps;
        } else if (legacyEntryKind(e.kind)) {
            // Checksum already verified above; the payload itself is
            // not decodable under the v4 contract, by design.
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "absolute-form v1-v3 entry (kind %u); "
                          "degrades to a miss at load",
                          e.kind);
            report.issues.push_back({"cache-legacy", e.offset, msg});
            ++report.skippedLegacy;
        } else {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "unknown entry kind %u (newer writer?); "
                          "entry skipped",
                          e.kind);
            report.issues.push_back({"cache-skip", e.offset, msg});
            ++report.skippedUnknown;
        }
    }
    return report;
}

bool
compactCacheFile(const std::string &path, std::uint64_t max_bytes,
                 CacheCompactionResult &out)
{
    CacheFileLock lock(path);
    return compactLocked(path, max_bytes, out);
}

} // namespace icp
