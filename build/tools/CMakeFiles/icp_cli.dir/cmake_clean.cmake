file(REMOVE_RECURSE
  "CMakeFiles/icp_cli.dir/icp.cc.o"
  "CMakeFiles/icp_cli.dir/icp.cc.o.d"
  "icp"
  "icp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
