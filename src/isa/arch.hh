/**
 * @file
 * Architecture descriptors for the three synthetic ISAs. Each ISA is
 * modeled on one of the paper's target architectures and reproduces
 * the encoding properties that drive the trampoline design in
 * Table 2: instruction length regime, direct-branch reach, presence
 * of a short branch form, link register, and TOC/tar registers.
 */

#ifndef ICP_ISA_ARCH_HH
#define ICP_ISA_ARCH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "support/types.hh"

namespace icp
{

enum class Arch : std::uint8_t
{
    x64 = 0,     ///< variable-length, modeled on x86-64
    ppc64le = 1, ///< fixed 4-byte, ±32 MB branches, TOC, tar register
    aarch64 = 2, ///< fixed 4-byte, ±128 MB branches, adrp/add/br
};

inline constexpr std::array<Arch, 3> all_arches = {
    Arch::x64, Arch::ppc64le, Arch::aarch64,
};

/**
 * Byte-level encoder/decoder for one ISA. Encoding appends to the
 * output vector and fails (returns false) when an operand does not
 * fit the encoding — e.g. a branch displacement beyond the reach of
 * the instruction — so callers can fall back to longer sequences.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    /**
     * Encode @p in as placed at @p addr, appending bytes to @p out.
     * @return false if the instruction cannot be encoded on this ISA
     *         or an operand is out of range.
     */
    virtual bool encode(const Instruction &in, Addr addr,
                        std::vector<std::uint8_t> &out) const = 0;

    /**
     * Decode one instruction at @p addr from @p bytes.
     * On failure returns false and sets out.op = Illegal with a
     * minimal length so disassembly can resynchronize.
     */
    virtual bool decode(const std::uint8_t *bytes, std::size_t avail,
                        Addr addr, Instruction &out) const = 0;

    /**
     * Like encode, but skipping the ISA's *policy* range limits
     * (e.g. the fixed codecs' enforced branch reach) while keeping
     * the hard field-width limits. Exists only so fault injection
     * can craft out-of-range encodings the normal encoder refuses;
     * the default forwards to encode.
     */
    virtual bool
    encodeUnchecked(const Instruction &in, Addr addr,
                    std::vector<std::uint8_t> &out) const
    {
        return encode(in, addr, out);
    }

    /** Encoded length in bytes, or 0 if unencodable. */
    virtual unsigned encodedLength(const Instruction &in) const = 0;
};

/**
 * Static properties of one ISA. The branch-range fields are the
 * authoritative limits used by the trampoline writer; on the fixed
 * ISAs they are tighter than what the raw encoding field could hold
 * (the real machines reserve encodings), and the codec enforces them.
 */
struct ArchInfo
{
    Arch arch;
    const char *name;

    bool fixedLength;        ///< all instructions 4 bytes
    unsigned instrAlign;     ///< 1 (x64) or 4
    unsigned minInstrLen;    ///< 1 or 4
    unsigned maxInstrLen;    ///< 10 or 4

    bool hasLinkRegister;    ///< calls write lr instead of pushing
    bool hasToc;             ///< ppc64le TOC register (r2 analog)
    bool hasTarReg;          ///< ppc64le branch-target special reg
    bool hasShortBranch;     ///< x64 2-byte jump

    std::int64_t shortJmpRange; ///< ± bytes for the short form (x64)
    unsigned shortJmpLen;       ///< bytes

    std::int64_t directJmpRange; ///< ± bytes for the 1-instr direct jump
    unsigned directJmpLen;       ///< bytes

    std::int64_t longTrampRange; ///< ± bytes for the multi-instr form
    unsigned longTrampLen;       ///< bytes of the full long sequence

    unsigned nopLen;         ///< length of one nop (padding granule)
    unsigned trapLen;        ///< length of the trap instruction

    const Codec *codec;

    /** Global accessor for the three singleton descriptors. */
    static const ArchInfo &get(Arch arch);
};

/** Printable architecture name ("x86-64", "ppc64le", "aarch64"). */
const char *archName(Arch arch);

} // namespace icp

#endif // ICP_ISA_ARCH_HH
