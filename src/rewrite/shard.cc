#include "rewrite/shard.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "analysis/liveness.hh"
#include "support/logging.hh"

namespace icp
{

std::vector<ShardRange>
planShards(const BinaryImage &image, unsigned shards)
{
    const auto syms = image.functionSymbols();
    const unsigned n = std::max(
        1u, std::min<unsigned>(
                shards, static_cast<unsigned>(syms.size())));

    // Boundaries at equal function-count splits; ranges tile the
    // whole address space so membership is a pure range test.
    std::vector<ShardRange> ranges;
    Addr lo = 0;
    for (unsigned k = 0; k < n; ++k) {
        ShardRange r;
        r.lo = lo;
        if (k + 1 == n) {
            r.hi = ~static_cast<Addr>(0);
        } else {
            const std::size_t split = syms.size() * (k + 1) / n;
            r.hi = syms[split]->addr;
        }
        lo = r.hi;
        ranges.push_back(r);
    }
    return ranges;
}

namespace
{

/**
 * The worker body: warm the cache shard for one range. Runs in a
 * forked child; must not touch the coordinator's state and exits
 * via _exit (no atexit/stdio teardown of the parent's handles).
 */
int
shardWorkerBody(const BinaryImage &image, const RewriteOptions &opts,
                const ShardRange &range,
                const std::string &cache_path)
{
    // The child inherits the parent's in-memory cache; drop it so
    // this worker's memory is bounded by its own shard.
    AnalysisCache::global().clear();
    AnalysisCache::global().load(cache_path, image.arch);

    AnalysisOptions analysis = opts.analysis;
    analysis.threads = 1;
    analysis.useCache = true;
    analysis.rangeLo = range.lo;
    analysis.rangeHi = range.hi;
    const CfgModule cfg = buildCfg(image, analysis);

    // Liveness for the functions the coordinator will instrument
    // (trampoline scratch-register selection on the fixed ISAs).
    const ArchInfo &arch = image.archInfo();
    if (arch.fixedLength) {
        for (const auto &[entry, func] : cfg.functions) {
            (void)entry;
            if (!func.instrumentable() || func.cacheKey == 0)
                continue;
            if (!opts.onlyFunctions.empty() &&
                !opts.onlyFunctions.count(func.name))
                continue;
            if (AnalysisCache::global().findLiveness(func.cacheKey))
                continue;
            AnalysisCache::global().storeLiveness(
                func.cacheKey, image.arch,
                computeLiveness(func, arch));
        }
    }
    return AnalysisCache::global().save(cache_path) ? 0 : 1;
}

/**
 * Crash-test hook: simulate a worker killed mid-save by appending a
 * torn partial segment to the cache file (what an interrupted
 * appender leaves behind) and SIGKILLing ourselves.
 */
void
maybeKillForTest(unsigned shard, unsigned attempt,
                 const std::string &cache_path)
{
    const char *once = std::getenv("ICP_TEST_KILL_SHARD");
    const char *always = std::getenv("ICP_TEST_KILL_SHARD_ALWAYS");
    const char *sel = always ? always : once;
    if (!sel || static_cast<unsigned>(std::atoi(sel)) != shard)
        return;
    if (!always && attempt != 0)
        return;
    if (std::FILE *f = std::fopen(cache_path.c_str(), "ab")) {
        // A plausible-looking segment header cut off mid-payload.
        const std::uint8_t torn[] = {'I', 'C', 'P', 'S', 0xff, 0x13,
                                     0x37, 0x00, 0xde, 0xad};
        std::fwrite(torn, 1, sizeof(torn), f);
        std::fclose(f);
    }
    ::raise(SIGKILL);
}

} // namespace

void
runShardWorkers(const BinaryImage &image, const RewriteOptions &opts,
                const std::vector<ShardRange> &ranges,
                const std::string &cache_path,
                std::vector<ShardCounters> &counters)
{
    icp_assert(counters.size() == ranges.size(),
               "counters not sized to shard plan");

    for (std::size_t k = 0; k < ranges.size(); ++k) {
        ShardCounters &sc = counters[k];
        sc.lo = ranges[k].lo;
        sc.hi = ranges[k].hi;

        // Sequential forks: the workers bound peak memory (one
        // shard's CFG at a time); the 1-core host gains nothing
        // from overlapping them.
        bool ok = false;
        for (unsigned attempt = 0; attempt < 2 && !ok; ++attempt) {
            ++sc.workerAttempts;
            const pid_t pid = ::fork();
            if (pid < 0)
                break; // fork pressure: degrade, never fail
            if (pid == 0) {
                maybeKillForTest(static_cast<unsigned>(k), attempt,
                                 cache_path);
                ::_exit(shardWorkerBody(image, opts, ranges[k],
                                        cache_path));
            }
            int status = 0;
            struct rusage ru;
            std::memset(&ru, 0, sizeof(ru));
            if (::wait4(pid, &status, 0, &ru) != pid)
                continue;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                ok = true;
#if defined(__APPLE__)
                sc.workerPeakRssBytes =
                    static_cast<std::uint64_t>(ru.ru_maxrss);
#else
                sc.workerPeakRssBytes =
                    static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
            }
        }
        // Degraded: the coordinator re-analyzes this range itself
        // when it gets there; the torn tail the crash may have left
        // is dropped by the store's load-time validation.
        sc.degraded = !ok;
    }
}

} // namespace icp
