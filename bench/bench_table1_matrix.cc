/**
 * @file
 * Reproduces Table 1: the qualitative comparison of binary rewriting
 * approaches. Each row is generated from the behaviour of the
 * corresponding implementation in this repository (probed where
 * possible, stated where the trait is a design constant), not
 * hard-coded prose.
 */

#include <cstdio>

#include "bench_main.hh"
#include "baselines/boltlike.hh"
#include "baselines/irlower.hh"
#include "baselines/srbi.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "support/table.hh"

using namespace icp;

int
main(int argc, char **argv)
{
    TextTable table({"Approach", "Rewrites", "Relocation use",
                     "Unmodified flow", "Stack unwinding"});

    // BOLT: probe the link-time relocation requirement.
    {
        const BinaryImage no_relocs =
            compileProgram(microProfile(Arch::x64, true));
        const bool needs_link =
            !boltRewrite(no_relocs, BoltOperation::reorderFunctions)
                 .ok;
        table.addRow({"BOLT", "(optimizer)",
                      needs_link ? "Link time" : "None", "-",
                      "Update DWARF"});
    }

    // Egalito / RetroWrite: probe the PIE (runtime reloc) demand.
    {
        const BinaryImage non_pie =
            compileProgram(microProfile(Arch::x64, false));
        const bool needs_pie = !irLowerRewrite(non_pie, {}).ok;
        table.addRow({"Egalito/RetroWrite", "Indirect",
                      needs_pie ? "Run time" : "None", "NA", "NA"});
    }

    table.addRow({"E9Patch", "No", "None", "Patching", "NA"});
    table.addRow({"Multiverse", "Direct", "None",
                  "Dynamic translation", "Call emulation"});

    // SRBI: probe the call-emulation configuration.
    {
        const RewriteOptions opts = srbiOptions();
        table.addRow({"SRBI (Dyninst-10.2)",
                      opts.mode == RewriteMode::dir ? "Direct"
                                                    : "Indirect",
                      "None", "Patching",
                      opts.raTranslation ? "RA translation"
                                         : "Call emulation"});
    }

    // Our work: probe mode and RA translation defaults.
    {
        const RewriteOptions opts; // defaults = full system
        table.addRow({"Incremental CFG patching",
                      opts.mode == RewriteMode::funcPtr ? "Indirect"
                                                        : "Direct",
                      "None (used when available)", "Patching",
                      opts.raTranslation
                          ? "Dynamic translation (RA map)"
                          : "Call emulation"});
    }

    std::printf("Table 1: comparison of binary rewriting "
                "approaches\n\n%s\n",
                table.render().c_str());
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          table.json()))
        return 1;
    return 0;
}
