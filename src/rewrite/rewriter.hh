/**
 * @file
 * Incremental CFG patching (§3): the top-level rewriter. Analyzes
 * the input binary, relocates instrumentable functions into .instr,
 * computes CFL blocks, runs trampoline placement analysis, installs
 * Table-2 trampolines (with multi-hop chaining and trap fallback),
 * clones jump tables, rewrites function pointers, emits the .ra_map
 * and .trap_map sections, moves the dynamic-linking sections and
 * reuses the retired ones as scratch space, and optionally clobbers
 * the original bytes for the strong correctness test of §8.
 */

#ifndef ICP_REWRITE_REWRITER_HH
#define ICP_REWRITE_REWRITER_HH

#include "analysis/cfg.hh"
#include "rewrite/options.hh"

namespace icp
{

/**
 * Cross-pass context for an incremental re-rewrite. All pointers are
 * borrowed and must outlive the rewriteBinary call. With @c cfg set,
 * the rewriter skips its own CFG construction; with @c previous set,
 * the relocation engine re-emits only @c dirtyFunctions (entries)
 * and splices every other function's bytes from the previous pass,
 * falling back to a full emission when the layout cannot be
 * reproduced. RewriteSession owns the lifecycle; plain callers use
 * the two-argument overload.
 */
struct RewritePass
{
    const CfgModule *cfg = nullptr;
    const RewriteResult *previous = nullptr;
    std::set<Addr> dirtyFunctions;
};

/** Rewrite @p input under @p options. Never throws; check result.ok. */
RewriteResult rewriteBinary(const BinaryImage &input,
                            const RewriteOptions &options);

/** Incremental form: reuse analysis and prior output via @p pass. */
RewriteResult rewriteBinary(const BinaryImage &input,
                            const RewriteOptions &options,
                            const RewritePass &pass);

class SbfSink;

/**
 * Sharded, streaming rewrite (RewriteOptions::shards): analysis runs
 * one address-range shard at a time (warmed by forked worker
 * processes through a shared cache file) and the rewritten image is
 * streamed to @p sink in section/address order instead of being
 * materialized, so peak memory is O(largest shard + reorder window)
 * rather than O(binary). The byte stream written to @p sink is
 * identical to rewriteBinary(...).image.serialize() for the same
 * input and options. result.image is left empty; stats, counter maps
 * and per-shard counters are filled. Never throws; check result.ok.
 */
RewriteResult rewriteBinarySharded(const BinaryImage &input,
                                   const RewriteOptions &options,
                                   SbfSink &sink);

} // namespace icp

#endif // ICP_REWRITE_REWRITER_HH
