
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/dynamic.cc" "src/rewrite/CMakeFiles/icp_rewrite.dir/dynamic.cc.o" "gcc" "src/rewrite/CMakeFiles/icp_rewrite.dir/dynamic.cc.o.d"
  "/root/repo/src/rewrite/engine.cc" "src/rewrite/CMakeFiles/icp_rewrite.dir/engine.cc.o" "gcc" "src/rewrite/CMakeFiles/icp_rewrite.dir/engine.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/rewrite/CMakeFiles/icp_rewrite.dir/rewriter.cc.o" "gcc" "src/rewrite/CMakeFiles/icp_rewrite.dir/rewriter.cc.o.d"
  "/root/repo/src/rewrite/scratch.cc" "src/rewrite/CMakeFiles/icp_rewrite.dir/scratch.cc.o" "gcc" "src/rewrite/CMakeFiles/icp_rewrite.dir/scratch.cc.o.d"
  "/root/repo/src/rewrite/trampoline.cc" "src/rewrite/CMakeFiles/icp_rewrite.dir/trampoline.cc.o" "gcc" "src/rewrite/CMakeFiles/icp_rewrite.dir/trampoline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/icp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/icp_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/icp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/icp_codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
