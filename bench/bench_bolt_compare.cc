/**
 * @file
 * Reproduces the BOLT comparison (§8.3): two code reorderings over
 * the SPEC-like suite on x86-64 — (1) reverse all functions keeping
 * block order, (2) reverse all blocks keeping function order — done
 * by the BOLT-like optimizer and by our rewriter. Expected shape:
 * BOLT refuses function reordering without link-time relocations
 * (even for PIE); block reordering corrupts 10 of 19 binaries; our
 * rewriter performs both reorderings on all 19.
 */

#include <cstdio>

#include "baselines/boltlike.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/verify.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "support/stats.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

bool
runsCorrectly(const BinaryImage &original, const BinaryImage &image)
{
    auto gp = loadImage(original);
    Machine gm(*gp, Machine::Config{});
    const RunResult g = gm.run();
    if (!g.halted)
        return false;
    if (image.entry == 0)
        return false; // corrupted (.interp analog)
    auto proc = loadImage(image);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    const RunResult r = machine.run();
    return r.halted && r.checksum == g.checksum;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("BOLT comparison (§8.3): function and block "
                "reordering, x86-64 SPEC-like suite\n\n");

    unsigned bolt_fn_refused = 0, bolt_fn_refused_pie = 0;
    unsigned bolt_blk_ok = 0, bolt_blk_corrupt = 0;
    unsigned ours_fn_ok = 0, ours_blk_ok = 0;
    SampleStats bolt_size;

    const auto suite = specCpuSuite(Arch::x64, false);
    for (const auto &spec : suite) {
        const BinaryImage img = compileProgram(spec);

        // (1) Function reordering: BOLT needs link-time relocs,
        // which the default build (no -Wl,-q) lacks — and a PIE's
        // runtime relocations do not help.
        if (!boltRewrite(img, BoltOperation::reorderFunctions).ok)
            ++bolt_fn_refused;
        ProgramSpec pie_spec = spec;
        pie_spec.pie = true;
        if (!boltRewrite(compileProgram(pie_spec),
                         BoltOperation::reorderFunctions).ok)
            ++bolt_fn_refused_pie;

        // BOLT with -Wl,-q succeeds structurally (not the paper's
        // configuration; included for completeness).
        // (2) Block reordering: works for 9, corrupts 10.
        ProgramSpec relocs_spec = spec;
        relocs_spec.emitLinkRelocs = true;
        const BinaryImage img_q = compileProgram(relocs_spec);
        const BoltOutcome blk =
            boltRewrite(img_q, BoltOperation::reorderBlocks);
        if (blk.ok && !blk.corrupted &&
            runsCorrectly(img_q, blk.image)) {
            ++bolt_blk_ok;
            bolt_size.add(blk.sizeIncrease(img_q));
        } else {
            ++bolt_blk_corrupt;
        }

        // Our rewriter does both on stock binaries.
        {
            RewriteOptions fn;
            fn.mode = RewriteMode::jt;
            fn.functionOrder = OrderPolicy::reversed;
            fn.clobberOriginal = true;
            const RewriteResult rw = rewriteBinary(img, fn);
            if (rw.ok && runsCorrectly(img, rw.image))
                ++ours_fn_ok;
        }
        {
            RewriteOptions blk_opts;
            blk_opts.mode = RewriteMode::jt;
            blk_opts.blockOrder = OrderPolicy::reversed;
            blk_opts.clobberOriginal = true;
            const RewriteResult rw = rewriteBinary(img, blk_opts);
            if (rw.ok && runsCorrectly(img, rw.image))
                ++ours_blk_ok;
        }
    }

    TextTable table({"Experiment", "BOLT", "Our work"});
    table.addRow({"(1) reverse functions",
                  std::to_string(19 - bolt_fn_refused) +
                      "/19 (refused without -Wl,-q; PIE also "
                      "refused: " +
                      std::to_string(bolt_fn_refused_pie) + "/19)",
                  std::to_string(ours_fn_ok) + "/19"});
    table.addRow({"(2) reverse blocks",
                  std::to_string(bolt_blk_ok) + "/19 (" +
                      std::to_string(bolt_blk_corrupt) +
                      " corrupted)",
                  std::to_string(ours_blk_ok) + "/19"});
    table.addRow({"BOLT size overhead (passing)",
                  bolt_size.empty()
                      ? "-"
                      : formatPercent(bolt_size.mean()) + " mean, " +
                            formatPercent(bolt_size.max()) + " max",
                  "-"});
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: BOLT refuses function reordering without "
                "link-time relocations\n(even for PIE); block "
                "reordering succeeded for 9/19 and corrupted 10;\n"
                "BOLT size overhead 11%% mean / 33%% max; our work "
                "handles 19/19 for both.\n");
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          table.json()))
        return 1;
    return 0;
}
