#include "binfmt/image.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "binfmt/stream_writer.hh"
#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

const char *
sectionKindName(SectionKind kind)
{
    switch (kind) {
      case SectionKind::text: return ".text";
      case SectionKind::rodata: return ".rodata";
      case SectionKind::data: return ".data";
      case SectionKind::bss: return ".bss";
      case SectionKind::dynsym: return ".dynsym";
      case SectionKind::dynstr: return ".dynstr";
      case SectionKind::relaDyn: return ".rela.dyn";
      case SectionKind::ehFrame: return ".eh_frame";
      case SectionKind::instr: return ".instr";
      case SectionKind::raMap: return ".ra_map";
      case SectionKind::trapMap: return ".trap_map";
      case SectionKind::newRodata: return ".newrodata";
      case SectionKind::other: return ".other";
    }
    return "?";
}

Section *
BinaryImage::findSection(const std::string &name)
{
    for (auto &s : sections) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const Section *
BinaryImage::findSection(const std::string &name) const
{
    return const_cast<BinaryImage *>(this)->findSection(name);
}

Section *
BinaryImage::findSection(SectionKind kind)
{
    for (auto &s : sections) {
        if (s.kind == kind)
            return &s;
    }
    return nullptr;
}

const Section *
BinaryImage::findSection(SectionKind kind) const
{
    return const_cast<BinaryImage *>(this)->findSection(kind);
}

const Section *
BinaryImage::sectionAt(Addr a) const
{
    for (const auto &s : sections) {
        if (s.contains(a))
            return &s;
    }
    return nullptr;
}

Section *
BinaryImage::sectionAt(Addr a)
{
    return const_cast<Section *>(std::as_const(*this).sectionAt(a));
}

std::vector<const Symbol *>
BinaryImage::functionSymbols() const
{
    std::vector<const Symbol *> funcs;
    for (const auto &sym : symbols) {
        if (sym.kind == Symbol::Kind::function)
            funcs.push_back(&sym);
    }
    std::sort(funcs.begin(), funcs.end(),
              [](const Symbol *a, const Symbol *b) {
                  return a->addr < b->addr;
              });
    return funcs;
}

const Symbol *
BinaryImage::functionContaining(Addr a) const
{
    const Symbol *best = nullptr;
    for (const auto &sym : symbols) {
        if (sym.kind != Symbol::Kind::function)
            continue;
        if (a >= sym.addr && a < sym.addr + sym.size) {
            if (!best || sym.addr > best->addr)
                best = &sym;
        }
    }
    return best;
}

std::vector<FdeRecord>
BinaryImage::fdeRecords() const
{
    const Section *s = findSection(SectionKind::ehFrame);
    if (!s || s->bytes.empty())
        return {};
    return parseEhFrame(s->bytes);
}

void
BinaryImage::setFdeRecords(const std::vector<FdeRecord> &fdes)
{
    Section *s = findSection(SectionKind::ehFrame);
    icp_assert(s, "image has no .eh_frame");
    s->bytes = serializeEhFrame(fdes);
    s->memSize = s->bytes.size();
}

std::uint64_t
BinaryImage::loadedSize() const
{
    std::uint64_t total = 0;
    for (const auto &s : sections) {
        if (s.loadable)
            total += s.memSize;
    }
    return total;
}

bool
BinaryImage::readBytes(Addr addr, std::size_t len,
                       std::vector<std::uint8_t> &out) const
{
    const Section *s = sectionAt(addr);
    if (!s || addr + len > s->end())
        return false;
    out.resize(len);
    const Offset off = addr - s->addr;
    for (std::size_t i = 0; i < len; ++i) {
        out[i] = (off + i < s->bytes.size()) ? s->bytes[off + i] : 0;
    }
    return true;
}

std::optional<std::uint64_t>
BinaryImage::readValue(Addr addr, unsigned size) const
{
    std::vector<std::uint8_t> raw;
    if (!readBytes(addr, size, raw))
        return std::nullopt;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    return v;
}

bool
BinaryImage::writeBytes(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    Section *s = sectionAt(addr);
    if (!s || addr + bytes.size() > s->end())
        return false;
    const Offset off = addr - s->addr;
    if (off + bytes.size() > s->bytes.size())
        s->bytes.resize(off + bytes.size(), 0);
    std::copy(bytes.begin(), bytes.end(), s->bytes.begin() + off);
    return true;
}

Addr
BinaryImage::highWaterMark(unsigned alignment) const
{
    Addr top = prefBase;
    for (const auto &s : sections)
        top = std::max(top, s.end());
    const Addr mask = alignment - 1;
    return (top + mask) & ~static_cast<Addr>(mask);
}

Section &
BinaryImage::addSection(Section section)
{
    for (const auto &s : sections) {
        const bool overlap = section.addr < s.end() &&
                             s.addr < section.end();
        icp_assert(!overlap, "section %s overlaps %s",
                   section.name.c_str(), s.name.c_str());
    }
    sections.push_back(std::move(section));
    return sections.back();
}

// --- serialization ---------------------------------------------------------

namespace
{

constexpr std::uint32_t sbf_magic = 0x31464253; // "SBF1"

/**
 * Bounds-checked sequential reader over the raw blob. The first
 * out-of-range read records an sbf-truncated issue and latches the
 * failed state; subsequent reads return zeros so the caller can
 * bail out at the next checkpoint without testing every field.
 */
class SbfReader
{
  public:
    SbfReader(const std::vector<std::uint8_t> &raw,
              std::vector<SbfIssue> &issues)
        : raw_(raw), issues_(issues)
    {
    }

    bool failed() const { return failed_; }
    std::size_t pos() const { return pos_; }

    std::uint8_t
    u8()
    {
        if (!need(1, "1-byte field"))
            return 0;
        return raw_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4, "4-byte field"))
            return 0;
        const std::uint32_t v = getU32(raw_.data() + pos_);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8, "8-byte field"))
            return 0;
        const std::uint64_t v = getU64(raw_.data() + pos_);
        pos_ += 8;
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!need(len, "string payload"))
            return {};
        std::string s(
            raw_.begin() + static_cast<std::ptrdiff_t>(pos_),
            raw_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
        pos_ += len;
        return s;
    }

    std::vector<std::uint8_t>
    blob(std::uint32_t len)
    {
        if (!need(len, "section payload"))
            return {};
        std::vector<std::uint8_t> bytes(
            raw_.begin() + static_cast<std::ptrdiff_t>(pos_),
            raw_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
        pos_ += len;
        return bytes;
    }

  private:
    bool
    need(std::uint64_t len, const char *what)
    {
        if (failed_)
            return false;
        if (pos_ + len > raw_.size()) {
            failed_ = true;
            issues_.push_back(
                {"sbf-truncated", pos_,
                 std::string(what) + " runs past end of container"});
            return false;
        }
        return true;
    }

    const std::vector<std::uint8_t> &raw_;
    std::vector<SbfIssue> &issues_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

std::vector<std::uint8_t>
BinaryImage::serialize() const
{
    std::vector<std::uint8_t> out;
    VectorSink sink(out);
    streamImage(*this, sink);
    return out;
}

std::optional<BinaryImage>
BinaryImage::tryDeserialize(const std::vector<std::uint8_t> &raw,
                            std::vector<SbfIssue> &issues)
{
    BinaryImage img;
    SbfReader rd(raw, issues);

    const std::size_t magic_at = rd.pos();
    if (rd.u32() != sbf_magic) {
        if (!rd.failed()) {
            issues.push_back({"sbf-magic", magic_at,
                              "container does not start with SBF1"});
        }
        return std::nullopt;
    }
    img.arch = static_cast<Arch>(rd.u8());
    img.pie = rd.u8() != 0;
    img.prefBase = rd.u64();
    img.entry = rd.u64();
    img.tocBase = rd.u64();
    img.soname = rd.str();
    img.features.cppExceptions = rd.u8();
    img.features.isGo = rd.u8();
    img.features.rustMetadata = rd.u8();
    img.features.symbolVersioning = rd.u8();
    img.features.fortranComponent = rd.u8();

    const std::uint32_t nsec = rd.u32();
    for (std::uint32_t i = 0; i < nsec && !rd.failed(); ++i) {
        Section s;
        const std::size_t at = rd.pos();
        s.name = rd.str();
        s.kind = static_cast<SectionKind>(rd.u8());
        s.addr = rd.u64();
        s.memSize = rd.u64();
        const std::uint8_t flags = rd.u8();
        s.loadable = flags & 1;
        s.executable = flags & 2;
        s.writable = flags & 4;
        s.bytes = rd.blob(rd.u32());
        if (rd.failed())
            break;
        if (s.addr + s.memSize < s.addr) {
            issues.push_back({"sbf-section-bounds", at,
                              "section " + s.name +
                                  " address range wraps"});
        } else if (s.bytes.size() > s.memSize) {
            issues.push_back({"sbf-section-bounds", at,
                              "section " + s.name +
                                  " payload exceeds its memory size"});
        }
        for (const auto &prev : img.sections) {
            const bool overlap = s.addr < prev.end() &&
                                 prev.addr < s.addr + s.memSize;
            if (overlap) {
                issues.push_back({"sbf-section-overlap", at,
                                  "section " + s.name + " overlaps " +
                                      prev.name});
            }
        }
        img.sections.push_back(std::move(s));
    }

    const std::uint32_t nsym = rd.u32();
    for (std::uint32_t i = 0; i < nsym && !rd.failed(); ++i) {
        Symbol sym;
        sym.name = rd.str();
        sym.kind = static_cast<Symbol::Kind>(rd.u8());
        sym.addr = rd.u64();
        sym.size = rd.u64();
        img.symbols.push_back(std::move(sym));
    }

    const std::uint32_t nrel = rd.u32();
    for (std::uint32_t i = 0; i < nrel && !rd.failed(); ++i) {
        Relocation rel;
        rel.site = rd.u64();
        rel.addend = static_cast<std::int64_t>(rd.u64());
        img.relocs.push_back(rel);
    }

    const std::uint32_t nlrel = rd.u32();
    for (std::uint32_t i = 0; i < nlrel && !rd.failed(); ++i) {
        LinkReloc rel;
        rel.site = rd.u64();
        rel.symbol = rd.str();
        rel.addend = static_cast<std::int64_t>(rd.u64());
        img.linkRelocs.push_back(std::move(rel));
    }

    if (rd.failed() || !issues.empty())
        return std::nullopt;
    return img;
}

BinaryImage
BinaryImage::deserialize(const std::vector<std::uint8_t> &raw)
{
    std::vector<SbfIssue> issues;
    auto img = tryDeserialize(raw, issues);
    if (!img) {
        if (issues.empty())
            issues.push_back({"sbf-truncated", 0, "empty container"});
        const SbfIssue &first = issues.front();
        icp_fatal("SBF load failed: [%s] %s (offset %zu)",
                  first.rule.c_str(), first.message.c_str(),
                  first.offset);
    }
    return std::move(*img);
}

} // namespace icp
