file(REMOVE_RECURSE
  "libicp_binfmt.a"
)
