/**
 * @file
 * Reproduces Table 3: block-level empty instrumentation over the
 * 19-benchmark SPEC-CPU-2017-like suite on all three ISAs, for SRBI
 * (Dyninst-10.2), our three modes (dir / jt / func-ptr), and the
 * IR-lowering baseline (Egalito-like, x86-64 + PIE only, as in the
 * paper). Reports time overhead (max/mean), instrumentation coverage
 * (min/mean), size increase (max/mean), and the number of passing
 * benchmarks.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/instpatch.hh"
#include "baselines/irlower.hh"
#include "baselines/srbi.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "support/stats.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

struct ToolAgg
{
    SampleStats overhead;
    SampleStats coverage;
    SampleStats size;
    unsigned pass = 0;
    unsigned attempted = 0;

    /**
     * Summed static-verifier error findings over the tool's timing
     * artifacts ("lint err" column); -1 when the tool bypasses the
     * harness and is never linted (E9Patch/Egalito-style rows).
     */
    long lintErrors = -1;
};

void
addRow(TextTable &table, const std::string &name, const ToolAgg &agg,
       unsigned total)
{
    auto pct = [](double v) { return formatPercent(v); };
    table.addRow({
        name,
        agg.overhead.empty() ? "-" : pct(agg.overhead.max()),
        agg.overhead.empty() ? "-" : pct(agg.overhead.mean()),
        agg.coverage.empty() ? "-" : pct(agg.coverage.min()),
        agg.coverage.empty() ? "-" : pct(agg.coverage.mean()),
        agg.size.empty() ? "-" : pct(agg.size.max()),
        agg.size.empty() ? "-" : pct(agg.size.mean()),
        agg.lintErrors < 0 ? "-" : std::to_string(agg.lintErrors),
        std::to_string(agg.pass) + "/" + std::to_string(total),
    });
}

RewriteOptions
modeOptions(RewriteMode mode)
{
    RewriteOptions opts;
    opts.mode = mode;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    icp::bench::JsonSections sections;
    std::printf("Table 3: block-level empty instrumentation "
                "(SPEC-CPU-2017-like suite, 19 benchmarks)\n\n");

    const Machine::Config mc{};

    for (Arch arch : all_arches) {
        const auto suite = specCpuSuite(arch, false);

        TextTable table({archName(arch), "time max", "time mean",
                         "cov min", "cov mean", "size max",
                         "size mean", "lint err", "pass"});

        // SRBI / Dyninst-10.2.
        ToolAgg srbi;
        srbi.lintErrors = 0;
        for (const auto &spec : suite) {
            const BinaryImage img = compileProgram(spec);
            if (srbiRefuses(img)) {
                continue; // failed benchmark
            }
            ++srbi.attempted;
            const ToolRun run =
                runBlockLevelExperiment(img, srbiOptions(), mc);
            srbi.coverage.add(run.coverage);
            srbi.lintErrors += run.lintErrors;
            if (!run.pass)
                continue;
            if (srbiSignalBugTriggered(run.rewrittenRun.traps)) {
                std::fprintf(stderr,
                             "  %s SRBI %s: signal-delivery bug "
                             "(%llu traps)\n",
                             archName(arch), spec.name.c_str(),
                             static_cast<unsigned long long>(
                                 run.rewrittenRun.traps));
                continue;
            }
            ++srbi.pass;
            srbi.overhead.add(run.overhead);
            srbi.size.add(run.sizeIncrease);
        }
        addRow(table, "SRBI", srbi,
               static_cast<unsigned>(suite.size()));

        // Our three modes.
        for (RewriteMode mode :
             {RewriteMode::dir, RewriteMode::jt,
              RewriteMode::funcPtr}) {
            ToolAgg agg;
            agg.lintErrors = 0;
            for (const auto &spec : suite) {
                const BinaryImage img = compileProgram(spec);
                ++agg.attempted;
                const ToolRun run = runBlockLevelExperiment(
                    img, modeOptions(mode), mc);
                agg.coverage.add(run.coverage);
                agg.lintErrors += run.lintErrors;
                if (!run.pass) {
                    std::fprintf(stderr, "  %s %s %s FAILED: %s\n",
                                 archName(arch),
                                 rewriteModeName(mode),
                                 spec.name.c_str(),
                                 run.failReason.c_str());
                    continue;
                }
                ++agg.pass;
                agg.overhead.add(run.overhead);
                agg.size.add(run.sizeIncrease);
            }
            addRow(table, rewriteModeName(mode), agg,
                   static_cast<unsigned>(suite.size()));
        }

        // Instruction patching (E9Patch-like), x86-64 only. The
        // paper references E9Patch's SPEC 2006 numbers (110.81%
        // mean, 359.59% max overhead; 57% / 103.75% size).
        if (arch == Arch::x64) {
            ToolAgg e9;
            for (const auto &spec : suite) {
                const BinaryImage img = compileProgram(spec);
                const RewriteResult patched = instPatchRewrite(
                    img, InstrumentationSpec{});
                if (!patched.ok)
                    continue;
                ++e9.attempted;
                e9.coverage.add(patched.stats.coverage());

                auto gp = loadImage(img);
                Machine gm(*gp, mc);
                const RunResult g = gm.run();
                auto proc = loadImage(patched.image);
                RuntimeLib rt(proc->module);
                Machine machine(*proc, mc);
                machine.attachRuntimeLib(&rt);
                const RunResult r = machine.run();
                // Exception binaries crash here: stubs are invisible
                // to the unwinder (Table 1's "NA").
                if (!g.halted || !r.halted ||
                    g.checksum != r.checksum)
                    continue;
                ++e9.pass;
                e9.overhead.add(static_cast<double>(r.cycles) /
                                    static_cast<double>(g.cycles) -
                                1.0);
                e9.size.add(patched.stats.sizeIncrease());
            }
            addRow(table, "E9Patch-style", e9,
                   static_cast<unsigned>(suite.size()));
        }

        // IR lowering (Egalito-like): x86-64 with -pie, as in the
        // paper's comparison (they could not build it on aarch64 and
        // it does not support ppc64le).
        if (arch == Arch::x64) {
            ToolAgg egalito;
            const auto pie_suite = specCpuSuite(arch, true);
            for (const auto &spec : pie_suite) {
                const BinaryImage img = compileProgram(spec);
                const RewriteResult lowered =
                    irLowerRewrite(img, InstrumentationSpec{});
                if (!lowered.ok)
                    continue; // C++-exception benchmarks fail
                ++egalito.attempted;

                auto golden_proc = loadImage(img);
                Machine golden(*golden_proc, mc);
                const RunResult g = golden.run();

                auto proc = loadImage(lowered.image);
                Machine machine(*proc, mc);
                const RunResult r = machine.run();
                if (!g.halted || !r.halted ||
                    g.checksum != r.checksum)
                    continue;
                ++egalito.pass;
                egalito.overhead.add(
                    static_cast<double>(r.cycles) /
                        static_cast<double>(g.cycles) - 1.0);
                egalito.coverage.add(1.0);
                egalito.size.add(lowered.stats.sizeIncrease());
            }
            addRow(table, "Egalito (PIE)", egalito,
                   static_cast<unsigned>(pie_suite.size()));
        }

        std::printf("%s\n", table.render().c_str());
        sections.add(archName(arch), table.json());
    }

    std::printf(
        "Paper shape: SRBI fails benchmarks and trails in coverage;\n"
        "dir > jt > func-ptr in overhead with func-ptr near zero;\n"
        "IR lowering near/below zero but fails C++ exceptions;\n"
        "patching size increase ~60-105%%, IR lowering far smaller.\n");
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          sections.str()))
        return 1;
    return 0;
}
