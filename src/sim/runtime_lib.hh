/**
 * @file
 * The injected runtime library — the LD_PRELOAD analog. It parses
 * the .trap_map and .ra_map sections out of the rewritten binary and
 * provides the trap-signal handler and the return-address
 * translation routine (RATranslation, §6) that the simulator invokes
 * on traps and during stack unwinding.
 */

#ifndef ICP_SIM_RUNTIME_LIB_HH
#define ICP_SIM_RUNTIME_LIB_HH

#include <optional>

#include "binfmt/addr_map.hh"
#include "sim/loader.hh"

namespace icp
{

/** Runtime-library service numbers used by CallRt instructions. */
enum class RtService : std::uint8_t
{
    nop = 0,
    /** Increment instrumentation counter #arg. */
    count = 1,
    /**
     * Translate the code pointer stored at [sp + arg*8] from
     * relocated space to original space (Go findfunc/pcvalue entry
     * instrumentation, §6.2).
     */
    raXlatStackSlot = 2,
};

/** Pack a CallRt immediate: 4-bit service, 20-bit argument. */
inline std::uint32_t
rtServiceImm(RtService svc, std::uint32_t arg)
{
    return (static_cast<std::uint32_t>(svc) << 20) | (arg & 0xfffff);
}

inline RtService
rtServiceOf(std::uint32_t imm)
{
    return static_cast<RtService>(imm >> 20);
}

inline std::uint32_t
rtServiceArg(std::uint32_t imm)
{
    return imm & 0xfffff;
}

class RuntimeLib
{
  public:
    /** Extract maps from the loaded module's rewritten image. */
    explicit RuntimeLib(const LoadedModule &mod);

    /**
     * Dynamic-attach form (§10): extract maps straight from a
     * rewritten image patched into an already-running process whose
     * module descriptor still names the original image.
     */
    explicit RuntimeLib(const BinaryImage &rewritten);

    bool hasTrapMap() const { return !trapMap_.empty(); }
    bool hasRaMap() const { return !raMap_.empty(); }

    /**
     * Trap-signal handler: map a trap site (preferred-base address)
     * to the relocated-code target. nullopt means the trap was not
     * planted by the rewriter — a genuine crash.
     */
    std::optional<Addr> trapTarget(Addr prefPc) const;

    /**
     * RATranslation: translate a relocated return address back to
     * the original call site. Unknown addresses pass through, which
     * is the defined behaviour when unwinding through uninstrumented
     * code (§6).
     */
    Addr translateRaPref(Addr prefPc) const;

  private:
    AddrPairMap trapMap_;
    AddrPairMap raMap_;
};

} // namespace icp

#endif // ICP_SIM_RUNTIME_LIB_HH
