/**
 * @file
 * Selective instrumentation and the §4.2 reachability-pruning
 * extension: instrument a handful of chosen blocks, prune
 * trampolines at CFL blocks that cannot reach them, and show the
 * counters agree exactly with an unpruned (fully verified) rewrite
 * while far fewer trampolines are installed.
 */

#include <gtest/gtest.h>

#include "analysis/builder.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

RunResult
runRewritten(const BinaryImage &img)
{
    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    return machine.run();
}

/** Pick a few block addresses inside one function. */
std::set<Addr>
pickBlocks(const BinaryImage &img, const std::string &func_name,
           unsigned count)
{
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    std::set<Addr> chosen;
    for (const auto &[entry, func] : cfg.functions) {
        if (func.name != func_name)
            continue;
        for (const auto &[start, block] : func.blocks) {
            chosen.insert(start);
            if (chosen.size() >= count)
                break;
        }
    }
    EXPECT_EQ(chosen.size(), count);
    return chosen;
}

} // namespace

TEST(Selective, OnlyChosenBlocksGetCounters)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.instrumentation.countBlocks = true;
    opts.instrumentation.onlyBlocks = pickBlocks(img, "worker", 3);
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);
    EXPECT_EQ(rw.blockCounters.size(), 3u);
    for (const auto &[block, id] : rw.blockCounters)
        EXPECT_TRUE(opts.instrumentation.onlyBlocks.count(block));
}

TEST(Selective, PruningDropsTrampolinesButKeepsCounts)
{
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[0]);
    const std::set<Addr> chosen =
        pickBlocks(img, "600.perlbench_h1", 2);

    RewriteOptions base;
    base.mode = RewriteMode::jt;
    base.instrumentation.countBlocks = true;
    base.instrumentation.onlyBlocks = chosen;

    RewriteOptions pruned = base;
    pruned.reachabilityPruning = true;

    const RewriteResult full = rewriteBinary(img, base);
    const RewriteResult lean = rewriteBinary(img, pruned);
    ASSERT_TRUE(full.ok && lean.ok);
    EXPECT_LT(lean.stats.trampolines, full.stats.trampolines / 2);

    const RunResult full_run = runRewritten(full.image);
    const RunResult lean_run = runRewritten(lean.image);
    ASSERT_TRUE(full_run.halted) << full_run.describe();
    ASSERT_TRUE(lean_run.halted) << lean_run.describe();
    EXPECT_EQ(full_run.checksum, lean_run.checksum);

    // Identical counter values: pruning never loses an execution.
    for (const auto &[block, id] : full.blockCounters) {
        auto it = lean.blockCounters.find(block);
        ASSERT_NE(it, lean.blockCounters.end());
        const std::uint64_t a =
            id < full_run.counters.size() ? full_run.counters[id]
                                          : 0;
        const std::uint64_t b =
            it->second < lean_run.counters.size()
                ? lean_run.counters[it->second]
                : 0;
        EXPECT_EQ(a, b) << std::hex << block;
        EXPECT_GT(a, 0u);
    }
    // The pruned run also bounces less.
    EXPECT_LE(lean_run.cycles, full_run.cycles);
}

TEST(Selective, EntryCountersKeptForInstrumentedCallees)
{
    // Pruning must never drop the entry trampoline of a function
    // whose entry carries a counter — calls from pruned original
    // code still migrate there.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.instrumentation.countFunctionEntries = true;
    opts.reachabilityPruning = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);

    auto gp = loadImage(img);
    Machine::Config cfg;
    cfg.recordTransferTargets = true;
    Machine golden(*gp, cfg);
    const RunResult g = golden.run();

    const RunResult r = runRewritten(rw.image);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, g.checksum);
    for (const auto &[entry, id] : rw.entryCounters) {
        const std::uint64_t counted =
            id < r.counters.size() ? r.counters[id] : 0;
        auto it = g.transferTargets.find(entry);
        const std::uint64_t native =
            it == g.transferTargets.end() ? 0 : it->second;
        EXPECT_EQ(counted, native) << std::hex << entry;
    }
}

TEST(Selective, PruningRejectsClobbering)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.reachabilityPruning = true;
    opts.clobberOriginal = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    EXPECT_FALSE(rw.ok);
}

TEST(Selective, NoInstrumentationMeansNoTrampolines)
{
    // With empty instrumentation and pruning, nothing needs to run
    // in relocated code at all.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.reachabilityPruning = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);
    EXPECT_EQ(rw.stats.trampolines, 0u);
    const RunResult r = runRewritten(rw.image);
    EXPECT_TRUE(r.halted) << r.describe();
}
