/**
 * @file
 * Performance-shape regression tests: the paper's headline orderings
 * captured as assertions over the deterministic cycle model, on a
 * small slice of the suite so they run fast under ctest.
 *
 *   dir >= jt >= func-ptr overhead (Table 3);
 *   placement analysis never increases trampolines;
 *   jt removes the switch-target bouncing on switch-heavy code;
 *   the Diogenes speedup direction (mainstream per-block >> ours).
 */

#include <gtest/gtest.h>

#include "baselines/srbi.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "rewrite/rewriter.hh"

using namespace icp;

namespace
{

double
overheadOf(const BinaryImage &img, RewriteMode mode)
{
    RewriteOptions opts;
    opts.mode = mode;
    const ToolRun run =
        runBlockLevelExperiment(img, opts, Machine::Config{});
    EXPECT_TRUE(run.pass) << run.failReason;
    return run.overhead;
}

} // namespace

TEST(Shape, ModeStaircaseOnSwitchHeavyCode)
{
    // 602.gcc-like: dense switch usage makes the staircase visible.
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[1]);
    const double dir = overheadOf(img, RewriteMode::dir);
    const double jt = overheadOf(img, RewriteMode::jt);
    const double fp = overheadOf(img, RewriteMode::funcPtr);
    EXPECT_GT(dir, jt);
    EXPECT_GE(jt, fp);
    EXPECT_LT(fp, 0.02); // func-ptr near zero
    EXPECT_GT(dir, 0.005); // dir pays for switch bouncing
}

TEST(Shape, IndirectCallHeavyCodeNeedsFuncPtrMode)
{
    // 623.xalancbmk-like: many indirect calls; jt still bounces at
    // function entries, func-ptr does not.
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[8]);
    const double jt = overheadOf(img, RewriteMode::jt);
    const double fp = overheadOf(img, RewriteMode::funcPtr);
    EXPECT_GT(jt, fp);
}

TEST(Shape, SrbiCostsMoreThanDirEverywhereItWorks)
{
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[3]); // mcf
    ASSERT_FALSE(srbiRefuses(img).has_value());
    const ToolRun srbi = runBlockLevelExperiment(
        img, srbiOptions(), Machine::Config{});
    ASSERT_TRUE(srbi.pass) << srbi.failReason;
    RewriteOptions dir_opts;
    dir_opts.mode = RewriteMode::dir;
    const ToolRun dir = runBlockLevelExperiment(
        img, dir_opts, Machine::Config{});
    ASSERT_TRUE(dir.pass);
    EXPECT_GT(srbi.overhead, dir.overhead);
    EXPECT_GT(srbi.stats.trampolines, dir.stats.trampolines);
}

TEST(Shape, PpcRangePressureIsMultiHopNotTrap)
{
    // The 40 MB-rodata gcc workload on ppc64le: our dir mode chains
    // through scratch space rather than trapping.
    const auto suite = specCpuSuite(Arch::ppc64le, false);
    const BinaryImage img = compileProgram(suite[1]);
    RewriteOptions opts;
    opts.mode = RewriteMode::dir;
    const ToolRun run =
        runBlockLevelExperiment(img, opts, Machine::Config{});
    ASSERT_TRUE(run.pass) << run.failReason;
    EXPECT_GT(run.stats.multiHopTramps, 50u);
    EXPECT_EQ(run.stats.trapTramps, 0u);
    EXPECT_LT(run.overhead, 0.20);
}

TEST(Shape, DiogenesDirectionHolds)
{
    const BinaryImage img = compileProgram(libcudaProfile());
    std::set<std::string> subset;
    for (const Symbol *sym : img.functionSymbols()) {
        if (sym->name.rfind("cu_api", 0) == 0)
            subset.insert(sym->name);
        else if (sym->name.rfind("cu_f", 0) == 0 &&
                 std::stoul(sym->name.substr(4)) < 170)
            subset.insert(sym->name);
    }

    RewriteOptions mainstream = srbiOptions();
    mainstream.onlyFunctions = subset;
    const RewriteResult main_rw = rewriteBinary(img, mainstream);
    ASSERT_TRUE(main_rw.ok);

    RewriteOptions ours;
    ours.mode = RewriteMode::jt;
    ours.onlyFunctions = subset;
    const RewriteResult ours_rw = rewriteBinary(img, ours);
    ASSERT_TRUE(ours_rw.ok);

    // Trap trampolines are the mechanism (§9).
    EXPECT_GT(main_rw.stats.trapTramps, 100u);
    EXPECT_EQ(ours_rw.stats.trapTramps, 0u);
}
