#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>

#include <fcntl.h>
#include <limits.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/cache.hh"
#include "analysis/datadeps.hh"
#include "support/thread_pool.hh"
#include "verify/lint.hh"

namespace icp
{

namespace
{

/** Canonical session key: realpath when resolvable, raw otherwise. */
std::string
canonicalPath(const std::string &path)
{
    char buf[PATH_MAX];
    if (realpath(path.c_str(), buf) != nullptr)
        return buf;
    return path;
}

bool
readFileBytes(const std::string &path,
              std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return true;
}

bool
statStamp(const std::string &path, std::uint64_t &mtime_ns,
          std::uint64_t &size)
{
    struct stat st;
    if (stat(path.c_str(), &st) != 0)
        return false;
    mtime_ns = static_cast<std::uint64_t>(st.st_mtim.tv_sec) *
                   1000000000ull +
               static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
    size = static_cast<std::uint64_t>(st.st_size);
    return true;
}

ServeMessage
errorReply(const std::string &code, const std::string &message)
{
    ServeMessage reply;
    reply.verb = "error";
    reply.set("code", code);
    reply.set("error", message);
    ServeCounters::global().errors.fetch_add(
        1, std::memory_order_relaxed);
    return reply;
}

/** Session options carried as request fields (the client encodes
 *  its rewrite flags this way; defaults mirror `icp rewrite`). */
RewriteOptions
optionsFromRequest(const ServeMessage &request, unsigned def_threads)
{
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    const std::string mode = request.get("mode");
    if (mode == "dir")
        opts.mode = RewriteMode::dir;
    else if (mode == "func-ptr")
        opts.mode = RewriteMode::funcPtr;
    opts.threads = static_cast<unsigned>(
        request.getU64("threads", def_threads));
    opts.instrumentation.countBlocks =
        request.getU64("count_blocks") != 0;
    opts.instrumentation.countFunctionEntries =
        request.getU64("count_entries") != 0;
    opts.raTranslation = request.getU64("call_emulation") == 0;
    opts.clobberOriginal = request.getU64("clobber") != 0;
    opts.useAnalysisCache = request.getU64("no_cache") == 0;
    opts.cachePath = request.get("cache_file");
    opts.cacheMaxBytes = request.getU64("cache_max_bytes");
    // The selective splice on loadInput needs the manifest.
    opts.lint = true;
    return opts;
}

std::optional<Severity>
severityFromField(const std::string &name)
{
    if (name.empty() || name == "error")
        return Severity::error;
    if (name == "warning")
        return Severity::warning;
    if (name == "info")
        return Severity::info;
    return std::nullopt;
}

} // namespace

ServeServer::ServeServer(ServeOptions options)
    : opts_(std::move(options)), lockPath_(opts_.socketPath + ".lock")
{
}

ServeServer::~ServeServer()
{
    if (listenFd_ >= 0)
        close(listenFd_);
    for (int fd : drainPipe_) {
        if (fd >= 0)
            close(fd);
    }
    if (lockFd_ >= 0)
        close(lockFd_);
}

bool
ServeServer::start(std::string &error)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.empty() ||
        opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path empty or too long";
        return false;
    }
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size());

    // The lock file is the liveness oracle: flock is released by the
    // kernel on any process death (including SIGKILL), so holding it
    // proves no other daemon owns the socket path, and a leftover
    // socket file from a killed daemon is provably stale.
    lockFd_ = open(lockPath_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                   0600);
    if (lockFd_ < 0) {
        error = std::string("cannot open ") + lockPath_ + ": " +
                std::strerror(errno);
        return false;
    }
    if (flock(lockFd_, LOCK_EX | LOCK_NB) != 0) {
        error = std::string("another daemon holds ") + lockPath_;
        close(lockFd_);
        lockFd_ = -1;
        return false;
    }
    (void)unlink(opts_.socketPath.c_str()); // stale socket, if any

    listenFd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
        error = std::string("socket failed: ") +
                std::strerror(errno);
        return false;
    }
    if (bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(listenFd_, 64) != 0) {
        error = std::string("cannot listen on ") + opts_.socketPath +
                ": " + std::strerror(errno);
        return false;
    }
    if (pipe2(drainPipe_, O_CLOEXEC) != 0) {
        error = std::string("pipe failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

void
ServeServer::requestDrain()
{
    draining_.store(true, std::memory_order_release);
    if (drainPipe_[1] >= 0) {
        const char byte = 'd';
        // Async-signal-safe wakeup for the accept loop's poll.
        ssize_t ignored = write(drainPipe_[1], &byte, 1);
        (void)ignored;
    }
}

int
ServeServer::run()
{
    int rc = 0;
    while (!draining_.load(std::memory_order_acquire)) {
        struct pollfd pfds[2];
        pfds[0].fd = listenFd_;
        pfds[0].events = POLLIN;
        pfds[0].revents = 0;
        pfds[1].fd = drainPipe_[0];
        pfds[1].events = POLLIN;
        pfds[1].revents = 0;
        const int n = poll(pfds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            rc = 1;
            break;
        }
        if (pfds[1].revents != 0 ||
            draining_.load(std::memory_order_acquire))
            break;
        if (pfds[0].revents == 0)
            continue;
        const int fd =
            accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            rc = 1;
            break;
        }
        bool reject = false;
        {
            std::lock_guard<std::mutex> lock(inflightMu_);
            if (opts_.maxPending != 0 &&
                inflight_ >= opts_.maxPending)
                reject = true;
            else
                ++inflight_;
        }
        if (reject) {
            // Shed load at the door: drain the request frame (tiny,
            // normally already buffered — and reading it first keeps
            // the client's send from racing our close), answer with
            // a structured busy error, hang up. Not counted as an
            // error — the request was never processed. The read is
            // capped well under the request timeout; a rejecting
            // server must keep accepting.
            ServeCounters::global().rejected.fetch_add(
                1, std::memory_order_relaxed);
            ServeMessage shed_req;
            std::string shed_err;
            const int cap =
                opts_.requestTimeoutMs <= 0
                    ? 1000
                    : std::min(opts_.requestTimeoutMs, 1000);
            (void)readServeFrame(fd, shed_req, cap, shed_err);
            ServeMessage busy;
            busy.verb = "error";
            busy.set("code", "busy");
            busy.set("error",
                     "server at --max-pending capacity; retry");
            writeServeFrame(fd, busy, opts_.requestTimeoutMs);
            close(fd);
            continue;
        }
        ThreadPool::shared().submit([this, fd] {
            handleConnection(fd);
            {
                std::lock_guard<std::mutex> lock(inflightMu_);
                --inflight_;
            }
            inflightCv_.notify_all();
        });
    }

    // Drain: refuse new connections, let in-flight requests finish.
    close(listenFd_);
    listenFd_ = -1;
    {
        std::unique_lock<std::mutex> lock(inflightMu_);
        inflightCv_.wait(lock, [&] { return inflight_ == 0; });
    }

    // Delta-save every session's on-disk cache (each rewrite already
    // saved, so these are cheap no-op appends unless a session died
    // mid-request).
    std::set<std::pair<std::string, std::uint64_t>> cache_paths;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        for (const auto &[key, resident] : sessions_) {
            (void)key;
            if (!resident->opts.cachePath.empty())
                cache_paths.emplace(resident->opts.cachePath,
                                    resident->opts.cacheMaxBytes);
        }
    }
    for (const auto &[path, max_bytes] : cache_paths)
        AnalysisCache::global().save(path, max_bytes);

    (void)unlink(opts_.socketPath.c_str());
    (void)unlink(lockPath_.c_str());
    return rc;
}

void
ServeServer::handleConnection(int fd)
{
    ServeCounters &counters = ServeCounters::global();
    for (;;) {
        ServeMessage request;
        std::string error;
        const FrameStatus status = readServeFrame(
            fd, request, opts_.requestTimeoutMs, error);
        if (status == FrameStatus::closed)
            break;
        if (status != FrameStatus::ok) {
            // Structured reply, never a crash: tell the client what
            // was wrong with its frame, then drop the connection
            // (framing is unrecoverable mid-stream).
            if (status == FrameStatus::timeout)
                counters.timeouts.fetch_add(
                    1, std::memory_order_relaxed);
            else
                counters.badFrames.fetch_add(
                    1, std::memory_order_relaxed);
            writeServeFrame(
                fd, errorReply(frameStatusName(status), error),
                opts_.requestTimeoutMs);
            break;
        }

        const auto t0 = std::chrono::steady_clock::now();
        ServeMessage reply = handleRequest(request);
        const auto t1 = std::chrono::steady_clock::now();
        noteLatency(
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());

        if (!writeServeFrame(fd, reply, opts_.requestTimeoutMs))
            break;
        if (request.verb == "shutdown") {
            requestDrain();
            break;
        }
        // Finish the request that was in flight, but don't serve
        // another one once a drain began.
        if (draining_.load(std::memory_order_acquire))
            break;
    }
    close(fd);
}

ServeMessage
ServeServer::handleRequest(const ServeMessage &request)
{
    StageTimer timer(Stage::serve);
    ServeCounters::global().requests.fetch_add(
        1, std::memory_order_relaxed);
    // Test hook: stretch request handling so drain tests can catch
    // a request reliably in flight. Read per request (tests toggle
    // it between cases within one process).
    const char *delay_env = std::getenv("ICP_SERVE_TEST_DELAY_MS");
    const int test_delay_ms =
        delay_env != nullptr ? std::atoi(delay_env) : 0;
    if (test_delay_ms > 0)
        usleep(static_cast<useconds_t>(test_delay_ms) * 1000);
    try {
        if (request.verb == "ping") {
            ServeMessage reply;
            reply.verb = "ok";
            reply.set("pong", std::uint64_t{1});
            return reply;
        }
        if (request.verb == "shutdown") {
            ServeMessage reply;
            reply.verb = "ok";
            reply.set("draining", std::uint64_t{1});
            return reply;
        }
        if (request.verb == "open")
            return handleOpen(request);
        if (request.verb == "rewrite")
            return handleRewrite(request);
        if (request.verb == "lint")
            return handleLint(request);
        if (request.verb == "repair")
            return handleRepair(request);
        if (request.verb == "deps")
            return handleDeps(request);
        if (request.verb == "stats")
            return handleStats(request);
        return errorReply("bad-verb",
                          "unknown verb: " + request.verb);
    } catch (const std::exception &e) {
        return errorReply("internal", e.what());
    } catch (...) {
        return errorReply("internal", "unknown exception");
    }
}

std::shared_ptr<ServeServer::Resident>
ServeServer::ensureResident(const std::string &path,
                            const ServeMessage &request, bool &warm,
                            std::string &error)
{
    const std::string key = canonicalPath(path);
    ServeCounters &counters = ServeCounters::global();
    std::shared_ptr<Resident> resident;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        auto it = sessions_.find(key);
        if (it != sessions_.end()) {
            warm = true;
            counters.sessionHits.fetch_add(
                1, std::memory_order_relaxed);
            it->second->lastUse = ++tick_;
            return it->second;
        }
    }
    // Miss: validate the file exists before inserting.
    std::uint64_t mtime_ns = 0, size = 0;
    if (!statStamp(key, mtime_ns, size)) {
        error = "cannot stat " + path;
        return nullptr;
    }
    warm = false;
    counters.sessionMisses.fetch_add(1, std::memory_order_relaxed);
    resident = std::make_shared<Resident>();
    resident->key = key;
    resident->opts =
        optionsFromRequest(request, opts_.threads);
    resident->residentBytes = size;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        auto [it, inserted] = sessions_.emplace(key, resident);
        if (!inserted)
            resident = it->second; // lost a race; reuse the winner
        it->second->lastUse = ++tick_;
    }
    evictOverBudget(resident.get());
    return resident;
}

void
ServeServer::evictOverBudget(const Resident *keep)
{
    if (opts_.sessionMaxBytes == 0 && opts_.maxSessions == 0)
        return;
    std::lock_guard<std::mutex> lock(registryMu_);
    for (;;) {
        std::uint64_t total = 0;
        for (const auto &[key, resident] : sessions_) {
            (void)key;
            total += resident->residentBytes;
        }
        const bool over_bytes = opts_.sessionMaxBytes != 0 &&
                                total > opts_.sessionMaxBytes;
        const bool over_count =
            opts_.maxSessions != 0 &&
            sessions_.size() > opts_.maxSessions;
        if ((!over_bytes && !over_count) || sessions_.size() <= 1)
            return;
        // Least-recently-used first, never the session in use.
        auto victim = sessions_.end();
        for (auto it = sessions_.begin(); it != sessions_.end();
             ++it) {
            if (it->second.get() == keep)
                continue;
            if (victim == sessions_.end() ||
                it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == sessions_.end())
            return;
        // Handlers still holding the shared_ptr finish safely; the
        // session is simply no longer resident for future requests.
        sessions_.erase(victim);
        ServeCounters::global().evictions.fetch_add(
            1, std::memory_order_relaxed);
    }
}

bool
ServeServer::refreshResident(Resident &resident, ServeMessage &reply,
                             std::string &error)
{
    std::uint64_t mtime_ns = 0, size = 0;
    if (!statStamp(resident.key, mtime_ns, size)) {
        error = "cannot stat " + resident.key;
        return false;
    }
    const bool stamp_changed = mtime_ns != resident.stampMtimeNs ||
                               size != resident.stampSize;

    if (resident.everRewritten && !stamp_changed) {
        // Fully warm: the previous result (and its serialized
        // bytes) stand; the request costs no analysis at all.
        const RewriteStats &stats =
            resident.session->lastResult().stats;
        reply.set("incremental", std::uint64_t{1});
        reply.set("cached", std::uint64_t{1});
        reply.set("dirty", std::uint64_t{0});
        reply.set("emitted", std::uint64_t{0});
        reply.set("reused",
                  std::uint64_t{stats.instrumentedFunctions});
        reply.set("functions", std::uint64_t{stats.totalFunctions});
        return true;
    }

    std::vector<std::uint8_t> raw;
    if (!readFileBytes(resident.key, raw)) {
        error = "cannot read " + resident.key;
        return false;
    }
    std::vector<SbfIssue> issues;
    auto img = BinaryImage::tryDeserialize(raw, issues);
    if (!img) {
        error = "not a valid SBF image: " + resident.key;
        if (!issues.empty())
            error += " [" + issues.front().rule + "] " +
                     issues.front().message;
        return false;
    }

    std::uint64_t dirty = 0, emitted = 0;
    bool incremental = false;
    if (!resident.everRewritten) {
        resident.session =
            std::make_unique<RewriteSession>(std::move(*img));
        const RewriteResult &rw =
            resident.session->rewrite(resident.opts);
        if (!rw.ok) {
            error = "rewrite failed: " + rw.failReason;
            resident.session.reset();
            return false;
        }
        emitted = rw.stats.relocEmittedFunctions;
        resident.everRewritten = true;
    } else {
        const auto outcome =
            resident.session->loadInput(std::move(*img));
        incremental = outcome.incremental;
        dirty = outcome.dirtyFunctions.size();
        if (!outcome.incremental) {
            // Not diffable (layout/symbols changed): the session
            // reset; run a fresh rewrite on the new input.
            const RewriteResult &rw =
                resident.session->rewrite(resident.opts);
            if (!rw.ok) {
                error = "rewrite failed: " + rw.failReason;
                return false;
            }
            emitted = rw.stats.relocEmittedFunctions;
        } else {
            if (!resident.session->lastResult().ok) {
                error = "incremental rewrite failed: " +
                        resident.session->lastResult().failReason;
                return false;
            }
            emitted = dirty == 0
                          ? 0
                          : resident.session->lastResult()
                                .stats.relocEmittedFunctions;
        }
    }

    const RewriteResult &rw = resident.session->lastResult();
    resident.outputBytes = rw.image.serialize();
    resident.stampMtimeNs = mtime_ns;
    resident.stampSize = size;
    resident.residentBytes =
        size + resident.outputBytes.size() + (64u << 10);

    reply.set("incremental", std::uint64_t{incremental ? 1u : 0u});
    reply.set("cached", std::uint64_t{0});
    reply.set("dirty", dirty);
    reply.set("emitted", emitted);
    reply.set("reused",
              std::uint64_t{rw.stats.relocReusedFunctions});
    reply.set("functions", std::uint64_t{rw.stats.totalFunctions});
    return true;
}

ServeMessage
ServeServer::handleOpen(const ServeMessage &request)
{
    const std::string path = request.get("path");
    if (path.empty())
        return errorReply("bad-request", "open needs path=");
    bool warm = false;
    std::string error;
    auto resident = ensureResident(path, request, warm, error);
    if (!resident)
        return errorReply("bad-input", error);

    ServeMessage reply;
    reply.verb = "ok";
    reply.set("warm", std::uint64_t{warm ? 1u : 0u});
    std::lock_guard<std::mutex> lock(resident->mu);
    if (!refreshResident(*resident, reply, error))
        return errorReply("rewrite-failed", error);
    evictOverBudget(resident.get());
    reply.set("resident_bytes", resident->residentBytes);
    reply.set("trampolines",
              resident->session->lastResult().stats.trampolines);
    return reply;
}

ServeMessage
ServeServer::handleRewrite(const ServeMessage &request)
{
    const std::string path = request.get("path");
    const std::string out = request.get("out");
    if (path.empty() || out.empty())
        return errorReply("bad-request",
                          "rewrite needs path= and out=");
    bool warm = false;
    std::string error;
    auto resident = ensureResident(path, request, warm, error);
    if (!resident)
        return errorReply("bad-input", error);

    ServeMessage reply;
    reply.verb = "ok";
    reply.set("warm", std::uint64_t{warm ? 1u : 0u});
    std::lock_guard<std::mutex> lock(resident->mu);
    if (!refreshResident(*resident, reply, error))
        return errorReply("rewrite-failed", error);
    evictOverBudget(resident.get());

    std::ofstream sink(out, std::ios::binary | std::ios::trunc);
    sink.write(
        reinterpret_cast<const char *>(resident->outputBytes.data()),
        static_cast<std::streamsize>(resident->outputBytes.size()));
    if (!sink)
        return errorReply("io", "cannot write " + out);
    reply.set("out_bytes",
              std::uint64_t{resident->outputBytes.size()});
    return reply;
}

ServeMessage
ServeServer::handleLint(const ServeMessage &request)
{
    const std::string path = request.get("path");
    if (path.empty())
        return errorReply("bad-request", "lint needs path=");
    const auto fail_on = severityFromField(request.get("fail_on"));
    if (!fail_on)
        return errorReply("bad-request",
                          "fail_on must be info|warning|error");
    bool warm = false;
    std::string error;
    auto resident = ensureResident(path, request, warm, error);
    if (!resident)
        return errorReply("bad-input", error);

    ServeMessage reply;
    reply.verb = "ok";
    reply.set("warm", std::uint64_t{warm ? 1u : 0u});
    std::lock_guard<std::mutex> lock(resident->mu);
    if (!refreshResident(*resident, reply, error))
        return errorReply("rewrite-failed", error);

    LintOptions lopts;
    lopts.failOn = *fail_on;
    lopts.threads = resident->opts.threads;
    const LintReport &report = resident->session->lint(lopts);
    reply.set("errors",
              std::uint64_t{report.countAtLeast(Severity::error)});
    reply.set("warnings",
              std::uint64_t{report.countAtLeast(Severity::warning)});
    reply.set("findings", std::uint64_t{report.findings.size()});
    reply.set("fail",
              std::uint64_t{report.failed(*fail_on) ? 1u : 0u});
    // First few findings ride along for context; the full report
    // stays a one-shot `icp lint` away.
    unsigned listed = 0;
    for (const Diagnostic &d : report.findings) {
        if (listed == 5)
            break;
        char key[24];
        std::snprintf(key, sizeof(key), "finding.%u", listed++);
        reply.set(key, d.rule + ": " + d.message);
    }
    return reply;
}

ServeMessage
ServeServer::handleRepair(const ServeMessage &request)
{
    const std::string path = request.get("path");
    if (path.empty())
        return errorReply("bad-request", "repair needs path=");
    const auto iters =
        static_cast<unsigned>(request.getU64("iterations", 2));
    bool warm = false;
    std::string error;
    auto resident = ensureResident(path, request, warm, error);
    if (!resident)
        return errorReply("bad-input", error);

    ServeMessage reply;
    reply.verb = "ok";
    reply.set("warm", std::uint64_t{warm ? 1u : 0u});
    std::lock_guard<std::mutex> lock(resident->mu);
    if (!refreshResident(*resident, reply, error))
        return errorReply("rewrite-failed", error);

    LintOptions lopts;
    lopts.threads = resident->opts.threads;
    resident->session->lint(lopts);
    const auto outcome =
        resident->session->repairToFixedPoint(iters);
    // Repair may have re-emitted functions; refresh the cached
    // output bytes so the next rewrite serves the repaired image.
    resident->outputBytes =
        resident->session->lastResult().image.serialize();
    reply.set("iterations", std::uint64_t{outcome.iterations});
    reply.set("repaired",
              std::uint64_t{outcome.repairedFunctions.size()});
    reply.set("demoted",
              std::uint64_t{outcome.demotedFunctions.size()});
    reply.set("converged",
              std::uint64_t{outcome.converged ? 1u : 0u});
    return reply;
}

ServeMessage
ServeServer::handleDeps(const ServeMessage &request)
{
    const std::string path = request.get("path");
    if (path.empty())
        return errorReply("bad-request", "deps needs path=");
    bool warm = false;
    std::string error;
    auto resident = ensureResident(path, request, warm, error);
    if (!resident)
        return errorReply("bad-input", error);

    ServeMessage reply;
    reply.verb = "ok";
    reply.set("warm", std::uint64_t{warm ? 1u : 0u});
    std::lock_guard<std::mutex> lock(resident->mu);
    if (!refreshResident(*resident, reply, error))
        return errorReply("rewrite-failed", error);

    std::uint64_t with_reads = 0, ranges = 0, bytes = 0;
    for (const auto &[entry, func] :
         resident->session->analyze().functions) {
        (void)entry;
        if (func.dataDeps.empty())
            continue;
        ++with_reads;
        ranges += func.dataDeps.size();
        bytes += func.dataDeps.totalBytes();
    }
    reply.set("functions_with_reads", with_reads);
    reply.set("ranges", ranges);
    reply.set("bytes", bytes);
    return reply;
}

ServeMessage
ServeServer::handleStats(const ServeMessage &request)
{
    (void)request;
    const ServeStatsSnapshot snap = statsSnapshot();
    ServeMessage reply;
    reply.verb = "ok";
    reply.set("requests", snap.requests);
    reply.set("errors", snap.errors);
    reply.set("session_hits", snap.sessionHits);
    reply.set("session_misses", snap.sessionMisses);
    reply.set("evictions", snap.evictions);
    reply.set("timeouts", snap.timeouts);
    reply.set("bad_frames", snap.badFrames);
    reply.set("rejected", snap.rejected);
    reply.set("resident_sessions",
              std::uint64_t{snap.residentSessions});
    reply.set("resident_bytes", snap.residentBytes);
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.3f", snap.p50Ms);
    reply.set("p50_ms", ms);
    std::snprintf(ms, sizeof(ms), "%.3f", snap.p99Ms);
    reply.set("p99_ms", ms);
    std::snprintf(ms, sizeof(ms), "%.3f", snap.maxMs);
    reply.set("max_ms", ms);
    return reply;
}

ServeStatsSnapshot
ServeServer::statsSnapshot() const
{
    ServeStatsSnapshot snap;
    const ServeCounters &counters = ServeCounters::global();
    snap.requests =
        counters.requests.load(std::memory_order_relaxed);
    snap.errors = counters.errors.load(std::memory_order_relaxed);
    snap.sessionHits =
        counters.sessionHits.load(std::memory_order_relaxed);
    snap.sessionMisses =
        counters.sessionMisses.load(std::memory_order_relaxed);
    snap.evictions =
        counters.evictions.load(std::memory_order_relaxed);
    snap.timeouts =
        counters.timeouts.load(std::memory_order_relaxed);
    snap.badFrames =
        counters.badFrames.load(std::memory_order_relaxed);
    snap.rejected =
        counters.rejected.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        snap.residentSessions =
            static_cast<unsigned>(sessions_.size());
        for (const auto &[key, resident] : sessions_) {
            (void)key;
            snap.residentBytes += resident->residentBytes;
        }
    }
    {
        std::lock_guard<std::mutex> lock(latencyMu_);
        if (!latency_.empty()) {
            snap.p50Ms = latency_.percentile(50.0);
            snap.p99Ms = latency_.percentile(99.0);
            snap.maxMs = latency_.max();
        }
    }
    return snap;
}

void
ServeServer::noteLatency(double ms)
{
    std::lock_guard<std::mutex> lock(latencyMu_);
    latency_.add(ms);
}

} // namespace icp
