/**
 * @file
 * google-benchmark microbenchmarks of the infrastructure hot paths:
 * codec encode/decode on each ISA, assembler finalization, RA-map
 * lookup, i-cache access, simulator dispatch throughput, CFG
 * construction, and full rewrite passes.
 */

#include <benchmark/benchmark.h>

#include "bench_main.hh"

#include "analysis/builder.hh"
#include "binfmt/addr_map.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/icache.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

void
BM_CodecEncode(benchmark::State &state)
{
    const auto &arch =
        ArchInfo::get(static_cast<Arch>(state.range(0)));
    const Instruction in = makeAddImm(Reg::r4, 42);
    std::vector<std::uint8_t> out;
    for (auto _ : state) {
        out.clear();
        benchmark::DoNotOptimize(arch.codec->encode(in, 0x1000, out));
    }
}
BENCHMARK(BM_CodecEncode)->Arg(0)->Arg(1)->Arg(2);

void
BM_CodecDecode(benchmark::State &state)
{
    const auto &arch =
        ArchInfo::get(static_cast<Arch>(state.range(0)));
    std::vector<std::uint8_t> bytes;
    arch.codec->encode(makeAddImm(Reg::r4, 42), 0x1000, bytes);
    Instruction out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arch.codec->decode(
            bytes.data(), bytes.size(), 0x1000, out));
    }
}
BENCHMARK(BM_CodecDecode)->Arg(0)->Arg(1)->Arg(2);

void
BM_AddrMapLookup(benchmark::State &state)
{
    std::vector<std::pair<Addr, Addr>> pairs;
    for (Addr a = 0; a < 100000; ++a)
        pairs.emplace_back(a * 16, a * 32);
    const AddrPairMap map(std::move(pairs));
    Addr key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.lookup(key));
        key = (key + 4096) % (100000 * 16);
    }
}
BENCHMARK(BM_AddrMapLookup);

void
BM_ICacheAccess(benchmark::State &state)
{
    ICache cache(ICache::Config{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(pc));
        pc += 48;
        if (pc > 0x500000)
            pc = 0x400000;
    }
}
BENCHMARK(BM_ICacheAccess);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        auto proc = loadImage(img);
        Machine machine(*proc, Machine::Config{});
        const RunResult r = machine.run();
        instructions += r.instructions;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

void
BM_BuildCfg(benchmark::State &state)
{
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[1]);
    for (auto _ : state) {
        const CfgModule cfg = buildCfg(img, AnalysisOptions{});
        benchmark::DoNotOptimize(cfg.totalFunctions());
    }
}
BENCHMARK(BM_BuildCfg);

void
BM_FullRewrite(benchmark::State &state)
{
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[1]);
    RewriteOptions opts;
    opts.mode = static_cast<RewriteMode>(state.range(0));
    for (auto _ : state) {
        const RewriteResult rw = rewriteBinary(img, opts);
        benchmark::DoNotOptimize(rw.stats.trampolines);
    }
}
BENCHMARK(BM_FullRewrite)->Arg(0)->Arg(1)->Arg(2);

void
BM_CompileWorkload(benchmark::State &state)
{
    const auto suite = specCpuSuite(Arch::x64, false);
    for (auto _ : state) {
        const BinaryImage img = compileProgram(suite[0]);
        benchmark::DoNotOptimize(img.loadedSize());
    }
}
BENCHMARK(BM_CompileWorkload);

} // namespace

ICP_BENCH_MAIN();
