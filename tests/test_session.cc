/**
 * @file
 * Tests for the stateful RewriteSession API: the rewrite -> lint ->
 * repair loop must fix (or trap-demote) every function-local injected
 * defect within two repair iterations on all three ISAs, re-rewriting
 * only the defective function, re-linting without rebuilding the
 * original CFG, and producing a final image that is byte-identical
 * across thread counts — and identical to a defect-free rewrite.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/session.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

BinaryImage
compileMicro(Arch arch, bool pie = true)
{
    return compileProgram(microProfile(arch, pie));
}

unsigned
errorCount(const LintReport &rep)
{
    return rep.countAtLeast(Severity::error);
}

RewriteOptions
baseOptions(InjectDefect defect = InjectDefect::none)
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countBlocks = true;
    opts.injectDefect = defect;
    return opts;
}

std::string
sanitize(std::string s)
{
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

} // namespace

// --- basic lifecycle ------------------------------------------------------

TEST(RewriteSession, AnalyzeRewriteLintLifecycle)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteSession session(img);

    const CfgModule &cfg = session.analyze();
    EXPECT_FALSE(cfg.functions.empty());
    EXPECT_FALSE(session.hasResult());

    const RewriteResult &rw = session.rewrite(baseOptions());
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(session.hasResult());
    // A from-scratch rewrite emits everything and reuses nothing.
    EXPECT_EQ(rw.stats.relocReusedFunctions, 0u);
    EXPECT_EQ(rw.stats.relocEmittedFunctions,
              rw.stats.instrumentedFunctions);
    EXPECT_FALSE(rw.manifest.funcSpans.empty());

    const LintReport &rep = session.lint();
    EXPECT_EQ(errorCount(rep), 0u) << rep.renderText();
    // The session supplied its cached CFG; the verifier never
    // rebuilt the original analysis.
    EXPECT_FALSE(rep.rebuiltOriginalCfg);
}

TEST(RewriteSession, ThinWrapperMatchesSession)
{
    const BinaryImage img = compileMicro(Arch::aarch64);
    const RewriteResult via_free = rewriteBinary(img, baseOptions());
    RewriteSession session(img);
    const RewriteResult &via_session = session.rewrite(baseOptions());
    ASSERT_TRUE(via_free.ok);
    ASSERT_TRUE(via_session.ok);
    EXPECT_EQ(via_free.image.serialize(),
              via_session.image.serialize());
}

// --- repair convergence matrix: arch x function-local defect --------------

struct RepairParam
{
    Arch arch;
    InjectDefect defect;
};

class SessionRepair : public ::testing::TestWithParam<RepairParam>
{
};

std::string
repairName(const ::testing::TestParamInfo<RepairParam> &info)
{
    return sanitize(std::string(archName(info.param.arch)) + "_" +
                    injectDefectName(info.param.defect));
}

TEST_P(SessionRepair, ConvergesWithinTwoIterations)
{
    const auto [arch, defect] = GetParam();
    const BinaryImage img = compileMicro(arch);

    RewriteSession session(img);
    const RewriteResult &rw = session.rewrite(baseOptions(defect));
    ASSERT_TRUE(rw.ok) << rw.failReason;
    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect " << injectDefectName(defect)
                     << " not applicable on " << archName(arch);

    const LintReport &before = session.lint();
    ASSERT_GE(errorCount(before), 1u)
        << "planted defect went undetected";

    const auto outcome = session.repairToFixedPoint(2);
    EXPECT_TRUE(outcome.converged)
        << session.lastReport().renderText();
    EXPECT_EQ(errorCount(session.lastReport()), 0u)
        << session.lastReport().renderText();
    EXPECT_GE(outcome.iterations, 1u);
    EXPECT_LE(outcome.iterations, 2u);
    // One pass clears a transient defect; nothing gets demoted.
    EXPECT_TRUE(outcome.demotedFunctions.empty());

    const RewriteStats &stats = session.lastResult().stats;
    if (!outcome.fullRewriteFallback) {
        // Selective re-rewrite: only the defective functions were
        // re-emitted; everything else was spliced from the previous
        // pass's bytes.
        EXPECT_FALSE(outcome.repairedFunctions.empty());
        EXPECT_EQ(stats.relocEmittedFunctions,
                  outcome.repairedFunctions.size());
        EXPECT_GT(stats.relocReusedFunctions, 0u);
        // The incremental re-lint ran against the session's cached
        // CFG, never the verifier's lazy rebuild.
        EXPECT_FALSE(session.lastReport().rebuiltOriginalCfg);
    }

    // The repaired image is exactly what a defect-free rewrite
    // produces: splicing reused bytes loses nothing.
    RewriteSession clean(img);
    const RewriteResult &clean_rw = clean.rewrite(baseOptions());
    ASSERT_TRUE(clean_rw.ok);
    EXPECT_EQ(session.lastResult().image.serialize(),
              clean_rw.image.serialize())
        << "repaired image diverges from a clean rewrite";
}

std::vector<RepairParam>
functionLocalDefects()
{
    // raMapEntry and cloneBounds corrupt whole sections rather than a
    // function-local site; raMapEntry is covered by the fallback test
    // below.
    static const InjectDefect defects[] = {
        InjectDefect::trampTarget,    InjectDefect::trampRange,
        InjectDefect::trampChain,     InjectDefect::liveScratch,
        InjectDefect::tocScratch,     InjectDefect::staleCloneEntry,
        InjectDefect::doublePatch,    InjectDefect::dropFde,
        InjectDefect::funcPtrStale,
    };
    std::vector<RepairParam> params;
    for (Arch arch : all_arches)
        for (InjectDefect d : defects)
            params.push_back({arch, d});
    return params;
}

INSTANTIATE_TEST_SUITE_P(FunctionLocalDefects, SessionRepair,
                         ::testing::ValuesIn(functionLocalDefects()),
                         repairName);

// --- unattributable findings fall back to a full re-rewrite ---------------

TEST(SessionRepairFallback, RaMapDefectTriggersFullRewrite)
{
    const BinaryImage img = compileMicro(Arch::x64);
    RewriteSession session(img);
    const RewriteResult &rw =
        session.rewrite(baseOptions(InjectDefect::raMapEntry));
    ASSERT_TRUE(rw.ok);
    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "raMapEntry not applicable";
    ASSERT_GE(errorCount(session.lint()), 1u);

    const auto outcome = session.repairToFixedPoint(2);
    EXPECT_TRUE(outcome.converged)
        << session.lastReport().renderText();
    EXPECT_TRUE(outcome.fullRewriteFallback);
    // The fallback pass re-emits everything.
    EXPECT_EQ(session.lastResult().stats.relocReusedFunctions, 0u);
}

// --- persistent defects: trap demotion contains the function --------------

class SessionDemotion : public ::testing::TestWithParam<RepairParam>
{
};

TEST_P(SessionDemotion, PersistentDefectIsTrapDemoted)
{
    const auto [arch, defect] = GetParam();
    const BinaryImage img = compileMicro(arch);

    // First find a victim function the defect applies to.
    RewriteSession session(img);
    const RewriteResult &probe = session.rewrite(baseOptions(defect));
    ASSERT_TRUE(probe.ok);
    if (probe.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect " << injectDefectName(defect)
                     << " not applicable on " << archName(arch);
    std::string victim;
    for (const Diagnostic &d : session.lint().findings) {
        if (d.severity >= Severity::error && !d.function.empty()) {
            victim = d.function;
            break;
        }
    }
    ASSERT_FALSE(victim.empty());

    // Re-plant the defect restricted to the victim and keep it
    // planted across repairs: only trap demotion can converge.
    RewriteOptions opts = baseOptions(defect);
    opts.injectOnlyFunction = victim;
    const RewriteResult &rw = session.rewrite(opts);
    ASSERT_TRUE(rw.ok);
    if (rw.manifest.injectedRule.empty())
        GTEST_SKIP() << "defect not plantable when restricted to "
                     << victim;
    ASSERT_GE(errorCount(session.lint()), 1u);

    RewriteSession::RepairPolicy policy;
    policy.clearInjectedDefect = false;
    const auto outcome = session.repairToFixedPoint(2, policy);
    EXPECT_TRUE(outcome.converged)
        << session.lastReport().renderText();
    EXPECT_EQ(errorCount(session.lastReport()), 0u);
    EXPECT_EQ(outcome.iterations, 2u);
    ASSERT_EQ(outcome.demotedFunctions.size(), 1u);
    EXPECT_EQ(*outcome.demotedFunctions.begin(), victim);
    // The demoted function runs on always-sound trap trampolines.
    EXPECT_GT(session.lastResult().stats.trapTramps, 0u);
    EXPECT_EQ(session.options().forceTrapFunctions.count(victim), 1u);
}

std::vector<RepairParam>
persistentDefects()
{
    // Byte defects on direct trampolines: plantable on every ISA and
    // neutralized by trap demotion (traps are not direct branches).
    std::vector<RepairParam> params;
    for (Arch arch : all_arches) {
        params.push_back({arch, InjectDefect::trampTarget});
        params.push_back({arch, InjectDefect::trampChain});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(PersistentDefects, SessionDemotion,
                         ::testing::ValuesIn(persistentDefects()),
                         repairName);

// --- determinism across thread counts -------------------------------------

TEST(SessionDeterminism, RepairedImageIdenticalAcrossThreads)
{
    for (Arch arch : all_arches) {
        const BinaryImage img = compileMicro(arch);
        std::vector<std::uint8_t> first;
        std::string first_report;
        for (const unsigned threads : {1u, 4u}) {
            RewriteOptions opts =
                baseOptions(InjectDefect::trampTarget);
            opts.threads = threads;
            RewriteSession session(img);
            const RewriteResult &rw = session.rewrite(opts);
            ASSERT_TRUE(rw.ok);
            if (rw.manifest.injectedRule.empty())
                break; // defect not applicable on this arch
            LintOptions lopts;
            lopts.threads = threads;
            session.lint(lopts);
            const auto outcome = session.repairToFixedPoint(2);
            ASSERT_TRUE(outcome.converged);
            const auto bytes = session.lastResult().image.serialize();
            const std::string report =
                session.lastReport().renderText();
            if (threads == 1) {
                first = bytes;
                first_report = report;
            } else {
                EXPECT_EQ(first, bytes)
                    << archName(arch)
                    << ": repaired image differs across threads";
                EXPECT_EQ(first_report, report) << archName(arch);
            }
        }
    }
}

// --- lint report diffing ---------------------------------------------------

namespace
{

Diagnostic
mkDiag(const char *rule, Severity sev, const std::string &func)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.function = func;
    d.message = "synthetic";
    return d;
}

} // namespace

TEST(LintDiffTest, RegressionsAndResolutionsPerFunction)
{
    LintReport before;
    before.findings.push_back(
        mkDiag("tramp-target", Severity::error, "f1"));
    before.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f2"));

    LintReport after;
    after.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f2"));
    after.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f2"));
    after.findings.push_back(
        mkDiag("jt-clone-target", Severity::error, "f3"));

    const LintDiff diff = diffReports(before, after);
    EXPECT_EQ(diff.newErrors, 1u);   // f3's clone error
    EXPECT_EQ(diff.newWarnings, 1u); // f2's second trap warning
    EXPECT_EQ(diff.resolvedErrors, 1u); // f1's target error
    EXPECT_EQ(diff.resolvedWarnings, 0u);
    EXPECT_TRUE(diff.hasRegressions(Severity::error));

    // Per-function grouping covers every touched function.
    std::set<std::string> funcs;
    for (const auto &fd : diff.functions)
        funcs.insert(fd.function);
    EXPECT_EQ(funcs, (std::set<std::string>{"f1", "f2", "f3"}));

    const std::string text = diff.renderText();
    EXPECT_NE(text.find("lint-diff: 2 new"), std::string::npos)
        << text;
    const std::string json = diff.renderJson();
    EXPECT_NE(json.find("\"new_errors\": 1"), std::string::npos)
        << json;
}

TEST(LintDiffTest, IdenticalReportsDiffEmpty)
{
    LintReport rep;
    rep.findings.push_back(
        mkDiag("tramp-trap", Severity::warning, "f1"));
    const LintDiff diff = diffReports(rep, rep);
    EXPECT_TRUE(diff.functions.empty());
    EXPECT_FALSE(diff.hasRegressions(Severity::info));
    EXPECT_EQ(diff.newWarnings + diff.resolvedWarnings, 0u);
}
