/**
 * @file
 * Unit tests for the support layer: deterministic RNG, interval
 * map, statistics, and the table renderer.
 */

#include <gtest/gtest.h>

#include "support/interval_map.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace icp;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3u);
}

TEST(Rng, RangeIsInclusiveAndBounded)
{
    Rng rng(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(3, 10);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 10u);
        hit_lo |= v == 3;
        hit_hi |= v == 10;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(9);
    unsigned hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits, 2500, 250);
}

TEST(Rng, WeightedPickHonorsWeights)
{
    Rng rng(11);
    unsigned counts[3] = {};
    for (int i = 0; i < 9000; ++i)
        counts[rng.weightedPick({1.0, 2.0, 0.0})]++;
    EXPECT_EQ(counts[2], 0u);
    EXPECT_NEAR(counts[1], 2 * counts[0], counts[0] / 2);
}

TEST(IntervalMap, InsertFindAndOverlapRejection)
{
    IntervalMap<int> map;
    EXPECT_TRUE(map.insert(10, 20, 1));
    EXPECT_TRUE(map.insert(20, 30, 2));
    EXPECT_FALSE(map.insert(15, 25, 3)); // overlaps both
    EXPECT_FALSE(map.insert(5, 11, 4));  // overlaps head
    EXPECT_TRUE(map.insert(0, 10, 5));   // adjacent is fine

    EXPECT_EQ(*map.find(10), 1);
    EXPECT_EQ(*map.find(19), 1);
    EXPECT_EQ(*map.find(20), 2);
    EXPECT_EQ(map.find(30), nullptr);
    EXPECT_EQ(*map.find(0), 5);

    auto bounds = map.bounds(25);
    ASSERT_TRUE(bounds.has_value());
    EXPECT_EQ(bounds->first, 20u);
    EXPECT_EQ(bounds->second, 30u);
}

TEST(IntervalMap, NextAtOrAfterAndErase)
{
    IntervalMap<int> map;
    map.insert(100, 110, 1);
    map.insert(200, 210, 2);
    auto next = map.nextAtOrAfter(111);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->start, 200u);
    EXPECT_TRUE(map.eraseAt(200));
    EXPECT_FALSE(map.eraseAt(200));
    EXPECT_FALSE(map.nextAtOrAfter(111).has_value());
}

TEST(SampleStats, MinMaxMeanPercentile)
{
    SampleStats stats;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        stats.add(v);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100), 4.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50), 2.5);
}

TEST(SampleStats, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.0123), "1.23%");
    EXPECT_EQ(formatPercent(-0.005), "-0.50%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"a", "bb"});
    table.addRow({"xxx", "y"});
    table.addSeparator();
    table.addRow({"1", "22222"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| a   | bb    |"), std::string::npos);
    EXPECT_NE(out.find("| xxx | y     |"), std::string::npos);
    EXPECT_NE(out.find("| 1   | 22222 |"), std::string::npos);
    // Header rule + separator + top/bottom rules = 5 rules.
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    // 4 rule lines (top, header, separator, bottom) x 2 columns.
    EXPECT_EQ(rules, 8u);
}
