#include "isa/assembler.hh"

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

Assembler::Assembler(const ArchInfo &arch, Addr start)
    : arch_(arch), start_(start)
{
    icp_assert(start % arch.instrAlign == 0,
               "assembler start 0x%llx misaligned",
               static_cast<unsigned long long>(start));
}

Assembler::Label
Assembler::newLabel()
{
    labels_.push_back(invalid_addr);
    return static_cast<Label>(labels_.size()) - 1;
}

void
Assembler::bind(Label label)
{
    icp_assert(label >= 0 &&
               static_cast<std::size_t>(label) < labels_.size(),
               "bind: bad label %d", label);
    icp_assert(labels_[label] == invalid_addr,
               "bind: label %d already bound", label);
    labels_[label] = here();
}

void
Assembler::bindAt(Label label, Addr addr)
{
    icp_assert(label >= 0 &&
               static_cast<std::size_t>(label) < labels_.size(),
               "bindAt: bad label %d", label);
    icp_assert(labels_[label] == invalid_addr,
               "bindAt: label %d already bound", label);
    labels_[label] = addr;
}

void
Assembler::rebase(Addr new_start)
{
    icp_assert(!finalized_, "rebase after finalize");
    icp_assert(new_start % arch_.instrAlign == 0,
               "rebase target 0x%llx misaligned",
               static_cast<unsigned long long>(new_start));
    const std::int64_t delta =
        static_cast<std::int64_t>(new_start) -
        static_cast<std::int64_t>(start_);
    if (delta == 0)
        return;
    start_ = new_start;
    for (Addr &label : labels_) {
        if (label != invalid_addr) {
            label = static_cast<Addr>(
                static_cast<std::int64_t>(label) + delta);
        }
    }
}

unsigned
Assembler::itemLength(const Item &item) const
{
    switch (item.kind) {
      case Item::Kind::instr: {
        unsigned len = arch_.codec->encodedLength(item.in);
        icp_assert(len > 0, "unencodable opcode %s on %s",
                   opcodeName(item.in.op), arch_.name);
        return len;
      }
      case Item::Kind::data:
        return static_cast<unsigned>(item.data.size());
      case Item::Kind::dataDiff:
        return item.diffSize;
    }
    icp_panic("bad item kind");
}

void
Assembler::emit(const Instruction &in)
{
    icp_assert(!finalized_, "emit after finalize");
    Item item;
    item.in = in;
    item.offset = cursor_;
    item.length = itemLength(item);
    cursor_ += item.length;
    items_.push_back(std::move(item));
}

void
Assembler::emitToLabel(Instruction in, Label label)
{
    icp_assert(!finalized_, "emit after finalize");
    icp_assert(isDirectBranch(in.op) || in.op == Opcode::Lea ||
               in.op == Opcode::AdrPage,
               "emitToLabel: %s has no target", opcodeName(in.op));
    Item item;
    item.in = in;
    item.in.target = 0; // placeholder; lengths are target-independent
    item.targetLabel = label;
    item.fixup = Item::Fixup::target;
    item.offset = cursor_;
    item.length = itemLength(item);
    cursor_ += item.length;
    items_.push_back(std::move(item));
}

void
Assembler::emitMovImm64(Reg rd, std::uint64_t value)
{
    if (!arch_.fixedLength) {
        emit(makeMovImm(rd, static_cast<std::int64_t>(value)));
        return;
    }
    // Always 4 chunks so code size does not depend on the value.
    emit(makeMovZk(rd, static_cast<std::uint16_t>(value), 0, false));
    for (unsigned shift = 16; shift <= 48; shift += 16) {
        emit(makeMovZk(rd,
                       static_cast<std::uint16_t>(value >> shift),
                       static_cast<std::uint8_t>(shift), true));
    }
}

void
Assembler::emitMovLabel(Reg rd, Label label)
{
    icp_assert(!finalized_, "emit after finalize");
    auto addChunk = [&](std::uint8_t shift, bool keep) {
        Item item;
        item.in = makeMovZk(rd, 0, shift, keep);
        item.targetLabel = label;
        item.fixup = Item::Fixup::movChunk;
        item.offset = cursor_;
        item.length = itemLength(item);
        cursor_ += item.length;
        items_.push_back(std::move(item));
    };
    if (!arch_.fixedLength) {
        Item item;
        item.in = makeMovImm(rd, 0);
        item.targetLabel = label;
        item.fixup = Item::Fixup::movChunk;
        item.offset = cursor_;
        item.length = itemLength(item);
        cursor_ += item.length;
        items_.push_back(std::move(item));
        return;
    }
    addChunk(0, false);
    addChunk(16, true);
    addChunk(32, true);
    addChunk(48, true);
}

void
Assembler::emitAddisTocPair(Reg rd, Label label, Addr toc_base)
{
    icp_assert(!finalized_, "emit after finalize");
    icp_assert(arch_.hasToc, "emitAddisTocPair: no TOC on %s",
               arch_.name);
    Item hi;
    hi.in = makeAddisToc(rd, 0);
    hi.targetLabel = label;
    hi.fixup = Item::Fixup::tocHi;
    hi.tocBase = toc_base;
    hi.offset = cursor_;
    hi.length = itemLength(hi);
    cursor_ += hi.length;
    items_.push_back(std::move(hi));

    Item lo;
    lo.in = makeAddImm(rd, 0);
    lo.targetLabel = label;
    lo.fixup = Item::Fixup::tocLo;
    lo.tocBase = toc_base;
    lo.offset = cursor_;
    lo.length = itemLength(lo);
    cursor_ += lo.length;
    items_.push_back(std::move(lo));
}

void
Assembler::emitAdrPagePair(Reg rd, Label label)
{
    icp_assert(!finalized_, "emit after finalize");
    Item page;
    page.in = makeAdrPage(rd, 0);
    page.targetLabel = label;
    page.fixup = Item::Fixup::target;
    page.offset = cursor_;
    page.length = itemLength(page);
    cursor_ += page.length;
    items_.push_back(std::move(page));

    Item lo;
    lo.in = makeAddImm(rd, 0);
    lo.targetLabel = label;
    lo.fixup = Item::Fixup::adrLo;
    lo.offset = cursor_;
    lo.length = itemLength(lo);
    cursor_ += lo.length;
    items_.push_back(std::move(lo));
}

void
Assembler::emitData(const std::vector<std::uint8_t> &bytes)
{
    icp_assert(!finalized_, "emit after finalize");
    Item item;
    item.kind = Item::Kind::data;
    item.data = bytes;
    item.offset = cursor_;
    item.length = itemLength(item);
    cursor_ += item.length;
    items_.push_back(std::move(item));
}

void
Assembler::emitDataLabelDiff(Label target, Label base, unsigned size,
                             unsigned shift)
{
    icp_assert(!finalized_, "emit after finalize");
    icp_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad diff size %u", size);
    Item item;
    item.kind = Item::Kind::dataDiff;
    item.diffA = target;
    item.diffB = base;
    item.diffSize = size;
    item.diffShift = shift;
    item.offset = cursor_;
    item.length = size;
    cursor_ += size;
    items_.push_back(std::move(item));
}

void
Assembler::alignTo(unsigned alignment)
{
    while ((start_ + cursor_) % alignment != 0)
        emit(makeNop());
}

Addr
Assembler::labelAddr(Label label) const
{
    icp_assert(label >= 0 &&
               static_cast<std::size_t>(label) < labels_.size(),
               "labelAddr: bad label");
    icp_assert(labels_[label] != invalid_addr,
               "labelAddr: label %d unbound", label);
    return labels_[label];
}

std::vector<std::uint8_t>
Assembler::finalize()
{
    icp_assert(!finalized_, "finalize called twice");
    finalized_ = true;

    std::vector<std::uint8_t> out;
    out.reserve(cursor_);
    for (const auto &item : items_) {
        const Addr addr = start_ + item.offset;
        icp_assert(out.size() == item.offset, "assembler offset drift");
        switch (item.kind) {
          case Item::Kind::instr: {
            Instruction in = item.in;
            if (item.targetLabel >= 0) {
                const Addr t = labelAddr(item.targetLabel);
                switch (item.fixup) {
                  case Item::Fixup::target:
                    in.target = t;
                    break;
                  case Item::Fixup::movChunk:
                    in.imm = static_cast<std::int64_t>(
                        arch_.fixedLength
                            ? ((t >> in.movShift) & 0xffff)
                            : t);
                    break;
                  case Item::Fixup::tocHi: {
                    const std::int64_t off =
                        static_cast<std::int64_t>(t) -
                        static_cast<std::int64_t>(item.tocBase);
                    in.imm = (off + 0x8000) >> 16;
                    break;
                  }
                  case Item::Fixup::tocLo: {
                    const std::int64_t off =
                        static_cast<std::int64_t>(t) -
                        static_cast<std::int64_t>(item.tocBase);
                    in.imm = signExtend(
                        static_cast<std::uint64_t>(off), 16);
                    break;
                  }
                  case Item::Fixup::adrLo: {
                    const Addr page = ((t + 0x8000) >> 16) << 16;
                    in.imm = static_cast<std::int64_t>(t) -
                             static_cast<std::int64_t>(page);
                    break;
                  }
                  case Item::Fixup::none:
                    icp_panic("label without fixup");
                }
            }
            const bool ok = arch_.codec->encode(in, addr, out);
            icp_assert(ok, "encode failed for '%s' at 0x%llx on %s",
                       in.toString().c_str(),
                       static_cast<unsigned long long>(addr),
                       arch_.name);
            break;
          }
          case Item::Kind::data:
            out.insert(out.end(), item.data.begin(), item.data.end());
            break;
          case Item::Kind::dataDiff: {
            const std::int64_t diff =
                static_cast<std::int64_t>(labelAddr(item.diffA)) -
                static_cast<std::int64_t>(labelAddr(item.diffB));
            const std::int64_t value = diff >> item.diffShift;
            icp_assert(item.diffSize == 8 ||
                       fitsSigned(value, item.diffSize * 8),
                       "label diff %lld does not fit %u bytes",
                       static_cast<long long>(value), item.diffSize);
            for (unsigned i = 0; i < item.diffSize; ++i) {
                out.push_back(static_cast<std::uint8_t>(
                    static_cast<std::uint64_t>(value) >> (8 * i)));
            }
            break;
          }
        }
    }
    icp_assert(out.size() == cursor_, "assembler length drift");
    return out;
}

} // namespace icp
