#include "isa/instruction.hh"

#include <cstdio>

#include "support/logging.hh"

namespace icp
{

const char *
regName(Reg r)
{
    static const char *names[num_regs] = {
        "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
        "r8", "r9", "r10", "r11", "r12", "r13",
        "sp", "lr", "toc", "tar",
    };
    if (r == Reg::none)
        return "none";
    auto idx = static_cast<unsigned>(r);
    icp_assert(idx < num_regs, "bad register %u", idx);
    return names[idx];
}

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::eq: return "eq";
      case Cond::ne: return "ne";
      case Cond::lt: return "lt";
      case Cond::le: return "le";
      case Cond::gt: return "gt";
      case Cond::ge: return "ge";
      default: return "none";
    }
}

Cond
invertCond(Cond c)
{
    switch (c) {
      case Cond::eq: return Cond::ne;
      case Cond::ne: return Cond::eq;
      case Cond::lt: return Cond::ge;
      case Cond::le: return Cond::gt;
      case Cond::gt: return Cond::le;
      case Cond::ge: return Cond::lt;
      default: icp_panic("invertCond: no condition");
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Illegal: return "illegal";
      case Opcode::Nop: return "nop";
      case Opcode::Trap: return "trap";
      case Opcode::Halt: return "halt";
      case Opcode::MovImm: return "movimm";
      case Opcode::MovHi: return "movhi";
      case Opcode::MovReg: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Xor: return "xor";
      case Opcode::AddImm: return "addi";
      case Opcode::ShlImm: return "shl";
      case Opcode::ShrImm: return "shr";
      case Opcode::Cmp: return "cmp";
      case Opcode::CmpImm: return "cmpi";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::LoadSz: return "ldsz";
      case Opcode::LoadIdx: return "ldidx";
      case Opcode::StoreSz: return "stsz";
      case Opcode::Lea: return "lea";
      case Opcode::AdrPage: return "adrp";
      case Opcode::AddisToc: return "addis";
      case Opcode::Jmp: return "jmp";
      case Opcode::JmpCond: return "jcc";
      case Opcode::Call: return "call";
      case Opcode::JmpInd: return "jmpind";
      case Opcode::CallInd: return "callind";
      case Opcode::CallIndMem: return "callmem";
      case Opcode::JmpTar: return "bctar";
      case Opcode::MoveToTar: return "mttar";
      case Opcode::Ret: return "ret";
      case Opcode::Push: return "push";
      case Opcode::PushImm: return "pushimm";
      case Opcode::Pop: return "pop";
      case Opcode::Throw: return "throw";
      case Opcode::ThrowRa: return "throwra";
      case Opcode::CallRt: return "callrt";
      default: return "???";
    }
}

bool
isDirectBranch(Opcode op)
{
    return op == Opcode::Jmp || op == Opcode::JmpCond ||
           op == Opcode::Call;
}

bool
isIndirectBranch(Opcode op)
{
    return op == Opcode::JmpInd || op == Opcode::CallInd ||
           op == Opcode::CallIndMem || op == Opcode::JmpTar ||
           op == Opcode::Ret;
}

bool
isControlFlow(Opcode op)
{
    return isDirectBranch(op) || isIndirectBranch(op) ||
           op == Opcode::Halt || op == Opcode::Trap ||
           op == Opcode::Throw || op == Opcode::ThrowRa;
}

bool
isCall(Opcode op)
{
    return op == Opcode::Call || op == Opcode::CallInd ||
           op == Opcode::CallIndMem;
}

std::string
Instruction::toString() const
{
    char buf[160];
    if (isDirectBranch(op)) {
        if (op == Opcode::JmpCond) {
            std::snprintf(buf, sizeof(buf), "%s.%s 0x%llx",
                opcodeName(op), condName(cond),
                static_cast<unsigned long long>(target));
        } else {
            std::snprintf(buf, sizeof(buf), "%s 0x%llx", opcodeName(op),
                static_cast<unsigned long long>(target));
        }
    } else if (op == Opcode::Lea || op == Opcode::AdrPage) {
        std::snprintf(buf, sizeof(buf), "%s %s, 0x%llx", opcodeName(op),
            regName(rd), static_cast<unsigned long long>(target));
    } else if (op == Opcode::LoadIdx) {
        std::snprintf(buf, sizeof(buf), "%s %s, [%s + %s*%u + %lld]%s",
            opcodeName(op), regName(rd), regName(rs1), regName(rs2),
            memSize, static_cast<long long>(imm),
            signedLoad ? " sx" : "");
    } else {
        std::snprintf(buf, sizeof(buf), "%s rd=%s rs1=%s rs2=%s imm=%lld",
            opcodeName(op), regName(rd), regName(rs1), regName(rs2),
            static_cast<long long>(imm));
    }
    return buf;
}

namespace
{

Instruction
base(Opcode op)
{
    Instruction in;
    in.op = op;
    return in;
}

} // namespace

Instruction makeNop() { return base(Opcode::Nop); }
Instruction makeTrap() { return base(Opcode::Trap); }
Instruction makeHalt() { return base(Opcode::Halt); }

Instruction
makeMovImm(Reg rd, std::int64_t imm)
{
    auto in = base(Opcode::MovImm);
    in.rd = rd;
    in.imm = imm;
    return in;
}

Instruction
makeMovZk(Reg rd, std::uint16_t imm, std::uint8_t shift, bool keep)
{
    auto in = base(Opcode::MovImm);
    in.rd = rd;
    in.imm = imm;
    in.movShift = shift;
    in.movKeep = keep;
    return in;
}

Instruction
makeMovHi(Reg rd, std::uint16_t imm)
{
    auto in = base(Opcode::MovHi);
    in.rd = rd;
    in.imm = imm;
    return in;
}

Instruction
makeMovReg(Reg rd, Reg rs)
{
    auto in = base(Opcode::MovReg);
    in.rd = rd;
    in.rs1 = rs;
    return in;
}

Instruction
makeAdd(Reg rd, Reg rs)
{
    auto in = base(Opcode::Add);
    in.rd = rd;
    in.rs1 = rs;
    return in;
}

Instruction
makeSub(Reg rd, Reg rs)
{
    auto in = base(Opcode::Sub);
    in.rd = rd;
    in.rs1 = rs;
    return in;
}

Instruction
makeMul(Reg rd, Reg rs)
{
    auto in = base(Opcode::Mul);
    in.rd = rd;
    in.rs1 = rs;
    return in;
}

Instruction
makeXor(Reg rd, Reg rs)
{
    auto in = base(Opcode::Xor);
    in.rd = rd;
    in.rs1 = rs;
    return in;
}

Instruction
makeAddImm(Reg rd, std::int64_t imm)
{
    auto in = base(Opcode::AddImm);
    in.rd = rd;
    in.imm = imm;
    return in;
}

Instruction
makeShlImm(Reg rd, std::uint8_t amount)
{
    auto in = base(Opcode::ShlImm);
    in.rd = rd;
    in.imm = amount;
    return in;
}

Instruction
makeShrImm(Reg rd, std::uint8_t amount)
{
    auto in = base(Opcode::ShrImm);
    in.rd = rd;
    in.imm = amount;
    return in;
}

Instruction
makeCmp(Reg rs1, Reg rs2)
{
    auto in = base(Opcode::Cmp);
    in.rs1 = rs1;
    in.rs2 = rs2;
    return in;
}

Instruction
makeCmpImm(Reg rs1, std::int64_t imm)
{
    auto in = base(Opcode::CmpImm);
    in.rs1 = rs1;
    in.imm = imm;
    return in;
}

Instruction
makeLoad(Reg rd, Reg baseReg, std::int64_t disp)
{
    auto in = base(Opcode::Load);
    in.rd = rd;
    in.rs1 = baseReg;
    in.imm = disp;
    return in;
}

Instruction
makeStore(Reg baseReg, std::int64_t disp, Reg src)
{
    auto in = base(Opcode::Store);
    in.rs1 = baseReg;
    in.rs2 = src;
    in.imm = disp;
    return in;
}

Instruction
makeLoadSz(Reg rd, Reg baseReg, std::int64_t disp, std::uint8_t size,
           bool sign_extend)
{
    auto in = base(Opcode::LoadSz);
    in.rd = rd;
    in.rs1 = baseReg;
    in.imm = disp;
    in.memSize = size;
    in.signedLoad = sign_extend;
    return in;
}

Instruction
makeLoadIdx(Reg rd, Reg baseReg, Reg index, std::uint8_t size,
            std::int64_t disp, bool sign_extend)
{
    auto in = base(Opcode::LoadIdx);
    in.rd = rd;
    in.rs1 = baseReg;
    in.rs2 = index;
    in.memSize = size;
    in.imm = disp;
    in.signedLoad = sign_extend;
    return in;
}

Instruction
makeStoreSz(Reg baseReg, std::int64_t disp, Reg src, std::uint8_t size)
{
    auto in = base(Opcode::StoreSz);
    in.rs1 = baseReg;
    in.rs2 = src;
    in.imm = disp;
    in.memSize = size;
    return in;
}

Instruction
makeLea(Reg rd, Addr target)
{
    auto in = base(Opcode::Lea);
    in.rd = rd;
    in.target = target;
    return in;
}

Instruction
makeAdrPage(Reg rd, Addr target)
{
    auto in = base(Opcode::AdrPage);
    in.rd = rd;
    in.target = target;
    return in;
}

Instruction
makeAddisToc(Reg rd, std::int32_t hi16)
{
    auto in = base(Opcode::AddisToc);
    in.rd = rd;
    in.imm = hi16;
    return in;
}

Instruction
makeJmp(Addr target)
{
    auto in = base(Opcode::Jmp);
    in.target = target;
    return in;
}

Instruction
makeJmpCond(Cond cond, Addr target)
{
    auto in = base(Opcode::JmpCond);
    in.cond = cond;
    in.target = target;
    return in;
}

Instruction
makeCall(Addr target)
{
    auto in = base(Opcode::Call);
    in.target = target;
    return in;
}

Instruction
makeJmpInd(Reg rs)
{
    auto in = base(Opcode::JmpInd);
    in.rs1 = rs;
    return in;
}

Instruction
makeCallInd(Reg rs)
{
    auto in = base(Opcode::CallInd);
    in.rs1 = rs;
    return in;
}

Instruction
makeCallIndMem(Reg baseReg, std::int64_t disp)
{
    auto in = base(Opcode::CallIndMem);
    in.rs1 = baseReg;
    in.imm = disp;
    return in;
}

Instruction makeJmpTar() { return base(Opcode::JmpTar); }

Instruction
makeMoveToTar(Reg rs)
{
    auto in = base(Opcode::MoveToTar);
    in.rs1 = rs;
    return in;
}

Instruction makeRet() { return base(Opcode::Ret); }

Instruction
makePush(Reg rs)
{
    auto in = base(Opcode::Push);
    in.rs1 = rs;
    return in;
}

Instruction
makePushImm(std::int64_t imm)
{
    auto in = base(Opcode::PushImm);
    in.imm = imm;
    return in;
}

Instruction
makePop(Reg rd)
{
    auto in = base(Opcode::Pop);
    in.rd = rd;
    return in;
}

Instruction makeThrow() { return base(Opcode::Throw); }
Instruction makeThrowRa() { return base(Opcode::ThrowRa); }

Instruction
makeCallRt(std::uint32_t service)
{
    auto in = base(Opcode::CallRt);
    in.imm = service;
    return in;
}

} // namespace icp
