/**
 * @file
 * Paged sparse memory for the simulated process.
 */

#ifndef ICP_SIM_MEMORY_HH
#define ICP_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace icp
{

/**
 * Sparse byte-addressable memory. Pages are allocated on map/write;
 * reading an unmapped address is a fault the caller must check so
 * that wild control flow and data accesses are caught instead of
 * silently returning zeroes.
 */
class Memory
{
  public:
    static constexpr unsigned page_shift = 12;
    static constexpr std::size_t page_size = 1u << page_shift;

    /** Map [addr, addr+len) as accessible, zero-filled. */
    void map(Addr addr, std::uint64_t len);

    bool isMapped(Addr addr) const;

    /** Read @p size bytes little-endian; false if any byte unmapped. */
    bool read(Addr addr, unsigned size, std::uint64_t &value) const;

    /** Write @p size bytes little-endian; false if unmapped. */
    bool write(Addr addr, unsigned size, std::uint64_t value);

    /** Bulk copy-in (loader); maps pages as needed. */
    void writeBlock(Addr addr, const std::vector<std::uint8_t> &bytes);

    /** Bulk read; false if any byte unmapped. */
    bool readBlock(Addr addr, std::size_t len,
                   std::vector<std::uint8_t> &out) const;

    /**
     * Direct pointer to the bytes backing @p addr, valid for
     * min(avail, page-remainder) bytes; nullptr when unmapped. Used
     * by the instruction fetch fast path.
     */
    const std::uint8_t *peek(Addr addr, std::size_t &avail) const;

  private:
    using Page = std::vector<std::uint8_t>;

    Page *pageFor(Addr addr, bool create);
    const Page *pageFor(Addr addr) const;

    std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace icp

#endif // ICP_SIM_MEMORY_HH
