# Empty compiler generated dependencies file for reorder_layout.
# This may be replaced when dependencies are built.
