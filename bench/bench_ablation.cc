/**
 * @file
 * Ablations of the design choices the paper calls out:
 *
 *  (a) call emulation vs runtime RA translation on exception-heavy
 *      workloads (§2.3/§6: "we observe over 30% of runtime overhead
 *      by just emulating function calls");
 *  (b) trampoline placement analysis on/off (CFL-only + superblocks
 *      vs per-block);
 *  (c) multi-hop trampolines on/off (trap counts under range
 *      pressure).
 */

#include <algorithm>
#include <cstdio>

#include "analysis/builder.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "sim/loader.hh"
#include "rewrite/rewriter.hh"
#include "support/stats.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

/** A call-heavy, exception-using workload. */
ProgramSpec
callHeavySpec()
{
    auto suite = specCpuSuite(Arch::x64, false);
    ProgramSpec spec = suite[6]; // 620.omnetpp-like (C++)
    // Crank call density: every hub loops over its calls. Cap
    // indirect calls at one so the sp-based CallIndMem variant (the
    // separate Dyninst-10.2 bug) stays out of this measurement.
    for (auto &fs : spec.funcs) {
        if (!fs.callees.empty() && fs.loopIters == 0)
            fs.loopIters = 8;
        fs.computeOps = std::min(fs.computeOps, 4u);
        fs.indirectCalls = std::min(fs.indirectCalls, 1u);
    }
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    const Machine::Config mc{};
    icp::bench::JsonSections sections;

    std::printf("Ablation (a): call emulation vs runtime RA "
                "translation (call-heavy C++ workload)\n\n");
    {
        const BinaryImage img = compileProgram(callHeavySpec());
        TextTable table({"Unwinding support", "Overhead",
                         "CFL blocks", "RA map entries"});
        for (bool ra : {false, true}) {
            RewriteOptions opts;
            opts.mode = RewriteMode::jt;
            opts.raTranslation = ra;
            const ToolRun run =
                runBlockLevelExperiment(img, opts, mc);
            table.addRow({ra ? "RA translation (§6)"
                             : "call emulation",
                          run.pass ? formatPercent(run.overhead)
                                   : "FAILED: " + run.failReason,
                          std::to_string(run.stats.cflBlocks),
                          std::to_string(run.stats.raMapEntries)});
        }
        std::printf("%s\n", table.render().c_str());
        sections.add("a_unwinding", table.json());
        std::printf("Paper: call emulation alone costs over 30%% on "
                    "call-heavy code; RA translation\nremoves call "
                    "fall-through CFL blocks and the emulation "
                    "sequences.\n\n");
    }

    std::printf("Ablation (b): trampoline placement analysis "
                "(x86-64 suite, dir mode)\n\n");
    {
        TextTable table({"Placement", "Ovh mean", "Ovh max",
                         "Trampolines", "Traps"});
        for (bool placement : {false, true}) {
            SampleStats ovh;
            std::uint64_t tramps = 0, traps = 0;
            for (const auto &spec : specCpuSuite(Arch::x64, false)) {
                const BinaryImage img = compileProgram(spec);
                RewriteOptions opts;
                opts.mode = RewriteMode::dir;
                opts.trampolinePlacement = placement;
                const ToolRun run =
                    runBlockLevelExperiment(img, opts, mc);
                if (!run.pass)
                    continue;
                ovh.add(run.overhead);
                tramps += run.stats.trampolines;
                traps += run.stats.trapTramps;
            }
            table.addRow({placement ? "CFL blocks + superblocks (§4)"
                                    : "every basic block",
                          formatPercent(ovh.mean()),
                          formatPercent(ovh.max()),
                          std::to_string(tramps),
                          std::to_string(traps)});
        }
        std::printf("%s\n", table.render().c_str());
        sections.add("b_placement", table.json());
    }

    std::printf("Ablation (c): multi-hop trampolines under range "
                "pressure (ppc64le, 40 MB data)\n\n");
    {
        const auto suite = specCpuSuite(Arch::ppc64le, false);
        const BinaryImage img = compileProgram(suite[1]); // big gcc
        TextTable table({"Multi-hop", "Result", "Overhead",
                         "Multi-hops", "Traps"});
        for (bool hops : {false, true}) {
            RewriteOptions opts;
            opts.mode = RewriteMode::dir;
            opts.multiHop = hops;
            const ToolRun run =
                runBlockLevelExperiment(img, opts, mc);
            table.addRow({hops ? "on" : "off",
                          run.pass ? "pass" : "fail",
                          run.pass ? formatPercent(run.overhead)
                                   : "-",
                          std::to_string(run.stats.multiHopTramps),
                          std::to_string(run.stats.trapTramps)});
        }
        std::printf("%s\n", table.render().c_str());
        sections.add("c_multihop", table.json());
        std::printf("The .instr section sits beyond the ±32 MB "
                    "branch range; without chaining\nthrough scratch "
                    "space every out-of-range CFL block needs a trap "
                    "(§7).\n");
    }

    std::printf("\nAblation (d): RA translation under frdwarf-style "
                "compiled unwinding (§2.3)\n\n");
    {
        const BinaryImage img = compileProgram(callHeavySpec());
        TextTable table({"Unwinder", "Result", "Overhead",
                         "Unwind steps"});
        for (bool compiled : {false, true}) {
            Machine::Config unw = mc;
            unw.compiledUnwinding = compiled;
            RewriteOptions opts;
            opts.mode = RewriteMode::jt;
            const ToolRun run =
                runBlockLevelExperiment(img, opts, unw);
            table.addRow({compiled ? "compiled (frdwarf-style)"
                                   : "DWARF recipe interpretation",
                          run.pass ? "pass" : "fail",
                          run.pass ? formatPercent(run.overhead)
                                   : "-",
                          std::to_string(
                              run.rewrittenRun.unwindSteps)});
        }
        std::printf("%s\n", table.render().c_str());
        sections.add("d_unwinder", table.json());
        std::printf("Runtime RA translation composes with non-DWARF "
                    "unwinders unchanged — the\nmapping is looked up "
                    "before the recipe, however the recipe is "
                    "executed.\nDWARF-rewriting approaches (BOLT) "
                    "cannot target such unwinders (§2.3).\nNote the "
                    "relative overhead rises slightly: with ~10x "
                    "cheaper frame steps the\ntranslation lookup is "
                    "no longer negligible against the unwinder, "
                    "though it\nremains a small constant per "
                    "frame.\n");
    }

    std::printf("\nAblation (e): selective instrumentation with "
                "reachability-pruned placement (S4.2)\n\n");
    {
        const BinaryImage img =
            compileProgram(specCpuSuite(Arch::x64, false)[0]);
        // Instrument two blocks of one hub function.
        const CfgModule cfg = buildCfg(img, AnalysisOptions{});
        std::set<Addr> chosen;
        for (const auto &[entry, func] : cfg.functions) {
            if (func.name != "600.perlbench_h1")
                continue;
            for (const auto &[start, block] : func.blocks) {
                chosen.insert(start);
                if (chosen.size() >= 2)
                    break;
            }
        }

        auto golden_proc = loadImage(img);
        Machine golden(*golden_proc, mc);
        const RunResult g = golden.run();

        TextTable table({"Placement", "Trampolines", "Overhead"});
        for (bool pruning : {false, true}) {
            RewriteOptions opts;
            opts.mode = RewriteMode::jt;
            opts.instrumentation.countBlocks = true;
            opts.instrumentation.onlyBlocks = chosen;
            opts.reachabilityPruning = pruning;
            const RewriteResult rw = rewriteBinary(img, opts);
            auto proc = loadImage(rw.image);
            RuntimeLib rt(proc->module);
            Machine machine(*proc, mc);
            machine.attachRuntimeLib(&rt);
            const RunResult r = machine.run();
            table.addRow(
                {pruning ? "CFL blocks reaching instrumentation"
                         : "all CFL blocks",
                 std::to_string(rw.stats.trampolines),
                 r.halted ? formatPercent(
                                static_cast<double>(r.cycles) /
                                    static_cast<double>(g.cycles) -
                                1.0)
                          : "fail"});
        }
        std::printf("%s\n", table.render().c_str());
        sections.add("e_pruning", table.json());
        std::printf("With two instrumented blocks, pruning keeps "
                    "only the trampolines on paths\nthat can reach "
                    "them (S4.2's suggested refinement).\n");
    }
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          sections.str()))
        return 1;
    return 0;
}
