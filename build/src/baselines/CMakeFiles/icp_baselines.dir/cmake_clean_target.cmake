file(REMOVE_RECURSE
  "libicp_baselines.a"
)
