/**
 * @file
 * Tests for the `icp serve` daemon of src/serve/: protocol framing
 * round-trips and degrades to structured errors (truncated,
 * oversized, garbage frames never crash a worker), resident sessions
 * answer warm rewrites through loadInput's one-function invalidation
 * byte-identically to one-shot rewrites, LRU eviction under a tiny
 * budget re-opens evicted binaries correctly, concurrent clients on
 * distinct binaries stay isolated, and a drain completes in-flight
 * requests before removing the socket and lock files.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "analysis/cache.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/session.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace icp;

namespace
{

/** The daemon's session defaults (optionsFromRequest with no flags). */
RewriteOptions
serveDefaultOptions()
{
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.lint = true;
    return opts;
}

bool
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/**
 * Flip the low bit of one AddImm immediate in place (same encoded
 * length) so exactly one function changes — the dirty-function probe
 * of test_session.cc. Returns the victim function's name.
 */
std::string
mutateOneImmediate(BinaryImage &img)
{
    const Codec &codec = *img.archInfo().codec;
    for (const Symbol *sym : img.functionSymbols()) {
        std::vector<std::uint8_t> body;
        if (!img.readBytes(sym->addr, sym->size, body))
            continue;
        Addr addr = sym->addr;
        std::size_t off = 0;
        while (off < body.size()) {
            Instruction in;
            if (!codec.decode(body.data() + off, body.size() - off,
                              addr, in) ||
                in.length == 0)
                break;
            if (in.op == Opcode::AddImm && in.imm > 1) {
                Instruction edit = in;
                edit.imm = in.imm ^ 1;
                std::vector<std::uint8_t> enc;
                if (codec.encode(edit, addr, enc) &&
                    enc.size() == in.length) {
                    EXPECT_TRUE(img.writeBytes(addr, enc));
                    return sym->name;
                }
            }
            off += in.length;
            addr += in.length;
        }
    }
    return "";
}

/** Run one ServeServer on its own thread for a test's lifetime. */
class DaemonFixture
{
  public:
    explicit DaemonFixture(const std::string &tag,
                           ServeOptions opts = ServeOptions{})
    {
        opts.socketPath = "/tmp/icp_test_serve_" + tag + ".sock";
        std::remove(opts.socketPath.c_str());
        std::remove((opts.socketPath + ".lock").c_str());
        server_ = std::make_unique<ServeServer>(opts);
        std::string error;
        started_ = server_->start(error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            thread_ = std::thread([this] { rc_ = server_->run(); });
    }

    ~DaemonFixture() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_->requestDrain();
            thread_.join();
        }
    }

    const std::string &
    socketPath() const
    {
        return server_->options().socketPath;
    }

    ServeServer &server() { return *server_; }
    int exitCode() const { return rc_; }

    ServeMessage
    call(const ServeMessage &request)
    {
        ServeMessage reply;
        std::string error;
        if (!serveCall(socketPath(), request, reply, error))
            reply.verb = "transport-error: " + error;
        return reply;
    }

  private:
    std::unique_ptr<ServeServer> server_;
    std::thread thread_;
    bool started_ = false;
    int rc_ = -1;
};

/** Raw client connection for protocol-abuse tests. */
int
rawConnect(const std::string &socket_path)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size());
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    if (connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

} // namespace

// --- protocol framing -----------------------------------------------------

TEST(ServeProtocol, PayloadRoundTrip)
{
    ServeMessage msg;
    msg.verb = "rewrite";
    msg.set("path", "/tmp/a.sbf");
    msg.set("threads", std::uint64_t{4});
    msg.set("note", "value with = signs == kept");

    const auto payload = encodeServePayload(msg);
    ServeMessage back;
    std::string error;
    ASSERT_TRUE(parseServePayload(payload.data(), payload.size(),
                                  back, error))
        << error;
    EXPECT_EQ(back.verb, "rewrite");
    EXPECT_EQ(back.get("path"), "/tmp/a.sbf");
    EXPECT_EQ(back.getU64("threads"), 4u);
    EXPECT_EQ(back.get("note"), "value with = signs == kept");
    EXPECT_EQ(back.getU64("absent", 7), 7u);
    EXPECT_FALSE(back.has("absent"));
}

TEST(ServeProtocol, EncoderFoldsNewlinesIntoSpaces)
{
    ServeMessage msg;
    msg.verb = "ok";
    msg.set("error", "line one\nline two");
    const auto payload = encodeServePayload(msg);
    ServeMessage back;
    std::string error;
    ASSERT_TRUE(parseServePayload(payload.data(), payload.size(),
                                  back, error));
    EXPECT_EQ(back.get("error"), "line one line two");
}

TEST(ServeProtocol, ParseRejectsGarbage)
{
    ServeMessage out;
    std::string error;

    EXPECT_FALSE(parseServePayload(nullptr, 0, out, error));

    const std::string bad_verb = "NOT A VERB\nk=v\n";
    EXPECT_FALSE(parseServePayload(
        reinterpret_cast<const std::uint8_t *>(bad_verb.data()),
        bad_verb.size(), out, error));

    const std::string bad_field = "ping\nno-equals-here\n";
    EXPECT_FALSE(parseServePayload(
        reinterpret_cast<const std::uint8_t *>(bad_field.data()),
        bad_field.size(), out, error));

    const std::string with_nul = std::string("ping\nk=v") + '\0';
    EXPECT_FALSE(parseServePayload(
        reinterpret_cast<const std::uint8_t *>(with_nul.data()),
        with_nul.size(), out, error));

    const std::vector<std::uint8_t> binary = {0xff, 0xfe, 0x00,
                                              0x01, 0x80};
    EXPECT_FALSE(parseServePayload(binary.data(), binary.size(), out,
                                   error));
}

TEST(ServeProtocol, FrameReadDegradesStructurally)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ServeMessage out;
    std::string error;

    // Truncated: a length prefix promising more than is sent.
    const std::uint8_t hungry[4] = {16, 0, 0, 0};
    ASSERT_EQ(write(fds[0], hungry, 4), 4);
    ASSERT_EQ(write(fds[0], "abc", 3), 3);
    close(fds[0]);
    EXPECT_EQ(readServeFrame(fds[1], out, 1000, error),
              FrameStatus::malformed);
    close(fds[1]);

    // Oversized: declared payload above the cap.
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::uint32_t huge = kMaxFramePayload + 1;
    std::uint8_t head[4];
    for (unsigned b = 0; b < 4; ++b)
        head[b] = static_cast<std::uint8_t>((huge >> (8 * b)) & 0xff);
    ASSERT_EQ(write(fds[0], head, 4), 4);
    EXPECT_EQ(readServeFrame(fds[1], out, 1000, error),
              FrameStatus::oversized);
    close(fds[0]);
    close(fds[1]);

    // Zero-length frames are malformed, not empty messages.
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::uint8_t zero[4] = {0, 0, 0, 0};
    ASSERT_EQ(write(fds[0], zero, 4), 4);
    EXPECT_EQ(readServeFrame(fds[1], out, 1000, error),
              FrameStatus::malformed);
    close(fds[0]);
    close(fds[1]);

    // A stalled peer times out rather than hanging the worker.
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_EQ(readServeFrame(fds[1], out, 50, error),
              FrameStatus::timeout);
    close(fds[0]);
    close(fds[1]);

    // Orderly EOF before any byte is a close, not an error.
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    close(fds[0]);
    EXPECT_EQ(readServeFrame(fds[1], out, 1000, error),
              FrameStatus::closed);
    close(fds[1]);
}

// --- daemon behavior ------------------------------------------------------

TEST(ServeDaemon, AnswersPingStatsAndUnknownVerbs)
{
    DaemonFixture daemon("ping");

    ServeMessage ping;
    ping.verb = "ping";
    EXPECT_EQ(daemon.call(ping).verb, "ok");

    ServeMessage stats;
    stats.verb = "stats";
    const ServeMessage reply = daemon.call(stats);
    ASSERT_EQ(reply.verb, "ok");
    EXPECT_GE(reply.getU64("requests"), 1u);

    ServeMessage bogus;
    bogus.verb = "frobnicate";
    const ServeMessage err = daemon.call(bogus);
    EXPECT_EQ(err.verb, "error");
    EXPECT_EQ(err.get("code"), "bad-verb");

    // Operational errors are structured replies too.
    ServeMessage missing;
    missing.verb = "open";
    missing.set("path", "/tmp/definitely_missing_input.sbf");
    EXPECT_EQ(daemon.call(missing).verb, "error");
}

TEST(ServeDaemon, BadFramesGetStructuredErrorsNotCrashes)
{
    DaemonFixture daemon("abuse");

    // Garbage payload: parses as a frame, fails as a message.
    int fd = rawConnect(daemon.socketPath());
    ASSERT_GE(fd, 0);
    const std::string garbage = "\x07\x03***!!";
    const std::uint32_t len =
        static_cast<std::uint32_t>(garbage.size());
    std::uint8_t head[4];
    for (unsigned b = 0; b < 4; ++b)
        head[b] = static_cast<std::uint8_t>((len >> (8 * b)) & 0xff);
    ASSERT_EQ(write(fd, head, 4), 4);
    ASSERT_EQ(write(fd, garbage.data(), garbage.size()),
              static_cast<ssize_t>(garbage.size()));
    ServeMessage reply;
    std::string error;
    ASSERT_EQ(readServeFrame(fd, reply, 5000, error),
              FrameStatus::ok)
        << error;
    EXPECT_EQ(reply.verb, "error");
    EXPECT_EQ(reply.get("code"), "malformed");
    close(fd);

    // Oversized declared length: refused before any payload read.
    fd = rawConnect(daemon.socketPath());
    ASSERT_GE(fd, 0);
    const std::uint32_t huge = kMaxFramePayload + 1;
    for (unsigned b = 0; b < 4; ++b)
        head[b] = static_cast<std::uint8_t>((huge >> (8 * b)) & 0xff);
    ASSERT_EQ(write(fd, head, 4), 4);
    ASSERT_EQ(readServeFrame(fd, reply, 5000, error),
              FrameStatus::ok)
        << error;
    EXPECT_EQ(reply.verb, "error");
    EXPECT_EQ(reply.get("code"), "oversized");
    close(fd);

    // Truncated frame: bytes promised, connection dropped.
    fd = rawConnect(daemon.socketPath());
    ASSERT_GE(fd, 0);
    const std::uint8_t hungry[4] = {64, 0, 0, 0};
    ASSERT_EQ(write(fd, hungry, 4), 4);
    ASSERT_EQ(write(fd, "xy", 2), 2);
    shutdown(fd, SHUT_WR);
    ASSERT_EQ(readServeFrame(fd, reply, 5000, error),
              FrameStatus::ok)
        << error;
    EXPECT_EQ(reply.verb, "error");
    EXPECT_EQ(reply.get("code"), "malformed");
    close(fd);

    // After all that abuse, the daemon still answers politely.
    ServeMessage ping;
    ping.verb = "ping";
    EXPECT_EQ(daemon.call(ping).verb, "ok");

    const ServeStatsSnapshot snap = daemon.server().statsSnapshot();
    EXPECT_GE(snap.badFrames, 3u);
}

TEST(ServeDaemon, WarmRewriteIsIncrementalAndByteIdentical)
{
    AnalysisCache::global().clear();
    const std::string in_path = "/tmp/icp_test_serve_in.sbf";
    const std::string out_path = "/tmp/icp_test_serve_out.sbf";
    const BinaryImage base = compileProgram(microProfile(Arch::x64, true));
    ASSERT_TRUE(writeFileBytes(in_path, base.serialize()));

    DaemonFixture daemon("warm");

    ServeMessage rewrite;
    rewrite.verb = "rewrite";
    rewrite.set("path", in_path);
    rewrite.set("out", out_path);

    // Cold first request: a fresh session, full emission.
    ServeMessage first = daemon.call(rewrite);
    ASSERT_EQ(first.verb, "ok");
    EXPECT_EQ(first.getU64("warm"), 0u);
    EXPECT_GT(first.getU64("emitted"), 0u);

    // One-shot ground truth under the daemon's default options.
    RewriteSession oneshot(base);
    const RewriteResult &rw = oneshot.rewrite(serveDefaultOptions());
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_EQ(readFileBytes(out_path), rw.image.serialize());

    // Unchanged input, warm session: answered from the cached
    // result without re-analysis.
    ServeMessage second = daemon.call(rewrite);
    ASSERT_EQ(second.verb, "ok");
    EXPECT_EQ(second.getU64("warm"), 1u);
    EXPECT_EQ(second.getU64("cached"), 1u);
    EXPECT_EQ(second.getU64("dirty"), 0u);
    EXPECT_EQ(readFileBytes(out_path), rw.image.serialize());

    // One-function edit: loadInput's overlap-keyed invalidation
    // re-analyzes and re-emits exactly the victim.
    BinaryImage edited = compileProgram(microProfile(Arch::x64, true));
    const std::string victim = mutateOneImmediate(edited);
    ASSERT_FALSE(victim.empty());
    ASSERT_TRUE(writeFileBytes(in_path, edited.serialize()));

    ServeMessage third = daemon.call(rewrite);
    ASSERT_EQ(third.verb, "ok");
    EXPECT_EQ(third.getU64("warm"), 1u);
    EXPECT_EQ(third.getU64("incremental"), 1u);
    EXPECT_EQ(third.getU64("dirty"), 1u);
    EXPECT_EQ(third.getU64("emitted"), 1u);

    RewriteSession cold(edited);
    const RewriteResult &cold_rw =
        cold.rewrite(serveDefaultOptions());
    ASSERT_TRUE(cold_rw.ok);
    EXPECT_EQ(readFileBytes(out_path), cold_rw.image.serialize());

    daemon.stop();
    EXPECT_EQ(daemon.exitCode(), 0);
    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
}

TEST(ServeDaemon, LruEvictionUnderTinyBudgetReopensCorrectly)
{
    AnalysisCache::global().clear();
    const std::string path_a = "/tmp/icp_test_serve_lru_a.sbf";
    const std::string path_b = "/tmp/icp_test_serve_lru_b.sbf";
    const std::string out_a = "/tmp/icp_test_serve_lru_a_out.sbf";
    const BinaryImage img_a =
        compileProgram(microProfile(Arch::x64, true));
    const BinaryImage img_b =
        compileProgram(microProfile(Arch::aarch64, true));
    ASSERT_TRUE(writeFileBytes(path_a, img_a.serialize()));
    ASSERT_TRUE(writeFileBytes(path_b, img_b.serialize()));

    // A one-byte budget: any second resident session forces the
    // least-recently-used one out.
    ServeOptions opts;
    opts.sessionMaxBytes = 1;
    DaemonFixture daemon("lru", opts);
    const ServeStatsSnapshot before = daemon.server().statsSnapshot();

    ServeMessage open_a;
    open_a.verb = "open";
    open_a.set("path", path_a);
    ASSERT_EQ(daemon.call(open_a).verb, "ok");

    ServeMessage open_b;
    open_b.verb = "open";
    open_b.set("path", path_b);
    ASSERT_EQ(daemon.call(open_b).verb, "ok");

    ServeStatsSnapshot snap = daemon.server().statsSnapshot();
    EXPECT_GE(snap.evictions, before.evictions + 1);
    EXPECT_LE(snap.residentSessions, 1u);

    // The evicted binary transparently re-opens cold and still
    // produces the one-shot bytes.
    ServeMessage rewrite_a;
    rewrite_a.verb = "rewrite";
    rewrite_a.set("path", path_a);
    rewrite_a.set("out", out_a);
    const ServeMessage reply = daemon.call(rewrite_a);
    ASSERT_EQ(reply.verb, "ok");
    EXPECT_EQ(reply.getU64("warm"), 0u);

    RewriteSession oneshot(img_a);
    const RewriteResult &rw =
        oneshot.rewrite(serveDefaultOptions());
    ASSERT_TRUE(rw.ok);
    EXPECT_EQ(readFileBytes(out_a), rw.image.serialize());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(out_a.c_str());
}

TEST(ServeDaemon, ConcurrentClientsOnDistinctBinaries)
{
    AnalysisCache::global().clear();
    const std::string path_a = "/tmp/icp_test_serve_cc_a.sbf";
    const std::string path_b = "/tmp/icp_test_serve_cc_b.sbf";
    const std::string out_a = "/tmp/icp_test_serve_cc_a_out.sbf";
    const std::string out_b = "/tmp/icp_test_serve_cc_b_out.sbf";
    const BinaryImage img_a =
        compileProgram(microProfile(Arch::x64, true));
    const BinaryImage img_b =
        compileProgram(microProfile(Arch::ppc64le, true));
    ASSERT_TRUE(writeFileBytes(path_a, img_a.serialize()));
    ASSERT_TRUE(writeFileBytes(path_b, img_b.serialize()));

    DaemonFixture daemon("conc");

    auto client = [&](const std::string &in, const std::string &out,
                      std::string *verb) {
        ServeMessage req;
        req.verb = "rewrite";
        req.set("path", in);
        req.set("out", out);
        ServeMessage reply;
        std::string error;
        *verb = serveCall(daemon.socketPath(), req, reply, error)
                    ? reply.verb
                    : "transport-error: " + error;
    };

    for (unsigned round = 0; round < 2; ++round) {
        std::string verb_a, verb_b;
        std::thread ta(client, path_a, out_a, &verb_a);
        std::thread tb(client, path_b, out_b, &verb_b);
        ta.join();
        tb.join();
        EXPECT_EQ(verb_a, "ok");
        EXPECT_EQ(verb_b, "ok");
    }

    RewriteSession oneshot_a(img_a);
    RewriteSession oneshot_b(img_b);
    const RewriteResult &rw_a =
        oneshot_a.rewrite(serveDefaultOptions());
    const RewriteResult &rw_b =
        oneshot_b.rewrite(serveDefaultOptions());
    ASSERT_TRUE(rw_a.ok);
    ASSERT_TRUE(rw_b.ok);
    EXPECT_EQ(readFileBytes(out_a), rw_a.image.serialize());
    EXPECT_EQ(readFileBytes(out_b), rw_b.image.serialize());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(out_a.c_str());
    std::remove(out_b.c_str());
}

TEST(ServeDaemon, DrainCompletesInFlightRequests)
{
    AnalysisCache::global().clear();
    const std::string in_path = "/tmp/icp_test_serve_drain.sbf";
    const std::string out_path =
        "/tmp/icp_test_serve_drain_out.sbf";
    const BinaryImage img = compileProgram(microProfile(Arch::x64, true));
    ASSERT_TRUE(writeFileBytes(in_path, img.serialize()));

    setenv("ICP_SERVE_TEST_DELAY_MS", "300", 1);
    DaemonFixture daemon("drain");

    std::string verb;
    std::thread client([&] {
        ServeMessage req;
        req.verb = "rewrite";
        req.set("path", in_path);
        req.set("out", out_path);
        ServeMessage reply;
        std::string error;
        verb = serveCall(daemon.socketPath(), req, reply, error)
                   ? reply.verb
                   : "transport-error: " + error;
    });

    // Let the request get in flight, then drain mid-handling.
    usleep(100 * 1000);
    daemon.server().requestDrain();
    client.join();
    daemon.stop();
    unsetenv("ICP_SERVE_TEST_DELAY_MS");

    // The in-flight rewrite finished and was answered.
    EXPECT_EQ(verb, "ok");
    EXPECT_EQ(daemon.exitCode(), 0);
    EXPECT_FALSE(readFileBytes(out_path).empty());

    // A clean drain removes both the socket and the lock file.
    EXPECT_NE(access(daemon.socketPath().c_str(), F_OK), 0);
    EXPECT_NE(access((daemon.socketPath() + ".lock").c_str(), F_OK),
              0);

    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
}

TEST(ServeDaemon, CrossBinarySessionsShareAnalysisCache)
{
    // Two *different* binaries sharing a static-lib core: resident
    // sessions are per-binary, but the process-wide AnalysisCache is
    // content-addressed, so the second binary's core functions hit
    // the entries the first one stored — at different absolute
    // addresses, i.e. rebase-on-hit cross hits.
    AnalysisCache::global().clear();
    const auto corpus = libcommonCorpus(Arch::x64, 2);
    const std::string path_a = "/tmp/icp_test_serve_xbin_a.sbf";
    const std::string path_b = "/tmp/icp_test_serve_xbin_b.sbf";
    const std::string out_a = "/tmp/icp_test_serve_xbin_a_out.sbf";
    const std::string out_b = "/tmp/icp_test_serve_xbin_b_out.sbf";
    const BinaryImage img_a = compileProgram(corpus[0]);
    const BinaryImage img_b = compileProgram(corpus[1]);
    ASSERT_TRUE(writeFileBytes(path_a, img_a.serialize()));
    ASSERT_TRUE(writeFileBytes(path_b, img_b.serialize()));

    DaemonFixture daemon("xbin");

    ServeMessage rw_a;
    rw_a.verb = "rewrite";
    rw_a.set("path", path_a);
    rw_a.set("out", out_a);
    ASSERT_EQ(daemon.call(rw_a).verb, "ok");

    const std::uint64_t cross_before =
        CacheCounters::global().crossHits.load();
    ServeMessage rw_b;
    rw_b.verb = "rewrite";
    rw_b.set("path", path_b);
    rw_b.set("out", out_b);
    ASSERT_EQ(daemon.call(rw_b).verb, "ok");
    const std::uint64_t cross_after =
        CacheCounters::global().crossHits.load();

    // The shared core is ~60% of each binary's functions; every one
    // of B's core functions should ride A's warm entries.
    EXPECT_GE(cross_after - cross_before, 50u);

    // Warm sharing must not change bytes: B's output matches a
    // one-shot rewrite.
    RewriteSession oneshot(img_b);
    const RewriteResult &rw = oneshot.rewrite(serveDefaultOptions());
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_EQ(readFileBytes(out_b), rw.image.serialize());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(out_a.c_str());
    std::remove(out_b.c_str());
}

TEST(ServeDaemon, BackpressureShedsFloodWithBusyReplies)
{
    // A 1-thread daemon with a pending bound of 1: once a single
    // connection is in flight, every further connection is answered
    // with a structured busy error at accept time instead of
    // queueing behind the thread pool.
    ServeOptions opts;
    opts.threads = 1;
    opts.maxPending = 1;
    opts.requestTimeoutMs = 10000;
    DaemonFixture daemon("busy", opts);
    const ServeStatsSnapshot before = daemon.server().statsSnapshot();

    // Occupy the only pending slot deterministically: a raw
    // connection that sends nothing holds inflight from accept
    // until we close it (the worker blocks reading its first
    // frame). The accept queue is FIFO, so once any later ping is
    // rejected the slot is provably held and stays held.
    const int slot = rawConnect(daemon.socketPath());
    ASSERT_GE(slot, 0);
    bool held = false;
    for (unsigned poll = 0; poll < 500 && !held; ++poll) {
        ServeMessage ping;
        ping.verb = "ping";
        ServeMessage reply;
        std::string error;
        ASSERT_TRUE(
            serveCall(daemon.socketPath(), ping, reply, error))
            << error;
        if (reply.verb == "error" &&
            reply.get("code") == "busy")
            held = true;
        else
            usleep(10 * 1000);
    }
    ASSERT_TRUE(held) << "slot-holder connection never accepted";

    // Flood: every call must come back busy immediately (rejects
    // cost microseconds; the slot is held until `slot` closes).
    for (unsigned k = 0; k < 3; ++k) {
        ServeMessage ping;
        ping.verb = "ping";
        ServeMessage reply;
        std::string error;
        ASSERT_TRUE(
            serveCall(daemon.socketPath(), ping, reply, error))
            << error;
        EXPECT_EQ(reply.verb, "error");
        EXPECT_EQ(reply.get("code"), "busy");
    }

    // Release the slot: the daemon must recover as soon as the
    // worker notices the EOF and the connection retires.
    close(slot);
    std::string last_verb;
    for (unsigned poll = 0; poll < 500; ++poll) {
        ServeMessage ping;
        ping.verb = "ping";
        last_verb = daemon.call(ping).verb;
        if (last_verb == "ok")
            break;
        usleep(10 * 1000);
    }
    EXPECT_EQ(last_verb, "ok");

    const ServeStatsSnapshot snap = daemon.server().statsSnapshot();
    EXPECT_GE(snap.rejected, before.rejected + 4);
}

TEST(ServeDaemon, StaleSocketAndLockFilesDoNotWedgeRestart)
{
    // Emulate SIGKILL leftovers: a bound-then-abandoned socket file
    // plus a lock file nobody holds a flock on.
    const std::string socket_path =
        "/tmp/icp_test_serve_stale.sock";
    std::remove(socket_path.c_str());
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size());
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)),
              0);
    close(fd); // socket file stays behind, no listener
    { std::ofstream lock(socket_path + ".lock"); }

    ServeOptions opts;
    opts.socketPath = socket_path;
    ServeServer server(opts);
    std::string error;
    EXPECT_TRUE(server.start(error)) << error;

    std::thread t([&] { server.run(); });
    ServeMessage ping;
    ping.verb = "ping";
    ServeMessage reply;
    EXPECT_TRUE(serveCall(socket_path, ping, reply, error)) << error;
    EXPECT_EQ(reply.verb, "ok");
    server.requestDrain();
    t.join();
}

TEST(ServeDaemon, SecondDaemonOnSameSocketIsRefused)
{
    DaemonFixture daemon("dup");
    ServeOptions opts;
    opts.socketPath = daemon.socketPath();
    ServeServer second(opts);
    std::string error;
    EXPECT_FALSE(second.start(error));
    EXPECT_NE(error.find("holds"), std::string::npos) << error;
    // The incumbent is unharmed.
    ServeMessage ping;
    ping.verb = "ping";
    EXPECT_EQ(daemon.call(ping).verb, "ok");
}
