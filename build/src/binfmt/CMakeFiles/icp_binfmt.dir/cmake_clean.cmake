file(REMOVE_RECURSE
  "CMakeFiles/icp_binfmt.dir/addr_map.cc.o"
  "CMakeFiles/icp_binfmt.dir/addr_map.cc.o.d"
  "CMakeFiles/icp_binfmt.dir/ehframe.cc.o"
  "CMakeFiles/icp_binfmt.dir/ehframe.cc.o.d"
  "CMakeFiles/icp_binfmt.dir/image.cc.o"
  "CMakeFiles/icp_binfmt.dir/image.cc.o.d"
  "libicp_binfmt.a"
  "libicp_binfmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_binfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
