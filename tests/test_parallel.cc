/**
 * @file
 * Determinism and reuse tests of the parallel per-function pipeline:
 * rewriting with N worker threads must produce byte-identical output
 * to the sequential path, a warm analysis cache must change nothing
 * but skip >= 95% of per-function analysis work, and the thread pool
 * itself must cover every index exactly once and propagate
 * exceptions.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "analysis/cache.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "support/thread_pool.hh"

using namespace icp;

namespace
{

struct ArchMode
{
    Arch arch;
    RewriteMode mode;
};

std::string
archModeName(const ::testing::TestParamInfo<ArchMode> &info)
{
    std::string s;
    switch (info.param.arch) {
      case Arch::x64: s = "x64"; break;
      case Arch::ppc64le: s = "ppc64le"; break;
      case Arch::aarch64: s = "aarch64"; break;
    }
    switch (info.param.mode) {
      case RewriteMode::dir: s += "_dir"; break;
      case RewriteMode::jt: s += "_jt"; break;
      case RewriteMode::funcPtr: s += "_funcptr"; break;
    }
    return s;
}

RewriteOptions
fullOptions(RewriteMode mode, unsigned threads, bool cache)
{
    RewriteOptions opts;
    opts.mode = mode;
    opts.instrumentation.countFunctionEntries = true;
    opts.instrumentation.countBlocks = true;
    opts.threads = threads;
    opts.useAnalysisCache = cache;
    return opts;
}

class ParallelPerArchMode : public ::testing::TestWithParam<ArchMode>
{
};

} // namespace

TEST(ThreadPool, EffectiveThreads)
{
    EXPECT_GE(effectiveThreads(0), 1u);
    EXPECT_EQ(effectiveThreads(1), 1u);
    EXPECT_EQ(effectiveThreads(7), 7u);
}

TEST(ThreadPool, CoversEveryIndexOnce)
{
    std::vector<std::atomic<unsigned>> hits(1000);
    ThreadPool::shared().parallelFor(hits.size(), 4,
                                     [&](std::size_t i) {
                                         hits[i].fetch_add(1);
                                     });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPool, SerialDegenerateCase)
{
    // max_parallel = 1 must run on the calling thread in order.
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    ThreadPool::shared().parallelFor(64, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, MapPreservesIndexOrder)
{
    const std::vector<int> out =
        ThreadPool::shared().parallelMap<int>(
            257, 4, [](std::size_t i) {
                return static_cast<int>(i * 3);
            });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * 3));
}

TEST(ThreadPool, PropagatesExceptions)
{
    std::atomic<unsigned> ran{0};
    EXPECT_THROW(
        ThreadPool::shared().parallelFor(
            100, 4,
            [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 37)
                    throw std::runtime_error("index 37");
            }),
        std::runtime_error);
    // Every index still completes (no partial cancellation), so the
    // pool is reusable after a throwing job.
    EXPECT_EQ(ran.load(), 100u);
    std::atomic<unsigned> again{0};
    ThreadPool::shared().parallelFor(10, 4, [&](std::size_t) {
        again.fetch_add(1);
    });
    EXPECT_EQ(again.load(), 10u);
}

TEST_P(ParallelPerArchMode, ThreadsProduceIdenticalBytes)
{
    const auto param = GetParam();
    const BinaryImage img =
        compileProgram(microProfile(param.arch, true));

    AnalysisCache::global().clear();
    const RewriteResult serial =
        rewriteBinary(img, fullOptions(param.mode, 1, false));
    ASSERT_TRUE(serial.ok) << serial.failReason;

    for (unsigned threads : {2u, 4u}) {
        AnalysisCache::global().clear();
        const RewriteResult parallel = rewriteBinary(
            img, fullOptions(param.mode, threads, false));
        ASSERT_TRUE(parallel.ok) << parallel.failReason;
        EXPECT_EQ(serial.image.serialize(),
                  parallel.image.serialize())
            << "threads=" << threads;
        EXPECT_EQ(serial.blockCounters, parallel.blockCounters);
        EXPECT_EQ(serial.entryCounters, parallel.entryCounters);
    }
}

TEST_P(ParallelPerArchMode, WarmCacheProducesIdenticalBytes)
{
    const auto param = GetParam();
    const BinaryImage img =
        compileProgram(microProfile(param.arch, true));

    AnalysisCache::global().clear();
    const RewriteResult cold =
        rewriteBinary(img, fullOptions(param.mode, 4, true));
    ASSERT_TRUE(cold.ok) << cold.failReason;

    const AnalysisCache::Stats before =
        AnalysisCache::global().stats();
    const RewriteResult warm =
        rewriteBinary(img, fullOptions(param.mode, 4, true));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    const AnalysisCache::Stats after =
        AnalysisCache::global().stats();

    EXPECT_EQ(cold.image.serialize(), warm.image.serialize());
    EXPECT_EQ(cold.blockCounters, warm.blockCounters);
    EXPECT_EQ(cold.entryCounters, warm.entryCounters);

    // The warm rewrite must reuse >= 95% of per-function analysis.
    const std::uint64_t hits = after.hits() - before.hits();
    const std::uint64_t misses = after.misses() - before.misses();
    ASSERT_GT(hits + misses, 0u);
    EXPECT_GE(static_cast<double>(hits) /
                  static_cast<double>(hits + misses),
              0.95);

    // And a cache-off rewrite matches too.
    const RewriteResult uncached =
        rewriteBinary(img, fullOptions(param.mode, 4, false));
    ASSERT_TRUE(uncached.ok) << uncached.failReason;
    EXPECT_EQ(cold.image.serialize(), uncached.image.serialize());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchesModes, ParallelPerArchMode,
    ::testing::Values(ArchMode{Arch::x64, RewriteMode::dir},
                      ArchMode{Arch::x64, RewriteMode::jt},
                      ArchMode{Arch::x64, RewriteMode::funcPtr},
                      ArchMode{Arch::ppc64le, RewriteMode::dir},
                      ArchMode{Arch::ppc64le, RewriteMode::jt},
                      ArchMode{Arch::ppc64le, RewriteMode::funcPtr},
                      ArchMode{Arch::aarch64, RewriteMode::dir},
                      ArchMode{Arch::aarch64, RewriteMode::jt},
                      ArchMode{Arch::aarch64, RewriteMode::funcPtr}),
    archModeName);

TEST(ParallelSuite, SpecWorkloadIdenticalAcrossThreads)
{
    // A bigger program than micro: first SPEC-like profile on the
    // fixed-length ISA with the most veneer/liveness pressure.
    const auto suite = specCpuSuite(Arch::aarch64, true);
    ASSERT_FALSE(suite.empty());
    const BinaryImage img = compileProgram(suite[0]);

    AnalysisCache::global().clear();
    const RewriteResult serial =
        rewriteBinary(img, fullOptions(RewriteMode::funcPtr, 1,
                                       false));
    ASSERT_TRUE(serial.ok) << serial.failReason;

    AnalysisCache::global().clear();
    const RewriteResult parallel =
        rewriteBinary(img, fullOptions(RewriteMode::funcPtr, 4,
                                       false));
    ASSERT_TRUE(parallel.ok) << parallel.failReason;
    EXPECT_EQ(serial.image.serialize(), parallel.image.serialize());
}

TEST(ParallelSuite, DefaultThreadCountIsHardware)
{
    // threads = 0 resolves to hardware concurrency and still matches
    // the sequential bytes.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    AnalysisCache::global().clear();
    const RewriteResult serial =
        rewriteBinary(img, fullOptions(RewriteMode::jt, 1, false));
    ASSERT_TRUE(serial.ok) << serial.failReason;
    AnalysisCache::global().clear();
    const RewriteResult automatic =
        rewriteBinary(img, fullOptions(RewriteMode::jt, 0, false));
    ASSERT_TRUE(automatic.ok) << automatic.failReason;
    EXPECT_EQ(serial.image.serialize(), automatic.image.serialize());
}
