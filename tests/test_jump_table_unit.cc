/**
 * @file
 * Direct unit tests of the jump-table analyzer on hand-assembled
 * blocks: field-level checks of the recovered table descriptor for
 * each per-arch idiom, and the precise failure conditions (memory
 * spill, missing bound, unknown base).
 */

#include <functional>

#include <gtest/gtest.h>

#include "analysis/jump_table.hh"
#include "isa/assembler.hh"

using namespace icp;

namespace
{

constexpr Addr text_base = 0x401000;
constexpr Addr table_base = 0x402000;

/** Build a one-function image from two block emitters. */
struct TestBed
{
    BinaryImage img;
    Block guard;  ///< block ending in the bounds check
    Block jumper; ///< block ending in the indirect jump
};

TestBed
makeBed(Arch arch,
        const std::function<void(Assembler &)> &emit_guard,
        const std::function<void(Assembler &)> &emit_jumper,
        const std::vector<std::uint8_t> &table_bytes)
{
    TestBed bed;
    bed.img.arch = arch;
    bed.img.prefBase = 0x400000;
    bed.img.entry = text_base;
    bed.img.tocBase = 0x500000;

    const ArchInfo &arch_info = ArchInfo::get(arch);
    Assembler guard_as(arch_info, text_base);
    emit_guard(guard_as);
    const auto guard_bytes = guard_as.finalize();

    const Addr jumper_at = text_base + guard_bytes.size();
    Assembler jmp_as(arch_info, jumper_at);
    emit_jumper(jmp_as);
    const auto jmp_bytes = jmp_as.finalize();

    Section text;
    text.name = ".text";
    text.kind = SectionKind::text;
    text.addr = text_base;
    text.bytes = guard_bytes;
    text.bytes.insert(text.bytes.end(), jmp_bytes.begin(),
                      jmp_bytes.end());
    text.memSize = text.bytes.size();
    text.executable = true;
    bed.img.sections.push_back(std::move(text));

    Section ro;
    ro.name = ".rodata";
    ro.kind = SectionKind::rodata;
    ro.addr = table_base;
    ro.bytes = table_bytes;
    ro.memSize = ro.bytes.size();
    bed.img.sections.push_back(std::move(ro));

    // Decode the two blocks back (what the CFG builder would hand
    // the analyzer).
    auto decodeBlock = [&](Addr at, std::size_t len) {
        Block block;
        block.start = at;
        Addr cursor = at;
        while (cursor < at + len) {
            std::vector<std::uint8_t> buf;
            bed.img.readBytes(cursor, arch_info.maxInstrLen, buf) ||
                bed.img.readBytes(cursor, at + len - cursor, buf);
            Instruction in;
            EXPECT_TRUE(arch_info.codec->decode(
                buf.data(), buf.size(), cursor, in));
            block.insns.push_back(in);
            cursor += in.length;
        }
        block.end = cursor;
        return block;
    };
    bed.guard = decodeBlock(text_base, guard_bytes.size());
    bed.jumper = decodeBlock(jumper_at, jmp_bytes.size());
    return bed;
}

std::vector<std::uint8_t>
words32(const std::vector<std::uint32_t> &values)
{
    std::vector<std::uint8_t> out;
    for (std::uint32_t v : values) {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    return out;
}

} // namespace

TEST(JumpTableUnit, X64RelativeIdiom)
{
    const TestBed bed = makeBed(
        Arch::x64,
        [](Assembler &as) {
            as.emit(makeCmpImm(Reg::r7, 4));
            as.emit(makeJmpCond(Cond::ge, 0x401800));
        },
        [](Assembler &as) {
            as.emit(makeLea(Reg::r2, table_base));
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0,
                                true));
            as.emit(makeAdd(Reg::r3, Reg::r2));
            as.emit(makeJmpInd(Reg::r3));
        },
        words32({0x100, 0x110, 0x120, 0x130}));

    JumpTableAnalyzer analyzer(bed.img, {});
    auto jt = analyzer.analyze(bed.jumper, &bed.guard);
    ASSERT_TRUE(jt.has_value());
    EXPECT_EQ(jt->tableAddr, table_base);
    EXPECT_EQ(jt->entrySize, 4u);
    EXPECT_TRUE(jt->signedEntries);
    EXPECT_EQ(jt->shift, 0u);
    ASSERT_TRUE(jt->base.has_value());
    EXPECT_EQ(*jt->base, table_base);
    EXPECT_EQ(jt->entryCount, 4u);
    ASSERT_EQ(jt->targets.size(), 4u);
    EXPECT_EQ(jt->targets[0], table_base + 0x100);
    EXPECT_EQ(jt->targets[3], table_base + 0x130);
    EXPECT_FALSE(jt->embeddedInCode);
    ASSERT_EQ(jt->baseDefAddrs.size(), 1u); // the Lea
}

TEST(JumpTableUnit, X64AbsoluteIdiom)
{
    std::vector<std::uint8_t> table;
    for (std::uint64_t t : {0x401100ULL, 0x401140ULL}) {
        for (int i = 0; i < 8; ++i)
            table.push_back(static_cast<std::uint8_t>(t >> (8 * i)));
    }
    const TestBed bed = makeBed(
        Arch::x64,
        [](Assembler &as) {
            as.emit(makeCmpImm(Reg::r7, 2));
            as.emit(makeJmpCond(Cond::ge, 0x401800));
        },
        [](Assembler &as) {
            as.emit(makeMovImm(Reg::r2, table_base));
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 8));
            as.emit(makeJmpInd(Reg::r3));
        },
        table);

    JumpTableAnalyzer analyzer(bed.img, {});
    auto jt = analyzer.analyze(bed.jumper, &bed.guard);
    ASSERT_TRUE(jt.has_value());
    EXPECT_FALSE(jt->base.has_value()); // absolute entries
    EXPECT_EQ(jt->entrySize, 8u);
    ASSERT_EQ(jt->targets.size(), 2u);
    EXPECT_EQ(jt->targets[0], 0x401100u);
    EXPECT_EQ(jt->targets[1], 0x401140u);
}

TEST(JumpTableUnit, A64AnchorRelativeWithShift)
{
    const TestBed bed = makeBed(
        Arch::aarch64,
        [](Assembler &as) {
            as.emit(makeCmpImm(Reg::r7, 3));
            as.emit(makeJmpCond(Cond::ge, 0x401800));
        },
        [](Assembler &as) {
            // adrp/add pair to the table, 2-byte unsigned entries,
            // anchor = the instruction after the jump.
            as.emit(makeAdrPage(Reg::r2, table_base));
            as.emit(makeAddImm(Reg::r2, table_base & 0xffff));
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 2));
            as.emit(makeLea(Reg::r4, 0x401040)); // anchor
            as.emit(makeShlImm(Reg::r3, 2));
            as.emit(makeAdd(Reg::r3, Reg::r4));
            as.emit(makeJmpInd(Reg::r3));
        },
        {4, 0, 8, 0, 12, 0});

    JumpTableAnalyzer analyzer(bed.img, {});
    auto jt = analyzer.analyze(bed.jumper, &bed.guard);
    ASSERT_TRUE(jt.has_value());
    EXPECT_EQ(jt->entrySize, 2u);
    EXPECT_EQ(jt->shift, 2u);
    ASSERT_TRUE(jt->base.has_value());
    EXPECT_EQ(*jt->base, 0x401040u); // the anchor, not the table
    ASSERT_EQ(jt->targets.size(), 3u);
    EXPECT_EQ(jt->targets[0], 0x401040u + (4u << 2));
    ASSERT_EQ(jt->baseDefAddrs.size(), 2u); // adrp + add pair
}

TEST(JumpTableUnit, SpillThroughMemoryFails)
{
    const TestBed bed = makeBed(
        Arch::x64,
        [](Assembler &as) {
            as.emit(makeCmpImm(Reg::r7, 4));
            as.emit(makeJmpCond(Cond::ge, 0x401800));
        },
        [](Assembler &as) {
            as.emit(makeLea(Reg::r2, table_base));
            as.emit(makeStore(Reg::sp, -16, Reg::r2));
            as.emit(makeXor(Reg::r2, Reg::r2));
            as.emit(makeLoad(Reg::r2, Reg::sp, -16)); // kills slice
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0,
                                true));
            as.emit(makeAdd(Reg::r3, Reg::r2));
            as.emit(makeJmpInd(Reg::r3));
        },
        words32({0, 0, 0, 0}));

    JumpTableAnalyzer analyzer(bed.img, {});
    EXPECT_FALSE(
        analyzer.analyze(bed.jumper, &bed.guard).has_value());
}

TEST(JumpTableUnit, MissingBoundFails)
{
    const TestBed bed = makeBed(
        Arch::x64,
        [](Assembler &as) {
            as.emit(makeNop()); // no CmpImm on the index register
        },
        [](Assembler &as) {
            as.emit(makeLea(Reg::r2, table_base));
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0,
                                true));
            as.emit(makeAdd(Reg::r3, Reg::r2));
            as.emit(makeJmpInd(Reg::r3));
        },
        words32({0, 0}));

    JumpTableAnalyzer analyzer(bed.img, {});
    EXPECT_FALSE(
        analyzer.analyze(bed.jumper, &bed.guard).has_value());
    // And with no predecessor at all.
    EXPECT_FALSE(analyzer.analyze(bed.jumper, nullptr).has_value());
}

TEST(JumpTableUnit, BoundClampedAtSectionEnd)
{
    // Guard claims 64 entries but the section only holds 4.
    const TestBed bed = makeBed(
        Arch::x64,
        [](Assembler &as) {
            as.emit(makeCmpImm(Reg::r7, 64));
            as.emit(makeJmpCond(Cond::ge, 0x401800));
        },
        [](Assembler &as) {
            as.emit(makeLea(Reg::r2, table_base));
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0,
                                true));
            as.emit(makeAdd(Reg::r3, Reg::r2));
            as.emit(makeJmpInd(Reg::r3));
        },
        words32({8, 16, 24, 32}));

    JumpTableAnalyzer analyzer(bed.img, {});
    auto jt = analyzer.analyze(bed.jumper, &bed.guard);
    ASSERT_TRUE(jt.has_value());
    EXPECT_EQ(jt->entryCount, 4u); // Assumption-2 trimming
}

TEST(JumpTableUnit, IndexRegisterRedefinitionBreaksBound)
{
    // The bound compares r7, but r7 is rewritten before the block
    // ends — the association must not survive.
    const TestBed bed = makeBed(
        Arch::x64,
        [](Assembler &as) {
            as.emit(makeCmpImm(Reg::r7, 4));
            as.emit(makeMovImm(Reg::r7, 1)); // clobbers the index
            as.emit(makeJmpCond(Cond::ge, 0x401800));
        },
        [](Assembler &as) {
            as.emit(makeLea(Reg::r2, table_base));
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0,
                                true));
            as.emit(makeAdd(Reg::r3, Reg::r2));
            as.emit(makeJmpInd(Reg::r3));
        },
        words32({0, 0, 0, 0}));

    JumpTableAnalyzer analyzer(bed.img, {});
    EXPECT_FALSE(
        analyzer.analyze(bed.jumper, &bed.guard).has_value());
}
