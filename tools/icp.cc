/**
 * @file
 * The `icp` command-line tool: compile workload profiles to SBF
 * files, rewrite them with incremental CFG patching, run them in
 * the simulator, and inspect their contents.
 *
 *   icp compile <profile> <out.sbf> [--arch A] [--pie]
 *   icp rewrite <in.sbf> <out.sbf> [--mode M] [--clobber]
 *               [--count-blocks] [--count-entries] [--only f1,f2]
 *               [--no-placement] [--no-multihop] [--call-emulation]
 *               [--threads N] [--no-cache] [--timing]
 *               [--cache-file PATH] [--cache-max-bytes N]
 *               [--shards N] [--stream-window BYTES]
 *               [--lint] [--fail-on S]
 *               [--inject DEFECT] [--repair[=N]]
 *   icp lint    <in.sbf> [rewrite options] [--json] [--timing]
 *               [--fail-on info|warning|error] [--inject DEFECT]
 *               [--no-load-check] [--rules]
 *   icp lint    --diff <a.sbf|baseline.json> <b.sbf>
 *               [rewrite options] [--json] [--fail-on S]
 *   icp run     <in.sbf> [--gc N]
 *   icp inspect <in.sbf> [function]
 *   icp cache   info|verify <file.icpc>
 *   icp cache   compact <file.icpc> [--max-bytes N]
 *
 * Profiles: micro, spec0..spec18, libxul, docker, libcuda,
 * chromium, chromium-small.
 *
 * `icp lint` rewrites the input in memory and runs the static
 * soundness verifier over the result. Exit codes: 0 when no finding
 * reaches --fail-on (default error), 2 when findings do, 1 on
 * operational errors (unreadable file). `icp lint --diff` rewrites
 * and lints two inputs under the same options and reports the
 * per-function finding regressions/resolutions of the second
 * relative to the first; exit 2 when a regression reaches --fail-on.
 * The first operand may instead be a saved `icp lint --json` report
 * (the CI lint-baseline gate). `--cache-file PATH` persists the
 * AnalysisCache across invocations: it is merged before analysis and
 * delta-saved back after a successful rewrite (concurrent writers
 * merge via the store's advisory lock); `--cache-max-bytes N`
 * compacts the file when a save leaves it larger than N. `icp cache`
 * maintains such files: info (header walk), verify (full decode of
 * every entry; exit 2 on any issue), compact (deduplicate and
 * optionally evict down to --max-bytes, oldest generations first).
 * `icp rewrite --repair[=N]` (implies --lint) runs the stateful
 * RewriteSession loop — rewrite, lint, selectively re-rewrite the
 * functions owning error findings — up to N (default 2) repair
 * passes, writing the repaired image; exit 0 when the final report
 * is clean at --fail-on, 2 otherwise. `icp rewrite --shards N` runs
 * the sharded multi-process rewrite: the function space is split
 * into N contiguous ranges, each analyzed by a forked worker into a
 * shared analysis-cache shard, and the output is streamed to disk in
 * address order so peak memory is bounded by one shard plus the
 * reorder window (--stream-window, default 1 MiB) rather than the
 * whole image. Output bytes are identical for every N. Incompatible
 * with --lint/--repair/--inject (lint the output separately with
 * `icp lint`).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "binfmt/stream_writer.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "rewrite/session.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"
#include "support/stats.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: icp compile <profile> <out.sbf> "
                 "[--arch x64|ppc64le|aarch64] [--pie]\n"
                 "       icp rewrite <in.sbf> <out.sbf> "
                 "[--mode dir|jt|func-ptr] [--clobber]\n"
                 "                   [--count-blocks] "
                 "[--count-entries] [--only f1,f2,...]\n"
                 "                   [--no-placement] "
                 "[--no-multihop] [--call-emulation]\n"
                 "                   [--threads N] [--no-cache] "
                 "[--timing] [--lint] [--fail-on S]\n"
                 "                   [--cache-file PATH] "
                 "[--cache-max-bytes N]\n"
                 "                   [--shards N] "
                 "[--stream-window BYTES]\n"
                 "                   [--inject DEFECT] "
                 "[--repair[=N]]\n"
                 "       icp lint <in.sbf> [rewrite options] "
                 "[--json] [--fail-on info|warning|error]\n"
                 "                [--inject DEFECT] "
                 "[--no-load-check] [--timing] [--rules]\n"
                 "       icp lint --diff <a.sbf|baseline.json> "
                 "<b.sbf> [rewrite options] [--json] [--fail-on S]\n"
                 "       icp run <in.sbf> [--gc N]\n"
                 "       icp inspect <in.sbf> [function]\n"
                 "       icp cache info|verify <file.icpc>\n"
                 "       icp cache compact <file.icpc> "
                 "[--max-bytes N]\n");
    return 2;
}

bool
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return true;
}

/**
 * Read and validate an SBF file. Malformed containers produce the
 * validator's structured diagnostics on stderr (rule id + message)
 * instead of an abort.
 */
std::optional<BinaryImage>
loadSbf(const char *path)
{
    std::vector<std::uint8_t> raw;
    if (!readFile(path, raw)) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return std::nullopt;
    }
    std::vector<SbfIssue> issues;
    auto img = BinaryImage::tryDeserialize(raw, issues);
    if (!img) {
        for (const SbfIssue &issue : issues)
            std::fprintf(stderr, "%s: [%s] %s (offset %zu)\n", path,
                         issue.rule.c_str(), issue.message.c_str(),
                         issue.offset);
        return std::nullopt;
    }
    return img;
}

/**
 * Parse one rewrite-option flag at argv[i], advancing i past any
 * value. Returns false when argv[i] is not a rewrite option; sets
 * *bad when the flag is recognized but malformed.
 */
bool
parseRewriteFlag(RewriteOptions &opts, int argc, char **argv, int &i,
                 bool *bad)
{
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc) {
        const std::string m = argv[++i];
        if (m == "dir")
            opts.mode = RewriteMode::dir;
        else if (m == "jt")
            opts.mode = RewriteMode::jt;
        else if (m == "func-ptr")
            opts.mode = RewriteMode::funcPtr;
        else
            *bad = true;
    } else if (arg == "--clobber") {
        opts.clobberOriginal = true;
    } else if (arg == "--count-blocks") {
        opts.instrumentation.countBlocks = true;
    } else if (arg == "--count-entries") {
        opts.instrumentation.countFunctionEntries = true;
    } else if (arg == "--no-placement") {
        opts.trampolinePlacement = false;
    } else if (arg == "--no-multihop") {
        opts.multiHop = false;
    } else if (arg == "--call-emulation") {
        opts.raTranslation = false;
    } else if (arg == "--threads" && i + 1 < argc) {
        opts.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--no-cache") {
        opts.useAnalysisCache = false;
    } else if (arg == "--shards" && i + 1 < argc) {
        opts.shards = static_cast<unsigned>(std::atoi(argv[++i]));
        if (opts.shards == 0)
            *bad = true;
    } else if (arg.rfind("--shards=", 0) == 0) {
        opts.shards = static_cast<unsigned>(
            std::atoi(arg.c_str() + std::strlen("--shards=")));
        if (opts.shards == 0)
            *bad = true;
    } else if (arg == "--stream-window" && i + 1 < argc) {
        opts.streamWindowBytes = static_cast<std::size_t>(
            std::strtoull(argv[++i], nullptr, 10));
        if (opts.streamWindowBytes == 0)
            *bad = true;
    } else if (arg.rfind("--stream-window=", 0) == 0) {
        opts.streamWindowBytes = static_cast<std::size_t>(
            std::strtoull(arg.c_str() +
                              std::strlen("--stream-window="),
                          nullptr, 10));
        if (opts.streamWindowBytes == 0)
            *bad = true;
    } else if (arg == "--cache-file" && i + 1 < argc) {
        opts.cachePath = argv[++i];
    } else if (arg.rfind("--cache-file=", 0) == 0) {
        opts.cachePath = arg.substr(std::strlen("--cache-file="));
        if (opts.cachePath.empty())
            *bad = true;
    } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
        opts.cacheMaxBytes = std::strtoull(argv[++i], nullptr, 10);
        if (opts.cacheMaxBytes == 0)
            *bad = true;
    } else if (arg.rfind("--cache-max-bytes=", 0) == 0) {
        opts.cacheMaxBytes = std::strtoull(
            arg.c_str() + std::strlen("--cache-max-bytes="), nullptr,
            10);
        if (opts.cacheMaxBytes == 0)
            *bad = true;
    } else if (arg == "--inject" && i + 1 < argc) {
        const auto defect = parseInjectDefect(argv[++i]);
        if (!defect)
            *bad = true;
        else
            opts.injectDefect = *defect;
    } else if (arg == "--only" && i + 1 < argc) {
        std::string list = argv[++i];
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t comma = list.find(',', pos);
            opts.onlyFunctions.insert(
                list.substr(pos, comma == std::string::npos
                                     ? comma
                                     : comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    } else {
        return false;
    }
    return true;
}

int
cmdCompile(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string profile = argv[0];
    const std::string out_path = argv[1];
    Arch arch = Arch::x64;
    bool pie = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--pie") {
            pie = true;
        } else if (arg == "--arch" && i + 1 < argc) {
            const std::string a = argv[++i];
            if (a == "x64")
                arch = Arch::x64;
            else if (a == "ppc64le")
                arch = Arch::ppc64le;
            else if (a == "aarch64")
                arch = Arch::aarch64;
            else
                return usage();
        } else {
            return usage();
        }
    }

    ProgramSpec spec;
    if (profile == "micro") {
        spec = microProfile(arch, pie);
    } else if (profile == "libxul") {
        spec = libxulProfile();
    } else if (profile == "docker") {
        spec = dockerProfile();
    } else if (profile == "libcuda") {
        spec = libcudaProfile();
    } else if (profile == "chromium") {
        spec = chromiumProfile();
    } else if (profile == "chromium-small") {
        spec = chromiumSmallProfile(arch, pie);
    } else if (profile.rfind("spec", 0) == 0) {
        const unsigned idx =
            static_cast<unsigned>(std::atoi(profile.c_str() + 4));
        const auto suite = specCpuSuite(arch, pie);
        if (idx >= suite.size()) {
            std::fprintf(stderr, "spec index out of range\n");
            return 1;
        }
        spec = suite[idx];
    } else {
        std::fprintf(stderr, "unknown profile %s\n",
                     profile.c_str());
        return 1;
    }

    const BinaryImage img = compileProgram(spec);
    if (!writeFile(out_path, img.serialize())) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("%s: %s %s, %zu functions, %llu bytes loaded\n",
                out_path.c_str(), archName(img.arch),
                img.pie ? "PIE" : "no-PIE",
                img.functionSymbols().size(),
                static_cast<unsigned long long>(img.loadedSize()));
    return 0;
}

void
printRewriteStats(RewriteMode mode, const RewriteStats &stats)
{
    std::printf("mode %s: %u/%u functions, %llu trampolines "
                "(%llu direct, %llu long, %llu multi-hop, %llu "
                "trap), %llu cloned tables, %llu funcptrs, %llu "
                "RA-map entries, size %+.2f%%\n",
                rewriteModeName(mode), stats.instrumentedFunctions,
                stats.totalFunctions,
                static_cast<unsigned long long>(stats.trampolines),
                static_cast<unsigned long long>(stats.directTramps),
                static_cast<unsigned long long>(stats.longTramps),
                static_cast<unsigned long long>(
                    stats.multiHopTramps),
                static_cast<unsigned long long>(stats.trapTramps),
                static_cast<unsigned long long>(stats.clonedTables),
                static_cast<unsigned long long>(
                    stats.rewrittenFuncPtrs),
                static_cast<unsigned long long>(stats.raMapEntries),
                stats.sizeIncrease() * 100.0);
}

void
printCacheStats(const RewriteResult &rw, const std::string &path)
{
    // Cross-invocation reuse report (the CLI process starts with
    // an empty in-memory cache, so the stats are this run's).
    const auto cstats = AnalysisCache::global().stats();
    const std::uint64_t lookups =
        cstats.functionHits + cstats.functionMisses;
    std::printf("analysis cache: %llu/%llu function analyses "
                "reused (%.1f%%), %u entries loaded from %s "
                "(%u dropped)\n",
                static_cast<unsigned long long>(cstats.functionHits),
                static_cast<unsigned long long>(lookups),
                lookups == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(cstats.functionHits) /
                          static_cast<double>(lookups),
                rw.cacheLoad.loadedEntries(), path.c_str(),
                rw.cacheLoad.droppedEntries);
}

/** `icp rewrite --shards N`: the multi-process streaming path. */
int
runShardedRewrite(const BinaryImage &img, RewriteOptions &opts,
                  const char *out_path, bool timing)
{
    opts.lint = false;
    std::FILE *f = std::fopen(out_path, "wb");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    FileSink sink(f);
    const RewriteResult rw = rewriteBinarySharded(img, opts, sink);
    const bool flushed = std::fclose(f) == 0;
    if (!rw.ok) {
        std::remove(out_path);
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        return 1;
    }
    if (!sink.ok() || !flushed) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }

    printRewriteStats(opts.mode, rw.stats);
    for (std::size_t k = 0; k < rw.stats.shards.size(); ++k) {
        const ShardCounters &sc = rw.stats.shards[k];
        std::printf("shard %zu: [0x%llx, 0x%llx) %u functions "
                    "(%u instrumented), %llu blocks, %llu insns, "
                    "%u worker attempt(s)%s, worker peak RSS "
                    "%llu KB\n",
                    k, static_cast<unsigned long long>(sc.lo),
                    static_cast<unsigned long long>(sc.hi),
                    sc.functions, sc.instrumented,
                    static_cast<unsigned long long>(sc.blocks),
                    static_cast<unsigned long long>(sc.insns),
                    sc.workerAttempts,
                    sc.degraded ? ", DEGRADED" : "",
                    static_cast<unsigned long long>(
                        sc.workerPeakRssBytes / 1024));
    }
    if (!opts.cachePath.empty())
        printCacheStats(rw, opts.cachePath);
    if (timing)
        std::printf("%s", StageTimers::global().table().c_str());
    return 0;
}

int
cmdRewrite(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    bool timing = false;
    bool lint = false;
    bool repair = false;
    unsigned repair_iters = 2;
    Severity fail_on = Severity::error;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--lint") {
            lint = true;
        } else if (arg == "--repair" ||
                   arg.rfind("--repair=", 0) == 0) {
            repair = true;
            lint = true;
            if (arg.size() > std::strlen("--repair=")) {
                repair_iters = static_cast<unsigned>(
                    std::atoi(arg.c_str() + std::strlen("--repair=")));
                if (repair_iters == 0)
                    return usage();
            }
        } else if (arg == "--fail-on" && i + 1 < argc) {
            const auto sev = parseSeverity(argv[++i]);
            if (!sev)
                return usage();
            fail_on = *sev;
            lint = true;
        } else {
            return usage();
        }
    }

    if (timing)
        StageTimers::global().reset();
    if (opts.shards > 0) {
        if (lint || repair ||
            opts.injectDefect != InjectDefect::none) {
            std::fprintf(stderr,
                         "--shards is incompatible with --lint, "
                         "--repair, --fail-on, and --inject; lint "
                         "the output with `icp lint` instead\n");
            return 1;
        }
        return runShardedRewrite(img, opts, argv[1], timing);
    }
    RewriteSession session(img);
    {
        const RewriteResult &first = session.rewrite(opts);
        if (!first.ok) {
            std::fprintf(stderr, "rewrite failed: %s\n",
                         first.failReason.c_str());
            return 1;
        }
    }
    if (repair) {
        LintOptions lopts;
        lopts.failOn = fail_on;
        lopts.threads = opts.threads;
        session.lint(lopts);
        const auto outcome = session.repairToFixedPoint(repair_iters);
        std::printf("repair: %u iteration(s), %zu function(s) "
                    "re-rewritten, %zu demoted to trap%s%s\n",
                    outcome.iterations,
                    outcome.repairedFunctions.size(),
                    outcome.demotedFunctions.size(),
                    outcome.fullRewriteFallback
                        ? ", full-rewrite fallback"
                        : "",
                    outcome.converged ? ", converged"
                                      : ", NOT converged");
    }
    const RewriteResult &rw = session.lastResult();
    if (!rw.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        return 1;
    }
    if (!writeFile(argv[1], rw.image.serialize())) {
        std::fprintf(stderr, "cannot write %s\n", argv[1]);
        return 1;
    }
    printRewriteStats(opts.mode, rw.stats);
    if (!opts.cachePath.empty())
        printCacheStats(rw, opts.cachePath);
    if (timing)
        std::printf("%s", StageTimers::global().table().c_str());
    if (lint) {
        LintOptions lopts;
        lopts.failOn = fail_on;
        lopts.threads = opts.threads;
        const LintReport &report =
            repair ? session.lastReport() : session.lint(lopts);
        std::printf("%s", report.renderText().c_str());
        if (report.failed(fail_on))
            return 2;
    }
    return 0;
}

/**
 * `icp lint --diff a b.sbf`: rewrite and lint both inputs under the
 * same options, then report b's per-function finding regressions and
 * resolutions relative to a. When a is a saved `icp lint --json`
 * report rather than an SBF image, it is used as the baseline
 * directly — the CI lint-baseline gate.
 */
int
cmdLintDiff(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.lint = true;
    LintOptions lopts;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-load-check") {
            lopts.checkLoadedImage = false;
        } else if (arg == "--fail-on" && i + 1 < argc) {
            const auto sev = parseSeverity(argv[++i]);
            if (!sev)
                return usage();
            lopts.failOn = *sev;
        } else {
            return usage();
        }
    }
    lopts.threads = opts.threads;

    // The baseline may be a saved `icp lint --json` report instead
    // of an SBF image ("lint-baseline gate": CI diffs the current
    // tree's lint findings against a checked-in report).
    LintReport baseline_report;
    std::vector<std::uint8_t> baseline_raw;
    if (!readFile(argv[1], baseline_raw)) {
        std::fprintf(stderr, "cannot read %s\n", argv[1]);
        return 1;
    }
    std::size_t skip = 0;
    while (skip < baseline_raw.size() &&
           (baseline_raw[skip] == ' ' || baseline_raw[skip] == '\n' ||
            baseline_raw[skip] == '\r' || baseline_raw[skip] == '\t'))
        ++skip;
    if (skip < baseline_raw.size() && baseline_raw[skip] == '{') {
        const std::string text(baseline_raw.begin(),
                               baseline_raw.end());
        const auto parsed = parseLintReportJson(text);
        if (!parsed) {
            std::fprintf(stderr,
                         "%s: not a lint report (expected the "
                         "output of `icp lint --json`)\n",
                         argv[1]);
            return 1;
        }
        baseline_report = *parsed;
    } else {
        const auto before_img = loadSbf(argv[1]);
        if (!before_img)
            return 1;
        RewriteSession before(*before_img);
        before.rewrite(opts);
        baseline_report = before.lint(lopts);
    }

    const auto after_img = loadSbf(argv[2]);
    if (!after_img)
        return 1;
    RewriteSession after(*after_img);
    after.rewrite(opts);
    const LintDiff diff =
        diffReports(baseline_report, after.lint(lopts));
    if (json)
        std::printf("%s\n", diff.renderJson().c_str());
    else
        std::printf("%s", diff.renderText().c_str());
    return diff.hasRegressions(lopts.failOn) ? 2 : 0;
}

int
cmdLint(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    if (std::strcmp(argv[0], "--rules") == 0) {
        for (const LintRuleInfo &r : lintRules())
            std::printf("%-20s %-8s %s\n", r.id,
                        severityName(r.severity), r.summary);
        return 0;
    }
    if (std::strcmp(argv[0], "--diff") == 0)
        return cmdLintDiff(argc, argv);

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.lint = true;
    LintOptions lopts;
    bool json = false;
    bool timing = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--no-load-check") {
            lopts.checkLoadedImage = false;
        } else if (arg == "--fail-on" && i + 1 < argc) {
            const auto sev = parseSeverity(argv[++i]);
            if (!sev)
                return usage();
            lopts.failOn = *sev;
        } else {
            return usage();
        }
    }
    const bool show_injected = opts.injectDefect != InjectDefect::none;
    lopts.threads = opts.threads;

    std::vector<std::uint8_t> raw;
    if (!readFile(argv[0], raw)) {
        std::fprintf(stderr, "cannot read %s\n", argv[0]);
        return 1;
    }
    std::vector<SbfIssue> issues;
    const auto img = BinaryImage::tryDeserialize(raw, issues);
    if (!img) {
        LintReport rep;
        rep.findings = diagnosticsFromSbfIssues(issues);
        std::printf("%s", json ? rep.renderJson().c_str()
                               : rep.renderText().c_str());
        if (json)
            std::printf("\n");
        return rep.failed(lopts.failOn) ? 2 : 0;
    }

    if (timing)
        StageTimers::global().reset();
    RewriteSession session(*img);
    const RewriteResult &rw = session.rewrite(opts);
    const LintReport &report = session.lint(lopts);
    if (json) {
        std::printf("%s\n", report.renderJson().c_str());
    } else {
        if (show_injected)
            std::printf("injected rule: %s\n",
                        rw.manifest.injectedRule.empty()
                            ? "(none; defect not applicable)"
                            : rw.manifest.injectedRule.c_str());
        std::printf("%s", report.renderText().c_str());
        if (timing)
            std::printf("%s",
                        StageTimers::global().table().c_str());
    }
    return report.failed(lopts.failOn) ? 2 : 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    Machine::Config cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gc") == 0 && i + 1 < argc)
            cfg.goGcEveryCalls =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else
            return usage();
    }
    if (cfg.goGcEveryCalls == 0 && img.features.isGo)
        cfg.goGcEveryCalls = 64;

    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, cfg);
    if (rt.hasRaMap() || rt.hasTrapMap())
        machine.attachRuntimeLib(&rt);
    const RunResult result = machine.run();
    std::printf("%s\n", result.describe().c_str());
    std::printf("icache: %llu accesses, %llu misses; rt calls %llu; "
                "unwind steps %llu; gc walks %llu\n",
                static_cast<unsigned long long>(
                    result.icacheAccesses),
                static_cast<unsigned long long>(result.icacheMisses),
                static_cast<unsigned long long>(result.rtCalls),
                static_cast<unsigned long long>(result.unwindSteps),
                static_cast<unsigned long long>(result.gcWalks));
    std::uint64_t counted = 0;
    for (std::uint64_t c : result.counters)
        counted += c;
    if (counted > 0) {
        std::printf("instrumentation counters: %llu increments over "
                    "%zu counters\n",
                    static_cast<unsigned long long>(counted),
                    result.counters.size());
    }
    return result.halted ? 0 : 1;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    std::printf("%s %s entry=0x%llx loaded=%llu bytes\n",
                archName(img.arch), img.pie ? "PIE" : "no-PIE",
                static_cast<unsigned long long>(img.entry),
                static_cast<unsigned long long>(img.loadedSize()));
    for (const auto &sec : img.sections) {
        std::printf("  %-14s 0x%09llx %9llu %s%s%s\n",
                    sec.name.c_str(),
                    static_cast<unsigned long long>(sec.addr),
                    static_cast<unsigned long long>(sec.memSize),
                    sec.loadable ? "L" : "-",
                    sec.executable ? "X" : "-",
                    sec.writable ? "W" : "-");
    }

    if (argc >= 2) {
        const CfgModule cfg = buildCfg(img, AnalysisOptions{});
        for (const auto &[entry, func] : cfg.functions) {
            if (func.name != argv[1])
                continue;
            std::printf("\n<%s>:\n", func.name.c_str());
            for (const auto &[start, block] : func.blocks) {
                for (const auto &in : block.insns) {
                    std::printf("  %08llx  %s\n",
                                static_cast<unsigned long long>(
                                    in.addr),
                                in.toString().c_str());
                }
            }
            return 0;
        }
        std::fprintf(stderr, "no function %s\n", argv[1]);
        return 1;
    }
    std::printf("%zu function symbols, %zu runtime relocations\n",
                img.functionSymbols().size(), img.relocs.size());
    return 0;
}

void
printCacheIssues(const std::vector<CacheFileIssue> &issues)
{
    for (const CacheFileIssue &issue : issues)
        std::fprintf(stderr, "[%s] %s (offset %zu)\n",
                     issue.rule.c_str(), issue.message.c_str(),
                     issue.offset);
}

/**
 * `icp cache info|verify|compact <file.icpc>`: maintenance of the
 * on-disk analysis cache. info walks headers only; verify decodes
 * every payload; compact rewrites the file as one deduplicated
 * segment, optionally under a --max-bytes cap (the manual form of
 * --cache-max-bytes).
 */
int
cmdCache(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string action = argv[0];
    const std::string path = argv[1];

    if (action == "info") {
        const CacheFileInfo info = inspectCacheFile(path);
        if (!info.fileRead) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        std::printf(
            "%s: v%u, %llu bytes, %u segment%s (generation %llu)\n"
            "  %u function entries, %u liveness entries, "
            "%llu payload bytes\n",
            path.c_str(), info.version,
            static_cast<unsigned long long>(info.fileBytes),
            info.segments, info.segments == 1 ? "" : "s",
            static_cast<unsigned long long>(info.generation),
            info.functionEntries, info.livenessEntries,
            static_cast<unsigned long long>(info.payloadBytes));
        printCacheIssues(info.issues);
        return info.issues.empty() ? 0 : 2;
    }

    if (action == "verify") {
        const CacheLoadReport rep = verifyCacheFile(path);
        if (!rep.fileRead) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        std::printf("%s: %u entries verified (%u function, "
                    "%u liveness), %u dropped\n",
                    path.c_str(), rep.loadedEntries(),
                    rep.loadedFunctions, rep.loadedLiveness,
                    rep.droppedEntries);
        printCacheIssues(rep.issues);
        return rep.clean() ? 0 : 2;
    }

    if (action == "compact") {
        std::uint64_t max_bytes = 0;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--max-bytes" && i + 1 < argc)
                max_bytes = std::strtoull(argv[++i], nullptr, 10);
            else if (arg.rfind("--max-bytes=", 0) == 0)
                max_bytes = std::strtoull(
                    arg.c_str() + std::strlen("--max-bytes="),
                    nullptr, 10);
            else
                return usage();
        }
        CacheCompactionResult result;
        if (!compactCacheFile(path, max_bytes, result)) {
            std::fprintf(stderr, "cannot compact %s\n",
                         path.c_str());
            return 1;
        }
        std::printf("%s: %llu -> %llu bytes; %u entries kept, "
                    "%u evicted\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        result.bytesBefore),
                    static_cast<unsigned long long>(
                        result.bytesAfter),
                    result.entriesKept, result.entriesEvicted);
        return 0;
    }
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "compile")
        return cmdCompile(argc - 2, argv + 2);
    if (cmd == "rewrite")
        return cmdRewrite(argc - 2, argv + 2);
    if (cmd == "lint")
        return cmdLint(argc - 2, argv + 2);
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "inspect")
        return cmdInspect(argc - 2, argv + 2);
    if (cmd == "cache")
        return cmdCache(argc - 2, argv + 2);
    return usage();
}
