/**
 * @file
 * Sections of the SBF (Simple Binary Format) image: the synthetic
 * stand-in for ELF used throughout this reproduction. Section roles
 * mirror the ones the paper manipulates: .text, .rodata, .data,
 * .dynsym/.dynstr/.rela_dyn (movable, reusable as scratch),
 * .eh_frame (never modified by our rewriter), and the sections a
 * rewrite adds: .instr, .ra_map, .trap_map, .newrodata.
 */

#ifndef ICP_BINFMT_SECTION_HH
#define ICP_BINFMT_SECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"

namespace icp
{

enum class SectionKind : std::uint8_t
{
    text,      ///< original code
    rodata,    ///< read-only data (jump tables, constants)
    data,      ///< writable data (function-pointer cells, vtabs)
    bss,       ///< zero-initialized data
    dynsym,    ///< dynamic symbols (movable)
    dynstr,    ///< dynamic strings (movable)
    relaDyn,   ///< runtime relocations (movable)
    ehFrame,   ///< unwind records; our rewriter never touches it
    instr,     ///< relocated code + instrumentation (added by rewrite)
    raMap,     ///< relocated RA -> original RA map (added by rewrite)
    trapMap,   ///< trap site -> target map (added by rewrite)
    newRodata, ///< cloned jump tables (added by rewrite)
    other,
};

/** Printable canonical name for a section kind (".text", ...). */
const char *sectionKindName(SectionKind kind);

struct Section
{
    std::string name;
    SectionKind kind = SectionKind::other;

    /** Virtual address at the image's preferred base. */
    Addr addr = 0;

    /** File contents; memSize - bytes.size() is zero fill. */
    std::vector<std::uint8_t> bytes;
    std::uint64_t memSize = 0;

    bool loadable = true;
    bool executable = false;
    bool writable = false;

    Addr end() const { return addr + memSize; }

    bool
    contains(Addr a) const
    {
        return a >= addr && a < end();
    }
};

/** A symbol; functions drive CFG construction and coverage metrics. */
struct Symbol
{
    enum class Kind : std::uint8_t { function, object };

    std::string name;
    Kind kind = Kind::function;
    Addr addr = 0;
    std::uint64_t size = 0;
};

/**
 * A runtime relocation (R_*_RELATIVE analog): at load time the
 * loader writes loadBase + addend into the 8-byte slot at
 * site (site itself also slides with the load base).
 */
struct Relocation
{
    Addr site = 0;
    std::int64_t addend = 0;
};

/**
 * A link-time relocation retained via the -Wl,-q analog. BOLT-style
 * function reordering requires these; they are absent by default.
 */
struct LinkReloc
{
    Addr site = 0;
    std::string symbol;
    std::int64_t addend = 0;
};

} // namespace icp

#endif // ICP_BINFMT_SECTION_HH
