#include "sim/runtime_lib.hh"

#include "support/logging.hh"

namespace icp
{

namespace
{

AddrPairMap
parseMapSection(const BinaryImage &image, SectionKind kind)
{
    if (const Section *s = image.findSection(kind);
        s && !s->bytes.empty()) {
        return AddrPairMap::parse(s->bytes);
    }
    return AddrPairMap();
}

} // namespace

RuntimeLib::RuntimeLib(const LoadedModule &mod)
{
    icp_assert(mod.image, "RuntimeLib: no image");
    trapMap_ = parseMapSection(*mod.image, SectionKind::trapMap);
    raMap_ = parseMapSection(*mod.image, SectionKind::raMap);
}

RuntimeLib::RuntimeLib(const BinaryImage &rewritten)
{
    trapMap_ = parseMapSection(rewritten, SectionKind::trapMap);
    raMap_ = parseMapSection(rewritten, SectionKind::raMap);
}

std::optional<Addr>
RuntimeLib::trapTarget(Addr prefPc) const
{
    return trapMap_.lookup(prefPc);
}

Addr
RuntimeLib::translateRaPref(Addr prefPc) const
{
    if (auto mapped = raMap_.lookup(prefPc))
        return *mapped;
    return prefPc;
}

} // namespace icp
