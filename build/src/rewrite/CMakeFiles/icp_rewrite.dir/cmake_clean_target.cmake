file(REMOVE_RECURSE
  "libicp_rewrite.a"
)
