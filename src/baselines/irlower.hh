/**
 * @file
 * The IR-lowering baseline (Egalito/RetroWrite-like): lift the whole
 * binary and regenerate a new one. Near-zero overhead when it works
 * — all control flow rewritten, no trampolines, compacted layout —
 * but "all-or-nothing": it requires PIE with runtime relocations and
 * fails on the metadata its real counterparts document as
 * unsupported (C++ exceptions, Go binaries, Rust metadata, symbol
 * versioning) or on any analysis-failing function (§1, §8).
 */

#ifndef ICP_BASELINES_IRLOWER_HH
#define ICP_BASELINES_IRLOWER_HH

#include "rewrite/options.hh"

namespace icp
{

/**
 * Lift-and-regenerate @p input. On success the result image has a
 * freshly emitted .text (original code removed), every reference
 * rewritten, and regenerated unwind records.
 */
RewriteResult irLowerRewrite(const BinaryImage &input,
                             const InstrumentationSpec &instrumentation);

} // namespace icp

#endif // ICP_BASELINES_IRLOWER_HH
