#include "rewrite/trampoline.hh"

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

TrampolineWriter::TrampolineWriter(const ArchInfo &arch, Addr toc_base,
                                   ScratchPool &pool, bool multi_hop)
    : arch_(arch), tocBase_(toc_base), pool_(pool),
      multiHop_(multi_hop)
{
}

unsigned
TrampolineWriter::longFormLen() const
{
    return arch_.longTrampLen;
}

bool
TrampolineWriter::encodeDirect(Addr at, Addr target,
                               std::vector<std::uint8_t> &out) const
{
    Instruction jmp = makeJmp(target);
    return arch_.codec->encode(jmp, at, out);
}

bool
TrampolineWriter::encodeShort(Addr at, Addr target,
                              std::vector<std::uint8_t> &out) const
{
    if (!arch_.hasShortBranch)
        return false;
    Instruction jmp = makeJmp(target);
    jmp.formHint = 1;
    return arch_.codec->encode(jmp, at, out);
}

std::vector<std::uint8_t>
TrampolineWriter::encodeLongForm(Addr at, Addr target, Reg scratch,
                                 bool spill) const
{
    std::vector<std::uint8_t> out;
    Addr cur = at;
    auto emit = [&](Instruction in) {
        const bool ok = arch_.codec->encode(in, cur, out);
        icp_assert(ok, "long trampoline encode failed (%s)",
                   in.toString().c_str());
        cur = at + out.size();
    };

    switch (arch_.arch) {
      case Arch::x64:
        // The near branch already spans ±2 GB; no long form.
        icp_panic("x64 has no long trampoline form");
      case Arch::ppc64le: {
        const Reg reg = spill ? Reg::r0 : scratch;
        icp_assert(reg != Reg::none, "ppc long form needs a register");
        const std::int64_t off =
            static_cast<std::int64_t>(target) -
            static_cast<std::int64_t>(tocBase_);
        icp_assert(fitsSigned((off + 0x8000) >> 16, 16),
                   "target beyond TOC reach");
        if (spill)
            emit(makeStore(Reg::sp, -8, reg));
        emit(makeAddisToc(reg, static_cast<std::int32_t>(
                                   (off + 0x8000) >> 16)));
        emit(makeAddImm(reg, signExtend(
                                 static_cast<std::uint64_t>(off), 16)));
        emit(makeMoveToTar(reg));
        if (spill)
            emit(makeLoad(reg, Reg::sp, -8));
        emit(makeJmpTar());
        return out;
      }
      case Arch::aarch64: {
        icp_assert(scratch != Reg::none && !spill,
                   "a64 long form needs a dead register");
        emit(makeAdrPage(scratch, target));
        const Addr page = ((target + 0x8000) >> 16) << 16;
        emit(makeAddImm(scratch,
                        static_cast<std::int64_t>(target) -
                            static_cast<std::int64_t>(page)));
        emit(makeJmpInd(scratch));
        return out;
      }
    }
    icp_panic("unreachable");
}

std::optional<TrampolineOut>
TrampolineWriter::installInPlace(const TrampolineRequest &req)
{
    TrampolineOut out;
    const std::int64_t delta = static_cast<std::int64_t>(req.target) -
                               static_cast<std::int64_t>(req.at);

    if (!arch_.fixedLength) {
        std::vector<std::uint8_t> direct;
        if (req.space >= arch_.directJmpLen &&
            encodeDirect(req.at, req.target, direct)) {
            out.kind = TrampolineKind::direct;
            out.writes.push_back({req.at, std::move(direct)});
            return out;
        }
        return std::nullopt;
    }

    const bool direct_reaches =
        delta >= -arch_.directJmpRange && delta <= arch_.directJmpRange;
    if (direct_reaches) {
        std::vector<std::uint8_t> direct;
        if (encodeDirect(req.at, req.target, direct)) {
            out.kind = TrampolineKind::direct;
            out.writes.push_back({req.at, std::move(direct)});
            return out;
        }
    }

    const bool has_scratch_reg = req.scratchReg != Reg::none;
    const unsigned long_len = arch_.longTrampLen;
    const unsigned spill_len = long_len + 8; // store + reload

    if (has_scratch_reg && req.space >= long_len) {
        out.kind = TrampolineKind::longForm;
        out.writes.push_back(
            {req.at, encodeLongForm(req.at, req.target,
                                    req.scratchReg, false)});
        return out;
    }
    if (arch_.hasTarReg && req.space >= spill_len) {
        out.kind = TrampolineKind::longFormSpill;
        out.writes.push_back(
            {req.at,
             encodeLongForm(req.at, req.target, Reg::none, true)});
        return out;
    }
    return std::nullopt;
}

TrampolineOut
TrampolineWriter::installWithFallback(const TrampolineRequest &req)
{
    TrampolineOut out;

    if (!arch_.fixedLength) {
        if (multiHop_ && req.space >= arch_.shortJmpLen) {
            // Short branch reaches ±127 bytes from its end; a hop
            // chunk there holds the near branch.
            auto hop = pool_.allocate(arch_.directJmpLen,
                                      req.at + arch_.shortJmpLen,
                                      arch_.shortJmpRange -
                                          arch_.directJmpLen,
                                      1);
            if (hop) {
                std::vector<std::uint8_t> first;
                std::vector<std::uint8_t> second;
                if (encodeShort(req.at, *hop, first) &&
                    encodeDirect(*hop, req.target, second)) {
                    out.kind = TrampolineKind::multiHop;
                    out.writes.push_back({req.at, std::move(first)});
                    out.writes.push_back({*hop, std::move(second)});
                    return out;
                }
            }
        }
    } else {
        const bool has_scratch_reg = req.scratchReg != Reg::none;
        const unsigned long_len = arch_.longTrampLen;
        const unsigned spill_len = long_len + 8;
        if (multiHop_ && req.space >= arch_.directJmpLen &&
            (has_scratch_reg || arch_.hasTarReg)) {
            const bool hop_spill = !has_scratch_reg;
            const unsigned hop_len = hop_spill ? spill_len : long_len;
            auto hop = pool_.allocate(hop_len, req.at,
                                      arch_.directJmpRange - hop_len,
                                      arch_.instrAlign);
            if (hop) {
                std::vector<std::uint8_t> first;
                if (encodeDirect(req.at, *hop, first)) {
                    out.kind = TrampolineKind::multiHop;
                    out.writes.push_back({req.at, std::move(first)});
                    out.writes.push_back(
                        {*hop, encodeLongForm(*hop, req.target,
                                              req.scratchReg,
                                              hop_spill)});
                    return out;
                }
            }
        }
    }

    std::vector<std::uint8_t> trap;
    arch_.codec->encode(makeTrap(), req.at, trap);
    out.kind = TrampolineKind::trap;
    out.trapEntries.emplace_back(req.at, req.target);
    out.writes.push_back({req.at, std::move(trap)});
    return out;
}

TrampolineOut
TrampolineWriter::install(const TrampolineRequest &req)
{
    if (auto in_place = installInPlace(req))
        return *in_place;
    return installWithFallback(req);
}

TrampolineOut
TrampolineWriter::installTrap(const TrampolineRequest &req)
{
    TrampolineOut out;
    std::vector<std::uint8_t> trap;
    arch_.codec->encode(makeTrap(), req.at, trap);
    out.kind = TrampolineKind::trap;
    out.trapEntries.emplace_back(req.at, req.target);
    out.writes.push_back({req.at, std::move(trap)});
    return out;
}

TrampolineOut
TrampolineWriter::installForcedLongForm(const TrampolineRequest &req)
{
    icp_assert(arch_.fixedLength && req.space >= arch_.longTrampLen,
               "forced long form needs a fixed ISA and space");
    TrampolineOut out;
    out.kind = TrampolineKind::longForm;
    out.writes.push_back(
        {req.at,
         encodeLongForm(req.at, req.target, req.scratchReg, false)});
    return out;
}

} // namespace icp
