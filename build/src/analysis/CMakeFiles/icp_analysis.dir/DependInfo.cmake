
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/builder.cc" "src/analysis/CMakeFiles/icp_analysis.dir/builder.cc.o" "gcc" "src/analysis/CMakeFiles/icp_analysis.dir/builder.cc.o.d"
  "/root/repo/src/analysis/cfg.cc" "src/analysis/CMakeFiles/icp_analysis.dir/cfg.cc.o" "gcc" "src/analysis/CMakeFiles/icp_analysis.dir/cfg.cc.o.d"
  "/root/repo/src/analysis/funcptr.cc" "src/analysis/CMakeFiles/icp_analysis.dir/funcptr.cc.o" "gcc" "src/analysis/CMakeFiles/icp_analysis.dir/funcptr.cc.o.d"
  "/root/repo/src/analysis/jump_table.cc" "src/analysis/CMakeFiles/icp_analysis.dir/jump_table.cc.o" "gcc" "src/analysis/CMakeFiles/icp_analysis.dir/jump_table.cc.o.d"
  "/root/repo/src/analysis/liveness.cc" "src/analysis/CMakeFiles/icp_analysis.dir/liveness.cc.o" "gcc" "src/analysis/CMakeFiles/icp_analysis.dir/liveness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binfmt/CMakeFiles/icp_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/icp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
