/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis. A fixed algorithm (splitmix64 seeding + xoshiro256**)
 * guarantees the generated binaries are bit-identical across
 * platforms and standard-library versions, which std::mt19937
 * distributions do not.
 */

#ifndef ICP_SUPPORT_RANDOM_HH
#define ICP_SUPPORT_RANDOM_HH

#include <cstdint>
#include <vector>

namespace icp
{

/**
 * Deterministic random source. All workload generators take one of
 * these so that every experiment is reproducible from a seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Pick an index in [0, weights.size()) with the given weights. */
    std::size_t weightedPick(const std::vector<double> &weights);

    /** Fork an independent stream (for per-function decisions). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace icp

#endif // ICP_SUPPORT_RANDOM_HH
