/**
 * @file
 * Per-instruction register def/use sets, used by the liveness
 * analysis that finds scratch registers for long trampolines.
 */

#ifndef ICP_ISA_REG_USAGE_HH
#define ICP_ISA_REG_USAGE_HH

#include <cstdint>

#include "isa/arch.hh"
#include "isa/instruction.hh"

namespace icp
{

/** A small bitset over the architectural registers. */
class RegSet
{
  public:
    RegSet() = default;

    void
    add(Reg r)
    {
        if (r != Reg::none)
            bits_ |= 1u << static_cast<unsigned>(r);
    }

    bool
    contains(Reg r) const
    {
        return r != Reg::none &&
               (bits_ & (1u << static_cast<unsigned>(r)));
    }

    void remove(Reg r)
    {
        if (r != Reg::none)
            bits_ &= ~(1u << static_cast<unsigned>(r));
    }

    RegSet &
    operator|=(const RegSet &o)
    {
        bits_ |= o.bits_;
        return *this;
    }

    RegSet &
    operator-=(const RegSet &o)
    {
        bits_ &= ~o.bits_;
        return *this;
    }

    bool operator==(const RegSet &o) const { return bits_ == o.bits_; }

    std::uint32_t raw() const { return bits_; }

    /** Rebuild from a raw() value (cache-file deserialization). */
    static RegSet
    fromRaw(std::uint32_t bits)
    {
        RegSet s;
        s.bits_ = bits;
        return s;
    }

  private:
    std::uint32_t bits_ = 0;
};

/** Registers read by @p in on @p arch (including implicit reads). */
RegSet regsRead(const Instruction &in, const ArchInfo &arch);

/** Registers written by @p in on @p arch (including implicit writes). */
RegSet regsWritten(const Instruction &in, const ArchInfo &arch);

} // namespace icp

#endif // ICP_ISA_REG_USAGE_HH
