file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_properties.dir/test_cfg_properties.cc.o"
  "CMakeFiles/test_cfg_properties.dir/test_cfg_properties.cc.o.d"
  "test_cfg_properties"
  "test_cfg_properties.pdb"
  "test_cfg_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
