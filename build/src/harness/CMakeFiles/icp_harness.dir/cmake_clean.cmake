file(REMOVE_RECURSE
  "CMakeFiles/icp_harness.dir/experiment.cc.o"
  "CMakeFiles/icp_harness.dir/experiment.cc.o.d"
  "CMakeFiles/icp_harness.dir/verify.cc.o"
  "CMakeFiles/icp_harness.dir/verify.cc.o.d"
  "libicp_harness.a"
  "libicp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
