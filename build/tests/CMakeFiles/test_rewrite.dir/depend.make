# Empty dependencies file for test_rewrite.
# This may be replaced when dependencies are built.
