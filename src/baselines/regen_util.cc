#include "baselines/regen_util.hh"

#include <algorithm>

#include "analysis/funcptr.hh"
#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

std::uint64_t
rewriteRegeneratedFuncPtrs(BinaryImage &out, Section &new_text,
                           const CfgModule &cfg,
                           const EngineResult &engine)
{
    const ArchInfo &arch = out.archInfo();
    const FuncPtrAnalysisResult fps = analyzeFuncPtrs(cfg);
    std::uint64_t rewritten = 0;

    for (const auto &def : fps.defs) {
        Addr new_value;
        if (def.delta == 0) {
            auto it = engine.blockMap.find(def.funcEntry);
            if (it == engine.blockMap.end())
                continue;
            new_value = it->second;
        } else {
            auto it = engine.insnMap.find(
                def.funcEntry + static_cast<Addr>(def.delta));
            if (it == engine.insnMap.end())
                continue;
            new_value = it->second - static_cast<Addr>(def.delta);
        }

        if (def.kind == FuncPtrDef::Kind::dataCell) {
            for (auto &rel : out.relocs) {
                if (rel.site == def.site)
                    rel.addend = static_cast<std::int64_t>(new_value);
            }
            std::vector<std::uint8_t> raw;
            for (unsigned b = 0; b < 8; ++b)
                raw.push_back(
                    static_cast<std::uint8_t>(new_value >> (8 * b)));
            out.writeBytes(def.site, raw);
            ++rewritten;
            continue;
        }

        // Code definitions: patch the regenerated instructions.
        bool patched = false;
        for (Addr orig : def.defAddrs) {
            auto at_it = engine.insnMap.find(orig);
            if (at_it == engine.insnMap.end())
                continue;
            const Addr at = at_it->second;
            const Offset off = at - new_text.addr;
            if (off >= new_text.bytes.size())
                continue;
            Instruction in;
            if (!arch.codec->decode(new_text.bytes.data() + off,
                                    new_text.bytes.size() - off, at,
                                    in)) {
                continue;
            }
            switch (in.op) {
              case Opcode::MovImm:
                in.imm = arch.fixedLength
                    ? static_cast<std::int64_t>(
                          (new_value >> in.movShift) & 0xffff)
                    : static_cast<std::int64_t>(new_value);
                break;
              case Opcode::Lea:
              case Opcode::AdrPage:
                in.target = new_value;
                break;
              case Opcode::AddisToc: {
                const std::int64_t o =
                    static_cast<std::int64_t>(new_value) -
                    static_cast<std::int64_t>(out.tocBase);
                in.imm = (o + 0x8000) >> 16;
                break;
              }
              case Opcode::AddImm: {
                if (arch.hasToc) {
                    const std::int64_t o =
                        static_cast<std::int64_t>(new_value) -
                        static_cast<std::int64_t>(out.tocBase);
                    in.imm = signExtend(
                        static_cast<std::uint64_t>(o), 16);
                } else {
                    const Addr page =
                        ((new_value + 0x8000) >> 16) << 16;
                    in.imm = static_cast<std::int64_t>(new_value) -
                             static_cast<std::int64_t>(page);
                }
                break;
              }
              default:
                break;
            }
            std::vector<std::uint8_t> enc;
            const unsigned old_len = in.length;
            if (arch.codec->encode(in, at, enc) &&
                enc.size() == old_len) {
                std::copy(enc.begin(), enc.end(),
                          new_text.bytes.begin() +
                              static_cast<std::ptrdiff_t>(off));
                patched = true;
            }
        }
        if (patched)
            ++rewritten;
    }
    return rewritten;
}

} // namespace icp
