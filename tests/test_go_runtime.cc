/**
 * @file
 * Go-runtime modeling tests (§6.2): GC stack walks through the
 * binary's own runtime.findfunc/runtime.pcvalue, the necessity of
 * the runtime library for rewritten binaries, and the RA-translation
 * snippet at the runtime functions' entries.
 */

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

Machine::Config
goConfig(std::uint64_t every)
{
    Machine::Config cfg;
    cfg.goGcEveryCalls = every;
    return cfg;
}

} // namespace

TEST(GoRuntime, OriginalBinaryWalksCleanly)
{
    const BinaryImage img = compileProgram(dockerProfile());
    auto proc = loadImage(img);
    Machine machine(*proc, goConfig(32));
    const RunResult r = machine.run();
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_GT(r.gcWalks, 100u);
}

TEST(GoRuntime, GcCadenceScalesWalks)
{
    const BinaryImage img = compileProgram(dockerProfile());
    std::uint64_t walks_fast, walks_slow;
    {
        auto proc = loadImage(img);
        Machine machine(*proc, goConfig(32));
        walks_fast = machine.run().gcWalks;
    }
    {
        auto proc = loadImage(img);
        Machine machine(*proc, goConfig(512));
        walks_slow = machine.run().gcWalks;
    }
    EXPECT_GT(walks_fast, walks_slow * 8);
}

TEST(GoRuntime, RewrittenWithoutRuntimeLibDies)
{
    // The LD_PRELOAD library is load-bearing: without it the first
    // GC walk sees untranslated .instr return addresses.
    const BinaryImage img = compileProgram(dockerProfile());
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.clobberOriginal = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);

    auto proc = loadImage(rw.image);
    Machine machine(*proc, goConfig(64)); // no runtime lib attached
    const RunResult r = machine.run();
    EXPECT_FALSE(r.halted);
}

TEST(GoRuntime, XlatSnippetsFirePerWalk)
{
    const BinaryImage img = compileProgram(dockerProfile());
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.clobberOriginal = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);

    auto proc = loadImage(rw.image);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, goConfig(64));
    machine.attachRuntimeLib(&rt);
    const RunResult r = machine.run();
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_GT(r.gcWalks, 0u);
    // findfunc + pcvalue are called per frame per walk; each entry
    // runs one raXlatStackSlot service call.
    EXPECT_GE(r.rtCalls, 2 * r.gcWalks);
}

TEST(GoRuntime, NoGcMeansGoIsJustACBinary)
{
    // With GC disabled the rewritten Go binary runs even without
    // translation support for the walker (the unwinder is never
    // consulted).
    const BinaryImage img = compileProgram(dockerProfile());
    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.clobberOriginal = true;
    const RewriteResult rw = rewriteBinary(img, opts);
    ASSERT_TRUE(rw.ok);

    auto golden_proc = loadImage(img);
    Machine golden(*golden_proc, Machine::Config{});
    const RunResult g = golden.run();

    auto proc = loadImage(rw.image);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    const RunResult r = machine.run();
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, g.checksum);
    EXPECT_EQ(r.gcWalks, 0u);
}
