#include "analysis/cache.hh"

namespace icp
{

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t hash)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

namespace
{

std::uint64_t
fnvValue(std::uint64_t v, std::uint64_t hash)
{
    std::uint8_t raw[8];
    for (unsigned i = 0; i < 8; ++i)
        raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return fnv1a(raw, sizeof(raw), hash);
}

std::uint64_t
fnvDouble(double v, std::uint64_t hash)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return fnvValue(bits, hash);
}

} // namespace

std::uint64_t
imageCacheSeed(const BinaryImage &image, const AnalysisOptions &opts)
{
    // Nothing position-dependent goes in here: no tocBase, no
    // section addresses or sizes. Analysis results are stored
    // entry-relative and rebased on hit, so two binaries that link
    // the same code at different layouts share entries. What *does*
    // change analysis output for identical bytes is folded:
    // architecture, PIE-ness, and every analysis/injection option.
    std::uint64_t h = fnvValue(
        static_cast<std::uint64_t>(image.arch), 0xcbf29ce484222325ULL);
    h = fnvValue(image.pie ? 1 : 0, h);
    h = fnvValue(opts.resolveJumpTables ? 1 : 0, h);
    h = fnvValue(opts.tailCallHeuristic ? 1 : 0, h);
    h = fnvDouble(opts.inject.failProb, h);
    h = fnvDouble(opts.inject.overProb, h);
    h = fnvDouble(opts.inject.underProb, h);
    h = fnvValue(opts.inject.overExtra, h);
    h = fnvValue(opts.inject.underCut, h);
    h = fnvValue(opts.inject.seed, h);
    return h;
}

std::uint64_t
functionCacheKey(const BinaryImage &image, const Symbol &sym,
                 const std::vector<TryRange> &tries,
                 std::uint64_t seed)
{
    // Content-addressed: size, entry-relative try offsets, and the
    // code bytes. The entry address and symbol name are deliberately
    // not folded — the same code at a different address (or under a
    // different name in another binary) must produce the same key.
    // Jump-table data that lives outside the function is covered by
    // the recorded read-set (validated on every hit at the rebased
    // addresses), not by the key.
    std::uint64_t h = fnvValue(sym.size, seed);
    for (const TryRange &range : tries) {
        h = fnvValue(range.startOff, h);
        h = fnvValue(range.endOff, h);
        h = fnvValue(range.lpOff, h);
    }
    std::vector<std::uint8_t> bytes;
    if (image.readBytes(sym.addr, sym.size, bytes))
        h = fnv1a(bytes.data(), bytes.size(), h);
    return h;
}

// --- rebase-on-hit --------------------------------------------------------

namespace
{

/** entry-delta shift that preserves the invalid_addr sentinel. */
inline Addr
shifted(Addr a, std::uint64_t delta)
{
    return a == invalid_addr ? a : a + delta;
}

} // namespace

Function
rebaseFunction(const Function &func, Addr new_entry)
{
    Function out = func;
    const std::uint64_t delta = new_entry - func.entry;
    if (delta == 0)
        return out;
    out.entry = func.entry + delta;
    out.end = func.end + delta;

    std::map<Addr, Block> blocks;
    for (auto &[start, block] : out.blocks) {
        Block b = std::move(block);
        b.start += delta;
        b.end += delta;
        if (b.callTarget)
            b.callTarget = *b.callTarget + delta;
        for (Instruction &in : b.insns) {
            in.addr += delta;
            in.target = shifted(in.target, delta);
        }
        for (Edge &e : b.succs)
            e.target += delta;
        blocks.emplace(b.start, std::move(b));
    }
    out.blocks = std::move(blocks);

    for (JumpTable &jt : out.jumpTables) {
        jt.jumpAddr += delta;
        jt.tableAddr += delta;
        if (jt.base)
            jt.base = *jt.base + delta;
        for (Addr &a : jt.baseDefAddrs)
            a += delta;
        jt.loadAddr += delta;
        for (Addr &a : jt.targets)
            a += delta;
    }

    std::set<Addr> pads;
    for (Addr a : out.landingPads)
        pads.insert(a + delta);
    out.landingPads = std::move(pads);
    for (Addr &a : out.indirectTailCalls)
        a += delta;

    out.dataDeps = rebaseDataDeps(out.dataDeps, func.entry, new_entry);
    return out;
}

LivenessResult
rebaseLiveness(const LivenessResult &live, Addr orig_entry,
               Addr new_entry)
{
    const std::uint64_t delta = new_entry - orig_entry;
    if (delta == 0)
        return live;
    LivenessResult out;
    for (const auto &[addr, regs] : live.liveIn)
        out.liveIn.emplace(addr + delta, regs);
    return out;
}

DataDeps
rebaseDataDeps(const DataDeps &deps, Addr orig_entry, Addr new_entry)
{
    const std::uint64_t delta = new_entry - orig_entry;
    if (delta == 0)
        return deps;
    std::vector<DepRange> ranges = deps.ranges();
    for (DepRange &r : ranges) {
        r.lo += delta;
        r.hi += delta;
    }
    DataDeps out;
    out.setRanges(std::move(ranges));
    return out;
}

AnalysisCache &
AnalysisCache::global()
{
    static AnalysisCache cache;
    return cache;
}

// findFunction/findLiveness live in cache_store.cc: a lookup that
// misses the decoded maps may have to deserialize a lazily-indexed
// entry from a mapped cache file, and the payload decoders are
// private to the store.

void
AnalysisCache::storeFunction(std::uint64_t key, Arch arch,
                             Function func, Addr toc_base)
{
    const Addr entry = func.entry;
    // Toc-relative address formation (ppc64le addis rd,r2) derives
    // targets from tocBase, not from pc: a rebase is only exact when
    // the requester's tocBase shifts by the same delta as the entry.
    // Record the analysis-time offset so find can enforce that.
    bool uses_toc = false;
    for (const auto &[start, block] : func.blocks) {
        for (const Instruction &in : block.insns) {
            if (in.op == Opcode::AddisToc) {
                uses_toc = true;
                break;
            }
        }
        if (uses_toc)
            break;
    }
    Entry<Function> entry_rec;
    entry_rec.arch = arch;
    entry_rec.origEntry = entry;
    entry_rec.tocDelta = static_cast<std::int64_t>(toc_base) -
                         static_cast<std::int64_t>(entry);
    entry_rec.usesToc = uses_toc;
    entry_rec.value =
        std::make_shared<const Function>(std::move(func));
    std::lock_guard<std::mutex> lock(mu_);
    pendingFunctions_.erase(key);
    functions_[key] = std::move(entry_rec);
}

void
AnalysisCache::storeLiveness(std::uint64_t key, Arch arch,
                             Addr entry, LivenessResult live)
{
    Entry<LivenessResult> entry_rec;
    entry_rec.arch = arch;
    entry_rec.origEntry = entry;
    entry_rec.value =
        std::make_shared<const LivenessResult>(std::move(live));
    std::lock_guard<std::mutex> lock(mu_);
    pendingLiveness_.erase(key);
    liveness_[key] = std::move(entry_rec);
}

void
AnalysisCache::storeDataDeps(std::uint64_t key, Arch arch,
                             Addr entry, DataDeps deps)
{
    Entry<DataDeps> entry_rec;
    entry_rec.arch = arch;
    entry_rec.origEntry = entry;
    entry_rec.value = std::make_shared<const DataDeps>(std::move(deps));
    std::lock_guard<std::mutex> lock(mu_);
    pendingDataDeps_.erase(key);
    dataDeps_[key] = std::move(entry_rec);
}

AnalysisCache::Stats
AnalysisCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
AnalysisCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return functions_.size() + liveness_.size() + dataDeps_.size() +
           pendingFunctions_.size() + pendingLiveness_.size() +
           pendingDataDeps_.size();
}

void
AnalysisCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    functions_.clear();
    liveness_.clear();
    dataDeps_.clear();
    pendingFunctions_.clear();
    pendingLiveness_.clear();
    pendingDataDeps_.clear();
    stats_ = Stats{};
}

} // namespace icp
