/**
 * @file
 * Shared logic of the regenerating baselines (IR lowering, BOLT):
 * after whole-binary code regeneration, every function-pointer
 * definition must be re-targeted at the regenerated entries.
 */

#ifndef ICP_BASELINES_REGEN_UTIL_HH
#define ICP_BASELINES_REGEN_UTIL_HH

#include "analysis/cfg.hh"
#include "rewrite/engine.hh"

namespace icp
{

/**
 * Rewrite all function-pointer definitions of @p cfg in @p out:
 * relocation-backed cells, data-scan cells, and code-immediate /
 * pc-relative definitions inside the regenerated text section
 * @p new_text. Returns the number of rewritten definitions.
 */
std::uint64_t rewriteRegeneratedFuncPtrs(BinaryImage &out,
                                         Section &new_text,
                                         const CfgModule &cfg,
                                         const EngineResult &engine);

} // namespace icp

#endif // ICP_BASELINES_REGEN_UTIL_HH
