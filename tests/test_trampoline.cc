/**
 * @file
 * Unit tests of the trampoline writer and the scratch pool: form
 * selection per space/range/register availability, byte-level
 * verification of emitted sequences, multi-hop chaining through the
 * pool, trap fallback, and pool allocation properties.
 */

#include <gtest/gtest.h>

#include "rewrite/scratch.hh"
#include "rewrite/trampoline.hh"

using namespace icp;

namespace
{

Instruction
decodeAt(const ArchInfo &arch, const std::vector<std::uint8_t> &bytes,
         Addr at)
{
    Instruction in;
    EXPECT_TRUE(
        arch.codec->decode(bytes.data(), bytes.size(), at, in));
    return in;
}

} // namespace

TEST(ScratchPool, DonateAllocateAndRanges)
{
    ScratchPool pool;
    pool.donate(0x1000, 64);
    pool.donate(0x9000, 32);
    EXPECT_EQ(pool.bytesFree(), 96u);

    // Range-restricted allocation must pick the nearby chunk.
    auto near = pool.allocate(16, 0x9100, 0x400, 1);
    ASSERT_TRUE(near.has_value());
    EXPECT_GE(*near, 0x9000u);
    EXPECT_LT(*near, 0x9020u);

    // Exhaust the nearby chunk; next request falls out of range.
    auto second = pool.allocate(16, 0x9100, 0x400, 1);
    ASSERT_TRUE(second.has_value());
    EXPECT_FALSE(pool.allocate(16, 0x9100, 0x400, 1).has_value());

    // Unrestricted allocation succeeds from the far chunk.
    EXPECT_TRUE(pool.allocate(16, 0x9100, 0, 1).has_value());
}

TEST(ScratchPool, AlignmentCarvesPadding)
{
    ScratchPool pool;
    pool.donate(0x1001, 64, 1);
    auto aligned = pool.allocate(8, 0, 0, 16);
    ASSERT_TRUE(aligned.has_value());
    EXPECT_EQ(*aligned % 16, 0u);
    // The pre-padding bytes remain available.
    auto rest = pool.allocate(1, 0, 0, 1);
    ASSERT_TRUE(rest.has_value());
}

TEST(Trampoline, X64DirectWhenSpaceAllows)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    ScratchPool pool;
    TrampolineWriter writer(arch, 0, pool, true);
    TrampolineRequest req;
    req.at = 0x401000;
    req.space = 16;
    req.target = 0x900000;
    const TrampolineOut out = writer.install(req);
    EXPECT_EQ(out.kind, TrampolineKind::direct);
    ASSERT_EQ(out.writes.size(), 1u);
    const Instruction in =
        decodeAt(arch, out.writes[0].bytes, req.at);
    EXPECT_EQ(in.op, Opcode::Jmp);
    EXPECT_EQ(in.target, req.target);
    EXPECT_EQ(in.length, 5u);
}

TEST(Trampoline, X64MultiHopThroughNearbyScratch)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    ScratchPool pool;
    pool.donate(0x401040, 32); // within short-branch reach
    TrampolineWriter writer(arch, 0, pool, true);
    TrampolineRequest req;
    req.at = 0x401000;
    req.space = 3; // too small for the 5-byte near form
    req.target = 0x900000;
    const TrampolineOut out = writer.install(req);
    ASSERT_EQ(out.kind, TrampolineKind::multiHop);
    ASSERT_EQ(out.writes.size(), 2u);
    const Instruction hop =
        decodeAt(arch, out.writes[0].bytes, req.at);
    EXPECT_EQ(hop.length, 2u);
    EXPECT_EQ(hop.target, out.writes[1].at);
    const Instruction far =
        decodeAt(arch, out.writes[1].bytes, out.writes[1].at);
    EXPECT_EQ(far.target, req.target);
}

TEST(Trampoline, X64TrapWhenNoScratchInReach)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    ScratchPool pool;
    pool.donate(0x500000, 64); // far beyond ±127 bytes
    TrampolineWriter writer(arch, 0, pool, true);
    TrampolineRequest req;
    req.at = 0x401000;
    req.space = 3;
    req.target = 0x900000;
    const TrampolineOut out = writer.install(req);
    EXPECT_EQ(out.kind, TrampolineKind::trap);
    ASSERT_EQ(out.trapEntries.size(), 1u);
    EXPECT_EQ(out.trapEntries[0].first, req.at);
    EXPECT_EQ(out.trapEntries[0].second, req.target);
    EXPECT_EQ(out.writes[0].bytes.size(), arch.trapLen);
}

TEST(Trampoline, PpcFormsByDistanceAndRegister)
{
    const auto &arch = ArchInfo::get(Arch::ppc64le);
    ScratchPool pool;
    TrampolineWriter writer(arch, /*toc=*/0x500000, pool, true);

    // In range: single b.
    TrampolineRequest near_req;
    near_req.at = 0x401000;
    near_req.space = 4;
    near_req.target = 0x401000 + (1 << 20);
    near_req.scratchReg = Reg::r5;
    EXPECT_EQ(writer.install(near_req).kind,
              TrampolineKind::direct);

    // Out of range with a dead register and 16 bytes: long form.
    TrampolineRequest far_req = near_req;
    far_req.space = 16;
    far_req.target = 0x401000 + (1LL << 30);
    const TrampolineOut long_form = writer.install(far_req);
    EXPECT_EQ(long_form.kind, TrampolineKind::longForm);
    EXPECT_EQ(long_form.writes[0].bytes.size(), 16u);

    // No dead register but 24 bytes: spill form.
    TrampolineRequest spill_req = far_req;
    spill_req.space = 24;
    spill_req.scratchReg = Reg::none;
    EXPECT_EQ(writer.install(spill_req).kind,
              TrampolineKind::longFormSpill);

    // Small block, no register: chained through the pool.
    pool.donate(0x402000, 64, 4);
    TrampolineRequest tiny = far_req;
    tiny.space = 4;
    tiny.scratchReg = Reg::none;
    EXPECT_EQ(writer.install(tiny).kind, TrampolineKind::multiHop);
}

TEST(Trampoline, A64TrapsWithoutDeadRegister)
{
    const auto &arch = ArchInfo::get(Arch::aarch64);
    ScratchPool pool;
    TrampolineWriter writer(arch, 0, pool, true);
    TrampolineRequest req;
    req.at = 0x401000;
    req.space = 64;
    req.target = 0x401000 + (1LL << 30); // beyond ±128MB
    req.scratchReg = Reg::none;
    EXPECT_EQ(writer.install(req).kind, TrampolineKind::trap);

    req.scratchReg = Reg::r7;
    const TrampolineOut out = writer.install(req);
    EXPECT_EQ(out.kind, TrampolineKind::longForm);
    EXPECT_EQ(out.writes[0].bytes.size(), 12u);
}

TEST(Trampoline, InPlacePhaseRefusesWhatFallbackHandles)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    ScratchPool pool;
    pool.donate(0x401040, 32);
    TrampolineWriter writer(arch, 0, pool, true);
    TrampolineRequest req;
    req.at = 0x401000;
    req.space = 3;
    req.target = 0x900000;
    EXPECT_FALSE(writer.installInPlace(req).has_value());
    EXPECT_EQ(writer.installWithFallback(req).kind,
              TrampolineKind::multiHop);
}

TEST(Trampoline, MultiHopDisabledMeansTrap)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    ScratchPool pool;
    pool.donate(0x401040, 32);
    TrampolineWriter writer(arch, 0, pool, /*multi_hop=*/false);
    TrampolineRequest req;
    req.at = 0x401000;
    req.space = 3;
    req.target = 0x900000;
    EXPECT_EQ(writer.install(req).kind, TrampolineKind::trap);
}
