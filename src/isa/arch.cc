#include "isa/arch.hh"

#include "isa/codec_fixed.hh"
#include "isa/codec_x64.hh"
#include "support/logging.hh"

namespace icp
{

namespace
{

const CodecX64 codec_x64;

const CodecFixed codec_ppc({
    .branchRange = 32LL * 1024 * 1024, // ±32 MB
    .hasToc = true,
    .hasAdr = false,
});

const CodecFixed codec_a64({
    .branchRange = 128LL * 1024 * 1024, // ±128 MB
    .hasToc = false,
    .hasAdr = true,
});

const ArchInfo arch_x64 = {
    .arch = Arch::x64,
    .name = "x86-64",
    .fixedLength = false,
    .instrAlign = 1,
    .minInstrLen = 1,
    .maxInstrLen = 10,
    .hasLinkRegister = false,
    .hasToc = false,
    .hasTarReg = false,
    .hasShortBranch = true,
    .shortJmpRange = 127,
    .shortJmpLen = 2,
    .directJmpRange = (1LL << 31) - 1,
    .directJmpLen = 5,
    .longTrampRange = (1LL << 31) - 1,
    .longTrampLen = 5,
    .nopLen = 1,
    .trapLen = 1,
    .codec = &codec_x64,
};

const ArchInfo arch_ppc = {
    .arch = Arch::ppc64le,
    .name = "ppc64le",
    .fixedLength = true,
    .instrAlign = 4,
    .minInstrLen = 4,
    .maxInstrLen = 4,
    .hasLinkRegister = true,
    .hasToc = true,
    .hasTarReg = true,
    .hasShortBranch = false,
    .shortJmpRange = 0,
    .shortJmpLen = 0,
    .directJmpRange = 32LL * 1024 * 1024,
    .directJmpLen = 4,
    // addis/addi reach ±2 GB around the TOC anchor; 4 instructions.
    .longTrampRange = (1LL << 31) - 1,
    .longTrampLen = 16,
    .nopLen = 4,
    .trapLen = 4,
    .codec = &codec_ppc,
};

const ArchInfo arch_a64 = {
    .arch = Arch::aarch64,
    .name = "aarch64",
    .fixedLength = true,
    .instrAlign = 4,
    .minInstrLen = 4,
    .maxInstrLen = 4,
    .hasLinkRegister = true,
    .hasToc = false,
    .hasTarReg = false,
    .hasShortBranch = false,
    .shortJmpRange = 0,
    .shortJmpLen = 0,
    // The 26-bit word field tops out one instruction short of 128MB.
    .directJmpRange = 128LL * 1024 * 1024 - 4,
    .directJmpLen = 4,
    // adrp/add/br reach ±2 GB around the pc; 3 instructions.
    .longTrampRange = (1LL << 31) - 1,
    .longTrampLen = 12,
    .nopLen = 4,
    .trapLen = 4,
    .codec = &codec_a64,
};

} // namespace

const ArchInfo &
ArchInfo::get(Arch arch)
{
    switch (arch) {
      case Arch::x64: return arch_x64;
      case Arch::ppc64le: return arch_ppc;
      case Arch::aarch64: return arch_a64;
    }
    icp_panic("unknown arch %u", static_cast<unsigned>(arch));
}

const char *
archName(Arch arch)
{
    return ArchInfo::get(arch).name;
}

} // namespace icp
