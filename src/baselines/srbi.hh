/**
 * @file
 * The SRBI / Dyninst-10.2 baseline: per-block trampolines (no
 * placement analysis, no multi-hop chaining), call emulation for
 * stack unwinding, direct-control-flow-only rewriting, and no
 * indirect-tail-call heuristic. Its documented engineering gaps are
 * reproduced: call emulation is unimplemented on ppc64le/aarch64
 * (C++-exception binaries fail outright there), and the x64
 * emulation mishandles indirect calls through stack memory (§8.1).
 */

#ifndef ICP_BASELINES_SRBI_HH
#define ICP_BASELINES_SRBI_HH

#include <optional>

#include "rewrite/options.hh"

namespace icp
{

/** Rewrite options modeling SRBI / mainstream Dyninst-10.2. */
RewriteOptions srbiOptions();

/**
 * Preflight check: nullopt when SRBI can attempt the binary, else
 * the reason it refuses (the paper's "failed benchmarks").
 */
std::optional<std::string> srbiRefuses(const BinaryImage &image);

/**
 * Dyninst-10.2's signal-delivery bug (§8.1: "over 100%% runtime
 * overhead for 602.sgcc after fixing signal delivery"): runs that
 * lean this heavily on trap trampolines crashed in the runtime
 * library and count as failures.
 */
inline constexpr std::uint64_t srbi_signal_bug_traps = 50000;

inline bool
srbiSignalBugTriggered(std::uint64_t traps)
{
    return traps > srbi_signal_bug_traps;
}

} // namespace icp

#endif // ICP_BASELINES_SRBI_HH
