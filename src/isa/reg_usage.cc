#include "isa/reg_usage.hh"

namespace icp
{

RegSet
regsRead(const Instruction &in, const ArchInfo &arch)
{
    RegSet set;
    switch (in.op) {
      case Opcode::MovReg:
      case Opcode::MoveToTar:
      case Opcode::JmpInd:
      case Opcode::CallInd:
      case Opcode::Push:
        set.add(in.rs1);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Xor:
        set.add(in.rd);
        set.add(in.rs1);
        break;
      case Opcode::AddImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
        set.add(in.rd);
        break;
      case Opcode::MovImm:
        if (in.movKeep)
            set.add(in.rd);
        break;
      case Opcode::Cmp:
        set.add(in.rs1);
        set.add(in.rs2);
        break;
      case Opcode::CmpImm:
      case Opcode::CallIndMem:
      case Opcode::Load:
      case Opcode::LoadSz:
        set.add(in.rs1);
        break;
      case Opcode::LoadIdx:
        set.add(in.rs1);
        set.add(in.rs2);
        break;
      case Opcode::Store:
      case Opcode::StoreSz:
        set.add(in.rs1);
        set.add(in.rs2);
        break;
      case Opcode::AddisToc:
        set.add(Reg::toc);
        break;
      case Opcode::JmpTar:
        set.add(Reg::tar);
        break;
      case Opcode::Ret:
        if (arch.hasLinkRegister)
            set.add(Reg::lr);
        else
            set.add(Reg::sp);
        break;
      case Opcode::Pop:
        set.add(Reg::sp);
        break;
      default:
        break;
    }
    if (in.op == Opcode::Push || in.op == Opcode::Pop ||
        in.op == Opcode::PushImm) {
        set.add(Reg::sp);
    }
    return set;
}

RegSet
regsWritten(const Instruction &in, const ArchInfo &arch)
{
    RegSet set;
    switch (in.op) {
      case Opcode::MovImm:
      case Opcode::MovReg:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Xor:
      case Opcode::AddImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::Load:
      case Opcode::LoadSz:
      case Opcode::LoadIdx:
      case Opcode::Lea:
      case Opcode::AdrPage:
      case Opcode::AddisToc:
      case Opcode::Pop:
        set.add(in.rd);
        break;
      case Opcode::MoveToTar:
        set.add(Reg::tar);
        break;
      case Opcode::Call:
      case Opcode::CallInd:
      case Opcode::CallIndMem:
        if (arch.hasLinkRegister)
            set.add(Reg::lr);
        else
            set.add(Reg::sp);
        break;
      default:
        break;
    }
    if (in.op == Opcode::Push || in.op == Opcode::Pop ||
        in.op == Opcode::Ret || in.op == Opcode::PushImm) {
        set.add(Reg::sp);
    }
    return set;
}

} // namespace icp
