/**
 * @file
 * Variable-length codec for the x64-like ISA. Instruction lengths
 * are deterministic per opcode (1..10 bytes); direct branches come in
 * a 2-byte short form (±127 B) and a 5-byte near form (±2 GB),
 * mirroring the trampoline-relevant properties of x86-64.
 */

#ifndef ICP_ISA_CODEC_X64_HH
#define ICP_ISA_CODEC_X64_HH

#include "isa/arch.hh"

namespace icp
{

class CodecX64 : public Codec
{
  public:
    bool encode(const Instruction &in, Addr addr,
                std::vector<std::uint8_t> &out) const override;
    bool decode(const std::uint8_t *bytes, std::size_t avail, Addr addr,
                Instruction &out) const override;
    unsigned encodedLength(const Instruction &in) const override;
};

} // namespace icp

#endif // ICP_ISA_CODEC_X64_HH
