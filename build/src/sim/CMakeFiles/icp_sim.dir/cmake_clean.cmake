file(REMOVE_RECURSE
  "CMakeFiles/icp_sim.dir/icache.cc.o"
  "CMakeFiles/icp_sim.dir/icache.cc.o.d"
  "CMakeFiles/icp_sim.dir/loader.cc.o"
  "CMakeFiles/icp_sim.dir/loader.cc.o.d"
  "CMakeFiles/icp_sim.dir/machine.cc.o"
  "CMakeFiles/icp_sim.dir/machine.cc.o.d"
  "CMakeFiles/icp_sim.dir/memory.cc.o"
  "CMakeFiles/icp_sim.dir/memory.cc.o.d"
  "CMakeFiles/icp_sim.dir/runtime_lib.cc.o"
  "CMakeFiles/icp_sim.dir/runtime_lib.cc.o.d"
  "libicp_sim.a"
  "libicp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
