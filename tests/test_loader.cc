/**
 * @file
 * Loader and module tests: PIE slides with relocation application,
 * address translation round trips, stack placement, and the
 * non-PIE/slide precondition.
 */

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

TEST(Loader, NonPieLoadsAtPreferredBase)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    auto proc = loadImage(img);
    EXPECT_EQ(proc->module.slide, 0);
    EXPECT_EQ(proc->module.toLoaded(img.entry), img.entry);
    for (const auto &sec : img.sections) {
        if (sec.loadable && sec.memSize > 0) {
            EXPECT_TRUE(proc->mem.isMapped(sec.addr));
        }
    }
}

TEST(Loader, PieSlideTranslationRoundTrips)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    auto proc = loadImage(img);
    EXPECT_EQ(proc->module.slide, default_pie_slide);
    const Addr loaded = proc->module.toLoaded(img.entry);
    EXPECT_EQ(loaded, img.entry +
                          static_cast<Addr>(default_pie_slide));
    EXPECT_EQ(proc->module.toPref(loaded), img.entry);
}

TEST(Loader, RelocationsAreSlidden)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    ASSERT_FALSE(img.relocs.empty());
    auto proc = loadImage(img);
    for (const auto &rel : img.relocs) {
        std::uint64_t value = 0;
        ASSERT_TRUE(proc->mem.read(proc->module.toLoaded(rel.site),
                                   8, value));
        EXPECT_EQ(value,
                  static_cast<std::uint64_t>(rel.addend +
                                             proc->module.slide));
    }
}

TEST(Loader, CustomSlideHonored)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    auto proc = loadImage(img, 0x40000000);
    EXPECT_EQ(proc->module.slide, 0x40000000);
    Machine machine(*proc, Machine::Config{});
    const RunResult r = machine.run();
    EXPECT_TRUE(r.halted) << r.describe();
}

TEST(Loader, StackIsAboveTheImageAndMapped)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::ppc64le, false));
    auto proc = loadImage(img);
    EXPECT_GT(proc->stackLimit, img.highWaterMark() - 4096);
    EXPECT_GT(proc->stackTop, proc->stackLimit);
    EXPECT_TRUE(proc->mem.isMapped(proc->stackLimit));
    EXPECT_TRUE(proc->mem.isMapped(proc->stackTop - 1));
}

TEST(Loader, SameChecksumAtAnySlide)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::aarch64, true));
    std::uint64_t checksum = 0;
    for (std::int64_t slide : {std::int64_t{0}, default_pie_slide,
                               std::int64_t{0x75610000}}) {
        auto proc = loadImage(img, slide);
        Machine machine(*proc, Machine::Config{});
        const RunResult r = machine.run();
        ASSERT_TRUE(r.halted) << "slide " << slide;
        if (checksum == 0)
            checksum = r.checksum;
        else
            EXPECT_EQ(r.checksum, checksum) << "slide " << slide;
    }
}

TEST(LoaderDeath, NonPieWithSlideRejected)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    EXPECT_DEATH(loadImage(img, 0x1000), "non-PIE");
}
