/**
 * @file
 * Simulator tests on hand-assembled images: instruction semantics,
 * both call conventions, stack ops, memory faults, trap dispatch
 * through the runtime library, exception unwinding with landing
 * pads, PIE slides with relocations, the i-cache model, and the
 * step limit.
 */

#include <functional>

#include <gtest/gtest.h>

#include "binfmt/addr_map.hh"
#include "isa/assembler.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

constexpr Addr text_base = 0x401000;

/** Build a one-section image from an emission callback. */
BinaryImage
makeImage(Arch arch, const std::function<void(Assembler &)> &emit,
          std::vector<FdeRecord> fdes = {}, bool pie = false)
{
    BinaryImage img;
    img.arch = arch;
    img.pie = pie;
    img.prefBase = 0x400000;
    img.entry = text_base;
    img.tocBase = 0x600000;

    Assembler as(ArchInfo::get(arch), text_base);
    emit(as);

    Section text;
    text.name = ".text";
    text.kind = SectionKind::text;
    text.addr = text_base;
    text.bytes = as.finalize();
    text.memSize = text.bytes.size();
    text.executable = true;
    img.sections.push_back(std::move(text));

    Section data;
    data.name = ".data";
    data.kind = SectionKind::data;
    data.addr = 0x500000;
    data.memSize = 256;
    data.bytes.assign(256, 0);
    data.writable = true;
    img.sections.push_back(std::move(data));

    Section eh;
    eh.name = ".eh_frame";
    eh.kind = SectionKind::ehFrame;
    eh.addr = 0x700000;
    eh.bytes = serializeEhFrame(fdes);
    eh.memSize = eh.bytes.size();
    img.sections.push_back(std::move(eh));

    Symbol sym;
    sym.name = "main";
    sym.addr = text_base;
    sym.size = img.sections[0].memSize;
    img.symbols.push_back(sym);
    return img;
}

RunResult
runIt(const BinaryImage &img, Machine::Config cfg = Machine::Config{},
      const RuntimeLib *rt = nullptr)
{
    auto proc = loadImage(img);
    Machine machine(*proc, cfg);
    if (rt)
        machine.attachRuntimeLib(rt);
    return machine.run();
}

} // namespace

TEST(Sim, ArithmeticChecksum)
{
    for (Arch arch : all_arches) {
        const BinaryImage img = makeImage(arch, [](Assembler &as) {
            as.emitMovImm64(Reg::r0, 40);
            as.emit(makeAddImm(Reg::r0, 2));
            as.emitMovImm64(Reg::r1, 100);
            as.emit(makeXor(Reg::r0, Reg::r1));
            as.emit(makeHalt());
        });
        const RunResult r = runIt(img);
        ASSERT_TRUE(r.halted) << archName(arch);
        EXPECT_EQ(r.checksum, 42u ^ 100u) << archName(arch);
    }
}

TEST(Sim, ShiftCompareAndBranch)
{
    const BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        const auto skip = as.newLabel();
        as.emit(makeMovImm(Reg::r0, 5));
        as.emit(makeShlImm(Reg::r0, 2));   // 20
        as.emit(makeCmpImm(Reg::r0, 20));
        as.emitToLabel(makeJmpCond(Cond::eq, 0), skip);
        as.emit(makeMovImm(Reg::r0, 0));   // skipped
        as.bind(skip);
        as.emit(makeHalt());
    });
    const RunResult r = runIt(img);
    EXPECT_EQ(r.checksum, 20u);
}

TEST(Sim, CallRetBothConventions)
{
    for (Arch arch : all_arches) {
        const BinaryImage img = makeImage(arch, [&](Assembler &as) {
            const auto callee = as.newLabel();
            as.emitToLabel(makeCall(0), callee);
            as.emit(makeAddImm(Reg::r0, 1)); // after return
            as.emit(makeHalt());
            as.bind(callee);
            as.emit(makeMovImm(Reg::r0, 10));
            as.emit(makeRet());
        });
        const RunResult r = runIt(img);
        ASSERT_TRUE(r.halted) << archName(arch);
        EXPECT_EQ(r.checksum, 11u) << archName(arch);
    }
}

TEST(Sim, PushPopX64)
{
    const BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        as.emit(makeMovImm(Reg::r1, 77));
        as.emit(makePush(Reg::r1));
        as.emit(makePushImm(33));
        as.emit(makePop(Reg::r2));
        as.emit(makePop(Reg::r0));
        as.emit(makeAdd(Reg::r0, Reg::r2));
        as.emit(makeHalt());
    });
    EXPECT_EQ(runIt(img).checksum, 110u);
}

TEST(Sim, MemoryFaultOnUnmapped)
{
    const BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        as.emit(makeMovImm(Reg::r1, 0x10)); // unmapped low page
        as.emit(makeLoad(Reg::r0, Reg::r1, 0));
        as.emit(makeHalt());
    });
    const RunResult r = runIt(img);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.fault, FaultKind::badMemory);
}

TEST(Sim, TrapWithoutRuntimeLibFaults)
{
    const BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        as.emit(makeTrap());
        as.emit(makeHalt());
    });
    const RunResult r = runIt(img);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.fault, FaultKind::trapUnmapped);
}

TEST(Sim, TrapDispatchThroughRuntimeLib)
{
    // trap at entry redirects to the landing code further down.
    BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        as.emit(makeTrap());
        as.emit(makeHalt()); // skipped
        as.alignTo(16);
        as.emit(makeMovImm(Reg::r0, 9));
        as.emit(makeHalt());
    });
    const Addr target = text_base + 16;
    AddrPairMap trap_map({{text_base, target}});
    Section s;
    s.name = ".trap_map";
    s.kind = SectionKind::trapMap;
    s.addr = 0x800000;
    s.bytes = trap_map.serialize();
    s.memSize = s.bytes.size();
    img.sections.push_back(std::move(s));

    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&rt);
    const RunResult r = machine.run();
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 9u);
    EXPECT_EQ(r.traps, 1u);
    // Traps are expensive by design.
    EXPECT_GT(r.cycles, CostModel{}.trap);
}

TEST(Sim, ThrowCaughtByLandingPad)
{
    // main calls thrower inside a try range; landing pad sets r0.
    std::vector<FdeRecord> fdes(2);
    BinaryImage img = makeImage(Arch::x64, [&](Assembler &as) {
        const auto thrower = as.newLabel();
        const auto lp = as.newLabel();
        const auto try_start = as.newLabel();
        // main: frame, call in try range.
        as.emit(makeAddImm(Reg::sp, -48));
        as.bind(try_start);
        as.emitToLabel(makeCall(0), thrower);
        as.emit(makeMovImm(Reg::r0, 1)); // normal path (skipped)
        as.emit(makeHalt());
        as.bind(lp);
        as.emit(makeMovImm(Reg::r0, 55));
        as.emit(makeHalt());
        as.bind(thrower);
        as.emit(makeThrow());

        fdes[0].start = text_base;
        fdes[0].end = as.labelAddr(thrower);
        fdes[0].frameSize = 48;
        fdes[0].raOnStack = true;
        fdes[0].raOffset = 48;
        fdes[0].tryRanges = {
            {as.labelAddr(try_start) - text_base,
             as.labelAddr(lp) - text_base,
             as.labelAddr(lp) - text_base}};
        fdes[1].start = as.labelAddr(thrower);
        fdes[1].end = as.labelAddr(thrower) + 4;
        fdes[1].frameSize = 0;
        fdes[1].raOnStack = true;
        fdes[1].raOffset = 0;
    });
    img.setFdeRecords(fdes);
    const RunResult r = runIt(img);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 55u);
    EXPECT_EQ(r.exceptionsThrown, 1u);
    EXPECT_GT(r.unwindSteps, 0u);
}

TEST(Sim, UncaughtThrowFaults)
{
    std::vector<FdeRecord> fdes(1);
    BinaryImage img = makeImage(Arch::x64, [&](Assembler &as) {
        as.emit(makeThrow());
        fdes[0].start = text_base;
        fdes[0].end = text_base + 4;
        fdes[0].frameSize = 0;
        fdes[0].raOnStack = true;
        fdes[0].raOffset = 0;
    });
    img.setFdeRecords(fdes);
    const RunResult r = runIt(img);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.fault, FaultKind::uncaughtException);
}

TEST(Sim, PieSlideAppliesRelocations)
{
    BinaryImage img = makeImage(
        Arch::x64,
        [](Assembler &as) {
            // Load the relocated cell at 0x500000 and jump to it.
            as.emit(makeLea(Reg::r1, 0x500000));
            as.emit(makeLoad(Reg::r2, Reg::r1, 0));
            as.emit(makeJmpInd(Reg::r2));
            as.alignTo(16);
            as.emit(makeMovImm(Reg::r0, 123)); // jump target
            as.emit(makeHalt());
        },
        {}, /*pie=*/true);
    img.relocs.push_back(
        {0x500000, static_cast<std::int64_t>(text_base + 16)});
    const RunResult r = runIt(img);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 123u);
}

TEST(Sim, ICacheMissesScaleWithFootprint)
{
    // A straight-line run much larger than the 32 KiB i-cache.
    const BinaryImage big = makeImage(Arch::x64, [](Assembler &as) {
        for (int i = 0; i < 60000; ++i)
            as.emit(makeNop());
        as.emit(makeHalt());
    });
    const RunResult r = runIt(big);
    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.icacheMisses, 500u);

    // A tight loop stays resident after the first pass.
    const BinaryImage small = makeImage(Arch::x64, [](Assembler &as) {
        const auto loop = as.newLabel();
        as.emit(makeMovImm(Reg::r1, 20000));
        as.bind(loop);
        as.emit(makeAddImm(Reg::r1, -1));
        as.emit(makeCmpImm(Reg::r1, 0));
        as.emitToLabel(makeJmpCond(Cond::gt, 0), loop);
        as.emit(makeHalt());
    });
    const RunResult s = runIt(small);
    ASSERT_TRUE(s.halted);
    EXPECT_LT(s.icacheMisses, 10u);
    EXPECT_GT(s.icacheAccesses, 50000u);
}

TEST(Sim, StepLimit)
{
    const BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        const auto loop = as.newLabel();
        as.bind(loop);
        as.emitToLabel(makeJmp(0), loop);
    });
    Machine::Config cfg;
    cfg.maxSteps = 1000;
    const RunResult r = runIt(img, cfg);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.fault, FaultKind::stepLimit);
}

TEST(Sim, TarRegisterBranchOnPpc)
{
    const BinaryImage img =
        makeImage(Arch::ppc64le, [](Assembler &as) {
            const auto target = as.newLabel();
            as.emitMovLabel(Reg::r3, target);
            as.emit(makeMoveToTar(Reg::r3));
            as.emit(makeJmpTar());
            as.emit(makeHalt()); // skipped
            as.bind(target);
            as.emit(makeMovImm(Reg::r0, 31));
            as.emit(makeHalt());
        });
    const RunResult r = runIt(img);
    ASSERT_TRUE(r.halted) << r.describe();
    EXPECT_EQ(r.checksum, 31u);
}

TEST(Sim, TraceHookSeesEveryInstruction)
{
    const BinaryImage img = makeImage(Arch::x64, [](Assembler &as) {
        as.emit(makeMovImm(Reg::r0, 1));
        as.emit(makeAddImm(Reg::r0, 2));
        as.emit(makeHalt());
    });
    std::vector<Opcode> seen;
    Machine::Config cfg;
    cfg.traceHook = [&](const Instruction &in) {
        seen.push_back(in.op);
    };
    auto proc = loadImage(img);
    Machine machine(*proc, cfg);
    const RunResult r = machine.run();
    ASSERT_TRUE(r.halted);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], Opcode::MovImm);
    EXPECT_EQ(seen[1], Opcode::AddImm);
    EXPECT_EQ(seen[2], Opcode::Halt);
    EXPECT_EQ(seen.size(), r.instructions);
}
