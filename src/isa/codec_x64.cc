#include "isa/codec_x64.hh"

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

namespace
{

// Tag bytes of the x64-like encoding. 0x00 and 0xff decode as
// illegal, which makes common clobber patterns self-evident.
enum Tag : std::uint8_t
{
    T_NOP = 0x01, T_TRAP, T_HALT, T_RET, T_THROW,
    T_PUSH, T_POP, T_JMPIND, T_CALLIND,
    T_MOVREG, T_ADD, T_SUB, T_MUL, T_XOR, T_CMP,
    T_SHL, T_SHR,
    T_JMP8, T_JMP32, T_JCC, T_CALL, T_CALLMEM,
    T_MOVIMM, T_ADDIMM, T_CMPIMM,
    T_LOAD, T_STORE, T_LOADSZ, T_STORESZ, T_LOADIDX,
    T_LEA, T_CALLRT, T_PUSHIMM, T_THROWRA,
};

std::uint8_t
regBits(Reg r)
{
    auto v = static_cast<std::uint8_t>(r);
    icp_assert(v <= 15, "x64 codec: register %s not encodable",
               regName(r));
    return v;
}

std::uint8_t
packRegs(Reg a, Reg b)
{
    return static_cast<std::uint8_t>((regBits(a) << 4) | regBits(b));
}

std::uint8_t
szLog2(std::uint8_t size)
{
    switch (size) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
      default: icp_panic("bad memory size %u", size);
    }
}

Reg
unpackHi(std::uint8_t b)
{
    return static_cast<Reg>(b >> 4);
}

Reg
unpackLo(std::uint8_t b)
{
    return static_cast<Reg>(b & 0xf);
}

} // namespace

unsigned
CodecX64::encodedLength(const Instruction &in) const
{
    switch (in.op) {
      case Opcode::Nop:
      case Opcode::Trap:
      case Opcode::Halt:
      case Opcode::Ret:
      case Opcode::Throw:
      case Opcode::ThrowRa:
        return 1;
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::JmpInd:
      case Opcode::CallInd:
      case Opcode::MovReg:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Xor:
      case Opcode::Cmp:
        return 2;
      case Opcode::ShlImm:
      case Opcode::ShrImm:
        return 3;
      case Opcode::Jmp:
        return in.formHint == 1 ? 2 : 5;
      case Opcode::Call:
      case Opcode::CallRt:
        return 5;
      case Opcode::JmpCond:
      case Opcode::AddImm:
      case Opcode::CmpImm:
      case Opcode::Lea:
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::CallIndMem:
        return 6;
      case Opcode::LoadSz:
      case Opcode::StoreSz:
      case Opcode::LoadIdx:
        return 7;
      case Opcode::MovImm:
        return 10;
      case Opcode::PushImm:
        return 9;
      default:
        return 0; // MovHi, AdrPage, AddisToc, JmpTar, MoveToTar
    }
}

bool
CodecX64::encode(const Instruction &in, Addr addr,
                 std::vector<std::uint8_t> &out) const
{
    const unsigned len = encodedLength(in);
    if (len == 0)
        return false;
    // Displacements are relative to the end of the instruction.
    auto disp = [&](Addr target) {
        return static_cast<std::int64_t>(target) -
               static_cast<std::int64_t>(addr + len);
    };

    switch (in.op) {
      case Opcode::Nop: putU8(out, T_NOP); return true;
      case Opcode::Trap: putU8(out, T_TRAP); return true;
      case Opcode::Halt: putU8(out, T_HALT); return true;
      case Opcode::Ret: putU8(out, T_RET); return true;
      case Opcode::Throw: putU8(out, T_THROW); return true;
      case Opcode::ThrowRa: putU8(out, T_THROWRA); return true;

      case Opcode::Push:
        putU8(out, T_PUSH);
        putU8(out, regBits(in.rs1));
        return true;
      case Opcode::Pop:
        putU8(out, T_POP);
        putU8(out, regBits(in.rd));
        return true;
      case Opcode::JmpInd:
        putU8(out, T_JMPIND);
        putU8(out, regBits(in.rs1));
        return true;
      case Opcode::CallInd:
        putU8(out, T_CALLIND);
        putU8(out, regBits(in.rs1));
        return true;

      case Opcode::MovReg:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Xor: {
        static_assert(T_ADD == T_MOVREG + 1);
        std::uint8_t tag;
        switch (in.op) {
          case Opcode::MovReg: tag = T_MOVREG; break;
          case Opcode::Add: tag = T_ADD; break;
          case Opcode::Sub: tag = T_SUB; break;
          case Opcode::Mul: tag = T_MUL; break;
          default: tag = T_XOR; break;
        }
        putU8(out, tag);
        putU8(out, packRegs(in.rd, in.rs1));
        return true;
      }
      case Opcode::Cmp:
        putU8(out, T_CMP);
        putU8(out, packRegs(in.rs1, in.rs2));
        return true;

      case Opcode::ShlImm:
      case Opcode::ShrImm:
        putU8(out, in.op == Opcode::ShlImm ? T_SHL : T_SHR);
        putU8(out, regBits(in.rd));
        putU8(out, static_cast<std::uint8_t>(in.imm));
        return true;

      case Opcode::Jmp: {
        const std::int64_t d = disp(in.target);
        if (in.formHint == 1) {
            if (!fitsSigned(d, 8))
                return false;
            putU8(out, T_JMP8);
            putU8(out, static_cast<std::uint8_t>(d));
        } else {
            if (!fitsSigned(d, 32))
                return false;
            putU8(out, T_JMP32);
            putU32(out, static_cast<std::uint32_t>(d));
        }
        return true;
      }
      case Opcode::Call: {
        const std::int64_t d = disp(in.target);
        if (!fitsSigned(d, 32))
            return false;
        putU8(out, T_CALL);
        putU32(out, static_cast<std::uint32_t>(d));
        return true;
      }
      case Opcode::JmpCond: {
        const std::int64_t d = disp(in.target);
        if (!fitsSigned(d, 32))
            return false;
        putU8(out, T_JCC);
        putU8(out, static_cast<std::uint8_t>(in.cond));
        putU32(out, static_cast<std::uint32_t>(d));
        return true;
      }
      case Opcode::CallRt:
        putU8(out, T_CALLRT);
        putU32(out, static_cast<std::uint32_t>(in.imm));
        return true;
      case Opcode::CallIndMem:
        if (!fitsSigned(in.imm, 32))
            return false;
        putU8(out, T_CALLMEM);
        putU8(out, regBits(in.rs1));
        putU32(out, static_cast<std::uint32_t>(in.imm));
        return true;

      case Opcode::PushImm:
        putU8(out, T_PUSHIMM);
        putU64(out, static_cast<std::uint64_t>(in.imm));
        return true;
      case Opcode::MovImm:
        putU8(out, T_MOVIMM);
        putU8(out, regBits(in.rd));
        putU64(out, static_cast<std::uint64_t>(in.imm));
        return true;
      case Opcode::AddImm:
      case Opcode::CmpImm: {
        if (!fitsSigned(in.imm, 32))
            return false;
        putU8(out, in.op == Opcode::AddImm ? T_ADDIMM : T_CMPIMM);
        putU8(out, regBits(in.op == Opcode::AddImm ? in.rd : in.rs1));
        putU32(out, static_cast<std::uint32_t>(in.imm));
        return true;
      }

      case Opcode::Lea: {
        const std::int64_t d = disp(in.target);
        if (!fitsSigned(d, 32))
            return false;
        putU8(out, T_LEA);
        putU8(out, regBits(in.rd));
        putU32(out, static_cast<std::uint32_t>(d));
        return true;
      }

      case Opcode::Load:
      case Opcode::Store:
        if (!fitsSigned(in.imm, 32))
            return false;
        putU8(out, in.op == Opcode::Load ? T_LOAD : T_STORE);
        putU8(out, in.op == Opcode::Load ? packRegs(in.rd, in.rs1)
                                         : packRegs(in.rs2, in.rs1));
        putU32(out, static_cast<std::uint32_t>(in.imm));
        return true;

      case Opcode::LoadSz:
      case Opcode::StoreSz:
        if (!fitsSigned(in.imm, 32))
            return false;
        putU8(out, in.op == Opcode::LoadSz ? T_LOADSZ : T_STORESZ);
        putU8(out, in.op == Opcode::LoadSz ? packRegs(in.rd, in.rs1)
                                           : packRegs(in.rs2, in.rs1));
        putU8(out, static_cast<std::uint8_t>(
                 (szLog2(in.memSize) << 1) | (in.signedLoad ? 1 : 0)));
        putU32(out, static_cast<std::uint32_t>(in.imm));
        return true;

      case Opcode::LoadIdx:
        if (!fitsSigned(in.imm, 32))
            return false;
        putU8(out, T_LOADIDX);
        putU8(out, packRegs(in.rd, in.rs1));
        putU8(out, static_cast<std::uint8_t>(
                 (regBits(in.rs2) << 3) | (szLog2(in.memSize) << 1) |
                 (in.signedLoad ? 1 : 0)));
        putU32(out, static_cast<std::uint32_t>(in.imm));
        return true;

      default:
        return false;
    }
}

bool
CodecX64::decode(const std::uint8_t *bytes, std::size_t avail, Addr addr,
                 Instruction &out) const
{
    out = Instruction();
    out.addr = addr;
    out.length = 1;
    if (avail == 0)
        return false;

    const std::uint8_t tag = bytes[0];
    auto need = [&](unsigned n) {
        out.length = n;
        return avail >= n;
    };
    auto dispTarget = [&](std::int64_t d) {
        out.target = static_cast<Addr>(
            static_cast<std::int64_t>(addr + out.length) + d);
    };

    switch (tag) {
      case T_NOP: out.op = Opcode::Nop; return true;
      case T_TRAP: out.op = Opcode::Trap; return true;
      case T_HALT: out.op = Opcode::Halt; return true;
      case T_RET: out.op = Opcode::Ret; return true;
      case T_THROW: out.op = Opcode::Throw; return true;
      case T_THROWRA: out.op = Opcode::ThrowRa; return true;

      case T_PUSH:
        if (!need(2)) return false;
        out.op = Opcode::Push;
        out.rs1 = static_cast<Reg>(bytes[1] & 0xf);
        return true;
      case T_POP:
        if (!need(2)) return false;
        out.op = Opcode::Pop;
        out.rd = static_cast<Reg>(bytes[1] & 0xf);
        return true;
      case T_JMPIND:
        if (!need(2)) return false;
        out.op = Opcode::JmpInd;
        out.rs1 = static_cast<Reg>(bytes[1] & 0xf);
        return true;
      case T_CALLIND:
        if (!need(2)) return false;
        out.op = Opcode::CallInd;
        out.rs1 = static_cast<Reg>(bytes[1] & 0xf);
        return true;

      case T_MOVREG: case T_ADD: case T_SUB: case T_MUL: case T_XOR:
        if (!need(2)) return false;
        switch (tag) {
          case T_MOVREG: out.op = Opcode::MovReg; break;
          case T_ADD: out.op = Opcode::Add; break;
          case T_SUB: out.op = Opcode::Sub; break;
          case T_MUL: out.op = Opcode::Mul; break;
          default: out.op = Opcode::Xor; break;
        }
        out.rd = unpackHi(bytes[1]);
        out.rs1 = unpackLo(bytes[1]);
        return true;
      case T_CMP:
        if (!need(2)) return false;
        out.op = Opcode::Cmp;
        out.rs1 = unpackHi(bytes[1]);
        out.rs2 = unpackLo(bytes[1]);
        return true;

      case T_SHL: case T_SHR:
        if (!need(3)) return false;
        out.op = tag == T_SHL ? Opcode::ShlImm : Opcode::ShrImm;
        out.rd = static_cast<Reg>(bytes[1] & 0xf);
        out.imm = bytes[2];
        return true;

      case T_JMP8:
        if (!need(2)) return false;
        out.op = Opcode::Jmp;
        out.formHint = 1;
        dispTarget(signExtend(bytes[1], 8));
        return true;
      case T_JMP32:
        if (!need(5)) return false;
        out.op = Opcode::Jmp;
        dispTarget(signExtend(getU32(bytes + 1), 32));
        return true;
      case T_CALL:
        if (!need(5)) return false;
        out.op = Opcode::Call;
        dispTarget(signExtend(getU32(bytes + 1), 32));
        return true;
      case T_JCC:
        if (!need(6)) return false;
        out.op = Opcode::JmpCond;
        out.cond = static_cast<Cond>(bytes[1]);
        dispTarget(signExtend(getU32(bytes + 2), 32));
        return true;
      case T_CALLRT:
        if (!need(5)) return false;
        out.op = Opcode::CallRt;
        out.imm = getU32(bytes + 1);
        return true;
      case T_CALLMEM:
        if (!need(6)) return false;
        out.op = Opcode::CallIndMem;
        out.rs1 = static_cast<Reg>(bytes[1] & 0xf);
        out.imm = signExtend(getU32(bytes + 2), 32);
        return true;

      case T_PUSHIMM:
        if (!need(9)) return false;
        out.op = Opcode::PushImm;
        out.imm = static_cast<std::int64_t>(getU64(bytes + 1));
        return true;
      case T_MOVIMM:
        if (!need(10)) return false;
        out.op = Opcode::MovImm;
        out.rd = static_cast<Reg>(bytes[1] & 0xf);
        out.imm = static_cast<std::int64_t>(getU64(bytes + 2));
        return true;
      case T_ADDIMM: case T_CMPIMM:
        if (!need(6)) return false;
        if (tag == T_ADDIMM) {
            out.op = Opcode::AddImm;
            out.rd = static_cast<Reg>(bytes[1] & 0xf);
        } else {
            out.op = Opcode::CmpImm;
            out.rs1 = static_cast<Reg>(bytes[1] & 0xf);
        }
        out.imm = signExtend(getU32(bytes + 2), 32);
        return true;

      case T_LEA:
        if (!need(6)) return false;
        out.op = Opcode::Lea;
        out.rd = static_cast<Reg>(bytes[1] & 0xf);
        dispTarget(signExtend(getU32(bytes + 2), 32));
        return true;

      case T_LOAD: case T_STORE:
        if (!need(6)) return false;
        if (tag == T_LOAD) {
            out.op = Opcode::Load;
            out.rd = unpackHi(bytes[1]);
        } else {
            out.op = Opcode::Store;
            out.rs2 = unpackHi(bytes[1]);
        }
        out.rs1 = unpackLo(bytes[1]);
        out.imm = signExtend(getU32(bytes + 2), 32);
        return true;

      case T_LOADSZ: case T_STORESZ:
        if (!need(7)) return false;
        if (tag == T_LOADSZ) {
            out.op = Opcode::LoadSz;
            out.rd = unpackHi(bytes[1]);
        } else {
            out.op = Opcode::StoreSz;
            out.rs2 = unpackHi(bytes[1]);
        }
        out.rs1 = unpackLo(bytes[1]);
        out.memSize = static_cast<std::uint8_t>(1u << (bytes[2] >> 1));
        out.signedLoad = bytes[2] & 1;
        out.imm = signExtend(getU32(bytes + 3), 32);
        return true;

      case T_LOADIDX:
        if (!need(7)) return false;
        out.op = Opcode::LoadIdx;
        out.rd = unpackHi(bytes[1]);
        out.rs1 = unpackLo(bytes[1]);
        out.rs2 = static_cast<Reg>(bytes[2] >> 3);
        out.memSize = static_cast<std::uint8_t>(1u << ((bytes[2] >> 1) & 3));
        out.signedLoad = bytes[2] & 1;
        out.imm = signExtend(getU32(bytes + 3), 32);
        return true;

      default:
        out.op = Opcode::Illegal;
        out.length = 1;
        return false;
    }
}

} // namespace icp
