#include "analysis/datadeps.hh"

#include <algorithm>
#include <unordered_map>

#include "analysis/cache.hh"
#include "analysis/cfg.hh"
#include "binfmt/image.hh"

namespace icp
{

void
DataDeps::add(Addr lo, Addr hi)
{
    if (hi <= lo)
        return;
    ranges_.push_back({lo, hi, 0});
}

void
DataDeps::finalize(const BinaryImage &image)
{
    std::sort(ranges_.begin(), ranges_.end(),
              [](const DepRange &a, const DepRange &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    std::vector<DepRange> merged;
    for (const DepRange &r : ranges_) {
        if (!merged.empty() && r.lo <= merged.back().hi)
            merged.back().hi = std::max(merged.back().hi, r.hi);
        else
            merged.push_back(r);
    }
    for (DepRange &r : merged)
        r.hash = hashImageRange(image, r.lo, r.hi);
    ranges_ = std::move(merged);
}

bool
DataDeps::validate(const BinaryImage &image) const
{
    for (const DepRange &r : ranges_)
        if (hashImageRange(image, r.lo, r.hi) != r.hash)
            return false;
    return true;
}

bool
DataDeps::overlaps(Addr lo, Addr hi) const
{
    if (hi <= lo)
        return false;
    // Ranges are sorted and disjoint, so their hi values are sorted
    // too: the only candidate is the first range ending past lo.
    auto it = std::partition_point(
        ranges_.begin(), ranges_.end(),
        [&](const DepRange &r) { return r.hi <= lo; });
    return it != ranges_.end() && it->lo < hi;
}

bool
DataDeps::covers(Addr lo, Addr hi) const
{
    if (hi <= lo)
        return true;
    auto it = std::partition_point(
        ranges_.begin(), ranges_.end(),
        [&](const DepRange &r) { return r.hi < hi; });
    return it != ranges_.end() && it->lo <= lo && hi <= it->hi;
}

std::uint64_t
DataDeps::totalBytes() const
{
    std::uint64_t total = 0;
    for (const DepRange &r : ranges_)
        total += r.hi - r.lo;
    return total;
}

void
DataDeps::setRanges(std::vector<DepRange> ranges)
{
    ranges_ = std::move(ranges);
}

std::uint64_t
hashImageRange(const BinaryImage &image, Addr lo, Addr hi)
{
    std::vector<std::uint8_t> bytes;
    if (hi <= lo || !image.readBytes(lo, hi - lo, bytes))
        return 0;
    return fnv1a(bytes.data(), bytes.size());
}

DataDeps
computeDataDeps(const Function &func, const BinaryImage &image)
{
    DataDeps deps;

    // 1. Jump-table extents. The slice dereferences exactly
    // [tableAddr, tableAddr + entryCount * entrySize) (and the clone
    // copies it); embedded-in-code tables live inside the function's
    // own byte range, which the cache key already covers.
    for (const JumpTable &jt : func.jumpTables) {
        if (jt.embeddedInCode)
            continue;
        deps.add(jt.tableAddr,
                 jt.tableAddr +
                     std::uint64_t{jt.entryCount} * jt.entrySize);
    }

    // 2. Constant-base data loads: function-pointer cells, literal
    // pools, globals. The same per-block constant tracking the
    // func-ptr slice uses (funcptr.cc scanFunction), reduced to the
    // question "which mapped non-executable addresses does a Load
    // with a statically-known base dereference".
    const bool fixed = image.archInfo().fixedLength;
    auto recordLoad = [&](std::uint64_t addr, unsigned size) {
        const Addr lo = addr;
        const Addr hi = addr + std::max(1u, size);
        const Section *sec = image.sectionAt(lo);
        if (!sec || !sec->loadable || sec->executable ||
            hi > sec->end())
            return;
        deps.add(lo, hi);
    };

    for (const auto &[bstart, block] : func.blocks) {
        (void)bstart;
        struct Track
        {
            bool known = false;
            std::uint64_t c = 0;
        };
        std::unordered_map<unsigned, Track> regs;
        auto get = [&](Reg r) -> Track {
            auto it = regs.find(static_cast<unsigned>(r));
            return it == regs.end() ? Track{} : it->second;
        };
        auto set = [&](Reg r, Track t) {
            regs[static_cast<unsigned>(r)] = t;
        };
        auto kill = [&](Reg r) {
            if (r != Reg::none)
                regs.erase(static_cast<unsigned>(r));
        };

        for (const auto &in : block.insns) {
            switch (in.op) {
              case Opcode::MovImm: {
                if (!fixed) {
                    set(in.rd,
                        {true, static_cast<std::uint64_t>(in.imm)});
                    break;
                }
                Track t = get(in.rd);
                if (!in.movKeep) {
                    t.known = true;
                    t.c = static_cast<std::uint64_t>(in.imm & 0xffff)
                          << in.movShift;
                } else if (t.known) {
                    t.c = (t.c & ~(0xffffULL << in.movShift)) |
                          (static_cast<std::uint64_t>(in.imm & 0xffff)
                           << in.movShift);
                } else {
                    kill(in.rd);
                    break;
                }
                set(in.rd, t);
                break;
              }
              case Opcode::Lea:
              case Opcode::AdrPage:
                set(in.rd, {true, in.target});
                break;
              case Opcode::AddisToc:
                set(in.rd,
                    {true,
                     image.tocBase +
                         (static_cast<std::uint64_t>(in.imm) << 16)});
                break;
              case Opcode::AddImm: {
                Track t = get(in.rd);
                if (t.known) {
                    t.c += static_cast<std::uint64_t>(in.imm);
                    set(in.rd, t);
                } else {
                    kill(in.rd);
                }
                break;
              }
              case Opcode::Load:
              case Opcode::LoadSz: {
                const Track base = get(in.rs1);
                if (base.known)
                    recordLoad(base.c +
                                   static_cast<std::uint64_t>(in.imm),
                               in.memSize);
                kill(in.rd);
                break;
              }
              case Opcode::MovReg:
                set(in.rd, get(in.rs1));
                break;
              default:
                kill(in.rd);
                break;
            }
        }
    }

    deps.finalize(image);
    return deps;
}

void
DepIndex::add(Addr funcEntry, const DataDeps &deps)
{
    for (const DepRange &r : deps.ranges())
        nodes_.push_back({r.lo, r.hi, funcEntry});
    built_ = false;
}

void
DepIndex::build()
{
    std::sort(nodes_.begin(), nodes_.end(),
              [](const Node &a, const Node &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    built_ = true;
}

void
DepIndex::overlapping(Addr lo, Addr hi, std::set<Addr> &out) const
{
    if (hi <= lo || !built_)
        return;
    // Nodes from different owners may nest arbitrarily, so only the
    // upper bound (first node starting at or past hi) is a binary
    // search; below it every node's extent must be tested.
    auto end = std::partition_point(
        nodes_.begin(), nodes_.end(),
        [&](const Node &n) { return n.lo < hi; });
    for (auto it = nodes_.begin(); it != end; ++it)
        if (it->hi > lo)
            out.insert(it->owner);
}

} // namespace icp
