# Empty dependencies file for bench_diogenes.
# This may be replaced when dependencies are built.
