file(REMOVE_RECURSE
  "CMakeFiles/icp_isa.dir/arch.cc.o"
  "CMakeFiles/icp_isa.dir/arch.cc.o.d"
  "CMakeFiles/icp_isa.dir/assembler.cc.o"
  "CMakeFiles/icp_isa.dir/assembler.cc.o.d"
  "CMakeFiles/icp_isa.dir/codec_fixed.cc.o"
  "CMakeFiles/icp_isa.dir/codec_fixed.cc.o.d"
  "CMakeFiles/icp_isa.dir/codec_x64.cc.o"
  "CMakeFiles/icp_isa.dir/codec_x64.cc.o.d"
  "CMakeFiles/icp_isa.dir/instruction.cc.o"
  "CMakeFiles/icp_isa.dir/instruction.cc.o.d"
  "CMakeFiles/icp_isa.dir/reg_usage.cc.o"
  "CMakeFiles/icp_isa.dir/reg_usage.cc.o.d"
  "libicp_isa.a"
  "libicp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
