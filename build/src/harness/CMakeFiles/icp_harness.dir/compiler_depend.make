# Empty compiler generated dependencies file for icp_harness.
# This may be replaced when dependencies are built.
