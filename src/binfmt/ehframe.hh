/**
 * @file
 * The .eh_frame analog: frame description entries (FDEs) that tell
 * the unwinder, for any pc inside a function, where the return
 * address lives and which landing pad (if any) covers a call site.
 * Records are serialized into section bytes and parsed back by the
 * runtime unwinder, so a rewritten binary genuinely depends on the
 * *original* addresses stored here — the property that makes runtime
 * RA translation necessary.
 */

#ifndef ICP_BINFMT_EHFRAME_HH
#define ICP_BINFMT_EHFRAME_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "support/types.hh"

namespace icp
{

/** A try-range within a function mapping to a landing pad. */
struct TryRange
{
    Offset startOff; ///< inclusive, from function start
    Offset endOff;   ///< exclusive
    Offset lpOff;    ///< landing pad offset from function start
};

/** Frame description for one function, addresses at preferred base. */
struct FdeRecord
{
    Addr start = 0;
    Addr end = 0;

    /** Bytes subtracted from sp by the prologue (0 for leaves). */
    std::uint32_t frameSize = 0;

    /**
     * Where the return address lives while inside the body:
     * on the stack at [sp + raOffset] (x64 always; fixed ISAs for
     * non-leaf functions), or in the link register (fixed leaves).
     */
    bool raOnStack = true;
    std::int32_t raOffset = 0;

    /**
     * True when the standard frame saved the callee-saved registers
     * (r8 at [sp+0], r9 at [sp+8], r6 at [sp+16]); the unwinder
     * restores them while popping the frame, as DWARF CFI would.
     */
    bool savesCalleeSaved = false;

    std::vector<TryRange> tryRanges;

    /** The landing pad covering @p off, if any. */
    std::optional<Offset> landingPadFor(Offset off) const;
};

/** Serialize FDE records into .eh_frame section bytes. */
std::vector<std::uint8_t>
serializeEhFrame(const std::vector<FdeRecord> &fdes);

/** Parse .eh_frame section bytes back into records. */
std::vector<FdeRecord>
parseEhFrame(const std::vector<std::uint8_t> &bytes);

/**
 * FDE lookup table built once per module by the unwinder: binary
 * search over [start, end) ranges sorted by start address.
 */
class FdeIndex
{
  public:
    explicit FdeIndex(std::vector<FdeRecord> fdes);

    /** The FDE covering @p pc (preferred-base address), if any. */
    const FdeRecord *find(Addr pc) const;

    const std::vector<FdeRecord> &records() const { return fdes_; }

  private:
    std::vector<FdeRecord> fdes_; // sorted by start
};

} // namespace icp

#endif // ICP_BINFMT_EHFRAME_HH
