file(REMOVE_RECURSE
  "CMakeFiles/test_trampoline.dir/test_trampoline.cc.o"
  "CMakeFiles/test_trampoline.dir/test_trampoline.cc.o.d"
  "test_trampoline"
  "test_trampoline.pdb"
  "test_trampoline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trampoline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
