#include "rewrite/scratch.hh"

#include "support/logging.hh"

namespace icp
{

void
ScratchPool::donate(Addr start, std::uint64_t len, unsigned align)
{
    const Addr aligned = (start + align - 1) & ~(Addr{align} - 1);
    if (aligned >= start + len)
        return;
    len -= aligned - start;
    if (len == 0)
        return;
    free_[aligned] = std::max(free_[aligned], len);
    donated_ += len;
}

std::optional<Addr>
ScratchPool::allocate(std::uint64_t len, Addr near, std::int64_t range,
                      unsigned align)
{
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        Addr start = it->first;
        const std::uint64_t avail = it->second;
        const Addr aligned =
            (start + align - 1) & ~(Addr{align} - 1);
        const std::uint64_t pad = aligned - start;
        if (pad + len > avail)
            continue;
        if (range > 0) {
            const std::int64_t delta =
                static_cast<std::int64_t>(aligned) -
                static_cast<std::int64_t>(near);
            if (delta < -range || delta > range)
                continue;
        }
        // Carve [aligned, aligned+len) out of the chunk.
        const Addr chunk_start = start;
        const std::uint64_t chunk_len = avail;
        free_.erase(it);
        if (pad > 0)
            free_[chunk_start] = pad;
        const std::uint64_t tail = chunk_len - pad - len;
        if (tail > 0)
            free_[aligned + len] = tail;
        return aligned;
    }
    return std::nullopt;
}

std::uint64_t
ScratchPool::bytesFree() const
{
    std::uint64_t total = 0;
    for (const auto &[start, len] : free_)
        total += len;
    return total;
}

} // namespace icp
