# Empty compiler generated dependencies file for test_jump_table_unit.
# This may be replaced when dependencies are built.
