#!/bin/sh
# Full pre-merge check: a ThreadSanitizer build running the parallel
# determinism tests (the pipeline's concurrency is only exercised
# with >= 2 requested threads, which TSan then observes), followed by
# a plain release build running the complete test suite.
#
# Usage: tools/check.sh [jobs]    (default: nproc)

set -eu

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "== ThreadSanitizer build (build-tsan/) =="
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$jobs" --target test_parallel

echo "== TSan: parallel pipeline tests =="
./build-tsan/tests/test_parallel

echo "== Release build (build/) =="
cmake -B build -S .
cmake --build build -j "$jobs"

echo "== Release: full test suite =="
cd build
ctest --output-on-failure -j "$jobs"

echo "== check.sh: all green =="
