/**
 * @file
 * Quickstart: compile a small synthetic binary, rewrite it with
 * incremental CFG patching (jt mode), run original and rewritten
 * images in the simulator, and show that behaviour is preserved
 * while every basic block is instrumented.
 *
 * Build tree usage:  ./build/examples/quickstart
 */

#include <cstdio>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

int
main()
{
    // 1. A workload binary: the micro profile exercises switches,
    // exceptions, indirect calls, and an indirect tail call.
    const BinaryImage original =
        compileProgram(microProfile(Arch::x64, /*pie=*/false));
    std::printf("compiled %zu-function binary, %llu bytes loaded\n",
                original.functionSymbols().size(),
                static_cast<unsigned long long>(
                    original.loadedSize()));

    // 2. Rewrite: jt mode clones jump tables so switch targets need
    // no trampolines; every block gets counting instrumentation;
    // the strong test clobbers all original instrumented bytes.
    RewriteOptions options;
    options.mode = RewriteMode::jt;
    options.instrumentation.countBlocks = true;
    options.clobberOriginal = true;
    const RewriteResult rewritten = rewriteBinary(original, options);
    if (!rewritten.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rewritten.failReason.c_str());
        return 1;
    }
    std::printf("rewrote %u/%u functions: %llu trampolines "
                "(%llu direct, %llu multi-hop, %llu trap), "
                "%llu cloned tables, %llu RA-map entries\n",
                rewritten.stats.instrumentedFunctions,
                rewritten.stats.totalFunctions,
                static_cast<unsigned long long>(
                    rewritten.stats.trampolines),
                static_cast<unsigned long long>(
                    rewritten.stats.directTramps),
                static_cast<unsigned long long>(
                    rewritten.stats.multiHopTramps),
                static_cast<unsigned long long>(
                    rewritten.stats.trapTramps),
                static_cast<unsigned long long>(
                    rewritten.stats.clonedTables),
                static_cast<unsigned long long>(
                    rewritten.stats.raMapEntries));

    // 3. Run both.
    auto golden_proc = loadImage(original);
    Machine golden(*golden_proc, Machine::Config{});
    const RunResult golden_run = golden.run();

    auto proc = loadImage(rewritten.image);
    RuntimeLib runtime(proc->module); // the LD_PRELOAD analog
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&runtime);
    const RunResult run = machine.run();

    std::printf("golden:    %s\n", golden_run.describe().c_str());
    std::printf("rewritten: %s\n", run.describe().c_str());
    if (!run.halted || run.checksum != golden_run.checksum) {
        std::fprintf(stderr, "behaviour diverged!\n");
        return 1;
    }

    // 4. The instrumentation results: block execution counts.
    std::uint64_t blocks_hit = 0, total = 0;
    for (const auto &[block, id] : rewritten.blockCounters) {
        if (id < run.counters.size() && run.counters[id] > 0) {
            ++blocks_hit;
            total += run.counters[id];
        }
    }
    std::printf("instrumentation: %llu of %zu blocks executed, "
                "%llu block executions counted\n",
                static_cast<unsigned long long>(blocks_hit),
                rewritten.blockCounters.size(),
                static_cast<unsigned long long>(total));
    std::printf("overhead vs golden: %.2f%%\n",
                (static_cast<double>(run.cycles) /
                     static_cast<double>(golden_run.cycles) -
                 1.0) * 100.0);
    return 0;
}
