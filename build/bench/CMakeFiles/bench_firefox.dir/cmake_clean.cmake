file(REMOVE_RECURSE
  "CMakeFiles/bench_firefox.dir/bench_firefox.cc.o"
  "CMakeFiles/bench_firefox.dir/bench_firefox.cc.o.d"
  "bench_firefox"
  "bench_firefox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_firefox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
