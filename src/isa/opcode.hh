/**
 * @file
 * The shared semantic opcode set of the three synthetic ISAs. Each
 * architecture encodes a subset of these opcodes with its own byte
 * format (see the codec classes); the simulator interprets them with
 * shared semantics.
 */

#ifndef ICP_ISA_OPCODE_HH
#define ICP_ISA_OPCODE_HH

#include <cstdint>

namespace icp
{

enum class Opcode : std::uint8_t
{
    Illegal = 0, ///< decode failure / clobbered byte

    // No-ops and machine control.
    Nop,
    Trap,       ///< raises a trap handled by the runtime library
    Halt,       ///< normal program termination

    // Data movement and arithmetic.
    MovImm,     ///< rd = imm (x64: 64-bit; fixed ISAs: signed 16-bit)
    MovHi,      ///< rd = (rd & 0xffff) | (imm16 << 16)   (fixed ISAs)
    MovReg,     ///< rd = rs1
    Add,        ///< rd = rd + rs1
    Sub,        ///< rd = rd - rs1
    Mul,        ///< rd = rd * rs1
    Xor,        ///< rd = rd ^ rs1
    AddImm,     ///< rd = rd + imm
    ShlImm,     ///< rd = rd << imm
    ShrImm,     ///< rd = rd >> imm (logical)
    Cmp,        ///< flags = compare(rs1, rs2)
    CmpImm,     ///< flags = compare(rs1, imm)

    // Memory.
    Load,       ///< rd = mem64[rs1 + imm]
    Store,      ///< mem64[rs1 + imm] = rs2
    LoadSz,     ///< rd = memN[rs1 + imm], N = memSize, zero-extended
    LoadIdx,    ///< rd = memN[rs1 + rs2 * memSize + imm], zero-ext;
                ///< signed when signedLoad (jump-table reads)
    StoreSz,    ///< memN[rs1 + imm] = rs2 truncated to memSize

    // Address formation.
    Lea,        ///< rd = pc-relative address (x64 RIP-lea, a64 ADR)
    AdrPage,    ///< rd = page(pc) + imm * 4096 (a64 ADRP)
    AddisToc,   ///< rd = toc + (imm << 16)      (ppc64le addis rd,r2)

    // Direct control flow.
    Jmp,        ///< unconditional direct branch
    JmpCond,    ///< conditional direct branch on cond
    Call,       ///< direct call (x64 pushes RA; fixed ISAs set lr)

    // Indirect control flow.
    JmpInd,     ///< branch to rs1
    CallInd,    ///< call to rs1
    CallIndMem, ///< call to mem64[rs1 + imm]    (x64 only)
    JmpTar,     ///< branch to tar register      (ppc64le bctar)
    MoveToTar,  ///< tar = rs1                   (ppc64le mtspr)
    Ret,        ///< x64: pop RA and branch; fixed ISAs: branch to lr

    // Stack (x64 only; fixed ISAs use Store/Load with sp).
    Push,       ///< sp -= 8; mem64[sp] = rs1
    PushImm,    ///< sp -= 8; mem64[sp] = imm64 (call emulation)
    Pop,        ///< rd = mem64[sp]; sp += 8

    // Language-runtime hooks.
    Throw,      ///< raise an exception: unwind via the FDE table
    ThrowRa,    ///< throw whose unwind pc is the emulated return
                ///< address (x64: popped; fixed ISAs: lr) — used by
                ///< call-emulation rewriting
    CallRt,     ///< call runtime-library service #imm (instrumentation,
                ///< RA translation, counters); injected by rewriters

    NumOpcodes,
};

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** True for Jmp/JmpCond/Call (statically-known target). */
bool isDirectBranch(Opcode op);

/** True for JmpInd/CallInd/CallIndMem/JmpTar/Ret. */
bool isIndirectBranch(Opcode op);

/** True for any control transfer including Halt/Trap/Throw. */
bool isControlFlow(Opcode op);

/** True for Call/CallInd/CallIndMem. */
bool isCall(Opcode op);

} // namespace icp

#endif // ICP_ISA_OPCODE_HH
