#include "sim/memory.hh"

#include "support/logging.hh"

namespace icp
{

Memory::Page *
Memory::pageFor(Addr addr, bool create)
{
    const std::uint64_t key = addr >> page_shift;
    auto it = pages_.find(key);
    if (it != pages_.end())
        return &it->second;
    if (!create)
        return nullptr;
    auto [ins, ok] = pages_.emplace(key, Page(page_size, 0));
    (void)ok;
    return &ins->second;
}

const Memory::Page *
Memory::pageFor(Addr addr) const
{
    const std::uint64_t key = addr >> page_shift;
    auto it = pages_.find(key);
    return it == pages_.end() ? nullptr : &it->second;
}

void
Memory::map(Addr addr, std::uint64_t len)
{
    if (len == 0)
        return;
    const Addr first = addr >> page_shift;
    const Addr last = (addr + len - 1) >> page_shift;
    for (Addr p = first; p <= last; ++p)
        pageFor(p << page_shift, true);
}

bool
Memory::isMapped(Addr addr) const
{
    return pageFor(addr) != nullptr;
}

bool
Memory::read(Addr addr, unsigned size, std::uint64_t &value) const
{
    // Fast path: within one page.
    const std::size_t off = addr & (page_size - 1);
    const Page *page = pageFor(addr);
    if (!page)
        return false;
    value = 0;
    if (off + size <= page_size) {
        for (unsigned i = 0; i < size; ++i)
            value |= static_cast<std::uint64_t>((*page)[off + i])
                     << (8 * i);
        return true;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Page *p = pageFor(addr + i);
        if (!p)
            return false;
        value |= static_cast<std::uint64_t>(
                     (*p)[(addr + i) & (page_size - 1)])
                 << (8 * i);
    }
    return true;
}

bool
Memory::write(Addr addr, unsigned size, std::uint64_t value)
{
    const std::size_t off = addr & (page_size - 1);
    Page *page = pageFor(addr, false);
    if (!page)
        return false;
    if (off + size <= page_size) {
        for (unsigned i = 0; i < size; ++i)
            (*page)[off + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
        return true;
    }
    for (unsigned i = 0; i < size; ++i) {
        Page *p = pageFor(addr + i, false);
        if (!p)
            return false;
        (*p)[(addr + i) & (page_size - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
    return true;
}

void
Memory::writeBlock(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        Page *page = pageFor(addr + i, true);
        (*page)[(addr + i) & (page_size - 1)] = bytes[i];
    }
}

bool
Memory::readBlock(Addr addr, std::size_t len,
                  std::vector<std::uint8_t> &out) const
{
    out.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
        const Page *page = pageFor(addr + i);
        if (!page)
            return false;
        out[i] = (*page)[(addr + i) & (page_size - 1)];
    }
    return true;
}

const std::uint8_t *
Memory::peek(Addr addr, std::size_t &avail) const
{
    const Page *page = pageFor(addr);
    if (!page) {
        avail = 0;
        return nullptr;
    }
    const std::size_t off = addr & (page_size - 1);
    avail = page_size - off;
    return page->data() + off;
}

} // namespace icp
