/**
 * @file
 * Death tests for the internal-invariant machinery: icp_assert /
 * icp_panic abort with a diagnostic, and the library's precondition
 * checks fire on misuse (duplicate map keys, overlapping sections,
 * double finalize, unbound labels).
 */

#include <gtest/gtest.h>

#include "binfmt/addr_map.hh"
#include "binfmt/image.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "isa/assembler.hh"
#include "support/logging.hh"

using namespace icp;

TEST(DeathTests, AssertAbortsWithMessage)
{
    EXPECT_DEATH(icp_assert(1 == 2, "math broke: %d", 42),
                 "math broke: 42");
}

TEST(DeathTests, PanicAborts)
{
    EXPECT_DEATH(icp_panic("internal bug %s", "here"),
                 "internal bug here");
}

TEST(DeathTests, DuplicateAddrMapKeys)
{
    std::vector<std::pair<Addr, Addr>> pairs = {{1, 2}, {1, 3}};
    EXPECT_DEATH(AddrPairMap{pairs}, "duplicate key");
}

TEST(DeathTests, OverlappingSectionsRejected)
{
    BinaryImage img;
    Section a;
    a.name = ".a";
    a.addr = 0x1000;
    a.memSize = 0x100;
    img.addSection(a);
    Section b;
    b.name = ".b";
    b.addr = 0x1080;
    b.memSize = 0x100;
    EXPECT_DEATH(img.addSection(b), "overlaps");
}

TEST(DeathTests, AssemblerMisuse)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    {
        Assembler as(arch, 0x1000);
        as.emit(makeNop());
        as.finalize();
        EXPECT_DEATH(as.finalize(), "finalize called twice");
    }
    {
        Assembler as(arch, 0x1000);
        const auto label = as.newLabel();
        as.emitToLabel(makeJmp(0), label);
        EXPECT_DEATH(as.finalize(), "unbound");
    }
    {
        Assembler as(arch, 0x1000);
        const auto label = as.newLabel();
        as.bind(label);
        EXPECT_DEATH(as.bind(label), "already bound");
    }
}

TEST(DeathTests, FixedCodecRejectsMisalignedEncode)
{
    const auto &arch = ArchInfo::get(Arch::ppc64le);
    std::vector<std::uint8_t> out;
    EXPECT_DEATH(arch.codec->encode(makeNop(), 0x1001, out),
                 "misaligned");
}

// --- malformed SBF containers ---------------------------------------------
//
// The aborting deserialize() names the violated validation rule, and
// the validating tryDeserialize() reports the same rule as a
// structured issue instead of dying.

TEST(DeathTests, DeserializeNamesTruncationRule)
{
    auto raw = compileProgram(microProfile(Arch::x64, false))
                   .serialize();
    raw.resize(raw.size() / 2);
    EXPECT_DEATH(BinaryImage::deserialize(raw), "sbf-truncated");
}

TEST(DeathTests, DeserializeNamesMagicRule)
{
    auto raw = compileProgram(microProfile(Arch::x64, false))
                   .serialize();
    raw[0] ^= 0xff;
    EXPECT_DEATH(BinaryImage::deserialize(raw), "sbf-magic");
}

TEST(SbfValidation, TryDeserializeReportsTruncation)
{
    auto raw = compileProgram(microProfile(Arch::x64, false))
                   .serialize();
    raw.resize(raw.size() / 2);
    std::vector<SbfIssue> issues;
    EXPECT_FALSE(BinaryImage::tryDeserialize(raw, issues));
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].rule, "sbf-truncated");
    EXPECT_GT(issues[0].offset, 0u);
}

TEST(SbfValidation, TryDeserializeReportsBadMagic)
{
    auto raw = compileProgram(microProfile(Arch::x64, false))
                   .serialize();
    raw[1] ^= 0xff;
    std::vector<SbfIssue> issues;
    EXPECT_FALSE(BinaryImage::tryDeserialize(raw, issues));
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].rule, "sbf-magic");
}

TEST(SbfValidation, TryDeserializeReportsSectionOverlap)
{
    // Bypass addSection's overlap assertion to craft a container
    // whose sections collide, as a corrupted file would.
    BinaryImage img;
    Section a;
    a.name = ".a";
    a.addr = 0x1000;
    a.memSize = 0x100;
    img.sections.push_back(a);
    Section b;
    b.name = ".b";
    b.addr = 0x1080;
    b.memSize = 0x100;
    img.sections.push_back(b);
    std::vector<SbfIssue> issues;
    EXPECT_FALSE(BinaryImage::tryDeserialize(img.serialize(), issues));
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].rule, "sbf-section-overlap");
}

TEST(SbfValidation, TryDeserializeReportsPayloadOverflow)
{
    BinaryImage img;
    Section a;
    a.name = ".a";
    a.addr = 0x1000;
    a.memSize = 0x10;
    a.bytes.assign(0x20, 0xab); // payload larger than memSize
    img.sections.push_back(a);
    std::vector<SbfIssue> issues;
    EXPECT_FALSE(BinaryImage::tryDeserialize(img.serialize(), issues));
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].rule, "sbf-section-bounds");
}

TEST(SbfValidation, TryDeserializeRoundTripsValidImage)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::aarch64, true));
    std::vector<SbfIssue> issues;
    const auto parsed =
        BinaryImage::tryDeserialize(img.serialize(), issues);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(issues.empty());
    EXPECT_EQ(parsed->arch, img.arch);
    EXPECT_EQ(parsed->sections.size(), img.sections.size());
}
