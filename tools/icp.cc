/**
 * @file
 * The `icp` command-line tool: compile workload profiles to SBF
 * files, rewrite them with incremental CFG patching, run them in
 * the simulator, and inspect their contents.
 *
 *   icp compile <profile> <out.sbf> [--arch A] [--pie]
 *   icp rewrite <in.sbf> <out.sbf> [--mode M] [--clobber]
 *               [--count-blocks] [--count-entries] [--only f1,f2]
 *               [--no-placement] [--no-multihop] [--call-emulation]
 *               [--threads N] [--no-cache] [--timing]
 *               [--cache-file PATH] [--cache-max-bytes N]
 *               [--shards N] [--stream-window BYTES]
 *               [--lint] [--fail-on S]
 *               [--inject DEFECT] [--repair[=N]]
 *   icp lint    <in.sbf> [rewrite options] [--json] [--timing]
 *               [--fail-on info|warning|error] [--inject DEFECT]
 *               [--no-load-check] [--rules]
 *   icp lint    --diff <a.sbf|baseline.json> <b.sbf>
 *               [rewrite options] [--json] [--fail-on S]
 *   icp run     <in.sbf> [--gc N]
 *   icp inspect <in.sbf> [function]
 *   icp deps    <in.sbf> [--json] [rewrite options]
 *   icp deps    <in.sbf> --poke-padding|--poke-table
 *               [rewrite options]
 *   icp cache   info|verify <file.icpc>
 *   icp cache   compact <file.icpc> [--max-bytes N]
 *   icp serve   <socket> [--session-max-bytes N] [--max-sessions N]
 *               [--timeout-ms N] [--max-pending N] [--threads N]
 *               [--timing]
 *   icp client  <socket> <verb> [paths] [rewrite options]
 *               [--fail-on S] [--iterations N] [--timeout-ms N]
 *
 * Profiles: micro, spec0..spec18, libxul, docker, libcuda,
 * chromium, chromium-small, libcommon0..libcommonN (the
 * shared-static-lib corpus for cross-binary cache reuse).
 *
 * `icp deps` dumps each function's recorded data read-set
 * (Function::dataDeps): the byte ranges its jump-table and
 * function-pointer slices read from data sections, with per-range
 * content hashes. The --poke-* forms run the overlap-keyed
 * invalidation check end to end: rewrite in a session, edit the
 * input in memory (--poke-padding flips a data byte no analysis
 * reads; --poke-table edits a jump-table entry), feed the edit
 * through RewriteSession::loadInput, and compare the incrementally
 * updated output byte-for-byte against a cold rewrite of the edited
 * input. One greppable `deps-check ...` line reports dirty/emitted/
 * identical/lint-errors; exit 0 when the check holds, 2 otherwise.
 *
 * `icp lint` rewrites the input in memory and runs the static
 * soundness verifier over the result. Exit codes: 0 when no finding
 * reaches --fail-on (default error), 2 when findings do, 1 on
 * operational errors (unreadable file). `icp lint --diff` rewrites
 * and lints two inputs under the same options and reports the
 * per-function finding regressions/resolutions of the second
 * relative to the first; exit 2 when a regression reaches --fail-on.
 * The first operand may instead be a saved `icp lint --json` report
 * (the CI lint-baseline gate). `--cache-file PATH` persists the
 * AnalysisCache across invocations: it is merged before analysis and
 * delta-saved back after a successful rewrite (concurrent writers
 * merge via the store's advisory lock); `--cache-max-bytes N`
 * compacts the file when a save leaves it larger than N. `icp cache`
 * maintains such files: info (header walk), verify (full decode of
 * every entry; exit 2 on any issue), compact (deduplicate and
 * optionally evict down to --max-bytes, oldest generations first).
 * `icp rewrite --repair[=N]` (implies --lint) runs the stateful
 * RewriteSession loop — rewrite, lint, selectively re-rewrite the
 * functions owning error findings — up to N (default 2) repair
 * passes, writing the repaired image; exit 0 when the final report
 * is clean at --fail-on, 2 otherwise. `icp rewrite --shards N` runs
 * the sharded multi-process rewrite: the function space is split
 * into N contiguous ranges, each analyzed by a forked worker into a
 * shared analysis-cache shard, and the output is streamed to disk in
 * address order so peak memory is bounded by one shard plus the
 * reorder window (--stream-window, default 1 MiB) rather than the
 * whole image. Output bytes are identical for every N. Incompatible
 * with --lint/--repair/--inject (lint the output separately with
 * `icp lint`).
 *
 * `icp serve` runs the hot-session daemon of src/serve/: resident
 * RewriteSessions keyed by binary path behind a Unix-domain socket,
 * so repeated rewrites of an edited binary skip process startup and
 * go through loadInput's overlap-keyed invalidation. `icp client`
 * sends one request (ping, open, rewrite, lint, repair, deps, stats,
 * shutdown) and prints the reply as one greppable `verb: ok k=v ...`
 * line; exit 0 on an ok reply, 2 when a lint reply reaches the
 * fail-on floor, 1 on errors. SIGTERM/SIGINT drain the daemon
 * gracefully: in-flight requests finish, caches delta-save, and the
 * socket/lock files are removed. SIGKILL leaves them behind, but the
 * flock-held lock file lets a restart detect staleness and rebind.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <limits.h>
#include <unistd.h>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "binfmt/stream_writer.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "rewrite/session.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"
#include "support/stats.hh"
#include "verify/lint.hh"

using namespace icp;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: icp compile <profile> <out.sbf> "
                 "[--arch x64|ppc64le|aarch64] [--pie]\n"
                 "       icp rewrite <in.sbf> <out.sbf> "
                 "[--mode dir|jt|func-ptr] [--clobber]\n"
                 "                   [--count-blocks] "
                 "[--count-entries] [--only f1,f2,...]\n"
                 "                   [--no-placement] "
                 "[--no-multihop] [--call-emulation]\n"
                 "                   [--threads N] [--no-cache] "
                 "[--timing] [--lint] [--fail-on S]\n"
                 "                   [--cache-file PATH] "
                 "[--cache-max-bytes N]\n"
                 "                   [--shards N] "
                 "[--stream-window BYTES]\n"
                 "                   [--inject DEFECT] "
                 "[--repair[=N]]\n"
                 "       icp lint <in.sbf> [rewrite options] "
                 "[--json] [--fail-on info|warning|error]\n"
                 "                [--inject DEFECT] "
                 "[--no-load-check] [--timing] [--rules]\n"
                 "       icp lint --diff <a.sbf|baseline.json> "
                 "<b.sbf> [rewrite options] [--json] [--fail-on S]\n"
                 "       icp run <in.sbf> [--gc N]\n"
                 "       icp inspect <in.sbf> [function]\n"
                 "       icp deps <in.sbf> [--json] "
                 "[--poke-padding|--poke-table]\n"
                 "       icp cache info|verify <file.icpc>\n"
                 "       icp cache compact <file.icpc> "
                 "[--max-bytes N]\n"
                 "       icp serve <socket> [--session-max-bytes N] "
                 "[--max-sessions N]\n"
                 "                 [--timeout-ms N] [--max-pending N] "
                 "[--threads N] [--timing]\n"
                 "       icp client <socket> ping|stats|shutdown\n"
                 "       icp client <socket> open|lint|repair|deps "
                 "<in.sbf> [options]\n"
                 "       icp client <socket> rewrite <in.sbf> "
                 "<out.sbf> [options]\n");
    // Exit 1: operational error, distinct from lint's exit-2
    // "findings reached --fail-on" contract.
    return 1;
}

bool
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return true;
}

/**
 * Read and validate an SBF file. Malformed containers produce the
 * validator's structured diagnostics on stderr (rule id + message)
 * instead of an abort.
 */
std::optional<BinaryImage>
loadSbf(const char *path)
{
    std::vector<std::uint8_t> raw;
    if (!readFile(path, raw)) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return std::nullopt;
    }
    std::vector<SbfIssue> issues;
    auto img = BinaryImage::tryDeserialize(raw, issues);
    if (!img) {
        for (const SbfIssue &issue : issues)
            std::fprintf(stderr, "%s: [%s] %s (offset %zu)\n", path,
                         issue.rule.c_str(), issue.message.c_str(),
                         issue.offset);
        return std::nullopt;
    }
    return img;
}

/**
 * Parse one rewrite-option flag at argv[i], advancing i past any
 * value. Returns false when argv[i] is not a rewrite option; sets
 * *bad when the flag is recognized but malformed.
 */
bool
parseRewriteFlag(RewriteOptions &opts, int argc, char **argv, int &i,
                 bool *bad)
{
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc) {
        const std::string m = argv[++i];
        if (m == "dir")
            opts.mode = RewriteMode::dir;
        else if (m == "jt")
            opts.mode = RewriteMode::jt;
        else if (m == "func-ptr")
            opts.mode = RewriteMode::funcPtr;
        else
            *bad = true;
    } else if (arg == "--clobber") {
        opts.clobberOriginal = true;
    } else if (arg == "--count-blocks") {
        opts.instrumentation.countBlocks = true;
    } else if (arg == "--count-entries") {
        opts.instrumentation.countFunctionEntries = true;
    } else if (arg == "--no-placement") {
        opts.trampolinePlacement = false;
    } else if (arg == "--no-multihop") {
        opts.multiHop = false;
    } else if (arg == "--call-emulation") {
        opts.raTranslation = false;
    } else if (arg == "--threads" && i + 1 < argc) {
        opts.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--no-cache") {
        opts.useAnalysisCache = false;
    } else if (arg == "--shards" && i + 1 < argc) {
        opts.shards = static_cast<unsigned>(std::atoi(argv[++i]));
        if (opts.shards == 0)
            *bad = true;
    } else if (arg.rfind("--shards=", 0) == 0) {
        opts.shards = static_cast<unsigned>(
            std::atoi(arg.c_str() + std::strlen("--shards=")));
        if (opts.shards == 0)
            *bad = true;
    } else if (arg == "--stream-window" && i + 1 < argc) {
        opts.streamWindowBytes = static_cast<std::size_t>(
            std::strtoull(argv[++i], nullptr, 10));
        if (opts.streamWindowBytes == 0)
            *bad = true;
    } else if (arg.rfind("--stream-window=", 0) == 0) {
        opts.streamWindowBytes = static_cast<std::size_t>(
            std::strtoull(arg.c_str() +
                              std::strlen("--stream-window="),
                          nullptr, 10));
        if (opts.streamWindowBytes == 0)
            *bad = true;
    } else if (arg == "--cache-file" && i + 1 < argc) {
        opts.cachePath = argv[++i];
    } else if (arg.rfind("--cache-file=", 0) == 0) {
        opts.cachePath = arg.substr(std::strlen("--cache-file="));
        if (opts.cachePath.empty())
            *bad = true;
    } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
        opts.cacheMaxBytes = std::strtoull(argv[++i], nullptr, 10);
        if (opts.cacheMaxBytes == 0)
            *bad = true;
    } else if (arg.rfind("--cache-max-bytes=", 0) == 0) {
        opts.cacheMaxBytes = std::strtoull(
            arg.c_str() + std::strlen("--cache-max-bytes="), nullptr,
            10);
        if (opts.cacheMaxBytes == 0)
            *bad = true;
    } else if (arg == "--inject" && i + 1 < argc) {
        const auto defect = parseInjectDefect(argv[++i]);
        if (!defect)
            *bad = true;
        else
            opts.injectDefect = *defect;
    } else if (arg == "--only" && i + 1 < argc) {
        std::string list = argv[++i];
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t comma = list.find(',', pos);
            opts.onlyFunctions.insert(
                list.substr(pos, comma == std::string::npos
                                     ? comma
                                     : comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    } else {
        return false;
    }
    return true;
}

int
cmdCompile(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string profile = argv[0];
    const std::string out_path = argv[1];
    Arch arch = Arch::x64;
    bool pie = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--pie") {
            pie = true;
        } else if (arg == "--arch" && i + 1 < argc) {
            const std::string a = argv[++i];
            if (a == "x64")
                arch = Arch::x64;
            else if (a == "ppc64le")
                arch = Arch::ppc64le;
            else if (a == "aarch64")
                arch = Arch::aarch64;
            else
                return usage();
        } else {
            return usage();
        }
    }

    ProgramSpec spec;
    if (profile == "micro") {
        spec = microProfile(arch, pie);
    } else if (profile == "libxul") {
        spec = libxulProfile();
    } else if (profile == "docker") {
        spec = dockerProfile();
    } else if (profile == "libcuda") {
        spec = libcudaProfile();
    } else if (profile == "chromium") {
        spec = chromiumProfile();
    } else if (profile == "chromium-small") {
        spec = chromiumSmallProfile(arch, pie);
    } else if (profile.rfind("libcommon", 0) == 0) {
        // libcommon<K>: the K-th binary of the shared-library
        // corpus (all of them link the same static-lib core at
        // different addresses).
        const unsigned idx = static_cast<unsigned>(
            std::atoi(profile.c_str() + 9));
        const auto corpus =
            libcommonCorpus(arch, std::max(4u, idx + 1));
        if (idx >= corpus.size()) {
            std::fprintf(stderr, "libcommon index out of range\n");
            return 1;
        }
        spec = corpus[idx];
    } else if (profile.rfind("spec", 0) == 0) {
        const unsigned idx =
            static_cast<unsigned>(std::atoi(profile.c_str() + 4));
        const auto suite = specCpuSuite(arch, pie);
        if (idx >= suite.size()) {
            std::fprintf(stderr, "spec index out of range\n");
            return 1;
        }
        spec = suite[idx];
    } else {
        std::fprintf(stderr, "unknown profile %s\n",
                     profile.c_str());
        return 1;
    }

    const BinaryImage img = compileProgram(spec);
    if (!writeFile(out_path, img.serialize())) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("%s: %s %s, %zu functions, %llu bytes loaded\n",
                out_path.c_str(), archName(img.arch),
                img.pie ? "PIE" : "no-PIE",
                img.functionSymbols().size(),
                static_cast<unsigned long long>(img.loadedSize()));
    return 0;
}

void
printRewriteStats(RewriteMode mode, const RewriteStats &stats)
{
    std::printf("mode %s: %u/%u functions, %llu trampolines "
                "(%llu direct, %llu long, %llu multi-hop, %llu "
                "trap), %llu cloned tables, %llu funcptrs, %llu "
                "RA-map entries, size %+.2f%%\n",
                rewriteModeName(mode), stats.instrumentedFunctions,
                stats.totalFunctions,
                static_cast<unsigned long long>(stats.trampolines),
                static_cast<unsigned long long>(stats.directTramps),
                static_cast<unsigned long long>(stats.longTramps),
                static_cast<unsigned long long>(
                    stats.multiHopTramps),
                static_cast<unsigned long long>(stats.trapTramps),
                static_cast<unsigned long long>(stats.clonedTables),
                static_cast<unsigned long long>(
                    stats.rewrittenFuncPtrs),
                static_cast<unsigned long long>(stats.raMapEntries),
                stats.sizeIncrease() * 100.0);
}

void
printCacheStats(const RewriteResult &rw, const std::string &path)
{
    // Cross-invocation reuse report (the CLI process starts with
    // an empty in-memory cache, so the stats are this run's).
    const auto cstats = AnalysisCache::global().stats();
    const std::uint64_t lookups =
        cstats.functionHits + cstats.functionMisses;
    std::printf("analysis cache: %llu/%llu function analyses "
                "reused (%.1f%%), %u entries loaded from %s "
                "(%u dropped)\n",
                static_cast<unsigned long long>(cstats.functionHits),
                static_cast<unsigned long long>(lookups),
                lookups == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(cstats.functionHits) /
                          static_cast<double>(lookups),
                rw.cacheLoad.loadedEntries(), path.c_str(),
                rw.cacheLoad.droppedEntries);
}

/** `icp rewrite --shards N`: the multi-process streaming path. */
int
runShardedRewrite(const BinaryImage &img, RewriteOptions &opts,
                  const char *out_path, bool timing)
{
    opts.lint = false;
    std::FILE *f = std::fopen(out_path, "wb");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    FileSink sink(f);
    const RewriteResult rw = rewriteBinarySharded(img, opts, sink);
    const bool flushed = std::fclose(f) == 0;
    if (!rw.ok) {
        std::remove(out_path);
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        return 1;
    }
    if (!sink.ok() || !flushed) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }

    printRewriteStats(opts.mode, rw.stats);
    for (std::size_t k = 0; k < rw.stats.shards.size(); ++k) {
        const ShardCounters &sc = rw.stats.shards[k];
        std::printf("shard %zu: [0x%llx, 0x%llx) %u functions "
                    "(%u instrumented), %llu blocks, %llu insns, "
                    "%u worker attempt(s)%s, worker peak RSS "
                    "%llu KB\n",
                    k, static_cast<unsigned long long>(sc.lo),
                    static_cast<unsigned long long>(sc.hi),
                    sc.functions, sc.instrumented,
                    static_cast<unsigned long long>(sc.blocks),
                    static_cast<unsigned long long>(sc.insns),
                    sc.workerAttempts,
                    sc.degraded ? ", DEGRADED" : "",
                    static_cast<unsigned long long>(
                        sc.workerPeakRssBytes / 1024));
    }
    if (!opts.cachePath.empty())
        printCacheStats(rw, opts.cachePath);
    if (timing)
        std::printf("%s", StageTimers::global().table().c_str());
    return 0;
}

int
cmdRewrite(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    bool timing = false;
    bool lint = false;
    bool repair = false;
    unsigned repair_iters = 2;
    Severity fail_on = Severity::error;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--lint") {
            lint = true;
        } else if (arg == "--repair" ||
                   arg.rfind("--repair=", 0) == 0) {
            repair = true;
            lint = true;
            if (arg.size() > std::strlen("--repair=")) {
                repair_iters = static_cast<unsigned>(
                    std::atoi(arg.c_str() + std::strlen("--repair=")));
                if (repair_iters == 0)
                    return usage();
            }
        } else if (arg == "--fail-on" && i + 1 < argc) {
            const auto sev = parseSeverity(argv[++i]);
            if (!sev)
                return usage();
            fail_on = *sev;
            lint = true;
        } else {
            return usage();
        }
    }

    if (timing)
        StageTimers::global().reset();
    if (opts.shards > 0) {
        if (lint || repair ||
            opts.injectDefect != InjectDefect::none) {
            std::fprintf(stderr,
                         "--shards is incompatible with --lint, "
                         "--repair, --fail-on, and --inject; lint "
                         "the output with `icp lint` instead\n");
            return 1;
        }
        return runShardedRewrite(img, opts, argv[1], timing);
    }
    RewriteSession session(img);
    {
        const RewriteResult &first = session.rewrite(opts);
        if (!first.ok) {
            std::fprintf(stderr, "rewrite failed: %s\n",
                         first.failReason.c_str());
            return 1;
        }
    }
    if (repair) {
        LintOptions lopts;
        lopts.failOn = fail_on;
        lopts.threads = opts.threads;
        session.lint(lopts);
        const auto outcome = session.repairToFixedPoint(repair_iters);
        std::printf("repair: %u iteration(s), %zu function(s) "
                    "re-rewritten, %zu demoted to trap%s%s\n",
                    outcome.iterations,
                    outcome.repairedFunctions.size(),
                    outcome.demotedFunctions.size(),
                    outcome.fullRewriteFallback
                        ? ", full-rewrite fallback"
                        : "",
                    outcome.converged ? ", converged"
                                      : ", NOT converged");
    }
    const RewriteResult &rw = session.lastResult();
    if (!rw.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        return 1;
    }
    if (!writeFile(argv[1], rw.image.serialize())) {
        std::fprintf(stderr, "cannot write %s\n", argv[1]);
        return 1;
    }
    printRewriteStats(opts.mode, rw.stats);
    if (!opts.cachePath.empty())
        printCacheStats(rw, opts.cachePath);
    if (timing)
        std::printf("%s", StageTimers::global().table().c_str());
    if (lint) {
        LintOptions lopts;
        lopts.failOn = fail_on;
        lopts.threads = opts.threads;
        const LintReport &report =
            repair ? session.lastReport() : session.lint(lopts);
        std::printf("%s", report.renderText().c_str());
        if (report.failed(fail_on))
            return 2;
    }
    return 0;
}

/**
 * `icp lint --diff a b.sbf`: rewrite and lint both inputs under the
 * same options, then report b's per-function finding regressions and
 * resolutions relative to a. When a is a saved `icp lint --json`
 * report rather than an SBF image, it is used as the baseline
 * directly — the CI lint-baseline gate.
 */
int
cmdLintDiff(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.lint = true;
    LintOptions lopts;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-load-check") {
            lopts.checkLoadedImage = false;
        } else if (arg == "--fail-on" && i + 1 < argc) {
            const auto sev = parseSeverity(argv[++i]);
            if (!sev)
                return usage();
            lopts.failOn = *sev;
        } else {
            return usage();
        }
    }
    lopts.threads = opts.threads;

    // The baseline may be a saved `icp lint --json` report instead
    // of an SBF image ("lint-baseline gate": CI diffs the current
    // tree's lint findings against a checked-in report).
    LintReport baseline_report;
    std::vector<std::uint8_t> baseline_raw;
    if (!readFile(argv[1], baseline_raw)) {
        std::fprintf(stderr, "cannot read %s\n", argv[1]);
        return 1;
    }
    std::size_t skip = 0;
    while (skip < baseline_raw.size() &&
           (baseline_raw[skip] == ' ' || baseline_raw[skip] == '\n' ||
            baseline_raw[skip] == '\r' || baseline_raw[skip] == '\t'))
        ++skip;
    if (skip < baseline_raw.size() && baseline_raw[skip] == '{') {
        const std::string text(baseline_raw.begin(),
                               baseline_raw.end());
        const auto parsed = parseLintReportJson(text);
        if (!parsed) {
            std::fprintf(stderr,
                         "%s: not a lint report (expected the "
                         "output of `icp lint --json`)\n",
                         argv[1]);
            return 1;
        }
        baseline_report = *parsed;
    } else {
        const auto before_img = loadSbf(argv[1]);
        if (!before_img)
            return 1;
        RewriteSession before(*before_img);
        before.rewrite(opts);
        baseline_report = before.lint(lopts);
    }

    const auto after_img = loadSbf(argv[2]);
    if (!after_img)
        return 1;
    RewriteSession after(*after_img);
    after.rewrite(opts);
    const LintDiff diff =
        diffReports(baseline_report, after.lint(lopts));
    if (json)
        std::printf("%s\n", diff.renderJson().c_str());
    else
        std::printf("%s", diff.renderText().c_str());
    return diff.hasRegressions(lopts.failOn) ? 2 : 0;
}

int
cmdLint(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    if (std::strcmp(argv[0], "--rules") == 0) {
        for (const LintRuleInfo &r : lintRules())
            std::printf("%-20s %-8s %s\n", r.id,
                        severityName(r.severity), r.summary);
        return 0;
    }
    if (std::strcmp(argv[0], "--diff") == 0)
        return cmdLintDiff(argc, argv);

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.lint = true;
    LintOptions lopts;
    bool json = false;
    bool timing = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--no-load-check") {
            lopts.checkLoadedImage = false;
        } else if (arg == "--fail-on" && i + 1 < argc) {
            const auto sev = parseSeverity(argv[++i]);
            if (!sev)
                return usage();
            lopts.failOn = *sev;
        } else {
            return usage();
        }
    }
    const bool show_injected = opts.injectDefect != InjectDefect::none;
    lopts.threads = opts.threads;

    std::vector<std::uint8_t> raw;
    if (!readFile(argv[0], raw)) {
        std::fprintf(stderr, "cannot read %s\n", argv[0]);
        return 1;
    }
    std::vector<SbfIssue> issues;
    const auto img = BinaryImage::tryDeserialize(raw, issues);
    if (!img) {
        LintReport rep;
        rep.findings = diagnosticsFromSbfIssues(issues);
        std::printf("%s", json ? rep.renderJson().c_str()
                               : rep.renderText().c_str());
        if (json)
            std::printf("\n");
        return rep.failed(lopts.failOn) ? 2 : 0;
    }

    if (timing)
        StageTimers::global().reset();
    RewriteSession session(*img);
    const RewriteResult &rw = session.rewrite(opts);
    const LintReport &report = session.lint(lopts);
    if (json) {
        std::printf("%s\n", report.renderJson().c_str());
    } else {
        if (show_injected)
            std::printf("injected rule: %s\n",
                        rw.manifest.injectedRule.empty()
                            ? "(none; defect not applicable)"
                            : rw.manifest.injectedRule.c_str());
        std::printf("%s", report.renderText().c_str());
        if (timing)
            std::printf("%s",
                        StageTimers::global().table().c_str());
    }
    return report.failed(lopts.failOn) ? 2 : 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    Machine::Config cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gc") == 0 && i + 1 < argc)
            cfg.goGcEveryCalls =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else
            return usage();
    }
    if (cfg.goGcEveryCalls == 0 && img.features.isGo)
        cfg.goGcEveryCalls = 64;

    auto proc = loadImage(img);
    RuntimeLib rt(proc->module);
    Machine machine(*proc, cfg);
    if (rt.hasRaMap() || rt.hasTrapMap())
        machine.attachRuntimeLib(&rt);
    const RunResult result = machine.run();
    std::printf("%s\n", result.describe().c_str());
    std::printf("icache: %llu accesses, %llu misses; rt calls %llu; "
                "unwind steps %llu; gc walks %llu\n",
                static_cast<unsigned long long>(
                    result.icacheAccesses),
                static_cast<unsigned long long>(result.icacheMisses),
                static_cast<unsigned long long>(result.rtCalls),
                static_cast<unsigned long long>(result.unwindSteps),
                static_cast<unsigned long long>(result.gcWalks));
    std::uint64_t counted = 0;
    for (std::uint64_t c : result.counters)
        counted += c;
    if (counted > 0) {
        std::printf("instrumentation counters: %llu increments over "
                    "%zu counters\n",
                    static_cast<unsigned long long>(counted),
                    result.counters.size());
    }
    return result.halted ? 0 : 1;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    std::printf("%s %s entry=0x%llx loaded=%llu bytes\n",
                archName(img.arch), img.pie ? "PIE" : "no-PIE",
                static_cast<unsigned long long>(img.entry),
                static_cast<unsigned long long>(img.loadedSize()));
    for (const auto &sec : img.sections) {
        std::printf("  %-14s 0x%09llx %9llu %s%s%s\n",
                    sec.name.c_str(),
                    static_cast<unsigned long long>(sec.addr),
                    static_cast<unsigned long long>(sec.memSize),
                    sec.loadable ? "L" : "-",
                    sec.executable ? "X" : "-",
                    sec.writable ? "W" : "-");
    }

    if (argc >= 2) {
        const CfgModule cfg = buildCfg(img, AnalysisOptions{});
        for (const auto &[entry, func] : cfg.functions) {
            if (func.name != argv[1])
                continue;
            std::printf("\n<%s>:\n", func.name.c_str());
            for (const auto &[start, block] : func.blocks) {
                for (const auto &in : block.insns) {
                    std::printf("  %08llx  %s\n",
                                static_cast<unsigned long long>(
                                    in.addr),
                                in.toString().c_str());
                }
            }
            return 0;
        }
        std::fprintf(stderr, "no function %s\n", argv[1]);
        return 1;
    }
    std::printf("%zu function symbols, %zu runtime relocations\n",
                img.functionSymbols().size(), img.relocs.size());
    return 0;
}

/**
 * `icp deps --poke-padding|--poke-table`: the end-to-end
 * overlap-keyed invalidation check. Rewrites @p img in a session,
 * edits the input image in memory (an unread data byte, or one
 * jump-table entry), pushes the edit through loadInput, and compares
 * the incrementally updated output byte-for-byte against a cold
 * rewrite of the edited image. Prints one greppable line:
 *
 *   deps-check <mode>: incremental=I dirty=N emitted=M identical=B
 *   lint-errors=K
 *
 * Exit 0 when the invariant holds (padding: zero dirty; table: at
 * least one dirty reader; both: identical output, no lint errors),
 * 2 when it does not, 1 on operational failure.
 */
int
runDepsCheck(const BinaryImage &img, RewriteOptions opts,
             bool poke_table, bool timing)
{
    opts.lint = true; // loadInput's splice path needs the manifest
    RewriteSession session(img);
    {
        const RewriteResult &first = session.rewrite(opts);
        if (!first.ok) {
            std::fprintf(stderr, "rewrite failed: %s\n",
                         first.failReason.c_str());
            return 1;
        }
    }
    const RewriteManifest &manifest = session.lastResult().manifest;

    BinaryImage edited = img;
    const char *mode = poke_table ? "table" : "padding";
    Addr poke_lo = 0, poke_hi = 0;
    if (!poke_table) {
        // Find the highest .rodata byte nothing reads: outside every
        // recorded read-set, runtime-relocation slot, donated scratch
        // range, and rewritten pointer cell — the rewriter-facing
        // definition of "padding".
        DepIndex index;
        for (const auto &[entry, func] : session.analyze().functions)
            index.add(entry, func.dataDeps);
        index.build();
        auto claimed = [&](Addr a) {
            std::set<Addr> owners;
            index.overlapping(a, a + 1, owners);
            if (!owners.empty())
                return true;
            for (const Relocation &rel : img.relocs)
                if (a >= rel.site && a < rel.site + 8)
                    return true;
            for (const auto &[lo, len] : manifest.scratchRanges)
                if (a >= lo && a < lo + len)
                    return true;
            for (const FuncPtrPatch &p : manifest.funcPtrs)
                if (p.kind == FuncPtrPatch::Kind::dataCell &&
                    a >= p.site && a < p.site + 8)
                    return true;
            return false;
        };
        for (Section &sec : edited.sections) {
            if (sec.kind != SectionKind::rodata || !sec.loadable)
                continue;
            for (std::size_t at = sec.bytes.size(); at-- > 0;) {
                const Addr a = sec.addr + at;
                if (claimed(a))
                    continue;
                sec.bytes[at] ^= 0x5a;
                poke_lo = a;
                poke_hi = a + 1;
                break;
            }
            if (poke_hi != 0)
                break;
        }
        if (poke_hi == 0) {
            std::fprintf(stderr, "deps-check: no unread .rodata "
                                 "byte to poke\n");
            return 1;
        }
    } else {
        // Overwrite one entry of a non-embedded jump table with
        // another entry's bytes: the table still decodes to valid
        // block heads, but its content (and hash) changes, so
        // exactly its reader must go dirty. Prefer a victim entry
        // whose target also appears elsewhere in the table — then
        // the function's jump-table *target set* is unchanged and
        // the selective splice can re-emit it at the same size
        // instead of falling back to a full emission.
        auto tryPoke = [&](const JumpTable &jt, bool same_set) {
            if (jt.embeddedInCode || jt.entryCount < 2 ||
                jt.targets.size() < jt.entryCount)
                return false;
            Section *sec = edited.sectionAt(jt.tableAddr);
            if (!sec || sec->executable)
                return false;
            const std::size_t base = static_cast<std::size_t>(
                jt.tableAddr - sec->addr);
            if (base + jt.entryCount * jt.entrySize >
                sec->bytes.size())
                return false;
            for (unsigned i = 0; i < jt.entryCount; ++i) {
                if (same_set) {
                    unsigned dup = 0;
                    for (unsigned k = 0; k < jt.entryCount; ++k)
                        dup += jt.targets[k] == jt.targets[i];
                    if (dup < 2)
                        continue;
                }
                for (unsigned j = 0; j < jt.entryCount; ++j) {
                    if (jt.targets[j] == jt.targets[i])
                        continue;
                    const std::size_t di = base + i * jt.entrySize;
                    const std::size_t dj = base + j * jt.entrySize;
                    for (unsigned b = 0; b < jt.entrySize; ++b)
                        sec->bytes[di + b] = sec->bytes[dj + b];
                    poke_lo = jt.tableAddr + i * jt.entrySize;
                    poke_hi = poke_lo + jt.entrySize;
                    return true;
                }
            }
            return false;
        };
        for (const bool same_set : {true, false}) {
            for (const auto &[entry, func] :
                 session.analyze().functions) {
                (void)entry;
                for (const JumpTable &jt : func.jumpTables)
                    if (tryPoke(jt, same_set))
                        break;
                if (poke_hi != 0)
                    break;
            }
            if (poke_hi != 0)
                break;
        }
        if (poke_hi == 0) {
            std::fprintf(stderr,
                         "deps-check: no pokeable jump table (need a "
                         "non-embedded table with two distinct "
                         "entries)\n");
            return 1;
        }
    }

    const auto outcome = session.loadInput(edited);
    if (!session.lastResult().ok) {
        std::fprintf(stderr, "incremental rewrite failed: %s\n",
                     session.lastResult().failReason.c_str());
        return 1;
    }
    const unsigned emitted =
        outcome.dirtyFunctions.empty()
            ? 0
            : session.lastResult().stats.relocEmittedFunctions;

    // Ground truth: a cold rewrite of the edited image, analysis
    // cache off so nothing from the warm pass can leak in.
    RewriteOptions cold = opts;
    cold.useAnalysisCache = false;
    cold.cachePath.clear();
    cold.lint = false;
    const RewriteResult cold_rw = rewriteBinary(edited, cold);
    if (!cold_rw.ok) {
        std::fprintf(stderr, "cold rewrite failed: %s\n",
                     cold_rw.failReason.c_str());
        return 1;
    }
    const bool identical = cold_rw.image.serialize() ==
                           session.lastResult().image.serialize();

    LintOptions lopts;
    lopts.threads = opts.threads;
    const unsigned lint_errors =
        session.lint(lopts).countAtLeast(Severity::error);

    std::printf("deps-check %s: poke=[0x%llx,0x%llx) incremental=%d "
                "dirty=%zu emitted=%u identical=%d lint-errors=%u\n",
                mode, static_cast<unsigned long long>(poke_lo),
                static_cast<unsigned long long>(poke_hi),
                outcome.incremental ? 1 : 0,
                outcome.dirtyFunctions.size(), emitted,
                identical ? 1 : 0, lint_errors);
    for (const std::string &name : outcome.dirtyNames)
        std::printf("deps-check dirty: %s\n", name.c_str());
    if (timing)
        std::printf("%s", StageTimers::global().table().c_str());

    const bool dirty_ok = poke_table ? !outcome.dirtyFunctions.empty()
                                     : outcome.dirtyFunctions.empty();
    return (outcome.incremental && dirty_ok && identical &&
            lint_errors == 0)
               ? 0
               : 2;
}

/**
 * `icp deps <in.sbf>`: dump every function's recorded data read-set
 * (text or --json) plus summary stats; with --poke-padding or
 * --poke-table, run the invalidation check instead.
 */
int
cmdDeps(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const auto img_opt = loadSbf(argv[0]);
    if (!img_opt)
        return 1;
    const BinaryImage &img = *img_opt;

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    bool json = false;
    bool timing = false;
    int poke = 0; // 0 = dump, 1 = padding, 2 = table
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        bool bad = false;
        if (parseRewriteFlag(opts, argc, argv, i, &bad)) {
            if (bad)
                return usage();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--poke-padding") {
            poke = 1;
        } else if (arg == "--poke-table") {
            poke = 2;
        } else {
            return usage();
        }
    }
    if (timing)
        StageTimers::global().reset();
    if (poke != 0)
        return runDepsCheck(img, opts, poke == 2, timing);

    AnalysisOptions aopts = opts.analysis;
    aopts.threads = opts.threads;
    aopts.useCache = opts.useAnalysisCache;
    const CfgModule cfg = buildCfg(img, aopts);

    std::uint64_t with_reads = 0, total_ranges = 0, total_bytes = 0;
    for (const auto &[entry, func] : cfg.functions) {
        (void)entry;
        if (func.dataDeps.empty())
            continue;
        ++with_reads;
        total_ranges += func.dataDeps.size();
        total_bytes += func.dataDeps.totalBytes();
    }

    if (json) {
        std::printf("{\"total_functions\": %u, "
                    "\"functions_with_reads\": %llu, "
                    "\"total_ranges\": %llu, "
                    "\"total_bytes\": %llu,\n \"functions\": [",
                    cfg.totalFunctions(),
                    static_cast<unsigned long long>(with_reads),
                    static_cast<unsigned long long>(total_ranges),
                    static_cast<unsigned long long>(total_bytes));
        bool first_fn = true;
        for (const auto &[entry, func] : cfg.functions) {
            if (func.dataDeps.empty())
                continue;
            std::printf("%s\n  {\"name\": \"%s\", "
                        "\"entry\": \"0x%llx\", \"ranges\": [",
                        first_fn ? "" : ",", func.name.c_str(),
                        static_cast<unsigned long long>(entry));
            first_fn = false;
            bool first_r = true;
            for (const DepRange &r : func.dataDeps.ranges()) {
                std::printf("%s{\"lo\": \"0x%llx\", "
                            "\"hi\": \"0x%llx\", \"bytes\": %llu, "
                            "\"hash\": \"0x%016llx\"}",
                            first_r ? "" : ", ",
                            static_cast<unsigned long long>(r.lo),
                            static_cast<unsigned long long>(r.hi),
                            static_cast<unsigned long long>(r.hi -
                                                            r.lo),
                            static_cast<unsigned long long>(r.hash));
                first_r = false;
            }
            std::printf("]}");
        }
        std::printf("\n]}\n");
    } else {
        std::printf("deps: %u functions, %llu with data reads, "
                    "%llu ranges, %llu bytes\n",
                    cfg.totalFunctions(),
                    static_cast<unsigned long long>(with_reads),
                    static_cast<unsigned long long>(total_ranges),
                    static_cast<unsigned long long>(total_bytes));
        for (const auto &[entry, func] : cfg.functions) {
            if (func.dataDeps.empty())
                continue;
            std::printf("  %s entry=0x%llx: %zu range%s, %llu "
                        "bytes\n",
                        func.name.c_str(),
                        static_cast<unsigned long long>(entry),
                        func.dataDeps.size(),
                        func.dataDeps.size() == 1 ? "" : "s",
                        static_cast<unsigned long long>(
                            func.dataDeps.totalBytes()));
            for (const DepRange &r : func.dataDeps.ranges())
                std::printf("    [0x%llx, 0x%llx) %llu bytes "
                            "hash=0x%016llx\n",
                            static_cast<unsigned long long>(r.lo),
                            static_cast<unsigned long long>(r.hi),
                            static_cast<unsigned long long>(r.hi -
                                                            r.lo),
                            static_cast<unsigned long long>(r.hash));
        }
    }
    if (timing && !json)
        std::printf("%s", StageTimers::global().table().c_str());
    return 0;
}

void
printCacheIssues(const std::vector<CacheFileIssue> &issues)
{
    for (const CacheFileIssue &issue : issues)
        std::fprintf(stderr, "[%s] %s (offset %zu)\n",
                     issue.rule.c_str(), issue.message.c_str(),
                     issue.offset);
}

/**
 * `icp cache info|verify|compact <file.icpc>`: maintenance of the
 * on-disk analysis cache. info walks headers only; verify decodes
 * every payload; compact rewrites the file as one deduplicated
 * segment, optionally under a --max-bytes cap (the manual form of
 * --cache-max-bytes).
 */
int
cmdCache(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string action = argv[0];
    const std::string path = argv[1];

    if (action == "info") {
        const CacheFileInfo info = inspectCacheFile(path);
        if (!info.fileRead) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        std::printf(
            "%s: v%u, %llu bytes, %u segment%s (generation %llu)\n"
            "  function:      %u entries, %llu payload bytes\n"
            "  liveness:      %u entries, %llu payload bytes\n"
            "  data read-set: %u entries, %llu payload bytes\n"
            "  legacy (v1-v3): %u, unknown kind: %u, "
            "%llu payload bytes total\n",
            path.c_str(), info.version,
            static_cast<unsigned long long>(info.fileBytes),
            info.segments, info.segments == 1 ? "" : "s",
            static_cast<unsigned long long>(info.generation),
            info.functionEntries,
            static_cast<unsigned long long>(
                info.functionPayloadBytes),
            info.livenessEntries,
            static_cast<unsigned long long>(
                info.livenessPayloadBytes),
            info.dataDepsEntries,
            static_cast<unsigned long long>(
                info.dataDepsPayloadBytes),
            info.legacyEntries, info.otherEntries,
            static_cast<unsigned long long>(info.payloadBytes));
        const unsigned total = info.functionEntries +
                               info.livenessEntries +
                               info.dataDepsEntries +
                               info.legacyEntries +
                               info.otherEntries;
        std::printf("  sharing: %u total entries, %u distinct keys, "
                    "%u distinct payloads\n",
                    total, info.distinctKeys, info.distinctPayloads);
        printCacheIssues(info.issues);
        return info.issues.empty() ? 0 : 2;
    }

    if (action == "verify") {
        const CacheLoadReport rep = verifyCacheFile(path);
        if (!rep.fileRead) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        std::printf("%s: %u entries verified (%u function, "
                    "%u liveness, %u data read-set), %u dropped, "
                    "%u skipped (unknown kind), %u legacy\n",
                    path.c_str(), rep.loadedEntries(),
                    rep.loadedFunctions, rep.loadedLiveness,
                    rep.loadedDataDeps, rep.droppedEntries,
                    rep.skippedUnknown, rep.skippedLegacy);
        printCacheIssues(rep.issues);
        return rep.clean() ? 0 : 2;
    }

    if (action == "compact") {
        std::uint64_t max_bytes = 0;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--max-bytes" && i + 1 < argc)
                max_bytes = std::strtoull(argv[++i], nullptr, 10);
            else if (arg.rfind("--max-bytes=", 0) == 0)
                max_bytes = std::strtoull(
                    arg.c_str() + std::strlen("--max-bytes="),
                    nullptr, 10);
            else
                return usage();
        }
        CacheCompactionResult result;
        if (!compactCacheFile(path, max_bytes, result)) {
            std::fprintf(stderr, "cannot compact %s\n",
                         path.c_str());
            return 1;
        }
        std::printf("%s: %llu -> %llu bytes; %u entries kept, "
                    "%u evicted\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        result.bytesBefore),
                    static_cast<unsigned long long>(
                        result.bytesAfter),
                    result.entriesKept, result.entriesEvicted);
        return 0;
    }
    return usage();
}

std::string
absolutePath(const std::string &path)
{
    if (!path.empty() && path[0] == '/')
        return path;
    char cwd[PATH_MAX];
    if (getcwd(cwd, sizeof(cwd)) == nullptr)
        return path;
    return std::string(cwd) + "/" + path;
}

ServeServer *g_serve_server = nullptr;

void
serveSignalHandler(int)
{
    // requestDrain is async-signal-safe: an atomic store plus a
    // self-pipe write.
    if (g_serve_server != nullptr)
        g_serve_server->requestDrain();
}

/** `icp serve <socket>`: run the hot-session daemon until drained. */
int
cmdServe(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    ServeOptions sopts;
    sopts.socketPath = argv[0];
    bool timing = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--session-max-bytes" && i + 1 < argc) {
            sopts.sessionMaxBytes =
                std::strtoull(argv[++i], nullptr, 10);
            if (sopts.sessionMaxBytes == 0)
                return usage();
        } else if (arg == "--max-sessions" && i + 1 < argc) {
            sopts.maxSessions =
                static_cast<unsigned>(std::atoi(argv[++i]));
            if (sopts.maxSessions == 0)
                return usage();
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            sopts.requestTimeoutMs = std::atoi(argv[++i]);
        } else if (arg == "--max-pending" && i + 1 < argc) {
            sopts.maxPending =
                static_cast<unsigned>(std::atoi(argv[++i]));
            if (sopts.maxPending == 0)
                return usage();
        } else if (arg == "--threads" && i + 1 < argc) {
            sopts.threads =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--timing") {
            timing = true;
        } else {
            return usage();
        }
    }

    StageTimers::global().reset();
    ServeServer server(sopts);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "icp serve: %s\n", error.c_str());
        return 1;
    }

    g_serve_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = serveSignalHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("icp serve: listening on %s\n",
                sopts.socketPath.c_str());
    std::fflush(stdout);
    const int rc = server.run();
    g_serve_server = nullptr;

    const ServeStatsSnapshot snap = server.statsSnapshot();
    std::printf("icp serve: drained after %llu requests "
                "(%llu hits, %llu misses, %llu evictions, "
                "%llu errors, %llu rejected), p50 %.3f ms, "
                "p99 %.3f ms\n",
                static_cast<unsigned long long>(snap.requests),
                static_cast<unsigned long long>(snap.sessionHits),
                static_cast<unsigned long long>(snap.sessionMisses),
                static_cast<unsigned long long>(snap.evictions),
                static_cast<unsigned long long>(snap.errors),
                static_cast<unsigned long long>(snap.rejected),
                snap.p50Ms, snap.p99Ms);
    if (timing)
        std::printf("%s", StageTimers::global().table().c_str());
    return rc;
}

/**
 * `icp client <socket> <verb> ...`: one request round trip. The
 * reply is printed as a single greppable `verb: ok k=v ...` line.
 * Exit 0 on an ok reply, 2 when a lint reply reaches the fail-on
 * floor, 1 on connection/protocol/server errors.
 */
int
cmdClient(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string socket_path = argv[0];
    ServeMessage request;
    request.verb = argv[1];
    int timeout_ms = 30000;

    int i = 2;
    if (request.verb == "open" || request.verb == "lint" ||
        request.verb == "repair" || request.verb == "deps") {
        if (i >= argc)
            return usage();
        // The daemon resolves paths in its own cwd; absolutize so
        // the client's cwd is what counts.
        request.set("path", absolutePath(argv[i++]));
    } else if (request.verb == "rewrite") {
        if (i + 1 >= argc)
            return usage();
        request.set("path", absolutePath(argv[i++]));
        request.set("out", absolutePath(argv[i++]));
    } else if (request.verb != "ping" && request.verb != "stats" &&
               request.verb != "shutdown") {
        return usage();
    }

    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mode" && i + 1 < argc) {
            request.set("mode", argv[++i]);
        } else if (arg == "--threads" && i + 1 < argc) {
            request.set("threads", argv[++i]);
        } else if (arg == "--cache-file" && i + 1 < argc) {
            request.set("cache_file", absolutePath(argv[++i]));
        } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
            request.set("cache_max_bytes", argv[++i]);
        } else if (arg == "--count-blocks") {
            request.set("count_blocks", "1");
        } else if (arg == "--count-entries") {
            request.set("count_entries", "1");
        } else if (arg == "--call-emulation") {
            request.set("call_emulation", "1");
        } else if (arg == "--clobber") {
            request.set("clobber", "1");
        } else if (arg == "--no-cache") {
            request.set("no_cache", "1");
        } else if (arg == "--fail-on" && i + 1 < argc) {
            request.set("fail_on", argv[++i]);
        } else if (arg == "--iterations" && i + 1 < argc) {
            request.set("iterations", argv[++i]);
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            timeout_ms = std::atoi(argv[++i]);
        } else {
            return usage();
        }
    }

    ServeMessage reply;
    std::string error;
    if (!serveCall(socket_path, request, reply, error, timeout_ms)) {
        std::fprintf(stderr, "icp client: %s\n", error.c_str());
        return 1;
    }
    if (reply.verb != "ok") {
        std::fprintf(stderr, "icp client: %s failed [%s] %s\n",
                     request.verb.c_str(),
                     reply.get("code", "?").c_str(),
                     reply.get("error", "").c_str());
        return 1;
    }
    std::string line = request.verb + ": ok";
    for (const auto &[key, value] : reply.fields) {
        line += " ";
        line += key;
        line += "=";
        line += value;
    }
    std::printf("%s\n", line.c_str());
    if (request.verb == "lint" && reply.getU64("fail") != 0)
        return 2;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "compile")
        return cmdCompile(argc - 2, argv + 2);
    if (cmd == "rewrite")
        return cmdRewrite(argc - 2, argv + 2);
    if (cmd == "lint")
        return cmdLint(argc - 2, argv + 2);
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "inspect")
        return cmdInspect(argc - 2, argv + 2);
    if (cmd == "deps")
        return cmdDeps(argc - 2, argv + 2);
    if (cmd == "cache")
        return cmdCache(argc - 2, argv + 2);
    if (cmd == "serve")
        return cmdServe(argc - 2, argv + 2);
    if (cmd == "client")
        return cmdClient(argc - 2, argv + 2);
    return usage();
}
