file(REMOVE_RECURSE
  "libicp_harness.a"
)
